//! Compares the BIBS TDM with the Krasniewski–Albicki TDM on one of the
//! paper's filter datapaths, at reduced width so it runs in seconds.
//!
//! This is the Table 2 experiment in miniature: hardware, delay, sessions
//! and coverage-driven pattern counts for both methodologies.
//!
//! Run with `cargo run --release --example filter_comparison`.

use bibs_bench::{render_table2, table2_column, Table2Options, Tdm};
use bibs_datapath::filters::scaled;

fn main() {
    let width = 4;
    let circuit = scaled("c3a2m", width);
    println!(
        "circuit {} ({} registers, {} flip-flops, balanced = {})",
        circuit.name(),
        circuit.register_edges().count(),
        circuit.total_register_bits(),
        circuit.is_balanced()
    );
    let options = Table2Options::default();
    let b = table2_column(&circuit, Tdm::Bibs, &options);
    let k = table2_column(&circuit, Tdm::Ka85, &options);
    println!("{}", render_table2(&[(b.clone(), k.clone())]));
    println!("reading the shape (matches the paper's Table 2):");
    println!(
        "  hardware: BIBS {} vs [3] {} BILBO registers — BIBS saves {}",
        b.bilbo_count,
        k.bilbo_count,
        k.bilbo_count - b.bilbo_count
    );
    println!(
        "  performance: max delay {} vs {} time units",
        b.max_delay, k.max_delay
    );
    println!(
        "  test time to 100%: BIBS {} vs [3] {} — the paper's trade-off",
        b.time_100, k.time_100
    );
}
