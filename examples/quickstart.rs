//! Quickstart: make a pipelined datapath BIBS-testable and design its TPG.
//!
//! Builds a small balanced datapath, runs BIBS register selection, extracts
//! the kernel's generalized structure, designs the paper's LFSR/shift-
//! register TPG and verifies it applies a functionally exhaustive test set.
//!
//! Run with `cargo run --example quickstart`.

use bibs::bibs::{select, BibsOptions};
use bibs::design::kernels;
use bibs::structure::GeneralizedStructure;
use bibs::tpg::sc_tpg;
use bibs::verify::verify_exhaustive;
use bibs_rtl::{CircuitBuilder, LogicFunction};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A two-stage datapath: (a + b) * c with 3-bit words, registered I/O
    // and a pipeline register between the stages. `c` gets an alignment
    // register so the structure is balanced.
    let mut b = CircuitBuilder::new("mac3");
    let pa = b.input("a");
    let pb = b.input("b");
    let pc = b.input("c");
    let add = b.logic_fn("ADD", LogicFunction::Add);
    let mul = b.logic_fn("MUL", LogicFunction::Mul { out_width: 3 });
    let po = b.output("y");
    b.register("Ra", 3, pa, add);
    b.register("Rb", 3, pb, add);
    b.register("RA", 3, add, mul);
    let vc = b.vacuous("Vc");
    b.register("Rc", 3, pc, vc);
    b.register("Dc", 3, vc, mul);
    b.register("Ry", 3, mul, po);
    let circuit = b.finish()?;

    println!(
        "circuit {}: balanced = {}",
        circuit.name(),
        circuit.is_balanced()
    );

    // 1. BIBS register selection: only the PI/PO registers convert.
    let result = select(&circuit, &BibsOptions::default())?;
    println!(
        "BIBS converts {} of {} registers (the paper's headline saving)",
        result.design.register_count(),
        circuit.register_edges().count()
    );

    // 2. One kernel, 1-step functionally testable.
    let ks = kernels(&result.circuit, &result.design);
    println!("kernels: {}", ks.len());

    // 3. The kernel's generalized structure and its TPG.
    let structure = GeneralizedStructure::from_kernel(&result.circuit, &result.design, &ks[0])?;
    for (i, reg) in structure.registers.iter().enumerate() {
        let d = structure.cones[0]
            .deps
            .iter()
            .find(|dep| dep.register == i)
            .map(|dep| dep.seq_len);
        println!(
            "  input register {} (width {}), d = {:?}",
            reg.name, reg.width, d
        );
    }
    let tpg = sc_tpg(&structure);
    println!(
        "TPG: LFSR degree {}, {} extra flip-flops, test time {} cycles",
        tpg.lfsr_degree(),
        tpg.extra_flip_flops(),
        tpg.test_time()
    );

    // 4. Verify Theorem 4 by brute force: the kernel sees every pattern.
    for cov in verify_exhaustive(&tpg) {
        println!(
            "cone {}: {}/{} patterns observed (functionally exhaustive: {})",
            cov.cone,
            cov.observed,
            cov.total,
            cov.is_exhaustive_modulo_zero()
        );
    }
    Ok(())
}
