//! Retrofitting BIST onto filter structures that are *not* born balanced:
//! a transposed-form FIR (unbalanced reconvergence) and a biquad IIR
//! section (feedback cycle).
//!
//! Shows the two harder paths through the BIBS TDM: extra internal BILBO
//! conversions to balance an URFS, and the CBILBO / register-splitting
//! remedies for cycles (Theorem 2 and its single-register-cycle note).
//!
//! Run with `cargo run --release --example fir_retrofit`.

use bibs::bibs::{ensure_io_registers, select, BibsOptions, SingleRegisterCycleFix};
use bibs::design::{is_bibs_testable, kernels};
use bibs::kstep::k_step;
use bibs_datapath::filters::{biquad_iir, fir_transposed};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== transposed-form FIR (4 taps) ==");
    let fir = fir_transposed(4);
    println!(
        "balanced = {}, k-step functional testability = {:?}",
        fir.is_balanced(),
        k_step(&fir)
    );
    let result = select(&fir, &BibsOptions::default())?;
    println!(
        "BIBS converts {} of {} registers ({} as CBILBO) -> {} kernel(s), testable = {}",
        result.design.register_count(),
        fir.register_edges().count(),
        result.design.cbilbo.len(),
        kernels(&result.circuit, &result.design).len(),
        is_bibs_testable(&result.circuit, &result.design)
    );
    let names: Vec<_> = result
        .design
        .bilbo
        .iter()
        .chain(&result.design.cbilbo)
        .filter_map(|&e| result.circuit.edge(e).name.clone())
        .collect();
    println!("converted: {names:?}");

    println!("\n== biquad IIR section (feedback cycle) ==");
    let mut iir = biquad_iir();
    println!("acyclic = {}", iir.is_acyclic());
    // The accumulator output reaches the PO through a wire; BIST needs a
    // register there to act as the signature analyzer.
    let inserted = ensure_io_registers(&mut iir, 8);
    println!("inserted {} output register(s)", inserted.len());
    for fix in [
        SingleRegisterCycleFix::Cbilbo,
        SingleRegisterCycleFix::SplitRegister,
    ] {
        let options = BibsOptions {
            cycle_fix: fix,
            ..BibsOptions::default()
        };
        let result = select(&iir, &options)?;
        println!(
            "{fix:?}: {} BILBO + {} CBILBO registers, {} register edges total, testable = {}",
            result.design.bilbo.len(),
            result.design.cbilbo.len(),
            result.circuit.register_edges().count(),
            is_bibs_testable(&result.circuit, &result.design)
        );
    }
    Ok(())
}
