//! End-to-end BIST session: the TPG drives a real gate-level kernel, a
//! MISR compresses the responses, and an injected stuck-at fault changes
//! the signature.
//!
//! This walks the whole stack — RTL circuit, BIBS selection, generalized
//! structure, SC_TPG, elaboration to gates, logic simulation, signature
//! analysis — the way the authors' BITS system would run one test session.
//!
//! Run with `cargo run --release --example bist_session`.

use bibs::bibs::{select, BibsOptions};
use bibs::design::kernels;
use bibs::structure::GeneralizedStructure;
use bibs::tpg::{sc_tpg, TpgSimulator};
use bibs_lfsr::bitvec::BitVec;
use bibs_lfsr::misr::Misr;
use bibs_lfsr::poly::primitive_polynomial;
use bibs_netlist::sim::PatternSim;
use bibs_rtl::{CircuitBuilder, LogicFunction};
use std::collections::HashSet;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 3-bit (a + b) + c chain with an alignment register on c.
    let mut b = CircuitBuilder::new("acc3");
    let pa = b.input("a");
    let pb = b.input("b");
    let pc = b.input("c");
    let a1 = b.logic_fn("A1", LogicFunction::Add);
    let a2 = b.logic_fn("A2", LogicFunction::Add);
    let po = b.output("y");
    b.register("Ra", 3, pa, a1);
    b.register("Rb", 3, pb, a1);
    b.register("RA", 3, a1, a2);
    let vc = b.vacuous("Vc");
    b.register("Rc", 3, pc, vc);
    b.register("Dc", 3, vc, a2);
    b.register("Ry", 3, a2, po);
    let circuit = b.finish()?;

    // BIBS selection and TPG design.
    let result = select(&circuit, &BibsOptions::default())?;
    let ks = kernels(&result.circuit, &result.design);
    let structure = GeneralizedStructure::from_kernel(&result.circuit, &result.design, &ks[0])?;
    let tpg = sc_tpg(&structure);
    println!(
        "TPG: degree {}, {} FFs; test session length {} cycles",
        tpg.lfsr_degree(),
        tpg.flip_flop_count(),
        tpg.test_time()
    );

    // Elaborate the kernel to gates.
    let cut: HashSet<_> = result
        .design
        .bilbo
        .iter()
        .chain(&result.design.cbilbo)
        .copied()
        .collect();
    let kernel_set: HashSet<_> = ks[0].vertices.iter().copied().collect();
    let elab = bibs_datapath::elab::elaborate_kernel(&result.circuit, &kernel_set, &cut)?;
    let comb = elab.netlist.combinational_equivalent();

    // Run the session twice: fault-free, and with Ra bit 0 stuck at 1
    // (modelled by forcing that PI bit).
    let mut signatures = Vec::new();
    for faulty in [false, true] {
        let mut tpg_sim = TpgSimulator::new(&tpg);
        let mut logic = PatternSim::new(&comb);
        let sig_poly = primitive_polynomial(3).expect("degree 3 in table");
        let mut misr = Misr::new(&sig_poly);
        // The kernel is balanced, so driving the combinational equivalent
        // with each register's *time-aligned* view (the cone view per
        // input register) reproduces the pipelined behaviour.
        for _ in 0..tpg.test_time() {
            // Inputs in elaboration order: one word per cut edge.
            let mut word_bits = Vec::new();
            for (i, reg) in structure.registers.iter().enumerate() {
                let state = tpg_sim.register_state(i);
                for j in 0..reg.width as usize {
                    let mut bit = state.get(j);
                    if faulty && i == 0 && j == 0 {
                        bit = true; // Ra[0] stuck-at-1
                    }
                    word_bits.push(if bit { !0u64 } else { 0u64 });
                }
            }
            logic.set_inputs(&word_bits);
            logic.eval_comb();
            let out: Vec<bool> = comb
                .outputs()
                .iter()
                .map(|&o| logic.value(o) & 1 == 1)
                .collect();
            misr.absorb(&BitVec::from_bits(&out));
            tpg_sim.step();
        }
        println!(
            "{} signature: {:03b}... ({} cycles compressed)",
            if faulty { "faulty   " } else { "fault-free" },
            misr.signature_u64(),
            misr.cycles()
        );
        signatures.push(misr.signature_u64());
    }
    assert_ne!(
        signatures[0], signatures[1],
        "the fault must change the signature"
    );
    println!("fault detected: signatures differ");
    Ok(())
}
