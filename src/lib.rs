//! **bibs** — facade crate for the BIBS (Built-In test for Balanced
//! Structure) reproduction.
//!
//! Re-exports the core methodology ([`bibs_core`]) at the top level and the
//! substrate crates under their own names. See the workspace README for the
//! architecture and `DESIGN.md` for the paper-to-module map.
//!
//! # Example
//!
//! ```
//! use bibs::kstep::is_one_step;
//! use bibs_datapath::filters::c5a2m;
//!
//! // The paper's filter datapaths are balanced, hence 1-step
//! // functionally testable — the property the whole TDM rests on.
//! assert!(is_one_step(&c5a2m()));
//! ```
#![warn(missing_docs)]

pub use bibs_core::*;

pub use bibs_datapath as datapath;
pub use bibs_faultsim as faultsim;
pub use bibs_lfsr as lfsr;
pub use bibs_lint as lint;
pub use bibs_netlist as netlist;
pub use bibs_obs as obs;
pub use bibs_rtl as rtl;
