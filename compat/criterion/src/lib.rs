//! Offline, API-compatible subset of the `criterion` benchmark harness.
//!
//! The BIBS build environment has no network access to crates.io, so the
//! workspace vendors the criterion surface its benches use:
//! [`criterion_group!`], [`criterion_main!`], [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`Bencher::iter`],
//! [`Bencher::iter_batched`], [`BenchmarkId`], [`BatchSize`] and
//! [`black_box`].
//!
//! Measurement model: each benchmark is calibrated until one batch takes
//! ≥ `CALIBRATION_TARGET`, then `sample_size` batches are timed and the
//! per-iteration mean / median / min are reported as text, e.g.
//!
//! ```text
//! fault_sim_block64/8     time: [med 183.21 µs  mean 184.02 µs  min 180.77 µs]  (20 samples × 54 iters)
//! ```
//!
//! No plotting, no statistical regression against saved baselines — the
//! numbers land on stdout and in `EXPERIMENTS.md` by hand, which is how
//! this repository records results anyway.
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How long calibration grows a batch before sampling starts.
const CALIBRATION_TARGET: Duration = Duration::from_millis(8);

/// Default number of measured samples per benchmark.
const DEFAULT_SAMPLE_SIZE: usize = 20;

/// How `iter_batched` amortizes setup cost. Only `SmallInput` semantics
/// are distinguished here: every variant times the routine per batch and
/// excludes setup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Inputs are cheap to set up; batches may be large.
    SmallInput,
    /// Inputs are expensive; batches stay small.
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

/// A benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new(function_id: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    /// An id carrying only a parameter (grouped benches).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// The timing loop handed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    /// Mean/median/min per-iteration nanoseconds plus sample geometry,
    /// filled in by `iter`/`iter_batched`.
    result: Option<Sample>,
}

#[derive(Debug, Clone, Copy)]
struct Sample {
    mean_ns: f64,
    median_ns: f64,
    min_ns: f64,
    samples: usize,
    iters_per_sample: u64,
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            sample_size,
            result: None,
        }
    }

    /// Times `routine`, automatically sizing batches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibrate: double the batch until it takes long enough to trust
        // the clock.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= CALIBRATION_TARGET || iters >= 1 << 30 {
                break;
            }
            iters = iters.saturating_mul(2);
        }
        // Sample.
        let mut per_iter: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            per_iter.push(start.elapsed().as_secs_f64() * 1e9 / iters as f64);
        }
        self.record(per_iter, iters);
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        // Calibrate the per-call cost with one-input batches.
        let mut iters: u64 = 1;
        loop {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let elapsed = start.elapsed();
            if elapsed >= CALIBRATION_TARGET || iters >= 1 << 20 {
                break;
            }
            iters = iters.saturating_mul(2);
        }
        let mut per_iter: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            per_iter.push(start.elapsed().as_secs_f64() * 1e9 / iters as f64);
        }
        self.record(per_iter, iters);
    }

    fn record(&mut self, mut per_iter: Vec<f64>, iters: u64) {
        per_iter.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
        let n = per_iter.len().max(1);
        let mean = per_iter.iter().sum::<f64>() / n as f64;
        let median = per_iter.get(n / 2).copied().unwrap_or(mean);
        let min = per_iter.first().copied().unwrap_or(mean);
        self.result = Some(Sample {
            mean_ns: mean,
            median_ns: median,
            min_ns: min,
            samples: n,
            iters_per_sample: iters,
        });
    }
}

fn report(name: &str, sample: Option<Sample>) {
    match sample {
        Some(s) => println!(
            "{name:<44} time: [med {}  mean {}  min {}]  ({} samples × {} iters)",
            fmt_ns(s.median_ns),
            fmt_ns(s.mean_ns),
            fmt_ns(s.min_ns),
            s.samples,
            s.iters_per_sample
        ),
        None => println!("{name:<44} (no measurement recorded)"),
    }
}

/// The benchmark registry / driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(DEFAULT_SAMPLE_SIZE);
        f(&mut b);
        report(id, b.result);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of measured samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(&format!("{}/{}", self.name, id), b.result);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), b.result);
        self
    }

    /// Finishes the group (renders nothing extra in this subset).
    pub fn finish(self) {}
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test --benches` pass harness flags
            // (`--bench`, `--test`, filters); this subset runs everything
            // unconditionally and ignores them.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::new(3);
        b.iter(|| (0..100u64).sum::<u64>());
        let s = b.result.expect("sample recorded");
        assert!(s.min_ns > 0.0 && s.mean_ns >= s.min_ns);
        assert_eq!(s.samples, 3);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut b = Bencher::new(2);
        b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput);
        assert!(b.result.is_some());
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
    }

    #[test]
    fn group_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::from_parameter(1), &1, |b, _| {
            b.iter(|| black_box(1 + 1))
        });
        group.finish();
        c.bench_function("lone", |b| b.iter(|| black_box(2 * 2)));
    }
}
