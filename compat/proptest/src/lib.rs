//! Offline, API-compatible subset of the `proptest` crate.
//!
//! The BIBS build environment has no network access to crates.io, so the
//! workspace vendors the slice of proptest it uses: the [`proptest!`]
//! macro (including `#![proptest_config(..)]`), range / tuple / `any` /
//! [`collection::vec`] strategies, [`Strategy::prop_map`] and
//! [`Strategy::prop_filter_map`], [`sample::Index`], and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports the assertion message; the
//!   per-test RNG is seeded from the test *name*, so a failure reproduces
//!   exactly on re-run — which is what matters for CI triage.
//! * Strategies are generators (`new_value`), not value trees.
//! * Rejection (via `prop_assume!` or `prop_filter*`) re-draws from the
//!   same stream, with a global cap so a bad strategy cannot loop forever.
#![warn(missing_docs)]

use std::marker::PhantomData;
use std::ops::Range;

/// Test-runner plumbing: the per-test RNG, config and case outcome.
pub mod test_runner {
    /// Deterministic generator used to drive all strategies of one test.
    ///
    /// Seeded from the test function's name so every run of the suite
    /// draws the same cases — failures are reproducible without persisted
    /// regression files.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates the RNG for the named test.
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the test name, then SplitMix64 in `next_u64`.
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next 64 uniform bits (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// Why a test case ended without passing.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case was rejected (`prop_assume!` failed); draw another.
        Reject(String),
        /// The case failed an assertion.
        Fail(String),
    }

    impl TestCaseError {
        /// A failed-assertion outcome.
        pub fn fail(msg: String) -> Self {
            TestCaseError::Fail(msg)
        }

        /// A rejected-case outcome.
        pub fn reject(msg: String) -> Self {
            TestCaseError::Reject(msg)
        }
    }

    /// Per-`proptest!` block configuration.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of successful cases required.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }
}

pub use test_runner::Config as ProptestConfig;

use test_runner::TestRng;

/// A value generator. Upstream proptest's `Strategy` produces shrinkable
/// value trees; this subset produces plain values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `f`, re-drawing otherwise.
    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            f,
        }
    }

    /// Maps values through `f`, re-drawing whenever `f` returns `None`.
    fn prop_filter_map<O, F>(self, reason: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap {
            inner: self,
            reason,
            f,
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: std::rc::Rc::new(self),
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// Retry budget for `prop_filter*` strategies before giving up.
const FILTER_RETRIES: usize = 65_536;

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..FILTER_RETRIES {
            let v = self.inner.new_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter exhausted retries: {}", self.reason);
    }
}

/// See [`Strategy::prop_filter_map`].
#[derive(Debug, Clone)]
pub struct FilterMap<S, F> {
    inner: S,
    reason: &'static str,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        for _ in 0..FILTER_RETRIES {
            if let Some(v) = (self.f)(self.inner.new_value(rng)) {
                return v;
            }
        }
        panic!("prop_filter_map exhausted retries: {}", self.reason);
    }
}

/// A type-erased strategy (upstream's `BoxedStrategy`).
#[derive(Clone)]
pub struct BoxedStrategy<T> {
    inner: std::rc::Rc<dyn Strategy<Value = T>>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        self.inner.new_value(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + off) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<u128> {
    type Value = u128;
    fn new_value(&self, rng: &mut TestRng) -> u128 {
        assert!(self.start < self.end, "empty range strategy");
        let span = self.end - self.start;
        let draw = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        self.start + draw % span
    }
}

impl Strategy for Range<i128> {
    type Value = i128;
    fn new_value(&self, rng: &mut TestRng) -> i128 {
        assert!(self.start < self.end, "empty range strategy");
        let span = self.end.wrapping_sub(self.start) as u128;
        let draw = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        self.start.wrapping_add((draw % span) as i128)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Always produces a clone of the given value (upstream's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "uniform-ish" strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy for any value of type `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A length specification for [`vec()`]: a fixed size or a half-open
    /// range of sizes.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// A strategy producing `Vec`s of `element` values with a length drawn
    /// from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Sampling helpers.
pub mod sample {
    use super::{Arbitrary, TestRng};

    /// An arbitrary index into a collection whose length is only known at
    /// use time (upstream's `proptest::sample::Index`).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(usize);

    impl Index {
        /// Maps this index into `0..len`.
        ///
        /// # Panics
        ///
        /// Panics if `len` is zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            self.0 % len
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64() as usize)
        }
    }
}

/// `proptest::prelude` equivalent: the names tests conventionally glob.
pub mod prelude {
    pub use crate::collection;
    pub use crate::sample;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// the process) so the runner can report it.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `assert_eq!` for `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`): {}",
            stringify!($left), stringify!($right), l, r, format!($($fmt)*)
        );
    }};
}

/// `assert_ne!` for `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` (both: `{:?}`): {}",
            stringify!($left), stringify!($right), l, format!($($fmt)*)
        );
    }};
}

/// Rejects the current case (drawing a fresh one) when the precondition
/// does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                format!($($fmt)*),
            ));
        }
    };
}

/// Binds `name in strategy` / `name: Type` parameters of a `proptest!`
/// function body. Internal.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident) => {};
    ($rng:ident,) => {};
    ($rng:ident, $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = $crate::Strategy::new_value(&($strat), $rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
    ($rng:ident, $name:ident in $strat:expr) => {
        let $name = $crate::Strategy::new_value(&($strat), $rng);
    };
    ($rng:ident, $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name: $ty = $crate::Arbitrary::arbitrary($rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
    ($rng:ident, $name:ident : $ty:ty) => {
        let $name: $ty = $crate::Arbitrary::arbitrary($rng);
    };
}

/// Expands the test functions of a `proptest!` block. Internal.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr; $(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::Config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let mut __passed: u32 = 0;
            let mut __rejected: u32 = 0;
            while __passed < __cfg.cases {
                let __outcome = (|__case_rng: &mut $crate::test_runner::TestRng|
                    -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    $crate::__proptest_bind!(__case_rng, $($params)*);
                    $body
                    ::core::result::Result::Ok(())
                })(&mut __rng);
                match __outcome {
                    ::core::result::Result::Ok(()) => __passed += 1,
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(__why),
                    ) => {
                        __rejected += 1;
                        if __rejected > __cfg.cases.saturating_mul(256) {
                            panic!(
                                "proptest {}: too many rejected cases ({}), last: {}",
                                stringify!($name), __rejected, __why
                            );
                        }
                    }
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(__msg),
                    ) => {
                        panic!(
                            "proptest {} failed after {} passing case(s): {}",
                            stringify!($name), __passed, __msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_fns!(cfg = $cfg; $($rest)*);
    };
}

/// The `proptest!` block macro: wraps `#[test]` functions whose arguments
/// are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(cfg = $cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(
            cfg = <$crate::test_runner::Config as ::core::default::Default>::default();
            $($rest)*
        );
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic("ranges");
        for _ in 0..1000 {
            let v = (3usize..17).new_value(&mut rng);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn vec_sizes_respected() {
        let mut rng = crate::test_runner::TestRng::deterministic("vecs");
        for _ in 0..200 {
            let v = collection::vec(any::<bool>(), 2..9).new_value(&mut rng);
            assert!((2..9).contains(&v.len()));
            let w = collection::vec(any::<u8>(), 6).new_value(&mut rng);
            assert_eq!(w.len(), 6);
        }
    }

    #[test]
    fn filter_map_applies() {
        let mut rng = crate::test_runner::TestRng::deterministic("fm");
        let s = (0u32..100).prop_filter_map("even only", |v| (v % 2 == 0).then_some(v * 3));
        for _ in 0..100 {
            let v = s.new_value(&mut rng);
            assert_eq!(v % 3, 0);
            assert_eq!((v / 3) % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The macro binds `in`-style and `:`-style params together.
        #[test]
        fn macro_smoke(a in 1usize..10, flag: bool, v in collection::vec(any::<u64>(), 1..4)) {
            prop_assert!((1..10).contains(&a));
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assume!(a != 9); // exercise rejection path
            prop_assert_ne!(a, 9);
            let _ = flag;
        }

        #[test]
        fn tuple_and_map_strategies(pair in (1u32..5, 1u32..5).prop_map(|(a, b)| a * b)) {
            prop_assert!((1..25).contains(&pair));
        }
    }
}
