//! Offline stub of `serde_derive`.
//!
//! The BIBS build environment has no network access to crates.io. The
//! workspace's types carry `#[derive(Serialize, Deserialize)]` to keep the
//! door open for wire formats, but nothing actually serializes yet — so
//! these derives expand to **nothing**. When a real serialization consumer
//! lands, swap the `serde` workspace dependency back to the registry crate
//! and this stub becomes dead code.

use proc_macro::TokenStream;

/// Expands to nothing; accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
