//! Offline stub of `serde`.
//!
//! Provides the `Serialize` / `Deserialize` names in both the trait and
//! macro namespaces so `use serde::{Deserialize, Serialize};` plus
//! `#[derive(Serialize, Deserialize)]` compile without the registry crate.
//! The derives (from the sibling `serde_derive` stub) expand to nothing —
//! no code in this workspace serializes anything yet. See the stub crate's
//! docs for the swap-back path.
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`. Never implemented by the no-op
/// derive; exists so trait-position references compile.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`. Never implemented by the
/// no-op derive; exists so trait-position references compile.
pub trait Deserialize<'de> {}
