//! Offline, API-compatible subset of the `rand` crate.
//!
//! The BIBS build environment has no network access to crates.io, so the
//! workspace vendors the *surface* of `rand` it actually uses:
//! [`Rng::gen`], [`Rng::gen_bool`], [`Rng::gen_range`], [`SeedableRng`]
//! and [`rngs::StdRng`]. The generator core is **xoshiro256\*\*** seeded
//! through SplitMix64 — statistically strong for simulation workloads and
//! fully deterministic for a given seed, which is all the repository's
//! seeded experiments and property tests require.
//!
//! The stream produced for a given seed differs from upstream `rand`'s
//! `StdRng` (ChaCha12); every consumer in this workspace treats seeds as
//! opaque reproducibility handles, so only determinism matters, not the
//! exact stream.
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with uniformly distributed bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Sampling a value of a type from uniform random bits.
///
/// Mirrors `rand`'s `Standard` distribution for the primitive types the
/// workspace draws via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample(rng) as i128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Integer types that can be drawn uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`; panics if the range is empty.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Multiply-shift bounded draw; bias is < 2^-64 per draw,
                // far below anything the tests can observe.
                let word = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + word) as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range usable with [`Rng::gen_range`]: half-open or inclusive.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl SampleRange<u64> for RangeInclusive<u64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        if lo == 0 && hi == u64::MAX {
            return rng.next_u64();
        }
        u64::sample_range(rng, lo, hi + 1)
    }
}

impl SampleRange<usize> for RangeInclusive<usize> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        u64::sample_range(rng, *self.start() as u64, *self.end() as u64 + 1) as usize
    }
}

/// The user-facing random-value interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0, 1]");
        f64::sample(self) < p
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds a generator from system entropy (time-derived here; the
    /// workspace only uses seeded construction on hot paths).
    fn from_entropy() -> Self {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9E37_79B9_7F4A_7C15);
        Self::seed_from_u64(t ^ (std::process::id() as u64).rotate_left(32))
    }
}

/// Named generator types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256\*\*.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // xoshiro must not start at the all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Convenience: a fresh entropy-seeded [`rngs::StdRng`].
pub fn thread_rng() -> rngs::StdRng {
    rngs::StdRng::from_entropy()
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(8..40);
            assert!((8..40).contains(&v));
            let w = rng.gen_range(0u64..=u64::MAX);
            let _ = w;
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.2)).count();
        assert!((1_600..2_400).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn bits_look_uniform() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut ones = 0u32;
        for _ in 0..1000 {
            ones += rng.gen::<u64>().count_ones();
        }
        // 64 000 bits; expect ~32 000 ones.
        assert!((30_000..34_000).contains(&ones), "ones = {ones}");
    }
}
