//! The paper's novel TPG as a pluggable pattern source.
//!
//! [`MinTpgSource`] wraps a [`TpgSimulator`] behind
//! [`bibs_faultsim::source::PatternSource`], so the hardware-faithful
//! generator the paper builds (Procedures SC_TPG/MC_TPG, optionally
//! degree-minimized by [`crate::mintpg::minimize_degree`]) can drive the
//! fault-simulation engines directly — the coverage-vs-clocks axis the
//! BIBS methodology is about, measured with the same drivers as every
//! other source.
//!
//! The emitted stream is exactly the session stream of
//! [`crate::session::session_patterns`] (which is now a thin collector
//! over this source): warm-up shifts that fill the TPG's extension
//! flip-flops (charged to the clock budget, emitting nothing), the
//! `2^M − 1` aligned cone views of the maximal sequence, and the
//! appended all-zero pattern — the complete-LFSR remedy (ref \[15\]).

use crate::structure::GeneralizedStructure;
use crate::tpg::{TpgDesign, TpgSimulator};
use bibs_faultsim::source::{PatternBlock, PatternSource, SourceDescriptor, StreamDigest};

/// A [`PatternSource`] emitting one full functionally-exhaustive session
/// of the paper's TPG for a single-cone kernel.
#[derive(Debug)]
pub struct MinTpgSource {
    sim: TpgSimulator,
    structure_name: String,
    width: usize,
    degree: u32,
    polynomial: String,
    warmup: u64,
    /// Patterns still to come from the maximal sequence.
    period_left: u64,
    zero_pending: bool,
    emitted: u64,
    clocks: u64,
    digest: StreamDigest,
}

impl MinTpgSource {
    /// Builds the source for a designed TPG: constructs the cycle-accurate
    /// simulator and performs the warm-up shifts
    /// (`flip_flop_count + sequential_depth` cycles, charged to
    /// [`clocks_consumed`] before the first pattern).
    ///
    /// [`clocks_consumed`]: PatternSource::clocks_consumed
    ///
    /// # Errors
    ///
    /// Fails for multi-cone structures (the emitted pattern is the single
    /// cone's aligned view; a multi-cone kernel has no one stream), for
    /// degrees above 63 (the period counter is a `u64`), and for designs
    /// without a characteristic polynomial.
    pub fn new(design: &TpgDesign, structure: &GeneralizedStructure) -> Result<Self, String> {
        if !structure.is_single_cone() {
            return Err(format!(
                "TPG source needs a single-cone kernel; {} has {} cones",
                structure.name,
                structure.cones.len()
            ));
        }
        if design.lfsr_degree() > 63 {
            return Err(format!(
                "TPG source capped at degree 63, got {}",
                design.lfsr_degree()
            ));
        }
        let polynomial = design
            .polynomial()
            .ok_or_else(|| format!("no polynomial for degree {}", design.lfsr_degree()))?
            .to_string();
        let mut sim = TpgSimulator::new(design);
        let warmup = design.flip_flop_count() as u64 + structure.sequential_depth() as u64;
        for _ in 0..warmup {
            sim.step();
        }
        Ok(MinTpgSource {
            sim,
            structure_name: structure.name.clone(),
            width: structure.total_width() as usize,
            degree: design.lfsr_degree(),
            polynomial,
            warmup,
            period_left: (1u64 << design.lfsr_degree()) - 1,
            zero_pending: true,
            emitted: 0,
            clocks: warmup,
            digest: StreamDigest::default(),
        })
    }

    /// The designed LFSR degree `M`.
    pub fn degree(&self) -> u32 {
        self.degree
    }
}

impl PatternSource for MinTpgSource {
    fn next_block(&mut self, width: usize) -> Option<PatternBlock> {
        assert_eq!(width, self.width, "source width mismatch");
        if self.period_left == 0 && !self.zero_pending {
            return None;
        }
        let mut words = vec![0u64; width];
        let mut lanes = 0usize;
        while lanes < 64 && self.period_left > 0 {
            for (i, bit) in self.sim.cone_view(0).iter().enumerate() {
                if bit {
                    words[i] |= 1u64 << lanes;
                }
            }
            self.sim.step();
            self.period_left -= 1;
            self.clocks += 1;
            lanes += 1;
        }
        if lanes < 64 && self.period_left == 0 && self.zero_pending {
            // The appended all-zero pattern: its lane is already zero.
            self.zero_pending = false;
            self.clocks += 1;
            lanes += 1;
        }
        let block = PatternBlock { words, lanes };
        self.emitted += lanes as u64;
        self.digest.absorb_block(&block);
        Some(block)
    }

    fn clocks_consumed(&self) -> u64 {
        self.clocks
    }

    fn patterns_emitted(&self) -> u64 {
        self.emitted
    }

    fn state_digest(&self) -> u64 {
        self.digest.value()
    }

    fn descriptor(&self) -> SourceDescriptor {
        SourceDescriptor::new("mintpg")
            .field("structure", self.structure_name.clone())
            .field("polynomial", self.polynomial.clone())
            .field("degree", self.degree.to_string())
            .field("width", self.width.to_string())
            .field("warmup", self.warmup.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpg::sc_tpg;

    fn adder_structure() -> (GeneralizedStructure, TpgDesign) {
        let s = GeneralizedStructure::single_cone("add", &[("Ra", 3, 0), ("Rb", 3, 0)]);
        let design = sc_tpg(&s);
        (s, design)
    }

    #[test]
    fn tpg_source_matches_raw_simulator_stream_exactly() {
        // Independent reconstruction with a raw TpgSimulator — the
        // pre-source session loop — pins that the source emits the same
        // warm-up/cone-view/all-zero stream. (`session_patterns` itself
        // is a collector over this source, so it can't be the oracle.)
        let (s, design) = adder_structure();
        let width = s.total_width() as usize;
        let mut sim = TpgSimulator::new(&design);
        for _ in 0..design.flip_flop_count() + s.sequential_depth() as usize {
            sim.step();
        }
        let mut expected: Vec<Vec<bool>> = Vec::new();
        for _ in 0..(1u64 << design.lfsr_degree()) - 1 {
            expected.push(sim.cone_view(0).iter().collect());
            sim.step();
        }
        expected.push(vec![false; width]);

        let mut src = MinTpgSource::new(&design, &s).unwrap();
        let mut got = Vec::new();
        while let Some(block) = src.next_block(width) {
            for lane in 0..block.lanes {
                got.push(block.pattern(lane));
            }
        }
        assert_eq!(got, expected);
        assert_eq!(src.patterns_emitted(), expected.len() as u64);
        assert_eq!(got, crate::session::session_patterns(&design, &s));
    }

    #[test]
    fn tpg_source_charges_warmup_and_per_pattern_clocks() {
        let (s, design) = adder_structure();
        let warmup = design.flip_flop_count() as u64 + s.sequential_depth() as u64;
        let mut src = MinTpgSource::new(&design, &s).unwrap();
        assert_eq!(src.clocks_consumed(), warmup);
        while src.next_block(s.total_width() as usize).is_some() {}
        // One clock per emitted pattern (2^M − 1 plus the all-zero).
        assert_eq!(src.clocks_consumed(), warmup + (1 << design.lfsr_degree()));
    }

    #[test]
    fn tpg_source_descriptor_is_self_describing() {
        let (s, design) = adder_structure();
        let src = MinTpgSource::new(&design, &s).unwrap();
        let d = src.descriptor();
        assert_eq!(d.kind(), "mintpg");
        assert_eq!(d.get("structure"), Some("add"));
        assert_eq!(d.get("degree"), Some("6"));
        assert_eq!(d.get("width"), Some("6"));
        assert!(d.to_json().starts_with(r#"{"kind":"mintpg""#));
    }

    #[test]
    fn tpg_source_rejects_multi_cone_structures() {
        use crate::structure::{Cone, ConeDep, TpgRegister};
        // The paper's Example 5 shape: two registers, two cones.
        let regs = vec![
            TpgRegister {
                name: "R1".into(),
                width: 4,
            },
            TpgRegister {
                name: "R2".into(),
                width: 4,
            },
        ];
        let cones = vec![
            Cone {
                name: "O1".into(),
                deps: vec![
                    ConeDep {
                        register: 0,
                        seq_len: 2,
                    },
                    ConeDep {
                        register: 1,
                        seq_len: 0,
                    },
                ],
            },
            Cone {
                name: "O2".into(),
                deps: vec![
                    ConeDep {
                        register: 0,
                        seq_len: 1,
                    },
                    ConeDep {
                        register: 1,
                        seq_len: 0,
                    },
                ],
            },
        ];
        let s = GeneralizedStructure::new("ex5", regs, cones).unwrap();
        let design = crate::tpg::mc_tpg(&s);
        assert!(MinTpgSource::new(&design, &s).is_err());
    }
}
