//! The paper's novel test pattern generator: a type-1 LFSR interleaved with
//! plain shift-register flip-flops (Section 4, Procedures SC_TPG and
//! MC_TPG).
//!
//! # How the construction works
//!
//! Registers are laid out as a string of flip-flops and given **labels**
//! `L_k`: two flip-flops with the same label carry the same signal (shared
//! fanout stem); gaps in a register's placement are filled with **spacer**
//! flip-flops. In a type-1 LFSR, the stage labelled `L_k` at time `t`
//! carries the sequence value `a_{t−k+1}`, so a register cell at label `ℓ`
//! reaching a cone at sequential length `d` contributes sequence offset
//! `ℓ + d`. A cone therefore sees a *window* of the LFSR sequence, and an
//! LFSR of degree at least the window span applies **all** values to the
//! window (offsets within one degree are linearly independent monomials
//! `x^o mod p`), i.e. a functionally exhaustive test set — Theorem 4.
//!
//! * **Displacement**: register `R_i` is displaced from `R_j` by
//!   `Δ_{i,j} = max_x (d_{j,x} − d_{i,x})` over the cones `Ω_x` depending
//!   on both — positive displacements become spacer flip-flops, negative
//!   ones shared labels (Procedures SC_TPG step 4, MC_TPG step 3).
//! * **Degree**: the maximum window span over all cones (Theorem 7's
//!   logical span, generalized to arbitrary register orders); extension
//!   flip-flops are appended when the labels don't fill the LFSR
//!   (step 5).

use crate::structure::GeneralizedStructure;
use bibs_lfsr::bitvec::BitVec;
use bibs_lfsr::fsr::{Lfsr, LfsrKind};
use bibs_lfsr::poly::{primitive_polynomial, Polynomial};
use std::collections::VecDeque;
use std::fmt;

/// One physical flip-flop of a TPG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TpgSlot {
    /// The signal label `L_k` this flip-flop carries.
    pub label: i64,
    /// The register cell `(register index, cell index)` stored here, or
    /// `None` for spacer/extension flip-flops.
    pub cell: Option<(usize, usize)>,
}

/// A complete TPG design for a balanced BISTable kernel.
#[derive(Debug, Clone)]
pub struct TpgDesign {
    structure: GeneralizedStructure,
    slots: Vec<TpgSlot>,
    /// `cell_labels[i][j]` = label of cell `j` of register `i`.
    cell_labels: Vec<Vec<i64>>,
    /// LFSR degree `M` (stages labelled `label_offset ..
    /// label_offset + degree − 1`).
    degree: u32,
    label_offset: i64,
    polynomial: Option<Polynomial>,
}

impl TpgDesign {
    /// The structure this TPG was designed for.
    pub fn structure(&self) -> &GeneralizedStructure {
        &self.structure
    }

    /// The physical flip-flop string, in TPG order.
    pub fn slots(&self) -> &[TpgSlot] {
        &self.slots
    }

    /// Total number of physical flip-flops.
    pub fn flip_flop_count(&self) -> usize {
        self.slots.len()
    }

    /// Flip-flops beyond the register cells themselves (spacers plus LFSR
    /// extension) — the TPG's area cost over reusing the registers as-is.
    pub fn extra_flip_flops(&self) -> usize {
        self.slots.len() - self.structure.total_width() as usize
    }

    /// The LFSR degree `M`.
    pub fn lfsr_degree(&self) -> u32 {
        self.degree
    }

    /// The label of the first LFSR stage (usually 1; can be ≤ 0 for
    /// heavily skewed kernels like the paper's Example 4).
    pub fn first_lfsr_label(&self) -> i64 {
        self.label_offset
    }

    /// The characteristic polynomial, if one is available for the degree
    /// (the crate's table/search covers degrees 1..=96).
    pub fn polynomial(&self) -> Option<&Polynomial> {
        self.polynomial.as_ref()
    }

    /// The label assigned to cell `j` (0-based) of register `i`.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    pub fn cell_label(&self, register: usize, cell: usize) -> i64 {
        self.cell_labels[register][cell]
    }

    /// The displacement of register `i` with respect to register `j`: the
    /// difference between their first-cell labels.
    pub fn displacement(&self, i: usize, j: usize) -> i64 {
        self.cell_labels[i][0] - self.cell_labels[j][0]
    }

    /// Number of label collisions (signals shared by more than one
    /// flip-flop).
    pub fn shared_signal_count(&self) -> usize {
        let mut labels: Vec<i64> = self.slots.iter().map(|s| s.label).collect();
        labels.sort_unstable();
        labels.windows(2).filter(|w| w[0] == w[1]).count()
    }

    /// The test time to functionally exhaustively test the kernel:
    /// `2^M − 1 + d` clock cycles (Corollary 1).
    pub fn test_time(&self) -> u128 {
        (1u128 << self.degree.min(127)) - 1 + self.structure.sequential_depth() as u128
    }

    /// The same flip-flop layout with a different LFSR degree and
    /// characteristic polynomial: stages `label_offset ..
    /// label_offset+degree−1` form the LFSR, any remaining labelled
    /// flip-flops become shift-register extension.
    ///
    /// Used by the minimal-TPG solver
    /// ([`minimize_degree`](crate::mintpg::minimize_degree)): shrinking the
    /// degree is sound exactly when the offset-independence condition
    /// holds for every cone.
    ///
    /// # Panics
    ///
    /// Panics if the polynomial's degree differs from `degree`.
    pub fn with_lfsr(&self, degree: u32, polynomial: Polynomial) -> TpgDesign {
        assert_eq!(polynomial.degree(), degree, "degree must match polynomial");
        TpgDesign {
            structure: self.structure.clone(),
            slots: self.slots.clone(),
            cell_labels: self.cell_labels.clone(),
            degree,
            label_offset: self.label_offset,
            polynomial: Some(polynomial),
        }
    }

    /// The sequence offsets (label + sequential length) a cone observes.
    pub fn cone_offsets(&self, cone: usize) -> Vec<i64> {
        let mut offsets = Vec::new();
        for dep in &self.structure.cones[cone].deps {
            for &label in &self.cell_labels[dep.register] {
                offsets.push(label + dep.seq_len as i64);
            }
        }
        offsets
    }
}

impl fmt::Display for TpgDesign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "TPG for {}: {} FFs ({} extra), LFSR degree {}",
            self.structure.name,
            self.flip_flop_count(),
            self.extra_flip_flops(),
            self.degree
        )?;
        write!(f, "  slots:")?;
        for s in &self.slots {
            match s.cell {
                Some((r, c)) => write!(
                    f,
                    " {}[{}]=L{}",
                    self.structure.registers[r].name, c, s.label
                )?,
                None => write!(f, " -=L{}", s.label)?,
            }
        }
        Ok(())
    }
}

/// Designs a TPG for a multiple-cone kernel (Procedure MC_TPG).
///
/// For single-cone structures this reduces exactly to Procedure SC_TPG
/// (the maximum in step 3 is attained at the preceding register), so
/// [`sc_tpg`] is an alias.
pub fn mc_tpg(structure: &GeneralizedStructure) -> TpgDesign {
    let n = structure.registers.len();
    assert!(n > 0, "a TPG needs at least one input register");
    let mut slots: Vec<TpgSlot> = Vec::new();
    let mut cell_labels: Vec<Vec<i64>> = Vec::with_capacity(n);
    let mut last_label: Vec<i64> = Vec::with_capacity(n);

    // Step 2: place R_1 at labels 1..=r_1.
    let r1 = structure.registers[0].width as i64;
    for j in 0..r1 {
        slots.push(TpgSlot {
            label: j + 1,
            cell: Some((0, j as usize)),
        });
    }
    cell_labels.push((1..=r1).collect());
    last_label.push(r1);

    // Step 3: place R_2..R_n by displacement.
    for i in 1..n {
        let mut delta_i: Option<i64> = None;
        for j in 0..i {
            // Δ_{i,j}: max over cones depending on both R_i and R_j.
            let mut delta_ij: Option<i64> = None;
            for cone in &structure.cones {
                let di = cone.deps.iter().find(|d| d.register == i);
                let dj = cone.deps.iter().find(|d| d.register == j);
                if let (Some(di), Some(dj)) = (di, dj) {
                    let v = dj.seq_len as i64 - di.seq_len as i64;
                    delta_ij = Some(delta_ij.map_or(v, |m: i64| m.max(v)));
                }
            }
            if let Some(dij) = delta_ij {
                let v = dij + last_label[j] - last_label[i - 1];
                delta_i = Some(delta_i.map_or(v, |m: i64| m.max(v)));
            }
        }
        // No shared cone with any earlier register: place adjacent.
        let delta_i = delta_i.unwrap_or(0);
        let mut k = last_label[i - 1];
        if delta_i > 0 {
            for _ in 0..delta_i {
                k += 1;
                slots.push(TpgSlot {
                    label: k,
                    cell: None,
                });
            }
        } else {
            k += delta_i; // share |Δ| signals with the predecessor
        }
        let w = structure.registers[i].width as i64;
        let labels: Vec<i64> = (k + 1..=k + w).collect();
        for (j, &label) in labels.iter().enumerate() {
            slots.push(TpgSlot {
                label,
                cell: Some((i, j)),
            });
        }
        cell_labels.push(labels);
        last_label.push(k + w);
    }

    // Step 4: LFSR degree = maximum window span over cones.
    let mut degree: i64 = 1;
    for (x, _) in structure.cones.iter().enumerate() {
        let mut offsets: Vec<i64> = Vec::new();
        for dep in &structure.cones[x].deps {
            for &label in &cell_labels[dep.register] {
                offsets.push(label + dep.seq_len as i64);
            }
        }
        if let (Some(&min), Some(&max)) = (offsets.iter().min(), offsets.iter().max()) {
            degree = degree.max(max - min + 1);
        }
    }

    // Step 5: extend the string so every LFSR stage has a flip-flop.
    let lmin = slots.iter().map(|s| s.label).min().expect("non-empty");
    let lmax = slots.iter().map(|s| s.label).max().expect("non-empty");
    let lfsr_end = lmin + degree - 1;
    for label in (lmax + 1)..=lfsr_end {
        slots.push(TpgSlot { label, cell: None });
    }

    let polynomial = if degree <= 96 {
        primitive_polynomial(degree as u32)
    } else {
        None
    };
    TpgDesign {
        structure: structure.clone(),
        slots,
        cell_labels,
        degree: degree as u32,
        label_offset: lmin,
        polynomial,
    }
}

/// Designs a TPG for a single-cone kernel (Procedure SC_TPG).
///
/// # Panics
///
/// Panics if the structure has more than one cone — use [`mc_tpg`].
pub fn sc_tpg(structure: &GeneralizedStructure) -> TpgDesign {
    assert!(
        structure.is_single_cone(),
        "SC_TPG applies to single-cone kernels; use mc_tpg"
    );
    mc_tpg(structure)
}

/// A cycle-accurate simulator of a [`TpgDesign`].
///
/// The simulator tracks the underlying LFSR sequence and exposes both the
/// register contents at the current cycle and the pattern each cone
/// observes (register contents at `t − d_{i,x}`, reconstructed through the
/// label/offset correspondence that balance guarantees).
#[derive(Debug, Clone)]
pub struct TpgSimulator {
    design: TpgDesign,
    lfsr: Lfsr,
    /// Values that left the last LFSR stage, most recent first.
    history: VecDeque<bool>,
    history_depth: usize,
    time: u64,
}

impl TpgSimulator {
    /// Creates a simulator seeded with the LFSR state `00…01`.
    ///
    /// # Panics
    ///
    /// Panics if the design has no polynomial (degree > 96).
    pub fn new(design: &TpgDesign) -> Self {
        let poly = design
            .polynomial()
            .expect("TPG degree must be within the polynomial table")
            .clone();
        let lfsr = Lfsr::new(&poly, LfsrKind::Type1);
        // How far past the LFSR end do observed offsets reach?
        let lfsr_end = design.label_offset + design.degree as i64 - 1;
        let mut max_offset = lfsr_end;
        for x in 0..design.structure.cones.len() {
            for o in design.cone_offsets(x) {
                max_offset = max_offset.max(o);
            }
        }
        for s in &design.slots {
            max_offset = max_offset.max(s.label);
        }
        let history_depth = (max_offset - lfsr_end).max(0) as usize;
        TpgSimulator {
            design: design.clone(),
            lfsr,
            history: VecDeque::from(vec![false; history_depth]),
            history_depth,
            time: 0,
        }
    }

    /// The current cycle number.
    pub fn time(&self) -> u64 {
        self.time
    }

    /// Advances one clock cycle.
    pub fn step(&mut self) {
        if self.history_depth > 0 {
            self.history.pop_back();
            self.history.push_front(self.lfsr.stage(self.lfsr.width()));
        }
        self.lfsr.step();
        self.time += 1;
    }

    /// The signal on label `ℓ` at the current time.
    ///
    /// # Panics
    ///
    /// Panics if the label is before the LFSR start or beyond the tracked
    /// shift-register extension.
    pub fn signal(&self, label: i64) -> bool {
        let idx = label - self.design.label_offset; // 0-based stage index
        let m = self.design.degree as i64;
        if idx < 0 {
            panic!("label {label} precedes the LFSR start");
        }
        if idx < m {
            self.lfsr.stage(idx as usize + 1)
        } else {
            let back = (idx - m) as usize;
            self.history[back]
        }
    }

    /// The current contents of register `i` (bit `j` = cell `j`).
    pub fn register_state(&self, register: usize) -> BitVec {
        let labels = &self.design.cell_labels[register];
        labels.iter().map(|&l| self.signal(l)).collect()
    }

    /// The pattern cone `x` observes at the current cycle: the
    /// concatenation (in dependency order) of each depended-on register's
    /// contents as of `d_{i,x}` cycles ago.
    pub fn cone_view(&self, cone: usize) -> BitVec {
        let c = &self.design.structure.cones[cone];
        let mut bits = Vec::new();
        for dep in &c.deps {
            for &label in &self.design.cell_labels[dep.register] {
                bits.push(self.signal(label + dep.seq_len as i64));
            }
        }
        BitVec::from_bits(&bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structure::{Cone, ConeDep, GeneralizedStructure, TpgRegister};

    /// Example 2: Figure 12(a) kernel, 4-bit registers, d = (2, 1, 0).
    fn example2() -> GeneralizedStructure {
        GeneralizedStructure::single_cone("ex2", &[("R1", 4, 2), ("R2", 4, 1), ("R3", 4, 0)])
    }

    #[test]
    fn example2_twelve_bit_lfsr_with_two_extra_ffs() {
        let design = sc_tpg(&example2());
        assert_eq!(design.lfsr_degree(), 12, "paper: 12-bit LFSR");
        assert_eq!(design.extra_flip_flops(), 2, "paper: 2 extra D FFs");
        assert_eq!(design.flip_flop_count(), 14);
        assert_eq!(design.test_time(), (1 << 12) - 1 + 2, "2^12 - 1 + 2");
        assert_eq!(
            design.polynomial().map(|p| p.to_string()),
            Some("x^12 + x^7 + x^4 + x^3 + 1".to_string()),
            "the paper's Example 2 polynomial"
        );
    }

    #[test]
    fn example3_sharing_and_separation() {
        // Example 3: same registers, d = (1, 2, 0): R2 shares one signal
        // with R1 (Δ = -1), R3 is separated by two FFs (Δ = +2).
        let s =
            GeneralizedStructure::single_cone("ex3", &[("R1", 4, 1), ("R2", 4, 2), ("R3", 4, 0)]);
        let design = sc_tpg(&s);
        // R1 at labels 1..4; R2 at 4..7 (sharing L4); R3 at 10..13.
        assert_eq!(design.cell_label(0, 0), 1);
        assert_eq!(design.cell_label(1, 0), 4, "R2 shares L4 with R1");
        assert_eq!(design.cell_label(2, 0), 10, "R3 separated by 2 spacers");
        assert_eq!(design.shared_signal_count(), 1);
        assert_eq!(design.lfsr_degree(), 12);
        // Physical FFs: 12 cells + 2 spacers = 14 (the two L4 FFs both
        // exist; neither can be deleted, as the paper notes).
        assert_eq!(design.flip_flop_count(), 14);
    }

    #[test]
    fn example4_extreme_skew() {
        // Example 4: two 4-bit registers, displacement -5: sharing is
        // limited by the register width (3 signals shared, labels 0..3).
        let s = GeneralizedStructure::single_cone("ex4", &[("R1", 4, 0), ("R2", 4, 5)]);
        let design = sc_tpg(&s);
        assert_eq!(design.cell_label(1, 0), 0, "first stage is L0");
        assert_eq!(design.first_lfsr_label(), 0);
        assert_eq!(design.shared_signal_count(), 3, "L1, L2, L3 shared");
        // Window: R1 offsets 1..4, R2 offsets 5..8 → span 8... with d:
        // R1 d=0: offsets 1..4; R2 d=5: offsets 5..8. Degree 8? No:
        // R2 labels are 0..3, +5 → 5..8; R1 labels 1..4, +0 → 1..4.
        // Span = 8 - 1 + 1 = 8.
        assert_eq!(design.lfsr_degree(), 8);
    }

    #[test]
    fn example5_two_cone_kernel_nine_stage_lfsr() {
        // Figure 17: R1, R2 4-bit; Ω1: d=(2,0); Ω2: d=(1,0).
        let regs = vec![
            TpgRegister {
                name: "R1".into(),
                width: 4,
            },
            TpgRegister {
                name: "R2".into(),
                width: 4,
            },
        ];
        let cones = vec![
            Cone {
                name: "O1".into(),
                deps: vec![
                    ConeDep {
                        register: 0,
                        seq_len: 2,
                    },
                    ConeDep {
                        register: 1,
                        seq_len: 0,
                    },
                ],
            },
            Cone {
                name: "O2".into(),
                deps: vec![
                    ConeDep {
                        register: 0,
                        seq_len: 1,
                    },
                    ConeDep {
                        register: 1,
                        seq_len: 0,
                    },
                ],
            },
        ];
        let s = GeneralizedStructure::new("ex5", regs, cones).unwrap();
        let design = mc_tpg(&s);
        assert_eq!(
            design.displacement(1, 0),
            6,
            "R2 starts 2 FFs after R1 ends"
        );
        assert!(design.extra_flip_flops() >= 2);
        assert_eq!(design.lfsr_degree(), 9, "paper: 9-stage LFSR required");
    }

    #[test]
    fn example6_eleven_stage_lfsr() {
        // Figure 19: Ω1: d=(2,0); Ω2: d=(0,1) → 11-stage LFSR.
        let regs = vec![
            TpgRegister {
                name: "R1".into(),
                width: 4,
            },
            TpgRegister {
                name: "R2".into(),
                width: 4,
            },
        ];
        let cones = vec![
            Cone {
                name: "O1".into(),
                deps: vec![
                    ConeDep {
                        register: 0,
                        seq_len: 2,
                    },
                    ConeDep {
                        register: 1,
                        seq_len: 0,
                    },
                ],
            },
            Cone {
                name: "O2".into(),
                deps: vec![
                    ConeDep {
                        register: 0,
                        seq_len: 0,
                    },
                    ConeDep {
                        register: 1,
                        seq_len: 1,
                    },
                ],
            },
        ];
        let s = GeneralizedStructure::new("ex6", regs, cones).unwrap();
        let design = mc_tpg(&s);
        assert_eq!(design.lfsr_degree(), 11, "paper: 11-stage LFSR");
    }

    /// Example 7 / Figure 21: three 4-bit registers, cones
    /// Ω1(R1:2, R2:0), Ω2(R1:0, R3:1), Ω3(R2:1, R3:0).
    pub(crate) fn example7() -> GeneralizedStructure {
        let regs = vec![
            TpgRegister {
                name: "R1".into(),
                width: 4,
            },
            TpgRegister {
                name: "R2".into(),
                width: 4,
            },
            TpgRegister {
                name: "R3".into(),
                width: 4,
            },
        ];
        let cones = vec![
            Cone {
                name: "O1".into(),
                deps: vec![
                    ConeDep {
                        register: 0,
                        seq_len: 2,
                    },
                    ConeDep {
                        register: 1,
                        seq_len: 0,
                    },
                ],
            },
            Cone {
                name: "O2".into(),
                deps: vec![
                    ConeDep {
                        register: 0,
                        seq_len: 0,
                    },
                    ConeDep {
                        register: 2,
                        seq_len: 1,
                    },
                ],
            },
            Cone {
                name: "O3".into(),
                deps: vec![
                    ConeDep {
                        register: 1,
                        seq_len: 1,
                    },
                    ConeDep {
                        register: 2,
                        seq_len: 0,
                    },
                ],
            },
        ];
        GeneralizedStructure::new("ex7", regs, cones).unwrap()
    }

    #[test]
    fn example7_sixteen_then_eight_after_permutation() {
        let s = example7();
        let d1 = mc_tpg(&s);
        assert_eq!(d1.lfsr_degree(), 16, "paper: degree 16 in order R1,R2,R3");
        let permuted = s.permuted(&[0, 2, 1]); // R1, R3, R2
        let d2 = mc_tpg(&permuted);
        assert_eq!(d2.lfsr_degree(), 8, "paper: degree 8 in order R1,R3,R2");
    }

    #[test]
    fn simulator_register_state_tracks_lfsr_shift_property() {
        let design = sc_tpg(&example2());
        let mut sim = TpgSimulator::new(&design);
        // Register cells on consecutive labels shift like the LFSR.
        let before = sim.register_state(0);
        sim.step();
        let after = sim.register_state(0);
        for j in 1..4 {
            assert_eq!(after.get(j), before.get(j - 1));
        }
    }

    #[test]
    fn simulator_cone_view_has_window_width() {
        let design = sc_tpg(&example2());
        let sim = TpgSimulator::new(&design);
        assert_eq!(sim.cone_view(0).len(), 12);
    }

    #[test]
    fn single_register_tpg_is_plain_lfsr() {
        let s = GeneralizedStructure::single_cone("one", &[("R", 8, 0)]);
        let design = sc_tpg(&s);
        assert_eq!(design.lfsr_degree(), 8);
        assert_eq!(design.extra_flip_flops(), 0);
        assert_eq!(design.test_time(), 255);
    }
}
