//! The Krasniewski–Albicki TDM (reference \[3\] of the paper) — the baseline
//! BIBS is compared against in Table 2, and proved (Theorem 3) to be a
//! special case of BIBS.
//!
//! Its three criteria for converting registers to BILBOs:
//!
//! 1. a BILBO register for **every input port** of a combinational logic
//!    block that has more than one input port;
//! 2. a BILBO register for **every PI/PO port**;
//! 3. at least **two BILBO registers on every cycle**.

use crate::bibs::{mandatory_io_registers, BibsError};
use crate::design::BilboDesign;
use bibs_rtl::{Circuit, EdgeId, VertexId, VertexKind};
use std::fmt;

/// Errors from [`select`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ka85Error {
    /// An input port of a multi-port logic block is not driven (directly or
    /// through fanout/vacuous blocks) by any register, so criterion 1
    /// cannot be satisfied without inserting one.
    UnregisteredPort {
        /// The block whose port lacks a register.
        block: VertexId,
        /// The in-edge representing the port.
        port: EdgeId,
    },
    /// A primary input or output is not register-buffered (criterion 2).
    UnbufferedIo {
        /// The offending edge.
        edge: EdgeId,
    },
}

impl fmt::Display for Ka85Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ka85Error::UnregisteredPort { block, port } => {
                write!(
                    f,
                    "input port {port} of block {block} has no feeding register"
                )
            }
            Ka85Error::UnbufferedIo { edge } => {
                write!(f, "primary I/O on edge {edge} has no register to convert")
            }
        }
    }
}

impl std::error::Error for Ka85Error {}

impl From<BibsError> for Ka85Error {
    fn from(e: BibsError) -> Self {
        match e {
            BibsError::UnbufferedIo { edge } => Ka85Error::UnbufferedIo { edge },
        }
    }
}

/// Walks backward from a port (in-edge) through fanout and vacuous blocks
/// to the register edge that feeds it, if any.
pub fn feeding_register(circuit: &Circuit, port: EdgeId) -> Option<EdgeId> {
    let mut e = port;
    loop {
        let edge = circuit.edge(e);
        if edge.is_register() {
            return Some(e);
        }
        // Wire edge: continue through transparent blocks.
        let src = edge.from;
        match circuit.vertex(src).kind {
            VertexKind::Fanout | VertexKind::Vacuous => {
                let ins = circuit.in_edges(src);
                if ins.len() != 1 {
                    return None;
                }
                e = ins[0];
            }
            _ => return None,
        }
    }
}

/// Applies the three criteria of \[3\] to `circuit`.
///
/// # Errors
///
/// See [`Ka85Error`]. Both error cases mean the circuit violates the
/// methodology's structural assumptions; insert registers first.
pub fn select(circuit: &Circuit) -> Result<BilboDesign, Ka85Error> {
    let mut design = BilboDesign::new();

    // Criterion 2: PI/PO registers.
    design.bilbo = mandatory_io_registers(circuit)?;

    // Criterion 1: every input port of multi-port logic blocks.
    for v in circuit.vertex_ids() {
        if circuit.vertex(v).kind != VertexKind::Logic {
            continue;
        }
        let ports = circuit.in_edges(v);
        if ports.len() <= 1 {
            continue;
        }
        for &port in ports {
            match feeding_register(circuit, port) {
                Some(reg) => {
                    design.bilbo.insert(reg);
                }
                None => {
                    return Err(Ka85Error::UnregisteredPort { block: v, port });
                }
            }
        }
    }

    // Criterion 3: at least two BILBO edges on every cycle. First ensure
    // every cycle has at least one (cut all-uncut cycles), then promote
    // cycles with exactly one.
    loop {
        if let Some(cycle) = circuit.find_cycle_filtered(|e| !design.bilbo.contains(&e)) {
            let cheapest = cheapest_register(circuit, &cycle);
            design.bilbo.insert(cheapest);
            continue;
        }
        // Every cycle now holds ≥1 converted register. Look for cycles
        // with exactly one: a path from b.to back to b.from avoiding all
        // other converted registers.
        let mut promoted = false;
        for &b in design.bilbo.clone().iter() {
            let edge = circuit.edge(b);
            let keep = |e: EdgeId| e == b || !design.bilbo.contains(&e);
            if let Some(path) = register_path(circuit, edge.to, edge.from, |e| keep(e) && e != b) {
                let cheapest = cheapest_register(circuit, &path);
                design.bilbo.insert(cheapest);
                promoted = true;
            }
        }
        if !promoted {
            break;
        }
    }
    Ok(design)
}

fn cheapest_register(circuit: &Circuit, edges: &[EdgeId]) -> EdgeId {
    edges
        .iter()
        .copied()
        .filter(|&e| circuit.edge(e).is_register())
        .min_by_key(|&e| circuit.edge(e).kind.width().unwrap_or(u32::MAX))
        .expect("every cycle contains a register edge")
}

/// Finds a directed path `from → to` in the filtered subgraph and returns
/// its register edges, or `None` if unreachable.
fn register_path(
    circuit: &Circuit,
    from: VertexId,
    to: VertexId,
    keep: impl Fn(EdgeId) -> bool,
) -> Option<Vec<EdgeId>> {
    // BFS storing the incoming edge per vertex.
    let mut pred: Vec<Option<EdgeId>> = vec![None; circuit.vertex_count()];
    let mut seen = vec![false; circuit.vertex_count()];
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(from);
    seen[from.index()] = true;
    while let Some(v) = queue.pop_front() {
        if v == to {
            let mut path = Vec::new();
            let mut cur = to;
            while cur != from {
                let e = pred[cur.index()].expect("path recorded");
                if circuit.edge(e).is_register() {
                    path.push(e);
                }
                cur = circuit.edge(e).from;
            }
            path.reverse();
            return Some(path);
        }
        for &e in circuit.out_edges(v) {
            if !keep(e) {
                continue;
            }
            let w = circuit.edge(e).to;
            if !seen[w.index()] {
                seen[w.index()] = true;
                pred[w.index()] = Some(e);
                queue.push_back(w);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::kernels;
    use bibs_datapath::filters::{c3a2m, c4a4m, c5a2m};
    use bibs_rtl::CircuitBuilder;

    #[test]
    fn c5a2m_needs_15_bilbos() {
        let c = c5a2m();
        let design = select(&c).unwrap();
        assert_eq!(design.register_count(), 15, "Table 2 row 3 for [3]");
        // Every register is converted: [3] degenerates to full conversion.
        assert_eq!(design.register_count(), c.register_edges().count());
        // One kernel per adder/multiplier: 7.
        let ks: Vec<_> = kernels(&c, &design)
            .into_iter()
            .filter(|k| {
                k.vertices
                    .iter()
                    .any(|&v| c.vertex(v).kind == VertexKind::Logic)
            })
            .collect();
        assert_eq!(ks.len(), 7, "Table 2 row 1 for [3]");
    }

    #[test]
    fn c3a2m_needs_15_bilbos() {
        let c = c3a2m();
        let design = select(&c).unwrap();
        assert_eq!(design.register_count(), 15, "Table 2 row 3 for [3]");
        let ks: Vec<_> = kernels(&c, &design)
            .into_iter()
            .filter(|k| {
                k.vertices
                    .iter()
                    .any(|&v| c.vertex(v).kind == VertexKind::Logic)
            })
            .collect();
        assert_eq!(ks.len(), 5, "Table 2 row 1 for [3]");
    }

    #[test]
    fn c4a4m_needs_20_bilbos() {
        let c = c4a4m();
        let design = select(&c).unwrap();
        assert_eq!(design.register_count(), 20, "Table 2 row 3 for [3]");
        let ks: Vec<_> = kernels(&c, &design)
            .into_iter()
            .filter(|k| {
                k.vertices
                    .iter()
                    .any(|&v| c.vertex(v).kind == VertexKind::Logic)
            })
            .collect();
        // The paper reports 7 kernels; our reconstruction yields 6 because
        // each adder-output register feeds two multipliers through a
        // fanout, merging {M1,M4} and {M2,M3} into shared-TPG kernels.
        assert_eq!(ks.len(), 6);
    }

    #[test]
    fn cycles_get_two_bilbos() {
        let mut b = CircuitBuilder::new("cyc");
        let pi = b.input("PI");
        let f = b.logic("F");
        let h = b.logic("H");
        let po = b.output("PO");
        b.register("Rin", 4, pi, f);
        b.register("Rfh", 4, f, h);
        b.register("Rhf", 4, h, f);
        b.register("Rout", 4, h, po);
        let c = b.finish().unwrap();
        let design = select(&c).unwrap();
        assert!(design.bilbo.contains(&c.register_by_name("Rfh").unwrap()));
        assert!(design.bilbo.contains(&c.register_by_name("Rhf").unwrap()));
    }

    #[test]
    fn feeding_register_traces_through_fanout() {
        let c = c4a4m();
        let m1 = c.vertex_by_name("M1").unwrap();
        // M1's wire port from FO1 must trace back to RA1.
        let wire_port = c
            .in_edges(m1)
            .iter()
            .copied()
            .find(|&e| c.edge(e).kind == bibs_rtl::EdgeKind::Wire)
            .unwrap();
        let reg = feeding_register(&c, wire_port).unwrap();
        assert_eq!(c.edge(reg).name.as_deref(), Some("RA1"));
    }

    #[test]
    fn unregistered_port_is_an_error() {
        let mut b = CircuitBuilder::new("bad");
        let pi = b.input("PI");
        let c1 = b.logic("C1");
        let c2 = b.logic("C2");
        let po = b.output("PO");
        b.register("Rin", 4, pi, c1);
        b.wire(c1, c2); // logic-to-logic wire: no feeding register
        b.register("Rx", 4, c1, c2);
        b.register("Rout", 4, c2, po);
        let c = b.finish().unwrap();
        assert!(matches!(
            select(&c),
            Err(Ka85Error::UnregisteredPort { .. })
        ));
    }
}
