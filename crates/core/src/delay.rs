//! The maximal-delay metric of Table 2.
//!
//! "Whenever a BILBO register is used, it introduces a certain amount of
//! delay, say 1 time unit ... A maximal delay is thus calculated for each
//! BISTable circuit that is equal to the maximal number of BILBO registers
//! from a PI to a PO."

use crate::design::BilboDesign;
use bibs_rtl::{Circuit, VertexKind};

/// The maximal number of converted (BILBO/CBILBO) registers on any
/// directed PI→PO path, in units of the per-register delay.
///
/// Returns `None` for cyclic circuits (the longest path is unbounded
/// through a cycle; the paper's experiment circuits are acyclic).
pub fn maximal_delay(circuit: &Circuit, design: &BilboDesign) -> Option<u32> {
    let order = circuit.topo_order()?;
    // Longest-path DP where converted register edges weigh 1.
    let mut best: Vec<Option<u32>> = vec![None; circuit.vertex_count()];
    for v in circuit.vertex_ids() {
        if circuit.vertex(v).kind == VertexKind::Input {
            best[v.index()] = Some(0);
        }
    }
    for &v in &order {
        let Some(cur) = best[v.index()] else { continue };
        for &e in circuit.out_edges(v) {
            let w = if design.is_cut(e) { 1 } else { 0 };
            let to = circuit.edge(e).to;
            let cand = cur + w;
            if best[to.index()].is_none_or(|b| cand > b) {
                best[to.index()] = Some(cand);
            }
        }
    }
    let mut out = 0;
    for v in circuit.vertex_ids() {
        if circuit.vertex(v).kind == VertexKind::Output {
            if let Some(d) = best[v.index()] {
                out = out.max(d);
            }
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bibs::{self, BibsOptions};
    use crate::ka85;
    use bibs_datapath::filters::{c3a2m, c4a4m, c5a2m};

    #[test]
    fn table2_row4_maximal_delays() {
        for (circuit, ka_delay) in [(c5a2m(), 4), (c3a2m(), 6), (c4a4m(), 4)] {
            let bibs_result = bibs::select(&circuit, &BibsOptions::default()).unwrap();
            assert_eq!(
                maximal_delay(&bibs_result.circuit, &bibs_result.design),
                Some(2),
                "{}: BIBS maximal delay is 2 (PI + PO registers)",
                circuit.name()
            );
            let ka_design = ka85::select(&circuit).unwrap();
            assert_eq!(
                maximal_delay(&circuit, &ka_design),
                Some(ka_delay),
                "{}: [3] maximal delay (Table 2 row 4)",
                circuit.name()
            );
        }
    }

    #[test]
    fn empty_design_has_zero_delay() {
        let c = c5a2m();
        assert_eq!(
            maximal_delay(&c, &crate::design::BilboDesign::new()),
            Some(0)
        );
    }
}
