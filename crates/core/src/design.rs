//! BILBO designations, kernel extraction and the balanced BISTable
//! predicate (Definition 1 of the paper).

use bibs_lfsr::bilbo::AreaModel;
use bibs_rtl::{Circuit, EdgeId, VertexId, VertexKind};
use std::collections::BTreeSet;
use std::fmt;

/// A set of register-to-BILBO conversions applied to a circuit.
///
/// `bilbo` edges become ordinary BILBO registers (TPG *or* SA, one at a
/// time); `cbilbo` edges become concurrent BILBOs (ref \[7\]), which may act
/// as TPG and SA simultaneously — the paper uses them "only when necessary
/// since these registers introduce a significant amount of hardware
/// overhead".
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BilboDesign {
    /// Register edges converted to BILBO registers.
    pub bilbo: BTreeSet<EdgeId>,
    /// Register edges converted to CBILBO registers.
    pub cbilbo: BTreeSet<EdgeId>,
}

impl BilboDesign {
    /// An empty design (no conversions).
    pub fn new() -> Self {
        BilboDesign::default()
    }

    /// A design converting exactly the given edges to plain BILBOs.
    pub fn from_bilbos(edges: impl IntoIterator<Item = EdgeId>) -> Self {
        BilboDesign {
            bilbo: edges.into_iter().collect(),
            cbilbo: BTreeSet::new(),
        }
    }

    /// Whether `edge` is converted (BILBO or CBILBO).
    pub fn is_cut(&self, edge: EdgeId) -> bool {
        self.bilbo.contains(&edge) || self.cbilbo.contains(&edge)
    }

    /// Total number of converted registers.
    pub fn register_count(&self) -> usize {
        self.bilbo.len() + self.cbilbo.len()
    }

    /// Total number of converted flip-flops (sum of register widths).
    pub fn flip_flop_count(&self, circuit: &Circuit) -> u32 {
        self.bilbo
            .iter()
            .chain(&self.cbilbo)
            .map(|&e| circuit.edge(e).kind.width().unwrap_or(0))
            .sum()
    }

    /// Area overhead of the conversions in gate equivalents, under `model`.
    pub fn area_overhead(&self, circuit: &Circuit, model: &AreaModel) -> f64 {
        let bilbo_ffs: u32 = self
            .bilbo
            .iter()
            .map(|&e| circuit.edge(e).kind.width().unwrap_or(0))
            .sum();
        let cbilbo_ffs: u32 = self
            .cbilbo
            .iter()
            .map(|&e| circuit.edge(e).kind.width().unwrap_or(0))
            .sum();
        model.conversion_overhead(bilbo_ffs as usize)
            + (model.cbilbo_cell_ge - model.dff_ge) * cbilbo_ffs as f64
    }
}

/// One test kernel: a connected region of the circuit delimited by
/// converted (BILBO/CBILBO) register edges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Kernel {
    /// The blocks inside the kernel (logic, fanout, vacuous vertices).
    pub vertices: BTreeSet<VertexId>,
    /// Converted register edges entering the kernel — its TPGs.
    pub input_edges: Vec<EdgeId>,
    /// Converted register edges leaving the kernel — its SAs.
    pub output_edges: Vec<EdgeId>,
}

impl Kernel {
    /// Total input width (sum of input register widths) — the `M` of the
    /// paper's test-time formula `2^M − 1 + d`.
    pub fn input_width(&self, circuit: &Circuit) -> u32 {
        self.input_edges
            .iter()
            .map(|&e| circuit.edge(e).kind.width().unwrap_or(0))
            .sum()
    }

    /// The kernel's sequential depth `d`: the maximum number of internal
    /// register edges on any input-to-output path.
    pub fn sequential_depth(&self, circuit: &Circuit, design: &BilboDesign) -> u32 {
        let keep = |e: EdgeId| {
            !design.is_cut(e)
                && self.vertices.contains(&circuit.edge(e).from)
                && self.vertices.contains(&circuit.edge(e).to)
        };
        let mut depth = 0;
        for &ie in &self.input_edges {
            let src = circuit.edge(ie).to;
            if !self.vertices.contains(&src) {
                continue;
            }
            if let Some(lens) = circuit.seq_lengths_from_filtered(src, keep) {
                for &oe in &self.output_edges {
                    let dst = circuit.edge(oe).from;
                    if let Some(d) = lens[dst.index()].exact() {
                        depth = depth.max(d);
                    } else if let bibs_rtl::SeqLen::Conflict { max, .. } = lens[dst.index()] {
                        depth = depth.max(max);
                    }
                }
            }
        }
        depth
    }
}

/// Why a design is not BIBS-testable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A kernel's internal subgraph contains a directed cycle
    /// (Definition 1, requirement 1). Carries the edges of one such cycle.
    KernelCycle {
        /// Register edges on the offending cycle (candidates for cutting).
        cycle_registers: Vec<EdgeId>,
    },
    /// A kernel contains vertices joined by paths of unequal sequential
    /// length (requirement 2 — an URFS survives inside a kernel). Carries
    /// candidate register edges whose conversion can remove the imbalance.
    KernelImbalance {
        /// Path source vertex.
        from: VertexId,
        /// Path destination vertex.
        to: VertexId,
        /// Register edges lying on some `from → to` path.
        path_registers: Vec<EdgeId>,
    },
    /// A kernel's input width exceeds a caller-imposed bound (the paper's
    /// Section 2 feasibility concern for functionally exhaustive testing).
    /// Carries the kernel's internal register edges — candidates for
    /// splitting it.
    KernelTooWide {
        /// The offending kernel's input width.
        width: u32,
        /// The imposed bound.
        limit: u32,
        /// Internal register edges that can split the kernel.
        internal_registers: Vec<EdgeId>,
    },
    /// A converted plain-BILBO register both feeds and is fed by the same
    /// kernel (requirement 3): it would have to be TPG and SA
    /// simultaneously. Carries candidate register edges on a return path.
    PortConflict {
        /// The BILBO register with conflicting roles.
        register: EdgeId,
        /// Register edges on a path from the register's head back to its
        /// tail inside the kernel (cutting one separates the roles).
        path_registers: Vec<EdgeId>,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::KernelCycle { cycle_registers } => {
                write!(
                    f,
                    "kernel cycle through {} register(s)",
                    cycle_registers.len()
                )
            }
            Violation::KernelImbalance { from, to, .. } => {
                write!(f, "kernel imbalance between {from} and {to}")
            }
            Violation::KernelTooWide { width, limit, .. } => {
                write!(f, "kernel input width {width} exceeds bound {limit}")
            }
            Violation::PortConflict { register, .. } => {
                write!(f, "register {register} would be TPG and SA simultaneously")
            }
        }
    }
}

/// Extracts the kernels induced by a design: weakly connected components
/// of the non-converted subgraph, restricted to block vertices.
pub fn kernels(circuit: &Circuit, design: &BilboDesign) -> Vec<Kernel> {
    let n = circuit.vertex_count();
    let mut comp = vec![usize::MAX; n];
    let mut next = 0usize;
    let is_block = |v: VertexId| {
        !matches!(
            circuit.vertex(v).kind,
            VertexKind::Input | VertexKind::Output
        )
    };
    for start in circuit.vertex_ids() {
        if !is_block(start) || comp[start.index()] != usize::MAX {
            continue;
        }
        let id = next;
        next += 1;
        let mut stack = vec![start];
        comp[start.index()] = id;
        while let Some(v) = stack.pop() {
            let mut visit = |w: VertexId| {
                if is_block(w) && comp[w.index()] == usize::MAX {
                    comp[w.index()] = id;
                    stack.push(w);
                }
            };
            for &e in circuit.out_edges(v) {
                if !design.is_cut(e) {
                    visit(circuit.edge(e).to);
                }
            }
            for &e in circuit.in_edges(v) {
                if !design.is_cut(e) {
                    visit(circuit.edge(e).from);
                }
            }
        }
    }
    let mut out: Vec<Kernel> = (0..next)
        .map(|_| Kernel {
            vertices: BTreeSet::new(),
            input_edges: Vec::new(),
            output_edges: Vec::new(),
        })
        .collect();
    for v in circuit.vertex_ids() {
        if comp[v.index()] != usize::MAX {
            out[comp[v.index()]].vertices.insert(v);
        }
    }
    for e in circuit.edge_ids() {
        if !design.is_cut(e) {
            continue;
        }
        let edge = circuit.edge(e);
        if is_block(edge.to) {
            out[comp[edge.to.index()]].input_edges.push(e);
        }
        if is_block(edge.from) {
            out[comp[edge.from.index()]].output_edges.push(e);
        }
    }
    out
}

/// Checks Definition 1 on every kernel, returning the first violation
/// found, or `None` if the design is BIBS-testable.
pub fn find_violation(circuit: &Circuit, design: &BilboDesign) -> Option<Violation> {
    let keep_in = |kernel: &Kernel, e: EdgeId| {
        !design.is_cut(e)
            && kernel.vertices.contains(&circuit.edge(e).from)
            && kernel.vertices.contains(&circuit.edge(e).to)
    };
    for kernel in kernels(circuit, design) {
        // Requirement 1: acyclic.
        if let Some(cycle) = circuit.find_cycle_filtered(|e| keep_in(&kernel, e)) {
            let cycle_registers = cycle
                .into_iter()
                .filter(|&e| circuit.edge(e).is_register())
                .collect();
            return Some(Violation::KernelCycle { cycle_registers });
        }
        // Requirement 2: balanced.
        let report = circuit.balance_report_filtered(|e| keep_in(&kernel, e));
        if let Some(im) = report
            .imbalances
            .iter()
            .find(|im| kernel.vertices.contains(&im.from) && kernel.vertices.contains(&im.to))
        {
            let path_registers =
                registers_on_paths(circuit, im.from, im.to, |e| keep_in(&kernel, e));
            return Some(Violation::KernelImbalance {
                from: im.from,
                to: im.to,
                path_registers,
            });
        }
        // Requirement 3: no plain BILBO both feeds and is fed by the
        // kernel. (CBILBOs are exempt — that is their purpose.)
        for &e in &kernel.input_edges {
            if design.cbilbo.contains(&e) {
                continue;
            }
            let edge = circuit.edge(e);
            if kernel.vertices.contains(&edge.from) {
                // The register's head and tail sit in the same kernel, so
                // an undirected path of non-cut edges connects them.
                // Separating the roles requires cutting a register edge on
                // such a path (wire edges cannot be cut) — or making the
                // register a CBILBO.
                let path_registers =
                    registers_on_undirected_path(circuit, edge.to, edge.from, |x| {
                        keep_in(&kernel, x)
                    });
                return Some(Violation::PortConflict {
                    register: e,
                    path_registers,
                });
            }
        }
    }
    None
}

/// Whether the design makes the circuit BIBS-testable.
pub fn is_bibs_testable(circuit: &Circuit, design: &BilboDesign) -> bool {
    find_violation(circuit, design).is_none()
}

/// Register edges on one undirected path `from ↔ to` in the filtered
/// subgraph (edges may be traversed against their direction). Returns an
/// empty vector when the connecting path is wire-only or no path exists.
fn registers_on_undirected_path(
    circuit: &Circuit,
    from: VertexId,
    to: VertexId,
    keep: impl Fn(EdgeId) -> bool,
) -> Vec<EdgeId> {
    // BFS recording the edge that discovered each vertex.
    let mut pred: Vec<Option<(EdgeId, VertexId)>> = vec![None; circuit.vertex_count()];
    let mut seen = vec![false; circuit.vertex_count()];
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(from);
    seen[from.index()] = true;
    while let Some(v) = queue.pop_front() {
        if v == to {
            let mut regs = Vec::new();
            let mut cur = to;
            while cur != from {
                let (e, prev) = pred[cur.index()].expect("path recorded");
                if circuit.edge(e).is_register() {
                    regs.push(e);
                }
                cur = prev;
            }
            regs.reverse();
            return regs;
        }
        let mut visit =
            |e: EdgeId, w: VertexId, queue: &mut std::collections::VecDeque<VertexId>| {
                if !seen[w.index()] {
                    seen[w.index()] = true;
                    pred[w.index()] = Some((e, v));
                    queue.push_back(w);
                }
            };
        for &e in circuit.out_edges(v) {
            if keep(e) {
                visit(e, circuit.edge(e).to, &mut queue);
            }
        }
        for &e in circuit.in_edges(v) {
            if keep(e) {
                visit(e, circuit.edge(e).from, &mut queue);
            }
        }
    }
    Vec::new()
}

/// Register edges lying on some directed path `from → to` in the filtered
/// subgraph.
fn registers_on_paths(
    circuit: &Circuit,
    from: VertexId,
    to: VertexId,
    keep: impl Fn(EdgeId) -> bool,
) -> Vec<EdgeId> {
    let fwd = circuit.reachable_from_filtered(from, &keep);
    // Backward reachability to `to`.
    let mut back = vec![false; circuit.vertex_count()];
    let mut stack = vec![to];
    back[to.index()] = true;
    while let Some(v) = stack.pop() {
        for &e in circuit.in_edges(v) {
            if keep(e) {
                let w = circuit.edge(e).from;
                if !back[w.index()] {
                    back[w.index()] = true;
                    stack.push(w);
                }
            }
        }
    }
    circuit
        .edge_ids()
        .filter(|&e| {
            keep(e)
                && circuit.edge(e).is_register()
                && fwd[circuit.edge(e).from.index()]
                && back[circuit.edge(e).to.index()]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bibs_rtl::CircuitBuilder;

    /// PI -R1-> C1 -R2-> C2 -R3-> PO.
    fn pipeline() -> Circuit {
        let mut b = CircuitBuilder::new("pipe");
        let pi = b.input("PI");
        let c1 = b.logic("C1");
        let c2 = b.logic("C2");
        let po = b.output("PO");
        b.register("R1", 8, pi, c1);
        b.register("R2", 8, c1, c2);
        b.register("R3", 8, c2, po);
        b.finish().unwrap()
    }

    #[test]
    fn io_cut_yields_single_kernel() {
        let c = pipeline();
        let r1 = c.register_by_name("R1").unwrap();
        let r3 = c.register_by_name("R3").unwrap();
        let design = BilboDesign::from_bilbos([r1, r3]);
        let ks = kernels(&c, &design);
        assert_eq!(ks.len(), 1);
        assert_eq!(ks[0].vertices.len(), 2);
        assert_eq!(ks[0].input_edges, vec![r1]);
        assert_eq!(ks[0].output_edges, vec![r3]);
        assert_eq!(ks[0].input_width(&c), 8);
        assert_eq!(ks[0].sequential_depth(&c, &design), 1);
        assert!(is_bibs_testable(&c, &design));
    }

    #[test]
    fn full_cut_yields_two_kernels() {
        let c = pipeline();
        let design = BilboDesign::from_bilbos(c.register_edges());
        let ks = kernels(&c, &design);
        assert_eq!(ks.len(), 2);
        for k in &ks {
            assert_eq!(k.sequential_depth(&c, &design), 0);
        }
    }

    #[test]
    fn cycle_violation_detected() {
        let mut b = CircuitBuilder::new("cyc");
        let pi = b.input("PI");
        let f = b.logic("F");
        let h = b.logic("H");
        let po = b.output("PO");
        b.register("Rin", 4, pi, f);
        b.register("Rfh", 4, f, h);
        b.register("Rhf", 4, h, f);
        b.register("Rout", 4, h, po);
        let c = b.finish().unwrap();
        let rin = c.register_by_name("Rin").unwrap();
        let rout = c.register_by_name("Rout").unwrap();
        let design = BilboDesign::from_bilbos([rin, rout]);
        match find_violation(&c, &design) {
            Some(Violation::KernelCycle { cycle_registers }) => {
                assert_eq!(cycle_registers.len(), 2);
            }
            other => panic!("expected cycle violation, got {other:?}"),
        }
    }

    #[test]
    fn port_conflict_detected_and_cbilbo_exempts() {
        // Cutting only one edge of a two-register cycle gives the TPG/SA
        // conflict of Theorem 2's proof.
        let mut b = CircuitBuilder::new("cyc");
        let pi = b.input("PI");
        let f = b.logic("F");
        let h = b.logic("H");
        let po = b.output("PO");
        b.register("Rin", 4, pi, f);
        b.register("Rfh", 4, f, h);
        b.register("Rhf", 4, h, f);
        b.register("Rout", 4, h, po);
        let c = b.finish().unwrap();
        let rin = c.register_by_name("Rin").unwrap();
        let rout = c.register_by_name("Rout").unwrap();
        let rfh = c.register_by_name("Rfh").unwrap();
        let design = BilboDesign::from_bilbos([rin, rout, rfh]);
        match find_violation(&c, &design) {
            Some(Violation::PortConflict {
                register,
                path_registers,
            }) => {
                assert_eq!(register, rfh);
                assert_eq!(path_registers, vec![c.register_by_name("Rhf").unwrap()]);
            }
            other => panic!("expected port conflict, got {other:?}"),
        }
        // Making Rfh a CBILBO resolves it (Theorem 2's note).
        let mut design2 = BilboDesign::from_bilbos([rin, rout]);
        design2.cbilbo.insert(rfh);
        assert!(is_bibs_testable(&c, &design2));
    }

    #[test]
    fn imbalance_violation_detected() {
        // fig1-like: F feeds C directly and through a register.
        let mut b = CircuitBuilder::new("imb");
        let pi = b.input("PI");
        let f = b.fanout("F");
        let cblk = b.logic("C");
        let po = b.output("PO");
        b.register("Rin", 4, pi, f);
        b.wire(f, cblk);
        b.register("R", 4, f, cblk);
        b.register("Rout", 4, cblk, po);
        let c = b.finish().unwrap();
        let rin = c.register_by_name("Rin").unwrap();
        let rout = c.register_by_name("Rout").unwrap();
        let design = BilboDesign::from_bilbos([rin, rout]);
        match find_violation(&c, &design) {
            Some(Violation::KernelImbalance { path_registers, .. }) => {
                assert_eq!(path_registers, vec![c.register_by_name("R").unwrap()]);
            }
            other => panic!("expected imbalance, got {other:?}"),
        }
    }

    #[test]
    fn design_accounting() {
        let c = pipeline();
        let design = BilboDesign::from_bilbos(c.register_edges());
        assert_eq!(design.register_count(), 3);
        assert_eq!(design.flip_flop_count(&c), 24);
        let model = AreaModel::default();
        assert!(design.area_overhead(&c, &model) > 0.0);
    }
}
