//! BITS-style test-controller synthesis.
//!
//! The authors' BITS system "synthesizes a test controller" after test
//! scheduling. This module produces that controller as an explicit FSM:
//! one step per test session, each step holding every converted register
//! in the right BILBO mode for the right number of cycles, with a final
//! signature-readout step.

use crate::design::{BilboDesign, Kernel};
use crate::schedule::TestSession;
use bibs_lfsr::bilbo::BilboMode;
use bibs_rtl::{Circuit, EdgeId};
use std::collections::BTreeMap;
use std::fmt;

/// One controller step: a session held for a fixed number of cycles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ControllerStep {
    /// Human-readable step name.
    pub name: String,
    /// Cycles spent in this step.
    pub cycles: u64,
    /// The BILBO mode of every converted register during the step.
    pub modes: BTreeMap<EdgeId, BilboMode>,
}

/// A synthesized test controller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestController {
    /// The steps, in execution order.
    pub steps: Vec<ControllerStep>,
}

impl TestController {
    /// Total test time in cycles.
    pub fn total_cycles(&self) -> u64 {
        self.steps.iter().map(|s| s.cycles).sum()
    }

    /// FSM state-register width: `ceil(log2(steps + 1))` bits (one idle
    /// state plus one state per step).
    pub fn state_bits(&self) -> u32 {
        let states = self.steps.len() as u64 + 1;
        64 - (states - 1).leading_zeros()
    }
}

impl fmt::Display for TestController {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "test controller: {} steps, {} cycles, {}-bit state register",
            self.steps.len(),
            self.total_cycles(),
            self.state_bits()
        )?;
        for (i, s) in self.steps.iter().enumerate() {
            writeln!(f, "  step {i}: {} ({} cycles)", s.name, s.cycles)?;
        }
        Ok(())
    }
}

/// Synthesizes a controller from a schedule.
///
/// `kernel_patterns[k]` is the number of patterns kernel `k` needs; each
/// session lasts for its longest kernel's pattern count plus the kernel's
/// flush depth (`2^M − 1 + d` accounting is the caller's choice of
/// pattern count). Registers not active in a session stay in
/// [`BilboMode::Normal`]; after each session a scan-out step shifts the
/// signatures (one cycle per signature bit).
pub fn synthesize(
    circuit: &Circuit,
    design: &BilboDesign,
    kernels: &[Kernel],
    sessions: &[TestSession],
    kernel_patterns: &[u64],
) -> TestController {
    let mut steps = Vec::new();
    for (si, session) in sessions.iter().enumerate() {
        let mut modes: BTreeMap<EdgeId, BilboMode> = BTreeMap::new();
        for &e in design.bilbo.iter().chain(&design.cbilbo) {
            modes.insert(e, BilboMode::Normal);
        }
        let mut cycles = 0u64;
        let mut sig_bits = 0u64;
        for &k in &session.kernels {
            let kernel = &kernels[k];
            for &e in &kernel.input_edges {
                modes.insert(e, BilboMode::Generate);
            }
            for &e in &kernel.output_edges {
                modes.insert(e, BilboMode::Compress);
                sig_bits += circuit.edge(e).kind.width().unwrap_or(0) as u64;
            }
            // CBILBOs generate and compress at once; mark them Generate
            // (the compress half is implicit in the model).
            let depth = kernel.sequential_depth(circuit, design) as u64;
            cycles = cycles.max(kernel_patterns[k] + depth);
        }
        steps.push(ControllerStep {
            name: format!("session {si}: apply patterns"),
            cycles,
            modes: modes.clone(),
        });
        // Signature read-out: shift all session SAs out serially.
        let mut scan_modes = modes;
        for v in scan_modes.values_mut() {
            if *v == BilboMode::Compress {
                *v = BilboMode::Scan;
            } else {
                *v = BilboMode::Normal;
            }
        }
        steps.push(ControllerStep {
            name: format!("session {si}: scan signatures"),
            cycles: sig_bits,
            modes: scan_modes,
        });
    }
    TestController { steps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::kernels;
    use crate::ka85;
    use crate::schedule::schedule;
    use bibs_datapath::filters::c5a2m;
    use bibs_rtl::VertexKind;

    #[test]
    fn controller_covers_all_sessions() {
        let c = c5a2m();
        let design = ka85::select(&c).unwrap();
        let ks: Vec<_> = kernels(&c, &design)
            .into_iter()
            .filter(|k| {
                k.vertices
                    .iter()
                    .any(|&v| c.vertex(v).kind == VertexKind::Logic)
            })
            .collect();
        let sessions = schedule(&design, &ks);
        let patterns: Vec<u64> = ks.iter().map(|_| 100).collect();
        let ctrl = synthesize(&c, &design, &ks, &sessions, &patterns);
        assert_eq!(ctrl.steps.len(), sessions.len() * 2);
        assert!(ctrl.total_cycles() > 200, "patterns plus scan-out");
        assert!(ctrl.state_bits() >= 2);
        // Every pattern step holds at least one register in Generate and
        // one in Compress.
        for step in ctrl.steps.iter().step_by(2) {
            assert!(step.modes.values().any(|&m| m == BilboMode::Generate));
            assert!(step.modes.values().any(|&m| m == BilboMode::Compress));
        }
        let text = ctrl.to_string();
        assert!(text.contains("test controller"));
    }
}
