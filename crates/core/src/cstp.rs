//! A circular self-test path (CSTP) model — the Krasniewski–Pilarski
//! technique (ref \[4\]) the paper contrasts its TPG against in Section 4.1:
//! "It is estimated that to apply an exhaustive test set requires about
//! `T · 2^M` test patterns, where T varies from 4 to 8", versus the BIBS
//! TPG's `2^M − 1 + d`.

use bibs_netlist::sim::PatternSim;
use bibs_netlist::Netlist;
use std::collections::HashSet;

/// The outcome of a CSTP coverage run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CstpRun {
    /// Kernel input width `M`.
    pub width: u32,
    /// Distinct input patterns that appeared on the ring.
    pub covered: u64,
    /// Cycles executed.
    pub cycles: u64,
    /// Whether all `2^M` patterns appeared before the cycle limit.
    pub exhaustive: bool,
}

impl CstpRun {
    /// The `T` factor of the paper's estimate: cycles per `2^M`.
    pub fn t_factor(&self) -> f64 {
        self.cycles as f64 / (1u64 << self.width) as f64
    }
}

/// Simulates a circular self-test path around a combinational kernel.
///
/// The standard CSTP structure: the `M` kernel-input registers and the `P`
/// kernel-output registers form **one circular shift path** of `M + P`
/// stages. Each cycle the ring shifts by one; the stages feeding from the
/// kernel outputs capture `previous stage XOR output bit` (the BILBO-style
/// compaction), so responses are folded back into future stimuli. The run
/// stops when all `2^M` patterns have appeared at the kernel inputs, or
/// after `limit_multiple · 2^M` cycles.
///
/// # Panics
///
/// Panics if the netlist is sequential or has more than 20 inputs.
pub fn simulate_cstp(netlist: &Netlist, seed: u64, limit_multiple: u64) -> CstpRun {
    assert_eq!(
        netlist.dff_count(),
        0,
        "CSTP model takes the combinational kernel"
    );
    let m = netlist.input_width();
    let p = netlist.output_width();
    assert!(m <= 20, "CSTP simulation capped at 20 inputs");
    assert!(m + p <= 63, "ring must fit a u64");
    let total: u64 = 1u64 << m;
    let limit = total.saturating_mul(limit_multiple);
    let in_mask = total - 1;
    let ring_len = m + p;
    let ring_mask: u64 = (1u64 << ring_len) - 1;
    let outputs = netlist.outputs().to_vec();

    let mut sim = PatternSim::new(netlist);
    // Ring bits 0..m drive the kernel inputs; bits m..m+p sit behind the
    // kernel outputs.
    let mut ring: u64 = seed & ring_mask;
    let mut seen: HashSet<u64> = HashSet::new();
    let mut cycles: u64 = 0;
    while (seen.len() as u64) < total && cycles < limit {
        seen.insert(ring & in_mask);
        // Evaluate the kernel on the current input window (lane 0).
        let words: Vec<u64> = (0..m)
            .map(|i| if (ring >> i) & 1 == 1 { !0u64 } else { 0 })
            .collect();
        sim.set_inputs(&words);
        sim.eval_comb();
        let mut out_bits: u64 = 0;
        for (j, &o) in outputs.iter().enumerate() {
            if sim.value(o) & 1 == 1 {
                out_bits |= 1u64 << (m + j);
            }
        }
        // Circular shift by one, then XOR the outputs into their stages.
        ring = ((ring << 1) | (ring >> (ring_len - 1))) & ring_mask;
        ring ^= out_bits;
        cycles += 1;
    }
    let covered = seen.len() as u64;
    CstpRun {
        width: m as u32,
        covered,
        cycles,
        exhaustive: covered == total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bibs_netlist::builder::NetlistBuilder;

    fn adder(width: usize) -> Netlist {
        let mut b = NetlistBuilder::new("add");
        let a = b.input_word("a", width);
        let c = b.input_word("b", width);
        let (s, co) = b.ripple_carry_adder(&a, &c, None);
        b.output_word("s", &s);
        b.output("co", co);
        b.finish().unwrap()
    }

    #[test]
    fn cstp_needs_multiple_passes_when_it_covers() {
        let nl = adder(4);
        // Try several seeds; CSTP behaviour is seed-dependent (its cycle
        // structure is not maximal by construction).
        let mut best: Option<CstpRun> = None;
        for seed in [1u64, 3, 0x5A, 0x91] {
            let run = simulate_cstp(&nl, seed, 64);
            if run.exhaustive {
                best = Some(run);
                break;
            }
        }
        if let Some(run) = best {
            assert!(
                run.t_factor() >= 1.0,
                "covering all patterns takes at least 2^M cycles"
            );
        }
        // Whether or not it covered, the contrast stands: the BIBS TPG
        // covers in exactly 2^M - 1 + d cycles.
    }

    #[test]
    fn cstp_respects_cycle_limit() {
        let nl = adder(3);
        let run = simulate_cstp(&nl, 1, 2);
        assert!(run.cycles <= 2 * 64);
        assert!(run.covered <= 64);
    }

    #[test]
    fn cstp_coverage_counts_distinct_patterns() {
        let nl = adder(3);
        let run = simulate_cstp(&nl, 5, 64);
        assert!(run.covered >= 2, "the ring moves through several states");
    }
}
