//! Minimal-LFSR TPG design — the paper's stated open problem.
//!
//! Section 5: "The necessary and sufficient condition for a k-stage LFSR
//! to functionally exhaustively test a balanced BISTable kernel having n
//! inputs, where k ≥ n, has been identified. A procedure to generate a TPG
//! using the minimal number of F/Fs and LFSR stages ... can be developed
//! using this condition. The development of such a procedure remains an
//! open problem."
//!
//! The condition is linear-algebraic: a cone samples the LFSR sequence
//! `a_t` at offsets `o_i = ℓ_i + d_i` (cell label + sequential length).
//! Over one period of a maximal LFSR with characteristic polynomial `p`,
//! the sampled tuple is a linear image of the LFSR state, with one GF(2)
//! functional `x^{o_i} mod p` per offset — so the cone sees **all** `2^W`
//! patterns iff those W polynomials are **linearly independent**
//! ([`offsets_independent`]). MC_TPG's window-span degree guarantees this
//! (offsets within one degree are distinct monomials); the solver here
//! searches *below* that bound: [`minimize_degree`] keeps the flip-flop
//! layout and looks for a smaller primitive polynomial that still
//! satisfies the condition on every cone, shrinking test time from
//! `2^span` toward the `2^W` lower bound.

use crate::tpg::TpgDesign;
use bibs_lfsr::gf2;
use bibs_lfsr::poly::Polynomial;

/// Whether the GF(2) functionals `x^{o} mod p` for the given offsets are
/// linearly independent — the necessary and sufficient condition for the
/// sampled window to be functionally exhaustive.
///
/// Offsets may be any integers (they are normalized by the minimum;
/// multiplying all functionals by a power of the invertible `x` preserves
/// independence).
///
/// # Panics
///
/// Panics if the polynomial's degree exceeds 127 or its constant term is
/// zero (then `x` is not invertible and offset normalization is invalid).
pub fn offsets_independent(poly: &Polynomial, offsets: &[i64]) -> bool {
    assert!(
        poly.exponents().contains(&0),
        "characteristic polynomial needs a nonzero constant term"
    );
    let p = poly.to_packed().expect("degree ≤ 127");
    let k = poly.degree() as usize;
    if offsets.len() > k {
        return false; // more functionals than dimensions
    }
    let min = match offsets.iter().min() {
        Some(&m) => m,
        None => return true,
    };
    let mut rows: Vec<u128> = offsets
        .iter()
        .map(|&o| gf2::powmod(0b10, (o - min) as u128, p))
        .collect();
    // Gaussian elimination over GF(2).
    let mut rank = 0usize;
    for bit in (0..k).rev() {
        let pivot = (rank..rows.len()).find(|&r| rows[r] >> bit & 1 == 1);
        let Some(pivot) = pivot else { continue };
        rows.swap(rank, pivot);
        for r in 0..rows.len() {
            if r != rank && rows[r] >> bit & 1 == 1 {
                rows[r] ^= rows[rank];
            }
        }
        rank += 1;
    }
    rank == rows.len()
}

/// Checks the condition for every cone of a TPG design under a candidate
/// polynomial.
pub fn design_satisfies(design: &TpgDesign, poly: &Polynomial) -> bool {
    (0..design.structure().cones.len()).all(|x| offsets_independent(poly, &design.cone_offsets(x)))
}

/// Enumerates primitive polynomials of a given degree: all primitive
/// trinomials, then primitive pentanomials, up to `limit` results.
pub fn primitive_candidates(degree: u32, limit: usize) -> Vec<Polynomial> {
    let mut out = Vec::new();
    if degree == 0 || degree > 24 {
        return out;
    }
    for k in 1..degree {
        let p = Polynomial::from_exponents(&[degree, k, 0]);
        if p.is_primitive() {
            out.push(p);
            if out.len() >= limit {
                return out;
            }
        }
    }
    for a in (3..degree).rev() {
        for b in 2..a {
            for c in 1..b {
                let p = Polynomial::from_exponents(&[degree, a, b, c, 0]);
                if p.is_primitive() {
                    out.push(p);
                    if out.len() >= limit {
                        return out;
                    }
                }
            }
        }
    }
    out
}

/// The outcome of a minimal-degree search.
#[derive(Debug, Clone)]
pub struct MinimizedTpg {
    /// The re-polynomialized design (same flip-flop layout, smaller LFSR).
    pub design: TpgDesign,
    /// The constructive (window-span) degree it started from.
    pub original_degree: u32,
    /// How many candidate polynomials were tested.
    pub candidates_tested: usize,
}

/// Searches for the smallest LFSR degree (and a primitive polynomial of
/// that degree) that still functionally exhaustively tests every cone of
/// `design`, keeping the flip-flop layout fixed.
///
/// Degrees are tried from the information-theoretic lower bound (the
/// maximal cone dependency width) up to the design's constructive degree,
/// testing up to `per_degree` primitive polynomials each. Returns the
/// original design unchanged if nothing smaller works (within the
/// candidate budget) or the degree exceeds the enumeration range (24).
pub fn minimize_degree(design: &TpgDesign, per_degree: usize) -> MinimizedTpg {
    let original_degree = design.lfsr_degree();
    let lower = design
        .structure()
        .cones
        .iter()
        .map(|c| c.input_width(&design.structure().registers))
        .max()
        .unwrap_or(1)
        .max(1);
    let mut tested = 0usize;
    if original_degree <= 24 {
        for k in lower..original_degree {
            for poly in primitive_candidates(k, per_degree) {
                tested += 1;
                if design_satisfies(design, &poly) {
                    return MinimizedTpg {
                        design: design.with_lfsr(k, poly),
                        original_degree,
                        candidates_tested: tested,
                    };
                }
            }
        }
    }
    MinimizedTpg {
        design: design.clone(),
        original_degree,
        candidates_tested: tested,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structure::{Cone, ConeDep, GeneralizedStructure, TpgRegister};
    use crate::tpg::mc_tpg;
    use crate::verify::verify_exhaustive;
    use bibs_lfsr::poly::primitive_polynomial;

    #[test]
    fn monomials_within_degree_are_independent() {
        let p = primitive_polynomial(8).unwrap();
        assert!(offsets_independent(&p, &[0, 1, 2, 3, 4, 5, 6, 7]));
        assert!(offsets_independent(&p, &[3, 5, 9])); // shifted window of 3
                                                      // Duplicate offsets are dependent.
        assert!(!offsets_independent(&p, &[2, 2]));
        // More offsets than stages can never be independent.
        assert!(!offsets_independent(&p, &(0..9).collect::<Vec<_>>()));
    }

    #[test]
    fn dependent_offsets_detected() {
        // x^4 + x + 1: x^4 = x + 1, so offsets {4, 1, 0} are dependent.
        let p = Polynomial::from_exponents(&[4, 1, 0]);
        assert!(!offsets_independent(&p, &[4, 1, 0]));
        assert!(offsets_independent(&p, &[0, 1, 2, 3]));
    }

    #[test]
    fn independence_predicts_brute_force_coverage() {
        // Example 5's shape at 2-bit width: degree 5 constructive.
        let regs = vec![
            TpgRegister {
                name: "R1".into(),
                width: 2,
            },
            TpgRegister {
                name: "R2".into(),
                width: 2,
            },
        ];
        let cones = vec![
            Cone {
                name: "O1".into(),
                deps: vec![
                    ConeDep {
                        register: 0,
                        seq_len: 2,
                    },
                    ConeDep {
                        register: 1,
                        seq_len: 0,
                    },
                ],
            },
            Cone {
                name: "O2".into(),
                deps: vec![
                    ConeDep {
                        register: 0,
                        seq_len: 1,
                    },
                    ConeDep {
                        register: 1,
                        seq_len: 0,
                    },
                ],
            },
        ];
        let s = GeneralizedStructure::new("ex5s", regs, cones).unwrap();
        let design = mc_tpg(&s);
        let result = minimize_degree(&design, 40);
        assert!(result.design.lfsr_degree() <= design.lfsr_degree());
        // Whatever degree the solver settled on, brute force must agree.
        for cov in verify_exhaustive(&result.design) {
            assert!(
                cov.is_exhaustive_modulo_zero(),
                "minimized design must stay exhaustive: {cov:?}"
            );
        }
    }

    #[test]
    fn solver_reaches_the_lower_bound_when_possible() {
        // A cone with a gap in its window: constructive degree exceeds the
        // dependency width, so there is room to shrink.
        let regs = vec![
            TpgRegister {
                name: "R1".into(),
                width: 3,
            },
            TpgRegister {
                name: "R2".into(),
                width: 3,
            },
        ];
        let cones = vec![Cone {
            name: "O".into(),
            deps: vec![
                ConeDep {
                    register: 0,
                    seq_len: 3,
                },
                ConeDep {
                    register: 1,
                    seq_len: 0,
                },
            ],
        }];
        let s = GeneralizedStructure::new("gap", regs, cones).unwrap();
        let design = mc_tpg(&s);
        assert!(design.lfsr_degree() >= 6);
        let result = minimize_degree(&design, 60);
        assert!(result.design.lfsr_degree() <= design.lfsr_degree());
        for cov in verify_exhaustive(&result.design) {
            assert!(cov.is_exhaustive_modulo_zero(), "{cov:?}");
        }
        // Test time shrank accordingly if a smaller degree was found.
        if result.design.lfsr_degree() < result.original_degree {
            assert!(result.design.test_time() < (1 << result.original_degree));
        }
    }

    /// Full-size Examples 5 and 6: the solver finds degree-8 LFSRs —
    /// strictly below the paper's constructive 9 and 11 — and brute force
    /// confirms both remain functionally exhaustive. The paper's Section 5
    /// conjectured such a procedure could exist; here it does.
    #[test]
    fn examples_5_and_6_shrink_to_the_lower_bound() {
        let make = |d: [[u32; 2]; 2], name: &str| {
            let regs = vec![
                TpgRegister {
                    name: "R1".into(),
                    width: 4,
                },
                TpgRegister {
                    name: "R2".into(),
                    width: 4,
                },
            ];
            let cones = (0..2)
                .map(|x| Cone {
                    name: format!("O{}", x + 1),
                    deps: vec![
                        ConeDep {
                            register: 0,
                            seq_len: d[x][0],
                        },
                        ConeDep {
                            register: 1,
                            seq_len: d[x][1],
                        },
                    ],
                })
                .collect();
            GeneralizedStructure::new(name, regs, cones).unwrap()
        };
        for (structure, constructive) in [
            (make([[2, 0], [1, 0]], "ex5"), 9u32),
            (make([[2, 0], [0, 1]], "ex6"), 11),
        ] {
            let design = mc_tpg(&structure);
            assert_eq!(design.lfsr_degree(), constructive);
            let min = minimize_degree(&design, 200);
            assert_eq!(
                min.design.lfsr_degree(),
                8,
                "{}: the 2^w lower bound is achievable",
                structure.name
            );
            for cov in verify_exhaustive(&min.design) {
                assert!(
                    cov.is_exhaustive_modulo_zero(),
                    "{}: {cov:?}",
                    structure.name
                );
            }
        }
    }

    #[test]
    fn candidates_are_primitive_and_distinct() {
        let cands = primitive_candidates(10, 8);
        assert!(!cands.is_empty());
        for p in &cands {
            assert_eq!(p.degree(), 10);
            assert!(p.is_primitive());
        }
        let mut dedup = cands.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), cands.len());
    }
}
