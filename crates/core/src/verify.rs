//! Brute-force verification that a TPG design applies a functionally
//! exhaustive test set (the claims of Theorems 4, 5 and 7).
//!
//! For every cone, the simulator is run through the full LFSR period and
//! the pattern the cone observes each cycle is collected; functional
//! exhaustiveness means every one of the `2^W` combinations of the cone's
//! depended-on register bits appears (the all-0 pattern is reported
//! separately — a plain maximal LFSR never produces an all-0 window as
//! wide as its degree; the paper defers that single pattern to a complete
//! LFSR, ref \[15\]).

use crate::tpg::{TpgDesign, TpgSimulator};
use bibs_faultsim::par::default_jobs;
use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Coverage of one cone under a TPG design.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConeCoverage {
    /// Cone index.
    pub cone: usize,
    /// The cone's input width `W`.
    pub width: u32,
    /// Number of distinct patterns observed over the LFSR period.
    pub observed: u64,
    /// The full pattern count `2^W`.
    pub total: u64,
    /// Whether the all-0 pattern was observed.
    pub saw_all_zero: bool,
}

impl ConeCoverage {
    /// Whether the cone is functionally exhaustively tested, counting the
    /// all-0 pattern as supplied by a complete LFSR when missing.
    pub fn is_exhaustive_modulo_zero(&self) -> bool {
        self.observed == self.total || (!self.saw_all_zero && self.observed == self.total - 1)
    }

    /// Whether the cone saw strictly every pattern, including all-0.
    pub fn is_fully_exhaustive(&self) -> bool {
        self.observed == self.total
    }
}

/// Measures the pattern coverage of cone `cone` by simulating the whole
/// LFSR period.
///
/// # Panics
///
/// Panics if the cone's input width exceeds 24 or the LFSR degree exceeds
/// 24 (brute force would be unreasonable) or no polynomial is available.
pub fn cone_coverage(design: &TpgDesign, cone: usize) -> ConeCoverage {
    let width = design.structure().cones[cone].input_width(&design.structure().registers);
    assert!(width <= 24, "brute-force coverage capped at 24-bit cones");
    let degree = design.lfsr_degree();
    assert!(degree <= 24, "brute-force coverage capped at degree 24");
    let period: u64 = (1u64 << degree) - 1;
    let mut sim = TpgSimulator::new(design);
    // Warm the shift-register extension so the observed windows are
    // steady-state (the extension starts zero-filled).
    for _ in 0..design.flip_flop_count() as u64 + design.structure().sequential_depth() as u64 {
        sim.step();
    }
    let mut seen: HashSet<u64> = HashSet::new();
    for _ in 0..period {
        let view = sim.cone_view(cone);
        seen.insert(view.to_u64());
        sim.step();
    }
    ConeCoverage {
        cone,
        width,
        observed: seen.len() as u64,
        total: 1u64 << width,
        saw_all_zero: seen.contains(&0),
    }
}

/// Verifies every cone of the design; returns the coverages in cone
/// order.
///
/// Cones are independent, so they are verified on
/// [`bibs_faultsim::par::default_jobs`] worker threads (the `BIBS_JOBS`
/// knob applies); use [`verify_exhaustive_jobs`] for an explicit count.
pub fn verify_exhaustive(design: &TpgDesign) -> Vec<ConeCoverage> {
    verify_exhaustive_jobs(design, default_jobs())
}

/// [`verify_exhaustive`] with an explicit worker-thread count. The result
/// is identical (and in cone order) for any `jobs` — each cone's coverage
/// is a pure function of the design.
pub fn verify_exhaustive_jobs(design: &TpgDesign, jobs: usize) -> Vec<ConeCoverage> {
    let n = design.structure().cones.len();
    let jobs = jobs.clamp(1, n.max(1));
    if jobs <= 1 || n <= 1 {
        return (0..n).map(|x| cone_coverage(design, x)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let cursor = &cursor;
    let collected: Vec<Vec<(usize, ConeCoverage)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..jobs)
            .map(|_| {
                s.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let x = cursor.fetch_add(1, Ordering::Relaxed);
                        if x >= n {
                            break;
                        }
                        out.push((x, cone_coverage(design, x)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("cone-verify worker panicked"))
            .collect()
    });
    let mut results: Vec<Option<ConeCoverage>> = vec![None; n];
    for (x, cov) in collected.into_iter().flatten() {
        results[x] = Some(cov);
    }
    results
        .into_iter()
        .map(|c| c.expect("every cone verified exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structure::{Cone, ConeDep, GeneralizedStructure, TpgRegister};
    use crate::tpg::{mc_tpg, sc_tpg};

    #[test]
    fn theorem4_small_single_cone() {
        // 2-bit registers with d = (2, 1, 0): degree 6, cone width 6.
        let s = GeneralizedStructure::single_cone("t", &[("R1", 2, 2), ("R2", 2, 1), ("R3", 2, 0)]);
        let design = sc_tpg(&s);
        assert_eq!(design.lfsr_degree(), 6);
        let cov = cone_coverage(&design, 0);
        assert!(
            cov.is_exhaustive_modulo_zero(),
            "Theorem 4: functionally exhaustive ({}/{})",
            cov.observed,
            cov.total
        );
        assert!(!cov.saw_all_zero, "plain maximal LFSR misses all-0");
    }

    #[test]
    fn theorem4_with_sharing() {
        // d = (1, 2, 0) triggers signal sharing (Example 3's shape).
        let s = GeneralizedStructure::single_cone("t", &[("R1", 2, 1), ("R2", 2, 2), ("R3", 2, 0)]);
        let design = sc_tpg(&s);
        let cov = cone_coverage(&design, 0);
        assert!(cov.is_exhaustive_modulo_zero(), "{cov:?}");
    }

    #[test]
    fn theorem7_multi_cone() {
        // Two 3-bit registers, two cones with different skews (Example 5
        // shape scaled down).
        let regs = vec![
            TpgRegister {
                name: "R1".into(),
                width: 3,
            },
            TpgRegister {
                name: "R2".into(),
                width: 3,
            },
        ];
        let cones = vec![
            Cone {
                name: "O1".into(),
                deps: vec![
                    ConeDep {
                        register: 0,
                        seq_len: 2,
                    },
                    ConeDep {
                        register: 1,
                        seq_len: 0,
                    },
                ],
            },
            Cone {
                name: "O2".into(),
                deps: vec![
                    ConeDep {
                        register: 0,
                        seq_len: 1,
                    },
                    ConeDep {
                        register: 1,
                        seq_len: 0,
                    },
                ],
            },
        ];
        let s = GeneralizedStructure::new("t", regs, cones).unwrap();
        let design = mc_tpg(&s);
        for cov in verify_exhaustive(&design) {
            assert!(
                cov.is_exhaustive_modulo_zero(),
                "cone {} only covered {}/{}",
                cov.cone,
                cov.observed,
                cov.total
            );
        }
    }

    #[test]
    fn extreme_skew_design_is_still_exhaustive() {
        // Example 4's shape at small width: sharing limited by width.
        let s = GeneralizedStructure::single_cone("t", &[("R1", 3, 0), ("R2", 3, 4)]);
        let design = sc_tpg(&s);
        let cov = cone_coverage(&design, 0);
        assert!(cov.is_exhaustive_modulo_zero(), "{cov:?}");
    }

    #[test]
    fn undersized_lfsr_would_not_be_exhaustive() {
        // Sanity check of the verifier itself: a cone that observes only a
        // subset of LFSR stages of a *wider* structure... simulate by
        // checking a cone whose width equals the degree: all-zero must be
        // missing, everything else present.
        let s = GeneralizedStructure::single_cone("t", &[("R", 6, 0)]);
        let design = sc_tpg(&s);
        let cov = cone_coverage(&design, 0);
        assert_eq!(cov.observed, cov.total - 1);
        assert!(!cov.saw_all_zero);
    }
}
