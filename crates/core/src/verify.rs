//! Brute-force verification that a TPG design applies a functionally
//! exhaustive test set (the claims of Theorems 4, 5 and 7).
//!
//! For every cone, the simulator is run through the full LFSR period and
//! the pattern the cone observes each cycle is collected; functional
//! exhaustiveness means every one of the `2^W` combinations of the cone's
//! depended-on register bits appears (the all-0 pattern is reported
//! separately — a plain maximal LFSR never produces an all-0 window as
//! wide as its degree; the paper defers that single pattern to a complete
//! LFSR, ref \[15\]).

use crate::tpg::{TpgDesign, TpgSimulator};
use bibs_faultsim::par::default_jobs;
use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A violated TPG precondition, as reported by [`precheck`].
///
/// The variants split into **polynomial** problems
/// ([`is_polynomial_problem`](PrecheckError::is_polynomial_problem) — the
/// LFSR sequence itself is wrong) and **placement** problems (the flip-flop
/// string / cone windows are wrong); `bibs-lint` maps the former to its
/// B023 diagnostic and the latter to B024.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrecheckError {
    /// No characteristic polynomial is configured.
    NoPolynomial {
        /// The LFSR degree lacking a polynomial.
        degree: u32,
    },
    /// The polynomial's degree differs from the LFSR degree.
    DegreeMismatch {
        /// The polynomial's degree.
        poly_degree: u32,
        /// The design's LFSR degree.
        lfsr_degree: u32,
    },
    /// The polynomial is not primitive, so the LFSR period falls short of
    /// `2^M − 1` and exhaustiveness claims are void.
    NotPrimitive {
        /// The polynomial, rendered (e.g. `x^6 + x^2 + 1`).
        polynomial: String,
        /// Its degree.
        degree: u32,
    },
    /// A register's cells are not mapped to consecutive TPG stage labels.
    NonConsecutiveCells {
        /// Register index.
        register: usize,
        /// Register name.
        name: String,
        /// Cell whose label breaks the run.
        cell: usize,
        /// The label of cell `cell − 1`.
        prev_label: i64,
        /// The label of cell `cell`.
        label: i64,
    },
    /// A TPG flip-flop carries a label before the first LFSR stage — no
    /// signal source exists for it.
    SlotBeforeLfsr {
        /// The offending slot label.
        label: i64,
        /// The first LFSR stage label.
        first: i64,
    },
    /// A cone observes more bits than the LFSR degree, making exhaustive
    /// coverage impossible.
    ConeTooWide {
        /// Cone index.
        cone: usize,
        /// Cone name.
        name: String,
        /// The cone's observed width.
        width: u32,
        /// The LFSR degree.
        degree: u32,
    },
    /// A cone observes a sequence offset before the first LFSR stage.
    OffsetBeforeLfsr {
        /// Cone index.
        cone: usize,
        /// Cone name.
        name: String,
        /// The offending offset label.
        offset: i64,
        /// The first LFSR stage label.
        first: i64,
    },
    /// A cone observes the same sequence offset twice: two of its bits are
    /// always equal, so it can never see all `2^W` patterns.
    DuplicateOffset {
        /// Cone index.
        cone: usize,
        /// Cone name.
        name: String,
        /// The duplicated offset label.
        offset: i64,
    },
}

impl PrecheckError {
    /// Whether this is a polynomial problem (vs a placement problem).
    pub fn is_polynomial_problem(&self) -> bool {
        matches!(
            self,
            PrecheckError::NoPolynomial { .. }
                | PrecheckError::DegreeMismatch { .. }
                | PrecheckError::NotPrimitive { .. }
        )
    }
}

impl std::fmt::Display for PrecheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PrecheckError::NoPolynomial { degree } => write!(
                f,
                "no characteristic polynomial configured for degree {degree}"
            ),
            PrecheckError::DegreeMismatch {
                poly_degree,
                lfsr_degree,
            } => write!(
                f,
                "polynomial degree {poly_degree} does not match LFSR degree {lfsr_degree}"
            ),
            PrecheckError::NotPrimitive { polynomial, degree } => write!(
                f,
                "polynomial {polynomial} of degree {degree} is not primitive; \
                 the LFSR period falls short of 2^{degree} - 1"
            ),
            PrecheckError::NonConsecutiveCells {
                register,
                name,
                cell,
                prev_label,
                label,
            } => write!(
                f,
                "register {register} ({name}) has non-consecutive cell labels: \
                 cell {} is L{prev_label}, cell {cell} is L{label}",
                cell - 1
            ),
            PrecheckError::SlotBeforeLfsr { label, first } => write!(
                f,
                "slot label L{label} precedes the first LFSR stage L{first}"
            ),
            PrecheckError::ConeTooWide {
                cone,
                name,
                width,
                degree,
            } => write!(
                f,
                "cone {cone} ({name}) observes {width} bits but the LFSR degree \
                 is only {degree}; exhaustive coverage is impossible"
            ),
            PrecheckError::OffsetBeforeLfsr {
                cone,
                name,
                offset,
                first,
            } => write!(
                f,
                "cone {cone} ({name}) observes offset L{offset} before the \
                 first LFSR stage L{first}"
            ),
            PrecheckError::DuplicateOffset { cone, name, offset } => write!(
                f,
                "cone {cone} ({name}) observes the sequence offset L{offset} \
                 twice; the corresponding bits are always equal"
            ),
        }
    }
}

impl std::error::Error for PrecheckError {}

/// Statically checks the structural preconditions a [`TpgDesign`] must
/// satisfy before its exhaustiveness claims (Theorems 4/7) can be trusted —
/// the checks `bibs-lint`'s TPG passes build on, available here so the
/// simulation entry points can fail fast with a message instead of
/// panicking or silently measuring a broken design.
///
/// Checked conditions:
///
/// 1. a characteristic polynomial exists, its degree matches the LFSR
///    degree, and it is primitive (maximal period `2^M − 1`);
/// 2. each register's cell labels are consecutive (the TDM maps registers
///    onto consecutive TPG stages);
/// 3. every slot label and cone offset is at or after the first LFSR
///    stage label (earlier labels have no signal source);
/// 4. within each cone the observed sequence offsets are pairwise
///    distinct (a duplicate makes two observed bits always equal, so the
///    cone can never be exhaustively exercised);
/// 5. each cone's input width is at most the LFSR degree `M`.
///
/// # Errors
///
/// Returns the first violated condition as a [`PrecheckError`].
pub fn precheck(design: &TpgDesign) -> Result<(), PrecheckError> {
    let degree = design.lfsr_degree();
    let Some(poly) = design.polynomial() else {
        return Err(PrecheckError::NoPolynomial { degree });
    };
    if poly.degree() != degree {
        return Err(PrecheckError::DegreeMismatch {
            poly_degree: poly.degree(),
            lfsr_degree: degree,
        });
    }
    if !poly.is_primitive() {
        return Err(PrecheckError::NotPrimitive {
            polynomial: poly.to_string(),
            degree,
        });
    }
    let first = design.first_lfsr_label();
    let s = design.structure();
    for (i, reg) in s.registers.iter().enumerate() {
        for j in 1..reg.width as usize {
            let prev = design.cell_label(i, j - 1);
            let cur = design.cell_label(i, j);
            if cur != prev + 1 {
                return Err(PrecheckError::NonConsecutiveCells {
                    register: i,
                    name: reg.name.clone(),
                    cell: j,
                    prev_label: prev,
                    label: cur,
                });
            }
        }
    }
    for slot in design.slots() {
        if slot.label < first {
            return Err(PrecheckError::SlotBeforeLfsr {
                label: slot.label,
                first,
            });
        }
    }
    for (x, cone) in s.cones.iter().enumerate() {
        let width = cone.input_width(&s.registers);
        if width > degree {
            return Err(PrecheckError::ConeTooWide {
                cone: x,
                name: cone.name.clone(),
                width,
                degree,
            });
        }
        let mut offsets = design.cone_offsets(x);
        if let Some(&o) = offsets.iter().find(|&&o| o < first) {
            return Err(PrecheckError::OffsetBeforeLfsr {
                cone: x,
                name: cone.name.clone(),
                offset: o,
                first,
            });
        }
        offsets.sort_unstable();
        if let Some(w) = offsets.windows(2).find(|w| w[0] == w[1]) {
            return Err(PrecheckError::DuplicateOffset {
                cone: x,
                name: cone.name.clone(),
                offset: w[0],
            });
        }
    }
    Ok(())
}

/// Coverage of one cone under a TPG design.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConeCoverage {
    /// Cone index.
    pub cone: usize,
    /// The cone's input width `W`.
    pub width: u32,
    /// Number of distinct patterns observed over the LFSR period.
    pub observed: u64,
    /// The full pattern count `2^W`.
    pub total: u64,
    /// Whether the all-0 pattern was observed.
    pub saw_all_zero: bool,
}

impl ConeCoverage {
    /// Whether the cone is functionally exhaustively tested, counting the
    /// all-0 pattern as supplied by a complete LFSR when missing.
    pub fn is_exhaustive_modulo_zero(&self) -> bool {
        self.observed == self.total || (!self.saw_all_zero && self.observed == self.total - 1)
    }

    /// Whether the cone saw strictly every pattern, including all-0.
    pub fn is_fully_exhaustive(&self) -> bool {
        self.observed == self.total
    }
}

/// Measures the pattern coverage of cone `cone` by simulating the whole
/// LFSR period.
///
/// # Panics
///
/// Panics if the cone's input width exceeds 24 or the LFSR degree exceeds
/// 24 (brute force would be unreasonable), or if the design fails
/// [`precheck`] (e.g. no polynomial is available for the degree).
pub fn cone_coverage(design: &TpgDesign, cone: usize) -> ConeCoverage {
    if let Err(e) = precheck(design) {
        panic!("TPG design failed precheck: {e}");
    }
    let width = design.structure().cones[cone].input_width(&design.structure().registers);
    assert!(width <= 24, "brute-force coverage capped at 24-bit cones");
    let degree = design.lfsr_degree();
    assert!(degree <= 24, "brute-force coverage capped at degree 24");
    let period: u64 = (1u64 << degree) - 1;
    let mut sim = TpgSimulator::new(design);
    // Warm the shift-register extension so the observed windows are
    // steady-state (the extension starts zero-filled).
    for _ in 0..design.flip_flop_count() as u64 + design.structure().sequential_depth() as u64 {
        sim.step();
    }
    let mut seen: HashSet<u64> = HashSet::new();
    for _ in 0..period {
        let view = sim.cone_view(cone);
        seen.insert(view.to_u64());
        sim.step();
    }
    ConeCoverage {
        cone,
        width,
        observed: seen.len() as u64,
        total: 1u64 << width,
        saw_all_zero: seen.contains(&0),
    }
}

/// Verifies every cone of the design; returns the coverages in cone
/// order.
///
/// Cones are independent, so they are verified on
/// [`bibs_faultsim::par::default_jobs`] worker threads (the `BIBS_JOBS`
/// knob applies); use [`verify_exhaustive_jobs`] for an explicit count.
pub fn verify_exhaustive(design: &TpgDesign) -> Vec<ConeCoverage> {
    verify_exhaustive_jobs(design, default_jobs())
}

/// [`verify_exhaustive_jobs`] recorded as a `"verify"` telemetry span:
/// the span's wall time plus one `cones_verified` count per cone. The
/// counters are identical for any `jobs` (cone verification is pure), so
/// the exported telemetry stays thread-count-independent.
pub fn verify_exhaustive_traced(
    design: &TpgDesign,
    jobs: usize,
    rec: &mut bibs_obs::Recorder,
) -> Vec<ConeCoverage> {
    let span = rec.enter("verify");
    let coverages = verify_exhaustive_jobs(design, jobs);
    rec.add(bibs_obs::CounterId::ConesVerified, coverages.len() as u64);
    rec.exit(span);
    coverages
}

/// [`verify_exhaustive`] with an explicit worker-thread count. The result
/// is identical (and in cone order) for any `jobs` — each cone's coverage
/// is a pure function of the design.
pub fn verify_exhaustive_jobs(design: &TpgDesign, jobs: usize) -> Vec<ConeCoverage> {
    let n = design.structure().cones.len();
    let jobs = jobs.clamp(1, n.max(1));
    if jobs <= 1 || n <= 1 {
        return (0..n).map(|x| cone_coverage(design, x)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let cursor = &cursor;
    let collected: Vec<Vec<(usize, ConeCoverage)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..jobs)
            .map(|_| {
                s.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let x = cursor.fetch_add(1, Ordering::Relaxed);
                        if x >= n {
                            break;
                        }
                        out.push((x, cone_coverage(design, x)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("cone-verify worker panicked"))
            .collect()
    });
    let mut results: Vec<Option<ConeCoverage>> = vec![None; n];
    for (x, cov) in collected.into_iter().flatten() {
        results[x] = Some(cov);
    }
    results
        .into_iter()
        .map(|c| c.expect("every cone verified exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structure::{Cone, ConeDep, GeneralizedStructure, TpgRegister};
    use crate::tpg::{mc_tpg, sc_tpg};

    #[test]
    fn theorem4_small_single_cone() {
        // 2-bit registers with d = (2, 1, 0): degree 6, cone width 6.
        let s = GeneralizedStructure::single_cone("t", &[("R1", 2, 2), ("R2", 2, 1), ("R3", 2, 0)]);
        let design = sc_tpg(&s);
        assert_eq!(design.lfsr_degree(), 6);
        let cov = cone_coverage(&design, 0);
        assert!(
            cov.is_exhaustive_modulo_zero(),
            "Theorem 4: functionally exhaustive ({}/{})",
            cov.observed,
            cov.total
        );
        assert!(!cov.saw_all_zero, "plain maximal LFSR misses all-0");
    }

    #[test]
    fn theorem4_with_sharing() {
        // d = (1, 2, 0) triggers signal sharing (Example 3's shape).
        let s = GeneralizedStructure::single_cone("t", &[("R1", 2, 1), ("R2", 2, 2), ("R3", 2, 0)]);
        let design = sc_tpg(&s);
        let cov = cone_coverage(&design, 0);
        assert!(cov.is_exhaustive_modulo_zero(), "{cov:?}");
    }

    #[test]
    fn theorem7_multi_cone() {
        // Two 3-bit registers, two cones with different skews (Example 5
        // shape scaled down).
        let regs = vec![
            TpgRegister {
                name: "R1".into(),
                width: 3,
            },
            TpgRegister {
                name: "R2".into(),
                width: 3,
            },
        ];
        let cones = vec![
            Cone {
                name: "O1".into(),
                deps: vec![
                    ConeDep {
                        register: 0,
                        seq_len: 2,
                    },
                    ConeDep {
                        register: 1,
                        seq_len: 0,
                    },
                ],
            },
            Cone {
                name: "O2".into(),
                deps: vec![
                    ConeDep {
                        register: 0,
                        seq_len: 1,
                    },
                    ConeDep {
                        register: 1,
                        seq_len: 0,
                    },
                ],
            },
        ];
        let s = GeneralizedStructure::new("t", regs, cones).unwrap();
        let design = mc_tpg(&s);
        for cov in verify_exhaustive(&design) {
            assert!(
                cov.is_exhaustive_modulo_zero(),
                "cone {} only covered {}/{}",
                cov.cone,
                cov.observed,
                cov.total
            );
        }
    }

    #[test]
    fn extreme_skew_design_is_still_exhaustive() {
        // Example 4's shape at small width: sharing limited by width.
        let s = GeneralizedStructure::single_cone("t", &[("R1", 3, 0), ("R2", 3, 4)]);
        let design = sc_tpg(&s);
        let cov = cone_coverage(&design, 0);
        assert!(cov.is_exhaustive_modulo_zero(), "{cov:?}");
    }

    #[test]
    fn precheck_accepts_constructed_designs_and_rejects_doctored_ones() {
        use bibs_lfsr::poly::{primitive_polynomial, Polynomial};
        let s = GeneralizedStructure::single_cone("t", &[("R1", 2, 2), ("R2", 2, 1), ("R3", 2, 0)]);
        let design = sc_tpg(&s);
        precheck(&design).expect("construction satisfies its own conditions");
        // Wrong-degree polynomial. A cone wider than the shrunk degree is
        // also illegal, but the degree mismatch is detected first.
        let p4 = primitive_polynomial(4).unwrap();
        let err = precheck(&design.with_lfsr(4, p4)).unwrap_err();
        assert!(
            matches!(err, PrecheckError::ConeTooWide { .. }) || err.is_polynomial_problem(),
            "{err}"
        );
        // Non-primitive polynomial of the right degree:
        // (x^3+x+1)^2 = x^6+x^2+1 over GF(2).
        let nonprim = Polynomial::from_exponents(&[6, 2, 0]);
        assert!(!nonprim.is_primitive());
        let err = precheck(&design.with_lfsr(6, nonprim)).unwrap_err();
        assert!(matches!(err, PrecheckError::NotPrimitive { .. }), "{err}");
        assert!(err.is_polynomial_problem());
    }

    #[test]
    fn undersized_lfsr_would_not_be_exhaustive() {
        // Sanity check of the verifier itself: a cone that observes only a
        // subset of LFSR stages of a *wider* structure... simulate by
        // checking a cone whose width equals the degree: all-zero must be
        // missing, everything else present.
        let s = GeneralizedStructure::single_cone("t", &[("R", 6, 0)]);
        let design = sc_tpg(&s);
        let cov = cone_coverage(&design, 0);
        assert_eq!(cov.observed, cov.total - 1);
        assert!(!cov.saw_all_zero);
    }
}
