//! k-pattern detectability and k-step functional testability (Section 2).
//!
//! A fault is *k-pattern detectable* if some input sequence of length ≤ k
//! detects it; an acyclic circuit is *k-step functionally testable* if
//! every detectable fault (that does not modify the circuit's sequential
//! behaviour) has a detecting sequence of length k. Balanced circuits are
//! 1-step functionally testable (ref \[8\]); imbalance forces longer
//! sequences — the circuit of Figure 1 is 2-step because its two paths'
//! sequential lengths differ by one.

use bibs_rtl::Circuit;

/// The k for which `circuit` is k-step functionally testable, derived from
/// its worst path-length imbalance: `k = 1 + max (longest − shortest)`
/// over all vertex pairs.
///
/// * Balanced circuits give `k = 1` (the BALLAST result the BIBS TDM is
///   built on);
/// * Figure 1 gives `k = 2`;
/// * cyclic circuits give `None` (no bound from structure alone).
pub fn k_step(circuit: &Circuit) -> Option<u32> {
    let report = circuit.balance_report();
    if !report.acyclic {
        return None;
    }
    let worst = report
        .imbalances
        .iter()
        .map(|im| im.max - im.min)
        .max()
        .unwrap_or(0);
    Some(worst + 1)
}

/// Whether the circuit is 1-step functionally testable (i.e. balanced).
pub fn is_one_step(circuit: &Circuit) -> bool {
    k_step(circuit) == Some(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bibs_datapath::examples::{figure1, figure2, figure3};
    use bibs_datapath::filters::{c5a2m, fir_transposed};

    #[test]
    fn figure1_is_two_step() {
        assert_eq!(k_step(&figure1()), Some(2));
        assert!(!is_one_step(&figure1()));
    }

    #[test]
    fn figure2_is_one_step() {
        assert_eq!(k_step(&figure2()), Some(1));
        assert!(is_one_step(&figure2()));
    }

    #[test]
    fn cyclic_circuit_has_no_bound() {
        assert_eq!(k_step(&figure3()), None);
    }

    #[test]
    fn datapaths_are_one_step() {
        assert!(is_one_step(&c5a2m()));
    }

    #[test]
    fn deep_fir_needs_long_sequences() {
        // A transposed FIR with t taps has paths skewed by t-1 registers.
        let fir = fir_transposed(5);
        assert_eq!(k_step(&fir), Some(5));
    }
}
