//! Reconfigurable TPGs (Figure 20 of the paper).
//!
//! For a multi-cone kernel, a single MC_TPG LFSR must span the worst-case
//! logical window, which can make the test time `2^degree` much larger
//! than any individual cone needs (Example 6: an 11-stage LFSR versus two
//! cones of 8 inputs each). A **reconfigurable TPG** tests one cone per
//! session, reconfiguring the LFSR between sessions via a control line, at
//! the cost of extra steering hardware: "Although a reconfigurable TPG may
//! reduce the test time ... the area overhead and performance degradation
//! of such design are usually high."

use crate::structure::{Cone, GeneralizedStructure};
use crate::tpg::{mc_tpg, TpgDesign};

/// A TPG with one LFSR configuration per cone, selected by control lines.
#[derive(Debug, Clone)]
pub struct ReconfigurableTpg {
    configs: Vec<TpgDesign>,
}

impl ReconfigurableTpg {
    /// Designs one configuration per cone of `structure`: each session's
    /// TPG is the MC_TPG of the sub-structure containing just that cone
    /// (and the registers it depends on).
    pub fn new(structure: &GeneralizedStructure) -> Self {
        let configs = (0..structure.cones.len())
            .map(|x| mc_tpg(&cone_substructure(structure, x)))
            .collect();
        ReconfigurableTpg { configs }
    }

    /// The per-cone configurations.
    pub fn configurations(&self) -> &[TpgDesign] {
        &self.configs
    }

    /// Number of test sessions (= cones).
    pub fn session_count(&self) -> usize {
        self.configs.len()
    }

    /// Total test time: one functionally exhaustive session per cone.
    pub fn test_time(&self) -> u128 {
        self.configs.iter().map(TpgDesign::test_time).sum()
    }

    /// The widest LFSR over all configurations (sizing the shared
    /// feedback network).
    pub fn max_degree(&self) -> u32 {
        self.configs
            .iter()
            .map(TpgDesign::lfsr_degree)
            .max()
            .unwrap_or(0)
    }

    /// A simple steering-hardware estimate: one 2-way mux per flip-flop
    /// that participates in more than one configuration's feedback, plus
    /// `ceil(log2(sessions))` control lines. Returned as a mux count.
    pub fn steering_mux_count(&self) -> usize {
        if self.configs.len() <= 1 {
            return 0;
        }
        // Every stage of every non-first configuration may need its input
        // re-steered.
        self.configs
            .iter()
            .skip(1)
            .map(|c| c.lfsr_degree() as usize)
            .sum()
    }

    /// Whether reconfiguration actually pays off against the single
    /// monolithic design for this structure.
    pub fn beats(&self, monolithic: &TpgDesign) -> bool {
        self.test_time() < monolithic.test_time()
    }
}

/// The sub-structure seen by one cone: only the registers it depends on,
/// in their original relative order, with that single cone.
fn cone_substructure(structure: &GeneralizedStructure, cone: usize) -> GeneralizedStructure {
    let deps = &structure.cones[cone].deps;
    let mut reg_map = Vec::new(); // old index per new index
    for dep in deps {
        if !reg_map.contains(&dep.register) {
            reg_map.push(dep.register);
        }
    }
    reg_map.sort_unstable();
    let registers = reg_map
        .iter()
        .map(|&old| structure.registers[old].clone())
        .collect();
    let new_deps = deps
        .iter()
        .map(|dep| crate::structure::ConeDep {
            register: reg_map
                .iter()
                .position(|&o| o == dep.register)
                .expect("mapped"),
            seq_len: dep.seq_len,
        })
        .collect();
    let cone = Cone {
        name: structure.cones[cone].name.clone(),
        deps: new_deps,
    };
    GeneralizedStructure::new(
        format!("{}:{}", structure.name, cone.name),
        registers,
        vec![cone],
    )
    .expect("sub-structure inherits validity")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structure::{Cone, ConeDep, TpgRegister};
    use crate::verify::verify_exhaustive;

    /// Figure 19 / Example 6: two 4-bit registers, cones with d = (2,0)
    /// and (0,1).
    fn example6() -> GeneralizedStructure {
        let regs = vec![
            TpgRegister {
                name: "R1".into(),
                width: 4,
            },
            TpgRegister {
                name: "R2".into(),
                width: 4,
            },
        ];
        let cones = vec![
            Cone {
                name: "O1".into(),
                deps: vec![
                    ConeDep {
                        register: 0,
                        seq_len: 2,
                    },
                    ConeDep {
                        register: 1,
                        seq_len: 0,
                    },
                ],
            },
            Cone {
                name: "O2".into(),
                deps: vec![
                    ConeDep {
                        register: 0,
                        seq_len: 0,
                    },
                    ConeDep {
                        register: 1,
                        seq_len: 1,
                    },
                ],
            },
        ];
        GeneralizedStructure::new("ex6", regs, cones).unwrap()
    }

    #[test]
    fn example6_reconfigurable_beats_monolithic() {
        // Paper: testing the 2 cones separately takes ≈ 2·2^8, versus 2^11
        // for the monolithic TPG.
        let s = example6();
        let mono = mc_tpg(&s);
        assert_eq!(mono.lfsr_degree(), 11);
        let reconf = ReconfigurableTpg::new(&s);
        assert_eq!(reconf.session_count(), 2);
        assert_eq!(reconf.max_degree(), 8);
        assert!(reconf.test_time() < (1 << 10), "≈ 2·2^8 sessions");
        assert!(reconf.beats(&mono));
        assert!(reconf.steering_mux_count() > 0, "the saving is not free");
    }

    #[test]
    fn each_configuration_is_exhaustive_for_its_cone() {
        // Scaled-down Example 6 so brute force stays fast.
        let regs = vec![
            TpgRegister {
                name: "R1".into(),
                width: 2,
            },
            TpgRegister {
                name: "R2".into(),
                width: 2,
            },
        ];
        let cones = vec![
            Cone {
                name: "O1".into(),
                deps: vec![
                    ConeDep {
                        register: 0,
                        seq_len: 2,
                    },
                    ConeDep {
                        register: 1,
                        seq_len: 0,
                    },
                ],
            },
            Cone {
                name: "O2".into(),
                deps: vec![
                    ConeDep {
                        register: 0,
                        seq_len: 0,
                    },
                    ConeDep {
                        register: 1,
                        seq_len: 1,
                    },
                ],
            },
        ];
        let s = GeneralizedStructure::new("ex6s", regs, cones).unwrap();
        let reconf = ReconfigurableTpg::new(&s);
        for config in reconf.configurations() {
            for cov in verify_exhaustive(config) {
                assert!(cov.is_exhaustive_modulo_zero(), "{cov:?}");
            }
        }
    }

    #[test]
    fn single_cone_structures_gain_nothing() {
        let s = GeneralizedStructure::single_cone("sc", &[("R", 4, 0)]);
        let mono = mc_tpg(&s);
        let reconf = ReconfigurableTpg::new(&s);
        assert_eq!(reconf.session_count(), 1);
        assert!(!reconf.beats(&mono));
        assert_eq!(reconf.steering_mux_count(), 0);
    }
}
