//! Whole-session BIST simulation: TPG → kernel → signature.
//!
//! The authors' BITS system computes each session's **golden signature**
//! (the fault-free MISR contents after the TPG has run), which the test
//! controller compares against on chip. This module runs that computation
//! for a kernel: the analytical TPG drives the kernel's combinational
//! equivalent (sound for balanced kernels by BALLAST), the output
//! register's MISR absorbs every response, and the final signature is
//! returned. A fault-injection variant reports whether a given stuck-at
//! fault escapes the signature — measuring the MISR-aliasing-adjusted
//! coverage the paper's methodology ultimately delivers.

use crate::structure::GeneralizedStructure;
use crate::tpg::TpgDesign;
use bibs_faultsim::fault::Fault;
use bibs_faultsim::seq::SequentialFaultSim;
use bibs_faultsim::source::PatternSource;
use bibs_lfsr::bitvec::BitVec;
use bibs_lfsr::misr::Misr;
use bibs_lfsr::poly::primitive_polynomial;
use bibs_netlist::sim::PatternSim;
use bibs_netlist::Netlist;

/// The result of one fault-free session.
#[derive(Debug, Clone)]
pub struct GoldenSession {
    /// The MISR contents after the full session.
    pub signature: BitVec,
    /// Cycles executed (`2^M − 1 + d`).
    pub cycles: u128,
}

/// Generates the aligned input-pattern stream the kernel's combinational
/// equivalent sees over one full session, **including the all-zero
/// pattern** appended at the end — the paper's complete-LFSR remedy (ref
/// \[15\]) for the one pattern a plain maximal LFSR cannot produce.
///
/// Only meaningful for single-cone kernels, where "the pattern the kernel
/// sees" is unambiguous: it is the cone's time-aligned view of the input
/// registers (balance guarantees alignment is well-defined).
///
/// This is a materializing collector over
/// [`crate::source::MinTpgSource`] — fault-simulation flows that don't
/// need the whole stream in memory should drive the source directly
/// through `BlockSim::run_source`.
///
/// # Panics
///
/// Panics if the structure has more than one cone or the LFSR degree
/// exceeds 20 (the stream would be unreasonable to materialize).
pub fn session_patterns(design: &TpgDesign, structure: &GeneralizedStructure) -> Vec<Vec<bool>> {
    assert!(
        design.lfsr_degree() <= 20,
        "session stream capped at degree 20"
    );
    let mut source = crate::source::MinTpgSource::new(design, structure)
        .expect("session streams are defined for single-cone kernels");
    let width = structure.total_width() as usize;
    let mut out = Vec::with_capacity(1usize << design.lfsr_degree());
    while let Some(block) = source.next_block(width) {
        for lane in 0..block.lanes {
            out.push(block.pattern(lane));
        }
    }
    out
}

/// Runs a fault-free session over the kernel's combinational equivalent
/// and returns the golden signature.
///
/// `comb` must be the kernel's combinational equivalent with inputs in
/// cone-dependency order (the order `elaborate_kernel` produces when the
/// kernel's input edges match the structure's register order).
///
/// # Panics
///
/// Panics if widths mismatch or the degree exceeds 20.
pub fn golden_signature(
    design: &TpgDesign,
    structure: &GeneralizedStructure,
    comb: &Netlist,
) -> GoldenSession {
    let patterns = session_patterns(design, structure);
    assert_eq!(
        comb.input_width() as u32,
        structure.total_width(),
        "kernel input width must match the structure"
    );
    let sig_poly = primitive_polynomial(comb.output_width() as u32)
        .expect("signature register width within table");
    let mut misr = Misr::new(&sig_poly);
    let mut sim = PatternSim::new(comb);
    for pattern in &patterns {
        let words: Vec<u64> = pattern.iter().map(|&b| if b { !0 } else { 0 }).collect();
        sim.set_inputs(&words);
        sim.eval_comb();
        let outs: Vec<bool> = comb
            .outputs()
            .iter()
            .map(|&o| sim.value(o) & 1 == 1)
            .collect();
        misr.absorb(&BitVec::from_bits(&outs));
    }
    GoldenSession {
        // BitVec form is the primary signature API: correct for response
        // buses wider than 64 bits, where the packed `signature_u64`
        // accessor refuses to truncate.
        signature: misr.signature_bits(),
        cycles: patterns.len() as u128 + structure.sequential_depth() as u128,
    }
}

/// [`golden_signature`] recorded under a `"session"` telemetry span: the
/// span's wall time plus one `misr_cycles` count per session clock cycle
/// (`2^M − 1 + d` plus the appended all-zero pattern) and one
/// `sessions_scheduled` tick.
pub fn golden_signature_traced(
    design: &TpgDesign,
    structure: &GeneralizedStructure,
    comb: &Netlist,
    rec: &mut bibs_obs::Recorder,
) -> GoldenSession {
    let span = rec.enter("session");
    let golden = golden_signature(design, structure, comb);
    rec.add(bibs_obs::CounterId::MisrCycles, golden.cycles as u64);
    rec.add(bibs_obs::CounterId::SessionsScheduled, 1);
    rec.exit(span);
    golden
}

/// Whether the session's signature exposes `fault`: runs the same stream
/// through the faulty kernel and compares signatures (so MISR aliasing, if
/// it strikes, counts as an escape).
pub fn session_detects(
    design: &TpgDesign,
    structure: &GeneralizedStructure,
    comb: &Netlist,
    fault: Fault,
) -> bool {
    session_detects_batch(design, structure, comb, &[fault], 1)[0]
}

/// Signature-detection verdicts for a whole fault list, aligned with
/// `faults`, computed on `jobs` worker threads (0 and 1 both mean
/// inline; pass [`bibs_faultsim::par::default_jobs`] to honor the
/// `BIBS_JOBS` knob).
///
/// The golden signature and the pattern stream are computed once and
/// shared; each fault's verdict is a pure function of
/// `(design, kernel, fault)`, so the result is identical for any `jobs`.
pub fn session_detects_batch(
    design: &TpgDesign,
    structure: &GeneralizedStructure,
    comb: &Netlist,
    faults: &[Fault],
    jobs: usize,
) -> Vec<bool> {
    let golden = golden_signature(design, structure, comb);
    let patterns = session_patterns(design, structure);
    let sig_poly = primitive_polynomial(comb.output_width() as u32)
        .expect("signature register width within table");
    let n = faults.len();

    // Replays the stream through the faulty machine and compresses.
    let verdict = |fsim: &SequentialFaultSim, fault: Fault| -> bool {
        let mut misr = Misr::new(&sig_poly);
        for pattern in &patterns {
            let faulty_outs = fsim.faulty_output_vector(pattern, fault);
            misr.absorb(&BitVec::from_bits(&faulty_outs));
        }
        misr.signature() != &golden.signature
    };

    // One compiled simulator serves every worker: `SequentialFaultSim` is
    // `Sync` (all methods take `&self`), so the netlist is compiled to an
    // `EvalProgram` exactly once per batch instead of once per thread.
    let fsim = SequentialFaultSim::new(comb);
    let jobs = jobs.clamp(1, n.max(1));
    if jobs <= 1 {
        return faults.iter().map(|&f| verdict(&fsim, f)).collect();
    }
    let cursor = std::sync::atomic::AtomicUsize::new(0);
    let cursor = &cursor;
    let verdict = &verdict;
    let fsim = &fsim;
    let collected: Vec<Vec<(usize, bool)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..jobs)
            .map(|_| {
                s.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        out.push((i, verdict(fsim, faults[i])));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("session-detect worker panicked"))
            .collect()
    });
    let mut verdicts = vec![false; n];
    for (i, v) in collected.into_iter().flatten() {
        verdicts[i] = v;
    }
    verdicts
}

#[cfg(test)]
mod tests {
    use super::*;
    use bibs_faultsim::fault::FaultUniverse;
    use bibs_netlist::builder::NetlistBuilder;

    fn adder_kernel() -> (GeneralizedStructure, TpgDesign, Netlist) {
        // Two 3-bit registers at equal depth feeding an adder.
        let s = GeneralizedStructure::single_cone("add", &[("Ra", 3, 0), ("Rb", 3, 0)]);
        let design = crate::tpg::sc_tpg(&s);
        let mut b = NetlistBuilder::new("add3");
        let a = b.input_word("Ra", 3);
        let c = b.input_word("Rb", 3);
        let (sum, co) = b.ripple_carry_adder(&a, &c, None);
        b.output_word("s", &sum);
        b.output("co", co);
        let comb = b.finish().unwrap();
        (s, design, comb)
    }

    #[test]
    fn golden_signature_is_deterministic_and_full_length() {
        let (s, design, comb) = adder_kernel();
        let g1 = golden_signature(&design, &s, &comb);
        let g2 = golden_signature(&design, &s, &comb);
        assert_eq!(g1.signature, g2.signature);
        assert_eq!(g1.cycles, 1 << 6, "2^M - 1 LFSR patterns plus all-zero");
    }

    #[test]
    fn traced_session_records_cycles_and_matches_untraced() {
        let (s, design, comb) = adder_kernel();
        let mut rec = bibs_obs::Recorder::new("test");
        let traced = golden_signature_traced(&design, &s, &comb, &mut rec);
        let plain = golden_signature(&design, &s, &comb);
        assert_eq!(traced.signature, plain.signature);
        let root = rec.root();
        let session = rec.find(root, "session").expect("session span");
        assert_eq!(
            rec.span_counters(session)
                .get(bibs_obs::CounterId::MisrCycles),
            traced.cycles as u64
        );
        assert_eq!(
            rec.span_counters(session)
                .get(bibs_obs::CounterId::SessionsScheduled),
            1
        );
    }

    #[test]
    fn session_patterns_are_functionally_exhaustive() {
        let (s, design, _) = adder_kernel();
        let patterns = session_patterns(&design, &s);
        let distinct: std::collections::HashSet<Vec<bool>> = patterns.into_iter().collect();
        assert_eq!(distinct.len(), 1 << 6, "every pattern, including zero");
    }

    #[test]
    fn session_exposes_detectable_faults_modulo_misr_aliasing() {
        // Every observable adder fault corrupts some response during the
        // exhaustive session; the 4-bit MISR may alias a few of them away
        // (measured ~5% here; the random-stream estimate is 2^-4) — the
        // escape the paper's signature analysis knowingly accepts.
        let (s, design, comb) = adder_kernel();
        let universe = FaultUniverse::collapsed(&comb);
        let program = bibs_netlist::EvalProgram::compile(&comb).unwrap();
        let (observable, _) = universe.split_by_observability(&program);
        let patterns = session_patterns(&design, &s);
        let fsim = bibs_faultsim::seq::SequentialFaultSim::new(&comb);

        // Fault-free responses per pattern.
        let mut sim = PatternSim::new(&comb);
        let golden_stream: Vec<Vec<bool>> = patterns
            .iter()
            .map(|p| {
                let words: Vec<u64> = p.iter().map(|&b| if b { !0 } else { 0 }).collect();
                sim.set_inputs(&words);
                sim.eval_comb();
                comb.outputs()
                    .iter()
                    .map(|&o| sim.value(o) & 1 == 1)
                    .collect()
            })
            .collect();

        for &fault in &observable {
            let responds = patterns
                .iter()
                .zip(&golden_stream)
                .any(|(p, g)| fsim.faulty_output_vector(p, fault) != *g);
            assert!(responds, "{fault} must corrupt some response");
        }
        // Batch verdicts on worker threads; spot-check the single-fault
        // entry point agrees on the first fault.
        let verdicts = session_detects_batch(&design, &s, &comb, &observable, 4);
        assert_eq!(
            verdicts[0],
            session_detects(&design, &s, &comb, observable[0])
        );
        let aliased = verdicts.iter().filter(|&&v| !v).count();
        let limit = observable.len() / 10;
        assert!(
            aliased <= limit,
            "aliasing escapes {aliased} exceed plausible bound {limit}"
        );
    }
}
