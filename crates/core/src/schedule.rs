//! Test-session scheduling (reference \[13\] of the paper: "Generating a
//! Family of Testable Designs Using the BILBO Methodology").
//!
//! Kernels can share a test session when their BILBO resources do not
//! conflict. A register may generate patterns for several kernels at once,
//! but it cannot simultaneously be a signature analyzer for one kernel and
//! a TPG for another, nor compress the responses of two kernels into one
//! signature. Scheduling is therefore graph coloring on the kernel
//! conflict graph; the paper's Table 2 uses the optimal two-session
//! schedules this produces (e.g. c5a2m: multipliers in session 1, adders
//! in session 2).

use crate::design::{BilboDesign, Kernel};
use std::collections::BTreeSet;

/// One test session: the kernels tested concurrently.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestSession {
    /// Indices into the scheduled kernel list.
    pub kernels: Vec<usize>,
}

/// Whether two kernels conflict (cannot share a session).
pub fn kernels_conflict(design: &BilboDesign, a: &Kernel, b: &Kernel) -> bool {
    let a_in: BTreeSet<_> = a.input_edges.iter().copied().collect();
    let a_out: BTreeSet<_> = a.output_edges.iter().copied().collect();
    let b_in: BTreeSet<_> = b.input_edges.iter().copied().collect();
    let b_out: BTreeSet<_> = b.output_edges.iter().copied().collect();
    // SA/SA conflict: one register cannot compress two kernels' responses.
    if a_out.intersection(&b_out).next().is_some() {
        return true;
    }
    // TPG/SA conflict: only CBILBOs may play both roles at once.
    let tpg_sa = a_in
        .intersection(&b_out)
        .chain(b_in.intersection(&a_out))
        .any(|e| !design.cbilbo.contains(e));
    tpg_sa
}

/// [`schedule`] recorded as a `"schedule"` telemetry span: the span's
/// wall time plus `kernels_scheduled` (input kernels) and
/// `sessions_scheduled` (colors used) counters.
pub fn schedule_traced(
    design: &BilboDesign,
    kernels: &[Kernel],
    rec: &mut bibs_obs::Recorder,
) -> Vec<TestSession> {
    let span = rec.enter("schedule");
    let sessions = schedule(design, kernels);
    rec.add(bibs_obs::CounterId::KernelsScheduled, kernels.len() as u64);
    rec.add(
        bibs_obs::CounterId::SessionsScheduled,
        sessions.len() as u64,
    );
    rec.exit(span);
    sessions
}

/// Schedules kernels into a minimum number of sessions.
///
/// Exact (iterative-deepening backtracking) for up to 20 kernels, greedy
/// largest-degree-first beyond that.
pub fn schedule(design: &BilboDesign, kernels: &[Kernel]) -> Vec<TestSession> {
    let n = kernels.len();
    if n == 0 {
        return Vec::new();
    }
    let mut conflict = vec![vec![false; n]; n];
    for i in 0..n {
        for j in i + 1..n {
            if kernels_conflict(design, &kernels[i], &kernels[j]) {
                conflict[i][j] = true;
                conflict[j][i] = true;
            }
        }
    }
    let colors = if n <= 20 {
        exact_coloring(&conflict)
    } else {
        greedy_coloring(&conflict)
    };
    let sessions = colors.iter().copied().max().unwrap_or(0) + 1;
    let mut out: Vec<TestSession> = (0..sessions)
        .map(|_| TestSession {
            kernels: Vec::new(),
        })
        .collect();
    for (k, &c) in colors.iter().enumerate() {
        out[c].kernels.push(k);
    }
    out
}

fn greedy_coloring(conflict: &[Vec<bool>]) -> Vec<usize> {
    let n = conflict.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(conflict[v].iter().filter(|&&c| c).count()));
    let mut colors = vec![usize::MAX; n];
    for &v in &order {
        let used: BTreeSet<usize> = (0..n)
            .filter(|&u| conflict[v][u] && colors[u] != usize::MAX)
            .map(|u| colors[u])
            .collect();
        colors[v] = (0..).find(|c| !used.contains(c)).expect("some color free");
    }
    colors
}

fn exact_coloring(conflict: &[Vec<bool>]) -> Vec<usize> {
    let n = conflict.len();
    let upper = greedy_coloring(conflict);
    let upper_k = upper.iter().copied().max().unwrap_or(0) + 1;
    for k in 1..upper_k {
        let mut colors = vec![usize::MAX; n];
        if try_color(conflict, &mut colors, 0, k) {
            return colors;
        }
    }
    upper
}

fn try_color(conflict: &[Vec<bool>], colors: &mut Vec<usize>, v: usize, k: usize) -> bool {
    if v == conflict.len() {
        return true;
    }
    // Symmetry breaking: vertex v may use at most (max used so far + 1).
    let max_used = colors[..v]
        .iter()
        .copied()
        .filter(|&c| c != usize::MAX)
        .max();
    let limit = max_used.map_or(0, |m| (m + 1).min(k - 1));
    for c in 0..=limit {
        if (0..v).all(|u| !conflict[v][u] || colors[u] != c) {
            colors[v] = c;
            if try_color(conflict, colors, v + 1, k) {
                return true;
            }
            colors[v] = usize::MAX;
        }
    }
    false
}

/// Test-time accounting over a schedule.
///
/// `kernel_patterns[k]` is the number of patterns kernel `k` needs.
/// Kernels in the same session run concurrently, so a session lasts as
/// long as its longest kernel; sessions run back to back.
pub fn schedule_test_time(sessions: &[TestSession], kernel_patterns: &[u64]) -> u64 {
    sessions
        .iter()
        .map(|s| {
            s.kernels
                .iter()
                .map(|&k| kernel_patterns[k])
                .max()
                .unwrap_or(0)
        })
        .sum()
}

/// Total patterns when kernels are tested one after another with no
/// session sharing (the paper's "to test each kernel in sequence" figure).
pub fn sequential_test_time(kernel_patterns: &[u64]) -> u64 {
    kernel_patterns.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::{kernels, BilboDesign};
    use crate::ka85;
    use bibs_datapath::filters::c5a2m;
    use bibs_rtl::VertexKind;

    #[test]
    fn c5a2m_ka85_schedules_in_two_sessions() {
        let c = c5a2m();
        let design = ka85::select(&c).unwrap();
        let ks: Vec<_> = kernels(&c, &design)
            .into_iter()
            .filter(|k| {
                k.vertices
                    .iter()
                    .any(|&v| c.vertex(v).kind == VertexKind::Logic)
            })
            .collect();
        assert_eq!(ks.len(), 7);
        let sessions = schedule(&design, &ks);
        assert_eq!(sessions.len(), 2, "Table 2 row 2 for [3]");
        // The paper's schedule: 2 multipliers in one session, 5 adders in
        // the other.
        let sizes: Vec<usize> = {
            let mut v: Vec<usize> = sessions.iter().map(|s| s.kernels.len()).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(sizes, vec![2, 5]);
    }

    #[test]
    fn single_kernel_single_session() {
        let c = c5a2m();
        let io: Vec<_> = c
            .register_edges()
            .filter(|&e| {
                let edge = c.edge(e);
                c.vertex(edge.from).kind == VertexKind::Input
                    || c.vertex(edge.to).kind == VertexKind::Output
            })
            .collect();
        let design = BilboDesign::from_bilbos(io);
        let ks = kernels(&c, &design);
        assert_eq!(ks.len(), 1);
        let sessions = schedule(&design, &ks);
        assert_eq!(sessions.len(), 1, "Table 2 row 2 for BIBS");
    }

    #[test]
    fn test_time_accounting_matches_paper_example() {
        // "2,140 and 32 patterns are needed ... each multiplier and adder.
        // In sequence: 4,440. Scheduled in two sessions: 2,172."
        let patterns = vec![2140, 2140, 32, 32, 32, 32, 32];
        let sessions = vec![
            TestSession {
                kernels: vec![0, 1],
            },
            TestSession {
                kernels: vec![2, 3, 4, 5, 6],
            },
        ];
        assert_eq!(sequential_test_time(&patterns), 4440);
        assert_eq!(schedule_test_time(&sessions, &patterns), 2172);
    }

    #[test]
    fn conflicting_sa_forces_separate_sessions() {
        use crate::design::Kernel;
        use std::collections::BTreeSet;
        let e = |i: u32| {
            // Fabricate edge ids through a tiny circuit.
            let mut b = bibs_rtl::CircuitBuilder::new("t");
            let a = b.logic("A");
            let c2 = b.logic("B");
            for k in 0..=i {
                b.register(format!("R{k}"), 1, a, c2);
            }
            let c = b.finish().unwrap();
            let e = c.register_edges().nth(i as usize).unwrap();
            e
        };
        let k1 = Kernel {
            vertices: BTreeSet::new(),
            input_edges: vec![e(0)],
            output_edges: vec![e(1)],
        };
        let k2 = Kernel {
            vertices: BTreeSet::new(),
            input_edges: vec![e(1)], // k1's SA is k2's TPG
            output_edges: vec![e(2)],
        };
        let design = BilboDesign::from_bilbos([e(0), e(1), e(2)]);
        assert!(kernels_conflict(&design, &k1, &k2));
        let sessions = schedule(&design, &[k1, k2]);
        assert_eq!(sessions.len(), 2);
    }

    #[test]
    fn shared_tpg_allows_one_session() {
        use crate::design::Kernel;
        use std::collections::BTreeSet;
        let mut b = bibs_rtl::CircuitBuilder::new("t");
        let a = b.logic("A");
        let c2 = b.logic("B");
        for k in 0..3 {
            b.register(format!("R{k}"), 1, a, c2);
        }
        let c = b.finish().unwrap();
        let edges: Vec<_> = c.register_edges().collect();
        let k1 = Kernel {
            vertices: BTreeSet::new(),
            input_edges: vec![edges[0]],
            output_edges: vec![edges[1]],
        };
        let k2 = Kernel {
            vertices: BTreeSet::new(),
            input_edges: vec![edges[0]], // same TPG, different SA: fine
            output_edges: vec![edges[2]],
        };
        let design = BilboDesign::from_bilbos(edges);
        assert!(!kernels_conflict(&design, &k1, &k2));
        let sessions = schedule(&design, &[k1, k2]);
        assert_eq!(sessions.len(), 1);
    }
}
