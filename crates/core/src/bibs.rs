//! The BIBS TDM: selecting a minimum-cost set of registers to convert to
//! BILBO registers so that every kernel is balanced BISTable.
//!
//! The paper states the selection procedure itself as ongoing work ("a
//! polynomial time algorithm for generating minimal cost BIBS testable
//! design has been implemented for a class of circuits"); this module
//! implements a complete **violation-driven best-first search**:
//!
//! 1. PI- and PO-adjacent registers are always converted (they are the
//!    first TPGs and last SAs of any BILBO-style test);
//! 2. repeatedly find a Definition-1 violation of the current design — a
//!    kernel cycle, a kernel imbalance (URFS), or a TPG/SA port conflict
//!    (Theorem 2) — and branch on the register edges that can repair it;
//! 3. explore candidate cut sets in order of increasing flip-flop cost, so
//!    the first valid design found is minimum-cost.
//!
//! Every valid design must contain, for each violation exhibited by any of
//! its subsets, at least one of that violation's candidate registers; this
//! makes the branching complete and the best-first order optimal. A node
//! budget caps the exact search; beyond it a greedy repair loop
//! (add-all-candidates per violation) finishes the job.
//!
//! Cycles containing a single register edge cannot be repaired by plain
//! conversions; per the paper they take either a **CBILBO** or an **extra
//! transparent register** ([`SingleRegisterCycleFix`]).

use crate::design::{find_violation, BilboDesign, Violation};
use bibs_rtl::{Circuit, EdgeId, EdgeKind, VertexKind};
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, HashSet};
use std::fmt;

/// How to repair a cycle that contains only one register edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SingleRegisterCycleFix {
    /// Convert the lone register to a CBILBO (test hardware on the register
    /// itself doubles, but the circuit structure is unchanged).
    #[default]
    Cbilbo,
    /// Insert an extra register — transparent in functional mode, an LFSR
    /// stage in test mode — by splitting the lone register edge.
    SplitRegister,
}

/// Options for [`select`].
#[derive(Debug, Clone)]
pub struct BibsOptions {
    /// Node budget for the exact best-first search; the greedy repair loop
    /// takes over beyond it.
    pub max_nodes: usize,
    /// Repair strategy for single-register cycles.
    pub cycle_fix: SingleRegisterCycleFix,
    /// Search cost of converting one flip-flop to a plain BILBO cell
    /// (default 10, i.e. ~7.9 gate equivalents added per bit under the
    /// default [`bibs_lfsr::bilbo::AreaModel`], scaled).
    pub bilbo_cost_per_bit: u32,
    /// Search cost of converting one flip-flop to a CBILBO cell (default
    /// 24 ≈ 2.4× a plain conversion, matching the area model's 19 vs 7.9
    /// added gate equivalents — the paper calls CBILBO hardware
    /// "significant").
    pub cbilbo_cost_per_bit: u32,
    /// Upper bound on any kernel's input width `M` (sum of its TPG
    /// register widths). `None` leaves width unconstrained. The paper
    /// motivates this knob in Section 2: "when the input width of a kernel
    /// is large, say n equals 40 ..., it may not be feasible to apply all
    /// possible test patterns"; bounding `M` trades test hardware for
    /// test time, yielding the family of designs the paper's Section 3.4
    /// discussion alludes to.
    pub max_kernel_width: Option<u32>,
}

impl Default for BibsOptions {
    fn default() -> Self {
        BibsOptions {
            max_nodes: 20_000,
            cycle_fix: SingleRegisterCycleFix::default(),
            bilbo_cost_per_bit: 10,
            cbilbo_cost_per_bit: 24,
            max_kernel_width: None,
        }
    }
}

/// The outcome of BIBS register selection.
#[derive(Debug, Clone)]
pub struct BibsResult {
    /// The circuit the design applies to. Identical to the input unless
    /// [`SingleRegisterCycleFix::SplitRegister`] inserted registers.
    pub circuit: Circuit,
    /// The selected conversions.
    pub design: BilboDesign,
    /// Nodes expanded by the exact search.
    pub nodes_expanded: usize,
    /// Whether the greedy fallback finished the selection (the result may
    /// then be suboptimal).
    pub greedy_fallback: bool,
}

/// Errors from [`select`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BibsError {
    /// A primary input or output connects to logic without an intervening
    /// register, so no register is available to serve as its TPG/SA. Run
    /// [`ensure_io_registers`] first.
    UnbufferedIo {
        /// The offending edge.
        edge: EdgeId,
    },
}

impl fmt::Display for BibsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BibsError::UnbufferedIo { edge } => {
                write!(f, "primary I/O on edge {edge} has no register to convert")
            }
        }
    }
}

impl std::error::Error for BibsError {}

/// Replaces every wire edge that touches a primary input or output with a
/// register edge of the given width, so the circuit satisfies the BILBO
/// methodology's assumption that all I/O is registered.
///
/// Returns the edges that were converted.
pub fn ensure_io_registers(circuit: &mut Circuit, width: u32) -> Vec<EdgeId> {
    let mut converted = Vec::new();
    for e in circuit.edge_ids().collect::<Vec<_>>() {
        let (from, to, kind) = {
            let edge = circuit.edge(e);
            (edge.from, edge.to, edge.kind)
        };
        if kind != EdgeKind::Wire {
            continue;
        }
        let touches_io = circuit.vertex(from).kind == VertexKind::Input
            || circuit.vertex(to).kind == VertexKind::Output;
        if touches_io {
            circuit.convert_wire_to_register(e, format!("Rio{}", e.index()), width);
            converted.push(e);
        }
    }
    converted
}

/// The mandatory conversions: all registers adjacent to primary inputs or
/// outputs.
pub fn mandatory_io_registers(circuit: &Circuit) -> Result<BTreeSet<EdgeId>, BibsError> {
    let mut out = BTreeSet::new();
    for e in circuit.edge_ids() {
        let edge = circuit.edge(e);
        let touches_io = circuit.vertex(edge.from).kind == VertexKind::Input
            || circuit.vertex(edge.to).kind == VertexKind::Output;
        if !touches_io {
            continue;
        }
        match edge.kind {
            EdgeKind::Register { .. } => {
                out.insert(e);
            }
            EdgeKind::Wire => return Err(BibsError::UnbufferedIo { edge: e }),
        }
    }
    Ok(out)
}

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct SearchState {
    extra: BTreeSet<EdgeId>,
    cbilbo: BTreeSet<EdgeId>,
}

/// Runs BIBS register selection on `circuit`.
///
/// # Errors
///
/// Returns [`BibsError::UnbufferedIo`] if a primary input or output is not
/// register-buffered; call [`ensure_io_registers`] first in that case.
pub fn select(circuit: &Circuit, options: &BibsOptions) -> Result<BibsResult, BibsError> {
    let mut circuit = circuit.clone();
    let mandatory = mandatory_io_registers(&circuit)?;

    let width = |c: &Circuit, e: EdgeId| c.edge(e).kind.width().unwrap_or(0);
    let cost = |c: &Circuit, s: &SearchState| -> u64 {
        let b: u64 = s.extra.iter().map(|&e| width(c, e) as u64).sum();
        let cb: u64 = s.cbilbo.iter().map(|&e| width(c, e) as u64).sum();
        b * options.bilbo_cost_per_bit as u64 + cb * options.cbilbo_cost_per_bit as u64
    };
    let make_design = |s: &SearchState| -> BilboDesign {
        let mut d = BilboDesign::new();
        d.bilbo = mandatory
            .union(&s.extra)
            .copied()
            .filter(|e| !s.cbilbo.contains(e))
            .collect();
        d.cbilbo = s.cbilbo.clone();
        d
    };

    let mut heap: BinaryHeap<Reverse<(u64, SearchState)>> = BinaryHeap::new();
    let mut seen: HashSet<SearchState> = HashSet::new();
    let initial = SearchState {
        extra: BTreeSet::new(),
        cbilbo: BTreeSet::new(),
    };
    heap.push(Reverse((0, initial)));
    let mut nodes = 0usize;

    while let Some(Reverse((c, state))) = heap.pop() {
        if !seen.insert(state.clone()) {
            continue;
        }
        nodes += 1;
        if nodes > options.max_nodes {
            // Greedy completion from the cheapest frontier state.
            let (design, circuit) = greedy_complete(circuit, make_design(&state), options);
            return Ok(BibsResult {
                circuit,
                design,
                nodes_expanded: nodes,
                greedy_fallback: true,
            });
        }
        let design = make_design(&state);
        let violation = find_violation(&circuit, &design)
            .or_else(|| width_violation(&circuit, &design, options.max_kernel_width));
        let Some(violation) = violation else {
            return Ok(BibsResult {
                circuit,
                design,
                nodes_expanded: nodes,
                greedy_fallback: false,
            });
        };
        let candidates = violation_candidates(&violation);
        // A port conflict can always alternatively be repaired by making
        // the conflicted register a CBILBO (or, for wire-only connections
        // where no candidate register exists, by splitting it). Offer that
        // branch so CBILBO-optimal designs are reachable.
        if let Violation::PortConflict { register, .. } = violation {
            match options.cycle_fix {
                SingleRegisterCycleFix::Cbilbo => {
                    let mut next = state.clone();
                    next.extra.remove(&register);
                    // The register may be mandatory; CBILBO supersedes.
                    next.cbilbo.insert(register);
                    let nc = cost(&circuit, &next);
                    heap.push(Reverse((nc, next)));
                }
                SingleRegisterCycleFix::SplitRegister if candidates.is_empty() => {
                    // Mutating the shared circuit invalidates fairness
                    // across branches, but splits are rare and strictly
                    // necessary for every branch containing `register`.
                    let new_edge = circuit
                        .split_register_edge(register, &format!("Rsplit{}", register.index()));
                    let mut next = state.clone();
                    next.extra.insert(new_edge);
                    let nc = cost(&circuit, &next);
                    heap.push(Reverse((nc, next)));
                }
                SingleRegisterCycleFix::SplitRegister => {}
            }
        }
        for cand in candidates {
            if state.extra.contains(&cand) || state.cbilbo.contains(&cand) {
                continue;
            }
            let mut next = state.clone();
            next.extra.insert(cand);
            let nc = cost(&circuit, &next);
            debug_assert!(nc >= c);
            heap.push(Reverse((nc, next)));
        }
    }
    // Heap exhausted: every branch ended in unrepairable violations.
    // Complete greedily from scratch (CBILBO everything conflicted).
    let (design, circuit) = greedy_complete(
        circuit,
        {
            let mut d = BilboDesign::new();
            d.bilbo = mandatory;
            d
        },
        options,
    );
    Ok(BibsResult {
        circuit,
        design,
        nodes_expanded: nodes,
        greedy_fallback: true,
    })
}

/// Treats an over-wide kernel as a repairable violation: its internal
/// register edges are the cut candidates (any design whose kernels all
/// respect the bound must cut at least one of them).
fn width_violation(
    circuit: &Circuit,
    design: &BilboDesign,
    max_width: Option<u32>,
) -> Option<Violation> {
    let max_width = max_width?;
    for kernel in crate::design::kernels(circuit, design) {
        if kernel.input_width(circuit) <= max_width {
            continue;
        }
        let internal: Vec<EdgeId> = circuit
            .edge_ids()
            .filter(|&e| {
                !design.is_cut(e)
                    && circuit.edge(e).is_register()
                    && kernel.vertices.contains(&circuit.edge(e).from)
                    && kernel.vertices.contains(&circuit.edge(e).to)
            })
            .collect();
        // A kernel with no internal register cannot be narrowed; skip it
        // (infeasible bound — the caller sees the width in the result).
        if !internal.is_empty() {
            return Some(Violation::KernelTooWide {
                width: kernel.input_width(circuit),
                limit: max_width,
                internal_registers: internal,
            });
        }
    }
    None
}

fn violation_candidates(v: &Violation) -> Vec<EdgeId> {
    match v {
        Violation::KernelCycle { cycle_registers } => cycle_registers.clone(),
        Violation::KernelImbalance { path_registers, .. } => path_registers.clone(),
        Violation::KernelTooWide {
            internal_registers, ..
        } => internal_registers.clone(),
        Violation::PortConflict { path_registers, .. } => path_registers.clone(),
    }
}

fn greedy_complete(
    mut circuit: Circuit,
    mut design: BilboDesign,
    options: &BibsOptions,
) -> (BilboDesign, Circuit) {
    loop {
        let violation = find_violation(&circuit, &design)
            .or_else(|| width_violation(&circuit, &design, options.max_kernel_width));
        let Some(violation) = violation else {
            return (design, circuit);
        };
        let candidates = violation_candidates(&violation);
        if candidates.is_empty() {
            if let Violation::PortConflict { register, .. } = violation {
                match options.cycle_fix {
                    SingleRegisterCycleFix::Cbilbo => {
                        design.bilbo.remove(&register);
                        design.cbilbo.insert(register);
                    }
                    SingleRegisterCycleFix::SplitRegister => {
                        let new_edge = circuit
                            .split_register_edge(register, &format!("Rsplit{}", register.index()));
                        design.bilbo.insert(new_edge);
                    }
                }
            } else {
                // No way forward; return the best effort.
                return (design, circuit);
            }
        } else {
            design.bilbo.extend(candidates);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::{is_bibs_testable, kernels};
    use bibs_rtl::CircuitBuilder;

    #[test]
    fn balanced_pipeline_needs_only_io_registers() {
        let mut b = CircuitBuilder::new("pipe");
        let pi = b.input("PI");
        let c1 = b.logic("C1");
        let c2 = b.logic("C2");
        let po = b.output("PO");
        b.register("R1", 8, pi, c1);
        b.register("R2", 8, c1, c2);
        b.register("R3", 8, c2, po);
        let c = b.finish().unwrap();
        let result = select(&c, &BibsOptions::default()).unwrap();
        assert!(!result.greedy_fallback);
        assert_eq!(result.design.register_count(), 2, "only R1 and R3");
        assert!(is_bibs_testable(&result.circuit, &result.design));
        assert_eq!(kernels(&result.circuit, &result.design).len(), 1);
    }

    #[test]
    fn two_register_cycle_gets_both_cut() {
        let mut b = CircuitBuilder::new("cyc");
        let pi = b.input("PI");
        let f = b.logic("F");
        let h = b.logic("H");
        let po = b.output("PO");
        b.register("Rin", 4, pi, f);
        b.register("Rfh", 4, f, h);
        b.register("Rhf", 4, h, f);
        b.register("Rout", 4, h, po);
        let c = b.finish().unwrap();
        let result = select(&c, &BibsOptions::default()).unwrap();
        assert!(is_bibs_testable(&result.circuit, &result.design));
        // Theorem 2: both cycle registers must be converted.
        assert!(result
            .design
            .bilbo
            .contains(&c.register_by_name("Rfh").unwrap()));
        assert!(result
            .design
            .bilbo
            .contains(&c.register_by_name("Rhf").unwrap()));
        assert_eq!(result.design.register_count(), 4);
    }

    #[test]
    fn single_register_cycle_takes_cbilbo() {
        let mut b = CircuitBuilder::new("self");
        let pi = b.input("PI");
        let f = b.logic("F");
        let po = b.output("PO");
        b.register("Rin", 4, pi, f);
        b.register("Rloop", 4, f, f);
        b.register("Rout", 4, f, po);
        let c = b.finish().unwrap();
        let result = select(&c, &BibsOptions::default()).unwrap();
        assert!(is_bibs_testable(&result.circuit, &result.design));
        let rloop = c.register_by_name("Rloop").unwrap();
        assert!(
            result.design.cbilbo.contains(&rloop),
            "lone cycle register becomes CBILBO"
        );
    }

    #[test]
    fn single_register_cycle_split_alternative() {
        let mut b = CircuitBuilder::new("self");
        let pi = b.input("PI");
        let f = b.logic("F");
        let po = b.output("PO");
        b.register("Rin", 4, pi, f);
        b.register("Rloop", 4, f, f);
        b.register("Rout", 4, f, po);
        let c = b.finish().unwrap();
        let options = BibsOptions {
            cycle_fix: SingleRegisterCycleFix::SplitRegister,
            ..BibsOptions::default()
        };
        let result = select(&c, &options).unwrap();
        assert!(is_bibs_testable(&result.circuit, &result.design));
        assert_eq!(
            result.circuit.register_edges().count(),
            c.register_edges().count() + 1,
            "one transparent register inserted"
        );
        assert!(result.design.cbilbo.is_empty());
    }

    #[test]
    fn width_bound_recovers_the_ka85_partition() {
        // Bounding kernel width to 16 bits on c5a2m forces per-block
        // kernels — exactly the Krasniewski-Albicki design, found here by
        // cost-optimal search instead of by rule.
        use bibs_datapath::filters::c5a2m;
        let circuit = c5a2m();
        let options = BibsOptions {
            max_kernel_width: Some(16),
            ..BibsOptions::default()
        };
        let result = select(&circuit, &options).unwrap();
        assert!(is_bibs_testable(&result.circuit, &result.design));
        assert_eq!(result.design.register_count(), 15);
        let ks = kernels(&result.circuit, &result.design);
        for k in &ks {
            assert!(k.input_width(&result.circuit) <= 16);
        }
    }

    #[test]
    fn unbuffered_io_is_an_error_until_fixed() {
        let mut b = CircuitBuilder::new("raw");
        let pi = b.input("PI");
        let c1 = b.logic("C1");
        let po = b.output("PO");
        b.wire(pi, c1);
        b.register("R", 4, c1, po);
        let mut c = b.finish().unwrap();
        assert!(matches!(
            select(&c, &BibsOptions::default()),
            Err(BibsError::UnbufferedIo { .. })
        ));
        let converted = ensure_io_registers(&mut c, 4);
        assert_eq!(converted.len(), 1);
        let result = select(&c, &BibsOptions::default()).unwrap();
        assert!(is_bibs_testable(&result.circuit, &result.design));
    }

    #[test]
    fn single_register_urfs_needs_cbilbo() {
        // F feeds C directly and through register R: an URFS whose only
        // register edge is R. By Theorem 2 an URFS needs two BILBO edges,
        // but this one has a single register — converting R alone leaves R
        // fed by and feeding the same kernel (F and C stay wire-connected),
        // so only a CBILBO can repair it.
        let mut b = CircuitBuilder::new("imb");
        let pi = b.input("PI");
        let f = b.fanout("F");
        let cblk = b.logic("C");
        let po = b.output("PO");
        b.register("Rin", 8, pi, f);
        b.wire(f, cblk);
        b.register("R", 8, f, cblk);
        b.register("Rout", 8, cblk, po);
        let c = b.finish().unwrap();
        let result = select(&c, &BibsOptions::default()).unwrap();
        assert!(is_bibs_testable(&result.circuit, &result.design));
        assert!(result
            .design
            .cbilbo
            .contains(&c.register_by_name("R").unwrap()));
    }

    #[test]
    fn two_register_urfs_cuts_the_cheaper_register() {
        // Two parallel register paths of unequal length from F to C: the
        // imbalance can be fixed by cutting either the 8-bit register or
        // one of the two 2-bit registers; best-first search must pick a
        // 2-bit one.
        let mut b = CircuitBuilder::new("imb2");
        let pi = b.input("PI");
        let f = b.fanout("F");
        let v = b.vacuous("V");
        let cblk = b.logic("C");
        let po = b.output("PO");
        b.register("Rin", 8, pi, f);
        b.register("Rwide", 8, f, cblk);
        b.register("Rn1", 2, f, v);
        b.register("Rn2", 2, v, cblk);
        b.register("Rout", 8, cblk, po);
        let c = b.finish().unwrap();
        let result = select(&c, &BibsOptions::default()).unwrap();
        assert!(is_bibs_testable(&result.circuit, &result.design));
        assert!(!result.greedy_fallback);
        // The cost-optimal repair converts both 2-bit registers (Theorem 2:
        // two BILBO edges on the URFS), cost 2·2·10 = 40, beating both a
        // 2-bit CBILBO (48) and any cut involving the 8-bit register.
        assert!(result.design.cbilbo.is_empty());
        let extra: Vec<String> = result
            .design
            .bilbo
            .iter()
            .filter_map(|&e| c.edge(e).name.clone())
            .filter(|n| n.starts_with("Rn") || n == "Rwide")
            .collect();
        assert_eq!(extra, vec!["Rn1".to_string(), "Rn2".to_string()]);
    }
}
