//! Functionally pseudo-exhaustive testing (Section 4.3).
//!
//! When every cone depends on only a subset of the kernel inputs, the
//! LFSR degree — and hence the test time `≈ 2^degree` — depends on the
//! **order** in which MC_TPG lays out the input registers (Example 7:
//! degree 16 for order `R1,R2,R3`, degree 8 for `R1,R3,R2`). This module
//! provides:
//!
//! * [`best_permutation`] — the paper's suggested search: run MC_TPG once
//!   per register ordering, keep the minimum-degree design, stop early at
//!   the `2^w` lower bound (`w` = maximal cone size);
//! * [`dependency_matrix_signals`] — the McCluskey verification-testing
//!   baseline of Example 8 (minimal test-signal count from the cone
//!   dependency matrix), which ignores sequential-length information and
//!   therefore often needs a larger LFSR.

use crate::structure::GeneralizedStructure;
use crate::tpg::{mc_tpg, TpgDesign};

/// The outcome of a register-permutation search.
#[derive(Debug, Clone)]
pub struct PermutationSearch {
    /// The best ordering found (indices into the original register list).
    pub order: Vec<usize>,
    /// The TPG designed for that ordering.
    pub design: TpgDesign,
    /// Number of orderings evaluated.
    pub evaluated: usize,
    /// Whether the `2^w` lower bound was reached (the result is then
    /// provably minimal — the paper's early-exit condition).
    pub hit_lower_bound: bool,
}

/// Searches register orderings for the minimum-degree MC_TPG design.
///
/// Exhaustive for up to 8 registers ("in practice, the number of input
/// registers of a multiple-cone kernel is usually small, say less than
/// 5"); beyond that, a greedy insertion heuristic is used.
pub fn best_permutation(structure: &GeneralizedStructure) -> PermutationSearch {
    let n = structure.registers.len();
    let lower_bound = structure.max_cone_width();
    if n <= 8 {
        let mut best: Option<(Vec<usize>, TpgDesign)> = None;
        let mut evaluated = 0usize;
        let mut order: Vec<usize> = (0..n).collect();
        let mut hit = false;
        permute(&mut order, 0, &mut |perm| {
            if hit {
                return;
            }
            evaluated += 1;
            let design = mc_tpg(&structure.permuted(perm));
            let better = best
                .as_ref()
                .is_none_or(|(_, b)| design.lfsr_degree() < b.lfsr_degree());
            if better {
                best = Some((perm.to_vec(), design));
            }
            if let Some((_, b)) = &best {
                if b.lfsr_degree() == lower_bound {
                    hit = true; // provably minimal; stop exploring
                }
            }
        });
        let (order, design) = best.expect("at least one permutation");
        PermutationSearch {
            order,
            design,
            evaluated,
            hit_lower_bound: hit,
        }
    } else {
        // Greedy insertion: place registers one by one in the position
        // minimizing the resulting degree.
        let mut order: Vec<usize> = vec![0];
        let mut evaluated = 0usize;
        for r in 1..n {
            let mut best_pos = 0usize;
            let mut best_degree = u32::MAX;
            for pos in 0..=order.len() {
                let mut cand = order.clone();
                cand.insert(pos, r);
                // Pad with the remaining registers in input order so the
                // structure stays complete.
                let mut full = cand.clone();
                for x in 0..n {
                    if !full.contains(&x) {
                        full.push(x);
                    }
                }
                evaluated += 1;
                let d = mc_tpg(&structure.permuted(&full)).lfsr_degree();
                if d < best_degree {
                    best_degree = d;
                    best_pos = pos;
                }
            }
            order.insert(best_pos, r);
        }
        let design = mc_tpg(&structure.permuted(&order));
        let hit = design.lfsr_degree() == lower_bound;
        PermutationSearch {
            order,
            design,
            evaluated,
            hit_lower_bound: hit,
        }
    }
}

fn permute(order: &mut Vec<usize>, k: usize, f: &mut impl FnMut(&[usize])) {
    if k == order.len() {
        f(order);
        return;
    }
    for i in k..order.len() {
        order.swap(k, i);
        permute(order, k + 1, f);
        order.swap(k, i);
    }
}

/// The cone dependency matrix `D` of Example 8: `D[x][i] = true` iff cone
/// `Ω_x` depends on register `R_i`.
pub fn dependency_matrix(structure: &GeneralizedStructure) -> Vec<Vec<bool>> {
    structure
        .cones
        .iter()
        .map(|c| {
            let mut row = vec![false; structure.registers.len()];
            for dep in &c.deps {
                row[dep.register] = true;
            }
            row
        })
        .collect()
}

/// The McCluskey verification-testing baseline: groups registers into
/// **test signals** such that no cone depends on two registers of the same
/// group, and returns `(groups, lfsr_stages)` where `lfsr_stages` is the
/// total width of the grouped signals (each group is as wide as its widest
/// register).
///
/// Example 8: the 3-register, 3-cone kernel of Figure 21 needs 3 signals of
/// 4 wires each → a 12-stage LFSR, versus the 8 stages MC_TPG plus
/// permutation achieves.
pub fn dependency_matrix_signals(structure: &GeneralizedStructure) -> (Vec<Vec<usize>>, u32) {
    let n = structure.registers.len();
    // Conflict graph: registers sharing a cone must take distinct signals.
    let mut conflict = vec![vec![false; n]; n];
    for cone in &structure.cones {
        for a in &cone.deps {
            for b in &cone.deps {
                if a.register != b.register {
                    conflict[a.register][b.register] = true;
                }
            }
        }
    }
    // Greedy coloring in index order (optimal for the small kernels the
    // paper considers; the underlying problem is NP-complete, ref [17]).
    let mut color = vec![usize::MAX; n];
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for r in 0..n {
        let mut used: Vec<bool> = vec![false; groups.len()];
        for o in 0..n {
            if color[o] != usize::MAX && conflict[r][o] {
                used[color[o]] = true;
            }
        }
        let c = (0..groups.len()).find(|&c| !used[c]).unwrap_or_else(|| {
            groups.push(Vec::new());
            groups.len() - 1
        });
        color[r] = c;
        groups[c].push(r);
    }
    let stages: u32 = groups
        .iter()
        .map(|g| {
            g.iter()
                .map(|&r| structure.registers[r].width)
                .max()
                .unwrap_or(0)
        })
        .sum();
    (groups, stages)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structure::{Cone, ConeDep, TpgRegister};

    fn example7() -> GeneralizedStructure {
        let regs = vec![
            TpgRegister {
                name: "R1".into(),
                width: 4,
            },
            TpgRegister {
                name: "R2".into(),
                width: 4,
            },
            TpgRegister {
                name: "R3".into(),
                width: 4,
            },
        ];
        let cones = vec![
            Cone {
                name: "O1".into(),
                deps: vec![
                    ConeDep {
                        register: 0,
                        seq_len: 2,
                    },
                    ConeDep {
                        register: 1,
                        seq_len: 0,
                    },
                ],
            },
            Cone {
                name: "O2".into(),
                deps: vec![
                    ConeDep {
                        register: 0,
                        seq_len: 0,
                    },
                    ConeDep {
                        register: 2,
                        seq_len: 1,
                    },
                ],
            },
            Cone {
                name: "O3".into(),
                deps: vec![
                    ConeDep {
                        register: 1,
                        seq_len: 1,
                    },
                    ConeDep {
                        register: 2,
                        seq_len: 0,
                    },
                ],
            },
        ];
        GeneralizedStructure::new("ex7", regs, cones).unwrap()
    }

    #[test]
    fn example7_permutation_reaches_the_lower_bound() {
        let s = example7();
        let result = best_permutation(&s);
        assert_eq!(result.design.lfsr_degree(), 8, "paper: degree 8 is best");
        assert!(result.hit_lower_bound, "8 equals the max cone size");
    }

    #[test]
    fn example8_dependency_matrix_needs_twelve_stages() {
        let s = example7();
        let d = dependency_matrix(&s);
        assert_eq!(
            d,
            vec![
                vec![true, true, false],
                vec![true, false, true],
                vec![false, true, true],
            ],
            "the paper's matrix D"
        );
        let (groups, stages) = dependency_matrix_signals(&s);
        assert_eq!(groups.len(), 3, "3 test signals");
        assert_eq!(stages, 12, "paper: a 12-stage LFSR");
        // MC_TPG + permutation beats it: 8 < 12.
        let best = best_permutation(&s);
        assert!(best.design.lfsr_degree() < stages);
    }

    #[test]
    fn disjoint_cones_share_signals() {
        // Two cones on disjoint registers: the matrix approach can share,
        // needing only max-width stages.
        let regs = vec![
            TpgRegister {
                name: "A".into(),
                width: 4,
            },
            TpgRegister {
                name: "B".into(),
                width: 6,
            },
        ];
        let cones = vec![
            Cone {
                name: "O1".into(),
                deps: vec![ConeDep {
                    register: 0,
                    seq_len: 0,
                }],
            },
            Cone {
                name: "O2".into(),
                deps: vec![ConeDep {
                    register: 1,
                    seq_len: 0,
                }],
            },
        ];
        let s = GeneralizedStructure::new("t", regs, cones).unwrap();
        let (groups, stages) = dependency_matrix_signals(&s);
        assert_eq!(groups.len(), 1);
        assert_eq!(stages, 6);
    }

    #[test]
    fn greedy_path_used_beyond_eight_registers() {
        let regs: Vec<TpgRegister> = (0..9)
            .map(|i| TpgRegister {
                name: format!("R{i}"),
                width: 2,
            })
            .collect();
        // One cone over all registers at equal depth: any order is optimal.
        let cone = Cone {
            name: "O".into(),
            deps: (0..9)
                .map(|i| ConeDep {
                    register: i,
                    seq_len: 0,
                })
                .collect(),
        };
        let s = GeneralizedStructure::new("big", regs, vec![cone]).unwrap();
        let r = best_permutation(&s);
        assert_eq!(r.design.lfsr_degree(), 18);
        assert!(r.hit_lower_bound);
    }
}
