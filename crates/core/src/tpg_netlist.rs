//! Gate-level synthesis of TPG designs.
//!
//! Figures 13, 15, 16(b), 17(b) and 19(b) of the paper draw the TPGs as
//! real hardware: a string of D flip-flops, an XOR feedback network over
//! the LFSR taps, and fanout stems for shared labels. This module emits
//! that hardware as a [`bibs_netlist::Netlist`], so a TPG can be
//! simulated, fault-simulated and area-estimated like any other circuit —
//! and cross-checked against the analytical
//! [`TpgSimulator`](crate::tpg::TpgSimulator).

use crate::tpg::TpgDesign;
use bibs_netlist::builder::NetlistBuilder;
use bibs_netlist::{GateKind, NetId, Netlist, NetlistError};
use std::collections::BTreeMap;

/// The synthesized TPG netlist plus the mapping from register cells to the
/// netlist's outputs, so callers can wire the TPG to a kernel.
#[derive(Debug, Clone)]
pub struct TpgNetlist {
    /// The hardware: one DFF per physical slot, XOR feedback, fanout stems.
    pub netlist: Netlist,
    /// `cell_outputs[i][j]` = index into the netlist's outputs for cell
    /// `j` of register `i`.
    pub cell_outputs: Vec<Vec<usize>>,
    /// Output index of each canonical label's flip-flop (for observing the
    /// raw LFSR/shift state, e.g. when synchronizing simulations).
    pub label_outputs: std::collections::BTreeMap<i64, usize>,
}

/// Emits a TPG design as gates and flip-flops.
///
/// Construction mirrors the paper's figures:
///
/// * one D flip-flop per distinct signal label, created with deferred
///   inputs so the LFSR feedback loop can close;
/// * the stage carrying label `ℓ` is fed by the signal of label `ℓ−1`;
///   the first stage is fed by the type-1 feedback — the XOR of the tap
///   stages — OR-ed with a `seed` primary input so the all-zero power-up
///   state can be escaped (a BILBO would use its scan mode for this);
/// * slots that *share* a label (the paper's step 6: "only connect the
///   last F/F") become extra flip-flops fed by the same fanout stem;
/// * every register cell's Q is a primary output.
///
/// # Errors
///
/// Propagates netlist validation errors (none occur for well-formed
/// designs).
///
/// # Panics
///
/// Panics if the design has no characteristic polynomial (degree > 96).
pub fn synthesize_tpg(design: &TpgDesign) -> Result<TpgNetlist, NetlistError> {
    let poly = design
        .polynomial()
        .expect("TPG degree must be within the polynomial table")
        .clone();
    let first_label = design.first_lfsr_label();
    let slots = design.slots();

    let mut b = NetlistBuilder::new(format!("tpg_{}", design.structure().name));
    let seed_in = b.input("seed");

    // Canonical slot per label = the last occurrence in TPG order.
    let mut canonical: BTreeMap<i64, usize> = BTreeMap::new();
    for (i, s) in slots.iter().enumerate() {
        canonical.insert(s.label, i);
    }

    // Phase A: one deferred flip-flop per distinct label.
    let mut q_by_label: BTreeMap<i64, NetId> = BTreeMap::new();
    let mut handles = Vec::new();
    for &label in canonical.keys() {
        let (q, handle) = b.register_deferred();
        q_by_label.insert(label, q);
        handles.push((label, handle));
    }

    // Phase B: close the shift chain and the feedback.
    for (label, handle) in handles {
        if label == first_label {
            // Type-1 feedback: stage s holds label first_label + s − 1.
            let tap_nets: Vec<NetId> = poly
                .tap_stages()
                .iter()
                .map(|&s| q_by_label[&(first_label + s as i64 - 1)])
                .collect();
            let fb = if tap_nets.len() == 1 {
                tap_nets[0]
            } else {
                b.gate(GateKind::Xor, &tap_nets)
            };
            let d = b.gate(GateKind::Or, &[fb, seed_in]);
            b.resolve_deferred(handle, d);
        } else {
            b.resolve_deferred(handle, q_by_label[&(label - 1)]);
        }
    }

    // Shared-label duplicates: physically present flip-flops fed by the
    // same stem as their canonical twin.
    let mut q_of_slot: Vec<NetId> = Vec::with_capacity(slots.len());
    for (i, s) in slots.iter().enumerate() {
        if canonical[&s.label] == i {
            q_of_slot.push(q_by_label[&s.label]);
        } else {
            let stem = if s.label == first_label {
                // A duplicate of the first stage shares the feedback value
                // one cycle late; feed it from the canonical Q.
                q_by_label[&s.label]
            } else {
                q_by_label[&(s.label - 1)]
            };
            let dup = b.register(&[stem]);
            q_of_slot.push(dup[0]);
        }
    }

    // Outputs: every register cell's Q, in (register, cell) order.
    let mut cell_outputs: Vec<Vec<usize>> = Vec::new();
    let mut out_index = 0usize;
    for (ri, reg) in design.structure().registers.iter().enumerate() {
        let mut cells = Vec::new();
        for ci in 0..reg.width as usize {
            let slot = slots
                .iter()
                .position(|s| s.cell == Some((ri, ci)))
                .expect("every register cell has a slot");
            b.output(format!("{}[{ci}]", reg.name), q_of_slot[slot]);
            cells.push(out_index);
            out_index += 1;
        }
        cell_outputs.push(cells);
    }

    // Expose the canonical label signals for observability.
    let mut label_outputs = BTreeMap::new();
    for (&label, &q) in &q_by_label {
        b.output(format!("L{label}"), q);
        label_outputs.insert(label, out_index);
        out_index += 1;
    }

    Ok(TpgNetlist {
        netlist: b.finish()?,
        cell_outputs,
        label_outputs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structure::GeneralizedStructure;
    use crate::tpg::{sc_tpg, TpgSimulator};
    use bibs_netlist::sim::PatternSim;

    fn hw_register_states(hw: &TpgNetlist, logic: &mut PatternSim<'_>) -> Vec<u64> {
        logic.eval_comb();
        let outs = hw.netlist.outputs();
        hw.cell_outputs
            .iter()
            .map(|cells| {
                cells.iter().enumerate().fold(0u64, |acc, (bit, &o)| {
                    acc | ((logic.value(outs[o]) & 1) << bit)
                })
            })
            .collect()
    }

    /// The synthesized hardware and the analytical simulator agree
    /// cycle-by-cycle once synchronized.
    #[test]
    fn hardware_matches_analytical_simulator() {
        let s =
            GeneralizedStructure::single_cone("hw", &[("R1", 3, 2), ("R2", 3, 1), ("R3", 3, 0)]);
        let design = sc_tpg(&s);
        let hw = synthesize_tpg(&design).expect("synthesizes");
        let mut logic = PatternSim::new(&hw.netlist);

        // Pulse the seed input once to leave the all-zero state, then run
        // autonomously until the hardware's full LFSR state matches the
        // (warmed-up) analytical simulator. The LFSR state determines the
        // whole orbit — including the shift-register extension — because a
        // maximal LFSR is a bijection on nonzero states.
        logic.set_inputs(&[!0u64]);
        logic.step();
        logic.set_inputs(&[0u64]);
        let mut analytic = TpgSimulator::new(&design);
        for _ in 0..64 {
            analytic.step(); // fill the extension history
        }
        let lfsr_labels: Vec<i64> = (design.first_lfsr_label()
            ..design.first_lfsr_label() + design.lfsr_degree() as i64)
            .collect();
        let target: Vec<bool> = lfsr_labels.iter().map(|&l| analytic.signal(l)).collect();
        let outs = hw.netlist.outputs().to_vec();
        let mut synced = false;
        for _ in 0u64..(1 << design.lfsr_degree()) {
            logic.eval_comb();
            let state: Vec<bool> = lfsr_labels
                .iter()
                .map(|&l| logic.value(outs[hw.label_outputs[&l]]) & 1 == 1)
                .collect();
            if state == target {
                synced = true;
                break;
            }
            logic.step();
        }
        assert!(synced, "hardware must reach the analytical LFSR state");

        // Lockstep comparison of every register cell.
        for cycle in 0..300 {
            let hw_state = hw_register_states(&hw, &mut logic);
            for (r, &hw_val) in hw_state.iter().enumerate() {
                assert_eq!(
                    hw_val,
                    analytic.register_state(r).to_u64(),
                    "register {r} at cycle {cycle}"
                );
            }
            logic.step();
            analytic.step();
        }
    }

    /// Synthesized flip-flop counts match the design's accounting.
    #[test]
    fn hardware_ff_count_matches_design() {
        for (name, regs) in [
            ("plain", vec![("R1", 4, 2), ("R2", 4, 1), ("R3", 4, 0)]),
            ("shared", vec![("R1", 4, 1), ("R2", 4, 2), ("R3", 4, 0)]),
        ] {
            let s = GeneralizedStructure::single_cone(name, &regs);
            let design = sc_tpg(&s);
            let hw = synthesize_tpg(&design).expect("synthesizes");
            assert_eq!(
                hw.netlist.dff_count(),
                design.flip_flop_count(),
                "{name}: one physical FF per slot"
            );
        }
    }

    /// The hardware LFSR is maximal: it cycles through 2^M − 1 states.
    #[test]
    fn hardware_orbit_is_maximal() {
        let s = GeneralizedStructure::single_cone("orb", &[("R", 6, 0)]);
        let design = sc_tpg(&s);
        let hw = synthesize_tpg(&design).expect("synthesizes");
        let mut logic = PatternSim::new(&hw.netlist);
        logic.set_inputs(&[!0u64]);
        logic.step();
        logic.set_inputs(&[0u64]);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..((1u64 << 6) - 1) {
            let state = hw_register_states(&hw, &mut logic);
            seen.insert(state[0]);
            logic.step();
        }
        assert_eq!(seen.len(), 63, "all nonzero states visited");
    }
}
