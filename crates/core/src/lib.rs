//! BIBS — Built-In test for Balanced Structure.
//!
//! This crate implements the contributions of *"A Low Cost BIST Methodology
//! and Associated Novel Test Pattern Generator"* (Lin, Gupta, Breuer; USC
//! CENG TR 93-33 / DATE 1994):
//!
//! * [`design`] — BILBO designations over a circuit graph, kernel
//!   extraction, and the **balanced BISTable** predicate (Definition 1);
//! * [`bibs`] — the BIBS register-selection TDM: a best-first, violation-
//!   driven search for a minimum-cost set of BILBO registers that makes
//!   every kernel balanced BISTable (Theorem 2 bounds, CBILBO/register-
//!   splitting fallbacks for single-register cycles);
//! * [`ka85`] — the Krasniewski–Albicki TDM of reference \[3\], the paper's
//!   baseline (proved in the paper to be a special case of BIBS);
//! * [`structure`] — generalized kernel structures: input registers,
//!   output cones and sequential lengths (Figures 11, 12(c), 17–21);
//! * [`tpg`] — the novel TPG: **SC_TPG** and **MC_TPG**, which splice plain
//!   shift-register flip-flops into a type-1 LFSR so a *sequential*
//!   balanced kernel receives a functionally exhaustive test set in
//!   `2^M − 1 + d` clocks (Theorems 4–7);
//! * [`verify`] — brute-force functional-exhaustiveness verification of
//!   TPG designs on small kernels;
//! * [`fpet`] — functionally pseudo-exhaustive testing: register
//!   permutation search (Example 7) and the McCluskey dependency-matrix
//!   baseline it beats (Example 8);
//! * [`schedule`] — test-session scheduling by conflict-graph coloring
//!   (reference \[13\]);
//! * [`delay`] — the maximal-delay metric of Table 2 (BILBO registers on a
//!   PI→PO path);
//! * [`cstp`] — a circular self-test path model for the Section 4.1
//!   contrast (CSTP needs ≈ `T·2^M` patterns, the BIBS TPG `2^M − 1 + d`);
//! * [`reconfig`] — reconfigurable TPGs (Figure 20): one LFSR
//!   configuration per cone, trading steering hardware for test time;
//! * [`mintpg`] — the paper's Section 5 **open problem**: minimal-LFSR TPG
//!   design via the offset linear-independence condition over GF(2);
//! * [`controller`] — BITS-style test-controller synthesis from a test
//!   schedule;
//! * [`kstep`] — k-pattern detectability / k-step functional testability
//!   analysis (Section 2).
#![warn(missing_docs)]

pub mod bibs;
pub mod controller;
pub mod cstp;
pub mod delay;
pub mod design;
pub mod fpet;
pub mod ka85;
pub mod kstep;
pub mod mintpg;
pub mod reconfig;
pub mod schedule;
pub mod session;
pub mod source;
pub mod structure;
pub mod tpg;
pub mod tpg_netlist;
pub mod verify;
