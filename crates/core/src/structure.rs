//! Generalized structures of balanced BISTable kernels (Figures 11, 12(c),
//! 16–21 of the paper).
//!
//! A kernel is abstracted, for TPG design purposes, to its **input
//! registers** and **output cones**: cone `Ω_x` depends on a subset of the
//! registers, each at a fixed *sequential length* `d_{i,x}` (well-defined
//! because the kernel is balanced). SC_TPG and MC_TPG consume exactly this
//! abstraction.

use crate::design::{BilboDesign, Kernel};
use bibs_rtl::{Circuit, EdgeId, SeqLen};
use std::fmt;

/// One input register of a generalized structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TpgRegister {
    /// Display name.
    pub name: String,
    /// Width in bits.
    pub width: u32,
}

/// One dependency of a cone on an input register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConeDep {
    /// Index into [`GeneralizedStructure::registers`].
    pub register: usize,
    /// Sequential length `d_{i,x}` from the register to the cone's output
    /// port.
    pub seq_len: u32,
}

/// One output cone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cone {
    /// Display name.
    pub name: String,
    /// The registers the cone depends on, with sequential lengths.
    pub deps: Vec<ConeDep>,
}

impl Cone {
    /// The total input width the cone depends on (its *cone size* `w`).
    pub fn input_width(&self, registers: &[TpgRegister]) -> u32 {
        self.deps.iter().map(|d| registers[d.register].width).sum()
    }
}

/// The generalized structure of a balanced BISTable kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeneralizedStructure {
    /// Kernel name.
    pub name: String,
    /// Input registers, in TPG order (the order MC_TPG assigns them).
    pub registers: Vec<TpgRegister>,
    /// Output cones.
    pub cones: Vec<Cone>,
}

/// Errors building or extracting a generalized structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StructureError {
    /// A cone references a register index out of range.
    BadRegisterIndex {
        /// The offending index.
        index: usize,
    },
    /// A cone depends on the same register twice.
    DuplicateDep {
        /// The register index appearing twice.
        register: usize,
    },
    /// The kernel is not balanced: a register-to-output sequential length
    /// is not unique, so no generalized structure exists.
    NotBalanced {
        /// The input register edge.
        register: EdgeId,
        /// The output register edge.
        output: EdgeId,
    },
}

impl fmt::Display for StructureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StructureError::BadRegisterIndex { index } => {
                write!(f, "cone references register index {index} out of range")
            }
            StructureError::DuplicateDep { register } => {
                write!(f, "cone depends on register {register} twice")
            }
            StructureError::NotBalanced { register, output } => {
                write!(
                    f,
                    "paths from register {register} to output {output} have unequal sequential lengths"
                )
            }
        }
    }
}

impl std::error::Error for StructureError {}

impl GeneralizedStructure {
    /// Creates a structure, validating cone dependencies.
    ///
    /// # Errors
    ///
    /// Returns [`StructureError`] on out-of-range or duplicate register
    /// references.
    pub fn new(
        name: impl Into<String>,
        registers: Vec<TpgRegister>,
        cones: Vec<Cone>,
    ) -> Result<Self, StructureError> {
        for cone in &cones {
            let mut seen = vec![false; registers.len()];
            for dep in &cone.deps {
                if dep.register >= registers.len() {
                    return Err(StructureError::BadRegisterIndex {
                        index: dep.register,
                    });
                }
                if seen[dep.register] {
                    return Err(StructureError::DuplicateDep {
                        register: dep.register,
                    });
                }
                seen[dep.register] = true;
            }
        }
        Ok(GeneralizedStructure {
            name: name.into(),
            registers,
            cones,
        })
    }

    /// Convenience constructor for a **single-cone** kernel: registers with
    /// widths and sequential lengths, one cone depending on all of them
    /// (the Figure 11(a) structure).
    pub fn single_cone(
        name: impl Into<String>,
        regs: &[(&str, u32, u32)], // (name, width, seq_len)
    ) -> Self {
        let registers: Vec<TpgRegister> = regs
            .iter()
            .map(|&(n, w, _)| TpgRegister {
                name: n.to_string(),
                width: w,
            })
            .collect();
        let cone = Cone {
            name: "C".to_string(),
            deps: regs
                .iter()
                .enumerate()
                .map(|(i, &(_, _, d))| ConeDep {
                    register: i,
                    seq_len: d,
                })
                .collect(),
        };
        GeneralizedStructure::new(name, registers, vec![cone])
            .expect("single-cone construction is always valid")
    }

    /// Whether the structure has a single cone.
    pub fn is_single_cone(&self) -> bool {
        self.cones.len() == 1
    }

    /// Total input width `M = Σ |R_i|`.
    pub fn total_width(&self) -> u32 {
        self.registers.iter().map(|r| r.width).sum()
    }

    /// The maximal cone size `w` — the paper's lower bound `2^w` on the
    /// test time of a multiple-cone kernel.
    pub fn max_cone_width(&self) -> u32 {
        self.cones
            .iter()
            .map(|c| c.input_width(&self.registers))
            .max()
            .unwrap_or(0)
    }

    /// The kernel's sequential depth `d` (maximum sequential length over
    /// all dependencies), for the test-time formula `2^M − 1 + d`.
    pub fn sequential_depth(&self) -> u32 {
        self.cones
            .iter()
            .flat_map(|c| c.deps.iter().map(|d| d.seq_len))
            .max()
            .unwrap_or(0)
    }

    /// The same structure with registers re-ordered by `order` (a
    /// permutation of register indices). Cone dependencies are re-indexed.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of `0..registers.len()`.
    pub fn permuted(&self, order: &[usize]) -> Self {
        assert_eq!(order.len(), self.registers.len());
        let mut inverse = vec![usize::MAX; order.len()];
        for (new_pos, &old) in order.iter().enumerate() {
            assert!(
                old < inverse.len() && inverse[old] == usize::MAX,
                "order must be a permutation"
            );
            inverse[old] = new_pos;
        }
        let registers: Vec<TpgRegister> = order
            .iter()
            .map(|&old| self.registers[old].clone())
            .collect();
        let cones = self
            .cones
            .iter()
            .map(|c| {
                let mut deps: Vec<ConeDep> = c
                    .deps
                    .iter()
                    .map(|d| ConeDep {
                        register: inverse[d.register],
                        seq_len: d.seq_len,
                    })
                    .collect();
                deps.sort_by_key(|d| d.register);
                Cone {
                    name: c.name.clone(),
                    deps,
                }
            })
            .collect();
        GeneralizedStructure {
            name: self.name.clone(),
            registers,
            cones,
        }
    }

    /// Extracts the generalized structure of a kernel of `circuit` under
    /// `design`.
    ///
    /// Registers are the kernel's input BILBO edges (in stored order);
    /// cones are its output BILBO edges; sequential lengths come from the
    /// balanced kernel's unique path lengths.
    ///
    /// # Errors
    ///
    /// Returns [`StructureError::NotBalanced`] if some register-to-output
    /// sequential length is not unique (the kernel violates Definition 1).
    pub fn from_kernel(
        circuit: &Circuit,
        design: &BilboDesign,
        kernel: &Kernel,
    ) -> Result<Self, StructureError> {
        let keep = |e: EdgeId| {
            !design.is_cut(e)
                && kernel.vertices.contains(&circuit.edge(e).from)
                && kernel.vertices.contains(&circuit.edge(e).to)
        };
        let registers: Vec<TpgRegister> = kernel
            .input_edges
            .iter()
            .map(|&e| TpgRegister {
                name: circuit
                    .edge(e)
                    .name
                    .clone()
                    .unwrap_or_else(|| format!("{e}")),
                width: circuit.edge(e).kind.width().unwrap_or(0),
            })
            .collect();
        let mut cones = Vec::new();
        // Precompute sequential lengths from each input edge head.
        let lens: Vec<_> = kernel
            .input_edges
            .iter()
            .map(|&e| circuit.seq_lengths_from_filtered(circuit.edge(e).to, keep))
            .collect();
        for &oe in &kernel.output_edges {
            let tail = circuit.edge(oe).from;
            let mut deps = Vec::new();
            for (i, &ie) in kernel.input_edges.iter().enumerate() {
                let Some(lmap) = &lens[i] else {
                    return Err(StructureError::NotBalanced {
                        register: ie,
                        output: oe,
                    });
                };
                match lmap[tail.index()] {
                    SeqLen::Unreachable => {}
                    SeqLen::Exact(d) => deps.push(ConeDep {
                        register: i,
                        seq_len: d,
                    }),
                    SeqLen::Conflict { .. } => {
                        return Err(StructureError::NotBalanced {
                            register: ie,
                            output: oe,
                        });
                    }
                }
            }
            cones.push(Cone {
                name: circuit
                    .edge(oe)
                    .name
                    .clone()
                    .unwrap_or_else(|| format!("{oe}")),
                deps,
            });
        }
        GeneralizedStructure::new(circuit.name().to_string(), registers, cones)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::{kernels, BilboDesign};
    use bibs_datapath::examples::figure12a;

    #[test]
    fn single_cone_constructor() {
        let s = GeneralizedStructure::single_cone(
            "fig12c",
            &[("R1", 4, 1), ("R2", 4, 2), ("R3", 4, 0)],
        );
        assert!(s.is_single_cone());
        assert_eq!(s.total_width(), 12);
        assert_eq!(s.max_cone_width(), 12);
        assert_eq!(s.sequential_depth(), 2);
    }

    #[test]
    fn validation_rejects_bad_indices() {
        let regs = vec![TpgRegister {
            name: "R1".into(),
            width: 4,
        }];
        let bad = Cone {
            name: "C".into(),
            deps: vec![ConeDep {
                register: 1,
                seq_len: 0,
            }],
        };
        assert!(matches!(
            GeneralizedStructure::new("t", regs.clone(), vec![bad]),
            Err(StructureError::BadRegisterIndex { index: 1 })
        ));
        let dup = Cone {
            name: "C".into(),
            deps: vec![
                ConeDep {
                    register: 0,
                    seq_len: 0,
                },
                ConeDep {
                    register: 0,
                    seq_len: 1,
                },
            ],
        };
        assert!(matches!(
            GeneralizedStructure::new("t", regs, vec![dup]),
            Err(StructureError::DuplicateDep { register: 0 })
        ));
    }

    #[test]
    fn permutation_reindexes_cones() {
        let s = GeneralizedStructure::single_cone("t", &[("R1", 4, 2), ("R2", 4, 1), ("R3", 4, 0)]);
        let p = s.permuted(&[2, 0, 1]); // new order: R3, R1, R2
        assert_eq!(p.registers[0].name, "R3");
        assert_eq!(p.registers[1].name, "R1");
        // R1 is now index 1; its dep must carry seq_len 2.
        let dep = p.cones[0].deps.iter().find(|d| d.register == 1).unwrap();
        assert_eq!(dep.seq_len, 2);
    }

    #[test]
    fn extraction_from_figure12a() {
        // BIBS design for fig12a: R1, R2, R3 as TPGs, Rout as SA.
        let c = figure12a();
        let cut = ["R1", "R2", "R3", "Rout"]
            .iter()
            .map(|n| c.register_by_name(n).unwrap());
        let design = BilboDesign::from_bilbos(cut);
        let ks = kernels(&c, &design);
        assert_eq!(ks.len(), 1);
        let s = GeneralizedStructure::from_kernel(&c, &design, &ks[0]).unwrap();
        assert_eq!(s.registers.len(), 3);
        assert!(s.is_single_cone());
        // Sequential lengths measured at the output port Rout behind C5:
        // d(R1) = 2, d(R2) = 1, d(R3) = 0 (Example 2's structure).
        let by_name: Vec<(String, u32)> = s.cones[0]
            .deps
            .iter()
            .map(|d| (s.registers[d.register].name.clone(), d.seq_len))
            .collect();
        assert!(by_name.contains(&("R1".to_string(), 2)));
        assert!(by_name.contains(&("R2".to_string(), 1)));
        assert!(by_name.contains(&("R3".to_string(), 0)));
    }
}
