//! Property-based tests for the BIBS core: Theorems 1–4 as properties over
//! random circuits and random generalized structures.

use bibs_core::bibs::{select, BibsOptions};
use bibs_core::design::{is_bibs_testable, kernels};
use bibs_core::fpet::best_permutation;
use bibs_core::ka85;
use bibs_core::structure::{Cone, ConeDep, GeneralizedStructure, TpgRegister};
use bibs_core::tpg::mc_tpg;
use bibs_core::verify::verify_exhaustive;
use bibs_rtl::{Circuit, CircuitBuilder, VertexId};
use proptest::prelude::*;

/// Random layered circuit with registered I/O (the BIBS preconditions).
fn random_circuit(layer_sizes: &[usize], edge_choices: &[(usize, usize, bool, u8)]) -> Circuit {
    let mut b = CircuitBuilder::new("rand");
    let pi = b.input("PI");
    let mut layers: Vec<Vec<VertexId>> = Vec::new();
    let mut counter = 0usize;
    for &size in layer_sizes {
        let layer: Vec<VertexId> = (0..size)
            .map(|_| {
                counter += 1;
                b.logic(format!("L{counter}"))
            })
            .collect();
        layers.push(layer);
    }
    let po = b.output("PO");
    for (i, &v) in layers[0].clone().iter().enumerate() {
        b.register(format!("Rin{i}"), 4, pi, v);
    }
    let mut reg_count = 0usize;
    for &(from_idx, to_idx, is_reg, width) in edge_choices {
        let li = from_idx % (layers.len() - 1);
        let from = layers[li][from_idx % layers[li].len()];
        let to = layers[li + 1][to_idx % layers[li + 1].len()];
        if is_reg {
            reg_count += 1;
            b.register(format!("R{reg_count}"), (width % 4) as u32 + 1, from, to);
        } else {
            b.wire(from, to);
        }
    }
    for (i, &v) in layers.last().unwrap().clone().iter().enumerate() {
        b.register(format!("Rout{i}"), 4, v, po);
    }
    for w in 0..layers.len() - 1 {
        b.wire(layers[w][0], layers[w + 1][0]);
    }
    b.finish().expect("layered circuits are well-formed")
}

fn circuit_strategy() -> impl Strategy<Value = Circuit> {
    (
        proptest::collection::vec(1usize..4, 2..5),
        proptest::collection::vec(
            (any::<usize>(), any::<usize>(), any::<bool>(), any::<u8>()),
            0..12,
        ),
    )
        .prop_map(|(layers, edges)| random_circuit(&layers, &edges))
}

/// Random *balanced* single-cone structure: widths 1..3 bits, sequential
/// lengths 0..4, 2..4 registers — small enough for brute-force
/// verification of Theorem 4.
fn structure_strategy() -> impl Strategy<Value = GeneralizedStructure> {
    proptest::collection::vec((1u32..3, 0u32..4), 2..4).prop_map(|specs| {
        let regs: Vec<(String, u32, u32)> = specs
            .iter()
            .enumerate()
            .map(|(i, &(w, d))| (format!("R{i}"), w, d))
            .collect();
        let refs: Vec<(&str, u32, u32)> =
            regs.iter().map(|(n, w, d)| (n.as_str(), *w, *d)).collect();
        GeneralizedStructure::single_cone("rand", &refs)
    })
}

/// Random multi-cone structure with small widths.
fn multicone_strategy() -> impl Strategy<Value = GeneralizedStructure> {
    (
        proptest::collection::vec(1u32..3, 2..4),
        proptest::collection::vec(
            proptest::collection::vec((any::<bool>(), 0u32..3), 2..4),
            1..4,
        ),
    )
        .prop_filter_map("every cone needs a dep", |(widths, cone_specs)| {
            let registers: Vec<TpgRegister> = widths
                .iter()
                .enumerate()
                .map(|(i, &w)| TpgRegister {
                    name: format!("R{i}"),
                    width: w,
                })
                .collect();
            let n = registers.len();
            let mut cones = Vec::new();
            for (x, spec) in cone_specs.iter().enumerate() {
                let deps: Vec<ConeDep> = spec
                    .iter()
                    .take(n)
                    .enumerate()
                    .filter(|(_, &(used, _))| used)
                    .map(|(i, &(_, d))| ConeDep {
                        register: i,
                        seq_len: d,
                    })
                    .collect();
                if deps.is_empty() {
                    return None;
                }
                cones.push(Cone {
                    name: format!("O{x}"),
                    deps,
                });
            }
            GeneralizedStructure::new("randmc", registers, cones).ok()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// BIBS selection always produces a valid (balanced BISTable) design,
    /// and its kernels are balanced — Theorem 1's precondition.
    #[test]
    fn bibs_select_always_valid(circuit in circuit_strategy()) {
        let r = select(&circuit, &BibsOptions::default()).unwrap();
        prop_assert!(is_bibs_testable(&r.circuit, &r.design));
        prop_assert!(!kernels(&r.circuit, &r.design).is_empty());
    }

    /// Theorem 3 as a property: every design produced by the criteria of
    /// \[3\] is a BIBS design (balanced BISTable kernels).
    #[test]
    fn theorem3_ka85_is_special_case(circuit in circuit_strategy()) {
        if let Ok(design) = ka85::select(&circuit) {
            prop_assert!(
                is_bibs_testable(&circuit, &design),
                "a [3] design must be balanced BISTable"
            );
            // And BIBS never needs more registers than [3].
            let r = select(&circuit, &BibsOptions::default()).unwrap();
            prop_assert!(r.design.register_count() <= design.register_count());
        }
    }

    /// Theorem 4/5 as a property: SC_TPG output applies a functionally
    /// exhaustive test set to every random single-cone balanced kernel.
    #[test]
    fn theorem4_random_single_cone(s in structure_strategy()) {
        let design = mc_tpg(&s);
        prop_assume!(design.lfsr_degree() <= 14); // keep brute force fast
        for cov in verify_exhaustive(&design) {
            prop_assert!(
                cov.is_exhaustive_modulo_zero(),
                "cone {} covered {}/{} (degree {})",
                cov.cone, cov.observed, cov.total, design.lfsr_degree()
            );
        }
    }

    /// Theorem 7 as a property: MC_TPG output is functionally exhaustive
    /// on every cone of random multi-cone kernels.
    #[test]
    fn theorem7_random_multi_cone(s in multicone_strategy()) {
        let design = mc_tpg(&s);
        prop_assume!(design.lfsr_degree() <= 14);
        for cov in verify_exhaustive(&design) {
            prop_assert!(
                cov.is_exhaustive_modulo_zero(),
                "cone {} covered {}/{} (degree {})",
                cov.cone, cov.observed, cov.total, design.lfsr_degree()
            );
        }
    }

    /// Theorem 5's minimality, as a property: for single-cone balanced
    /// kernels SC_TPG's LFSR degree equals the kernel input width M
    /// exactly (test time 2^M − 1 is minimal).
    #[test]
    fn theorem5_single_cone_degree_is_m(s in structure_strategy()) {
        let design = mc_tpg(&s);
        prop_assert_eq!(design.lfsr_degree(), s.total_width());
    }

    /// The LFSR degree never undercuts the paper's lower bound (the
    /// maximal cone size), and permutation search respects it too.
    #[test]
    fn degree_lower_bound(s in multicone_strategy()) {
        let design = mc_tpg(&s);
        prop_assert!(design.lfsr_degree() >= s.max_cone_width());
        let best = best_permutation(&s);
        prop_assert!(best.design.lfsr_degree() >= s.max_cone_width());
        prop_assert!(best.design.lfsr_degree() <= design.lfsr_degree());
    }

    /// Permuting registers never changes the structure's invariants.
    #[test]
    fn permutation_preserves_structure(s in multicone_strategy(), seed in any::<u64>()) {
        let n = s.registers.len();
        let mut order: Vec<usize> = (0..n).collect();
        // Fisher-Yates with the seed.
        let mut state = seed | 1;
        for i in (1..n).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (state >> 33) as usize % (i + 1);
            order.swap(i, j);
        }
        let p = s.permuted(&order);
        prop_assert_eq!(p.total_width(), s.total_width());
        prop_assert_eq!(p.max_cone_width(), s.max_cone_width());
        prop_assert_eq!(p.sequential_depth(), s.sequential_depth());
        prop_assert_eq!(p.cones.len(), s.cones.len());
    }
}
