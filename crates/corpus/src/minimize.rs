//! Greedy structural shrinker for fuzz failures.
//!
//! Given a netlist on which some predicate holds (an oracle divergence),
//! [`minimize`] repeatedly applies two reductions while the predicate
//! keeps holding:
//!
//! * **gate bypass** — delete a gate and reroute every reader of its
//!   output to the gate's first input (the classic delta-debugging move
//!   for DAGs: it strictly removes one gate and one net, and commonly
//!   strands whole cones which later bypasses then remove);
//! * **output drop** — remove one primary output (when more than one),
//!   shedding the observation cones that play no part in the failure.
//!
//! Every candidate is revalidated through [`Netlist::from_parts`], so the
//! shrinker can never produce an invalid circuit, and the predicate is
//! re-run on the candidate before it is accepted — the result is a local
//! minimum: no single bypass or drop preserves the failure.

use bibs_netlist::{Dff, Gate, GateId, Net, NetDriver, NetId, Netlist};

/// Upper bound on accepted reduction steps, as a runaway guard; each
/// step removes at least one gate or output, so any real circuit
/// terminates far earlier.
const MAX_STEPS: usize = 100_000;

/// Rebuilds `nl` without gate `victim`: readers of its output net are
/// rerouted to its first input net and the output net disappears.
/// `None` when the result fails validation (it should not — the rewrite
/// preserves acyclicity — but the shrinker never trusts that).
fn bypass_gate(nl: &Netlist, victim: GateId) -> Option<Netlist> {
    let out = nl.gate(victim).output;
    let repl = nl.gate(victim).inputs[0];
    if repl == out {
        // A self-looped gate (representable via `from_parts_unchecked`,
        // e.g. when the shrinker runs on a lint-rejected circuit): the
        // replacement net is the very net being removed, so there is no
        // surviving net to reroute readers to. Skip the candidate.
        return None;
    }
    // Net-id compaction: every net except `out` keeps its order.
    let mut map: Vec<Option<NetId>> = Vec::with_capacity(nl.net_count());
    let mut next = 0usize;
    for id in nl.net_ids() {
        if id == out {
            map.push(None);
        } else {
            map.push(Some(NetId::from_index(next)));
            next += 1;
        }
    }
    let remap = |id: NetId| map[id.index()].unwrap_or_else(|| map[repl.index()].unwrap());

    let mut nets: Vec<Net> = nl
        .net_ids()
        .filter(|&id| id != out)
        .map(|id| Net {
            name: nl.net_name(id).map(str::to_string),
            driver: NetDriver::Floating,
        })
        .collect();
    let mut gates: Vec<Gate> = Vec::with_capacity(nl.gate_count() - 1);
    for gid in nl.gate_ids() {
        if gid == victim {
            continue;
        }
        let g = nl.gate(gid);
        gates.push(Gate {
            kind: g.kind,
            inputs: g.inputs.iter().map(|&i| remap(i)).collect(),
            output: remap(g.output),
        });
    }
    let dffs: Vec<Dff> = nl
        .dffs()
        .iter()
        .map(|ff| Dff {
            d: remap(ff.d),
            q: remap(ff.q),
        })
        .collect();
    let inputs: Vec<NetId> = nl.inputs().iter().map(|&i| remap(i)).collect();
    let outputs: Vec<NetId> = nl.outputs().iter().map(|&o| remap(o)).collect();

    // Reconstruct drivers from the surviving definitions.
    for (pos, &pi) in inputs.iter().enumerate() {
        nets[pi.index()].driver = NetDriver::Input(pos);
    }
    for id in nl.net_ids() {
        if let (NetDriver::Const(v), Some(new)) = (nl.driver(id), map[id.index()]) {
            nets[new.index()].driver = NetDriver::Const(v);
        }
    }
    for (k, g) in gates.iter().enumerate() {
        nets[g.output.index()].driver = NetDriver::Gate(GateId::from_index(k));
    }
    for (k, ff) in dffs.iter().enumerate() {
        nets[ff.q.index()].driver = NetDriver::Dff(bibs_netlist::DffId::from_index(k));
    }

    Netlist::from_parts(nl.name().to_string(), nets, gates, dffs, inputs, outputs).ok()
}

/// Rebuilds `nl` without primary output number `pos` (no net removal —
/// later gate bypasses collect the stranded cone).
fn drop_output(nl: &Netlist, pos: usize) -> Option<Netlist> {
    if nl.outputs().len() <= 1 {
        return None;
    }
    let nets: Vec<Net> = nl
        .net_ids()
        .map(|id| Net {
            name: nl.net_name(id).map(str::to_string),
            driver: nl.driver(id),
        })
        .collect();
    let outputs: Vec<NetId> = nl
        .outputs()
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != pos)
        .map(|(_, &o)| o)
        .collect();
    Netlist::from_parts(
        nl.name().to_string(),
        nets,
        nl.gates().to_vec(),
        nl.dffs().to_vec(),
        nl.inputs().to_vec(),
        outputs,
    )
    .ok()
}

/// Shrinks `nl` to a local minimum on which `fails` still returns `true`.
///
/// The caller guarantees `fails(&nl)` holds on entry (the function
/// returns `nl` unchanged otherwise). The predicate must be
/// deterministic — the fuzzer passes a closure re-running the diverging
/// oracle with the original seed.
pub fn minimize(nl: Netlist, fails: impl Fn(&Netlist) -> bool) -> Netlist {
    let mut current = nl;
    if !fails(&current) {
        return current;
    }
    let mut steps = 0usize;
    loop {
        let mut progressed = false;
        // Outputs first: dropping one often strands a large cone that the
        // gate loop then deletes wholesale.
        let mut pos = 0;
        while pos < current.outputs().len() && current.outputs().len() > 1 {
            if let Some(cand) = drop_output(&current, pos) {
                if fails(&cand) {
                    current = cand;
                    progressed = true;
                    steps += 1;
                    continue; // same position now names the next output
                }
            }
            pos += 1;
        }
        let mut g = 0;
        while g < current.gate_count() {
            let gid = GateId::from_index(g);
            if let Some(cand) = bypass_gate(&current, gid) {
                if fails(&cand) {
                    current = cand;
                    progressed = true;
                    steps += 1;
                    continue; // index g now names the next gate
                }
            }
            g += 1;
        }
        if !progressed || steps >= MAX_STEPS {
            return current;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bibs_netlist::builder::NetlistBuilder;
    use bibs_netlist::GateKind;

    /// A two-output circuit where only the XOR cone matters to the
    /// predicate; the adder cone must shrink away.
    fn sample() -> Netlist {
        let mut b = NetlistBuilder::new("m");
        let a = b.input_word("a", 3);
        let c = b.input_word("b", 3);
        let (s, co) = b.ripple_carry_adder(&a, &c, None);
        b.output_word("s", &s);
        b.output("co", co);
        let x = b.xor2(a[0], c[0]);
        b.output("x", x);
        b.finish().unwrap()
    }

    #[test]
    fn minimizer_reaches_a_small_witness() {
        let nl = sample();
        let has_xor = |n: &Netlist| n.gates().iter().any(|g| g.kind == GateKind::Xor);
        assert!(has_xor(&nl));
        let small = minimize(nl.clone(), has_xor);
        assert!(has_xor(&small), "property must be preserved");
        assert!(
            small.gate_count() < nl.gate_count() / 2,
            "{} -> {} gates",
            nl.gate_count(),
            small.gate_count()
        );
        // Local minimum: exactly the one XOR survives.
        assert_eq!(small.gates().len(), 1);
        assert_eq!(small.outputs().len(), 1);
    }

    #[test]
    fn minimizer_returns_input_when_predicate_fails() {
        let nl = sample();
        let out = minimize(nl.clone(), |_| false);
        assert_eq!(out.gate_count(), nl.gate_count());
    }

    #[test]
    fn bypass_skips_self_looped_gates_instead_of_panicking() {
        // A gate whose first input is its own output net — invalid, but
        // representable via `from_parts_unchecked`, and exactly what the
        // shrinker may be handed when minimizing a lint-oracle failure.
        // `bypass_gate` used to panic unwrapping the removed net's slot.
        let nets = vec![
            Net {
                name: Some("i".into()),
                driver: NetDriver::Input(0),
            },
            Net {
                name: Some("loop".into()),
                driver: NetDriver::Gate(GateId::from_index(0)),
            },
            Net {
                name: Some("y".into()),
                driver: NetDriver::Gate(GateId::from_index(1)),
            },
        ];
        let gates = vec![
            Gate {
                kind: GateKind::Buf,
                inputs: vec![NetId::from_index(1)], // reads its own output
                output: NetId::from_index(1),
            },
            Gate {
                kind: GateKind::And,
                inputs: vec![NetId::from_index(0), NetId::from_index(1)],
                output: NetId::from_index(2),
            },
        ];
        let nl = Netlist::from_parts_unchecked(
            "selfloop".into(),
            nets,
            gates,
            vec![],
            vec![NetId::from_index(0)],
            vec![NetId::from_index(2)],
        );
        assert!(bypass_gate(&nl, GateId::from_index(0)).is_none());
        // The well-formed sibling gate is still a legal bypass target
        // (its candidate may or may not validate; it must not panic).
        let _ = bypass_gate(&nl, GateId::from_index(1));
        // And the driver is robust end-to-end: minimize on the malformed
        // netlist terminates instead of aborting.
        let out = minimize(nl, |n| n.gate_count() >= 1);
        assert!(out.gate_count() >= 1);
    }

    #[test]
    fn bypass_preserves_validity_everywhere() {
        let nl = sample();
        for gid in nl.gate_ids() {
            if let Some(cand) = bypass_gate(&nl, gid) {
                assert_eq!(cand.gate_count(), nl.gate_count() - 1);
                assert_eq!(cand.net_count(), nl.net_count() - 1);
            }
        }
    }
}
