//! Synthetic circuit corpus and differential-fuzzing harness for the
//! BIBS engines.
//!
//! Three pieces:
//!
//! * [`gen`] — seeded, parameterized circuit families (adders and
//!   multipliers up to 64 bits, the paper's filter datapaths, deep DFF
//!   pipelines, multi-kernel register chains, random gate DAGs) with
//!   [`gen::SizeReport`] records for scaling curves;
//! * [`oracle`] — the four differential oracles every corpus circuit is
//!   pushed through (compiled vs reference evaluation, serial vs
//!   parallel reports, dominance expansion vs direct simulation, static
//!   untestability vs exhaustive ground truth);
//! * [`minimize`] — a greedy structural shrinker that reduces a
//!   diverging circuit to a local-minimum witness before it is committed
//!   as a regression fixture.
//!
//! The persistent corpus lives in `corpus/` at the repository root as
//! plain `.bench` files ([`bibs_netlist::bench`]); confirmed failures go
//! to `corpus/regressions/` with a comment header recording the oracle,
//! the seed and the generating family. The `bibs-fuzz` binary drives
//! everything (`--smoke` in CI, `--regressions` as the permanent gate).

#![warn(missing_docs)]

pub mod gen;
pub mod minimize;
pub mod oracle;

use bibs_netlist::{bench, Netlist};
use oracle::Divergence;
use std::io;
use std::path::{Path, PathBuf};

/// Loads every `*.bench` file under `dir`, sorted by file name for
/// deterministic iteration. Files that fail to parse are reported as
/// errors, not skipped — a corrupt corpus must fail loudly.
///
/// # Errors
///
/// I/O errors reading the directory, or [`io::ErrorKind::InvalidData`]
/// wrapping the parse error for an unparseable file.
pub fn load_corpus(dir: &Path) -> io::Result<Vec<(PathBuf, Netlist)>> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_file() && p.extension().and_then(|e| e.to_str()) == Some("bench"))
        .collect();
    paths.sort();
    let mut out = Vec::with_capacity(paths.len());
    for path in paths {
        let text = std::fs::read_to_string(&path)?;
        let nl = bench::from_text(&text).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: {e}", path.display()),
            )
        })?;
        out.push((path, nl));
    }
    Ok(out)
}

/// Parses the `# seed: <n>` header of a regression fixture (written by
/// [`write_regression`]); 0 when absent.
pub fn fixture_seed(text: &str) -> u64 {
    text.lines()
        .filter_map(|l| l.trim().strip_prefix("# seed:"))
        .find_map(|v| v.trim().parse().ok())
        .unwrap_or(0)
}

/// Commits a minimized diverging circuit to `dir` as a regression
/// fixture: a comment header (source family, seed, the divergences it
/// reproduced) followed by the `.bench` text. Returns the path written.
///
/// # Errors
///
/// I/O errors creating the directory or writing the file.
pub fn write_regression(
    dir: &Path,
    source: &str,
    seed: u64,
    netlist: &Netlist,
    divergences: &[Divergence],
) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let mut text = String::new();
    text.push_str(&format!("# source: {source}\n"));
    text.push_str(&format!("# seed: {seed}\n"));
    for d in divergences {
        text.push_str(&format!("# divergence: {d}\n"));
    }
    text.push_str(&bench::to_text(netlist));
    // Deterministic, collision-free name: source plus a content hash.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    let path = dir.join(format!("{source}_{h:016x}.bench"));
    std::fs::write(&path, text)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::Family;
    use crate::oracle::{Divergence, Oracle};

    #[test]
    fn corpus_store_round_trips() {
        let dir = std::env::temp_dir().join(format!("bibs_corpus_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let nl = Family::Adder { width: 3 }.build();
        std::fs::write(dir.join("a.bench"), bench::to_text(&nl)).unwrap();
        let loaded = load_corpus(&dir).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].1.gate_count(), nl.gate_count());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn regression_fixture_headers_survive_parsing() {
        let dir = std::env::temp_dir().join(format!("bibs_regr_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let nl = Family::RandomDag {
            seed: 3,
            inputs: 3,
            ops: 5,
        }
        .build();
        let d = Divergence {
            oracle: Oracle::Parallel,
            detail: "synthetic".into(),
        };
        let path = write_regression(&dir, "dag_3", 99, &nl, &[d]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(fixture_seed(&text), 99);
        // The comment header must not confuse the parser.
        let reparsed = bench::from_text(&text).unwrap();
        assert_eq!(reparsed.gate_count(), nl.gate_count());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_corpus_files_fail_loudly() {
        let dir = std::env::temp_dir().join(format!("bibs_bad_corpus_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("bad.bench"), "o = FROB(a)\n").unwrap();
        assert!(load_corpus(&dir).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
