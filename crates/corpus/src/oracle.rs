//! The seven differential oracles the fuzzer cross-checks per circuit.
//!
//! Each oracle pits two implementations (or one implementation and a
//! ground truth) against each other on the same circuit and reports a
//! [`Divergence`] when they disagree:
//!
//! 1. **Eval** — the compiled [`EvalProgram`]'s good-machine words vs the
//!    gate-walking reference interpreter, on random 64-pattern blocks.
//! 2. **Parallel** — the serial [`FaultSimulator`] report vs the
//!    [`ParFaultSimulator`] at 2 and 4 threads on the same seeded stream
//!    (bit-identical `detection()` and `patterns_applied()`).
//! 3. **Dominance** — exhaustive detection of the full fault universe vs
//!    simulating only dominance-class representatives and expanding.
//! 4. **Prover** — every fault the [`StaticFaultAnalysis`] rules
//!    statically untestable must stay undetected under exhaustive
//!    simulation.
//! 5. **Source** — every [`PatternSource`] kind (seeded random, weighted,
//!    LFSR where the width permits) produces a bit-identical report on
//!    the serial and parallel engines at 2 and 4 threads, and the
//!    source's own stream digest matches across the runs — the pulled
//!    streams themselves were identical, not just the verdicts.
//! 6. **Opt** — the optimizing pass pipeline of [`bibs_netlist::opt`]
//!    must validate (its built-in CEC proves every pass), and the
//!    optimized program must produce a bit-identical fault-simulation
//!    report on the serial and parallel engines — the differential check
//!    behind `table2 --opt`'s byte-identity claim.
//! 7. **Lanes** — wide-word evaluation (256 and 512 lanes via
//!    `with_lanes`) must reproduce the scalar 64-lane report bit for bit
//!    on the same seeded stream, serial and parallel, including a
//!    plateau-stop run that exercises the wide driver's sub-block
//!    retraction — the differential check behind `table2 --lanes`.
//!
//! Oracles 3 and 4 need exhaustive simulation and only run when the
//! circuit has at most [`EXHAUSTIVE_PI_LIMIT`] primary-input bits; 1, 2,
//! 5, 6 and 7 run on everything. Sequential circuits are checked on their
//! [`combinational_equivalent`](Netlist::combinational_equivalent).

use bibs_faultsim::fault::{FaultUniverse, StaticFaultAnalysis};
use bibs_faultsim::par::ParFaultSimulator;
use bibs_faultsim::reference::ReferenceSimulator;
use bibs_faultsim::sim::{BlockSim, FaultSimulator};
use bibs_faultsim::source::{LfsrSource, PatternSource, RandomWords, WeightedRandomSource};
use bibs_netlist::opt::optimize;
use bibs_netlist::{EvalProgram, Netlist};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Largest primary-input width the exhaustive oracles (3 and 4) accept.
pub const EXHAUSTIVE_PI_LIMIT: usize = 16;

/// Random patterns per stream for the non-exhaustive oracles.
const RANDOM_PATTERNS: u64 = 1_024;

/// Pattern budget per source kind for the source oracle.
const SOURCE_PATTERNS: u64 = 256;

/// Which oracle flagged a disagreement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Oracle {
    /// Compiled vs reference good-machine evaluation.
    Eval,
    /// Serial vs parallel fault-simulation reports.
    Parallel,
    /// Dominance-collapsed vs full fault universe.
    Dominance,
    /// Static untestability prover vs exhaustive simulation.
    Prover,
    /// Pattern-source streams across serial/parallel engines.
    Source,
    /// Optimize-then-CEC: validated rewrite, bit-identical reports.
    Opt,
    /// Wide-word (256/512-lane) vs scalar 64-lane reports.
    Lanes,
}

impl fmt::Display for Oracle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Oracle::Eval => "eval",
            Oracle::Parallel => "parallel",
            Oracle::Dominance => "dominance",
            Oracle::Prover => "prover",
            Oracle::Source => "source",
            Oracle::Opt => "opt",
            Oracle::Lanes => "lanes",
        })
    }
}

/// One observed disagreement between an engine and its oracle.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Which oracle fired.
    pub oracle: Oracle,
    /// Human-readable description of the disagreement.
    pub detail: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.oracle, self.detail)
    }
}

/// Runs every applicable oracle on `netlist` (made combinational first)
/// under the deterministic `seed`. An empty result means all engines
/// agree — the invariant `bibs-fuzz --smoke` enforces.
pub fn check_all(netlist: &Netlist, seed: u64) -> Vec<Divergence> {
    let nl = netlist.combinational_equivalent();
    let mut out = Vec::new();
    let program = match EvalProgram::compile(&nl) {
        Ok(p) => p,
        Err(e) => {
            // A corpus circuit that fails to compile is itself a finding.
            out.push(Divergence {
                oracle: Oracle::Eval,
                detail: format!("netlist does not compile: {e}"),
            });
            return out;
        }
    };
    out.extend(check_eval(&nl, &program, seed));
    out.extend(check_parallel(&nl, seed));
    out.extend(check_source(&nl, seed));
    out.extend(check_opt(&nl, &program, seed));
    out.extend(check_lanes(&nl, seed));
    if nl.input_width() <= EXHAUSTIVE_PI_LIMIT {
        out.extend(check_dominance(&nl, &program));
        out.extend(check_prover(&nl, &program));
    }
    out
}

/// Oracle 1: compiled vs reference interpreter on random blocks.
pub fn check_eval(nl: &Netlist, program: &EvalProgram, seed: u64) -> Vec<Divergence> {
    let order = match nl.levelize() {
        Ok(o) => o,
        Err(e) => {
            return vec![Divergence {
                oracle: Oracle::Eval,
                detail: format!("levelize failed on a compiled netlist: {e}"),
            }]
        }
    };
    let mut rng = StdRng::seed_from_u64(seed ^ 0xE7A1);
    let mut compiled = program.new_values();
    let mut interpreted = vec![0u64; nl.net_count()];
    let mut scratch = Vec::new();
    for block in 0..8 {
        let words: Vec<u64> = (0..nl.input_width()).map(|_| rng.gen()).collect();
        program.eval_good(&mut compiled, &words);
        bibs_faultsim::reference::eval_good(nl, &order, &words, &mut interpreted, &mut scratch);
        for id in nl.net_ids() {
            if compiled[id.index()] != interpreted[id.index()] {
                return vec![Divergence {
                    oracle: Oracle::Eval,
                    detail: format!(
                        "net {} block {block}: compiled {:#018x} != reference {:#018x}",
                        id.index(),
                        compiled[id.index()],
                        interpreted[id.index()]
                    ),
                }];
            }
        }
    }
    Vec::new()
}

/// Oracle 2: serial vs parallel reports on the same seeded stream, plus
/// the reference interpreter on the same stream as ground truth.
pub fn check_parallel(nl: &Netlist, seed: u64) -> Vec<Divergence> {
    let faults = FaultUniverse::collapsed(nl).faults().to_vec();
    if faults.is_empty() {
        return Vec::new();
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9A7A);
    let serial = FaultSimulator::new(nl, faults.clone()).run_random(&mut rng, RANDOM_PATTERNS);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9A7A);
    let reference =
        ReferenceSimulator::new(nl, faults.clone()).run_random(&mut rng, RANDOM_PATTERNS);
    let mut out = Vec::new();
    if serial.detection() != reference.detection()
        || serial.patterns_applied() != reference.patterns_applied()
    {
        out.push(Divergence {
            oracle: Oracle::Eval,
            detail: "compiled serial report differs from the reference interpreter".into(),
        });
    }
    for threads in [2usize, 4] {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9A7A);
        let par = ParFaultSimulator::with_threads(nl, faults.clone(), threads)
            .run_random(&mut rng, RANDOM_PATTERNS);
        if par.detection() != serial.detection() {
            out.push(Divergence {
                oracle: Oracle::Parallel,
                detail: format!("detection vector differs at {threads} thread(s)"),
            });
        } else if par.patterns_applied() != serial.patterns_applied() {
            out.push(Divergence {
                oracle: Oracle::Parallel,
                detail: format!("patterns_applied differs at {threads} thread(s)"),
            });
        }
    }
    out
}

/// Oracle 5: every pattern-source kind is engine- and thread-count
/// independent — serial vs parallel (2 and 4 threads) reports are
/// bit-identical, and the freshly built sources end each run with the
/// same stream digest (the engines pulled identical streams). These are
/// explicit comparisons, unlike the `debug_assert`s in
/// [`bibs_faultsim::par::run_source_checked`], so the fuzzer catches
/// regressions in release builds too.
pub fn check_source(nl: &Netlist, seed: u64) -> Vec<Divergence> {
    let faults = FaultUniverse::collapsed(nl).faults().to_vec();
    if faults.is_empty() {
        return Vec::new();
    }
    let width = nl.input_width();
    let source_seed = seed ^ 0x50C5;
    type MakeSource<'a> = (&'static str, Box<dyn Fn() -> Box<dyn PatternSource> + 'a>);
    let mut kinds: Vec<MakeSource> = vec![
        (
            "random",
            Box::new(move || Box::new(RandomWords::seeded(source_seed))),
        ),
        (
            "weighted",
            Box::new(move || {
                Box::new(
                    WeightedRandomSource::new(source_seed, vec![0.75; width])
                        .expect("0.75 is a valid bias"),
                )
            }),
        ),
    ];
    if width <= 64 {
        kinds.push((
            "lfsr",
            Box::new(move || {
                Box::new(LfsrSource::new(width, source_seed | 1).expect("width fits an LFSR"))
            }),
        ));
    }
    let mut out = Vec::new();
    for (kind, make) in kinds {
        let mut serial_source = make();
        let serial = FaultSimulator::new(nl, faults.clone())
            .run_source(&mut *serial_source, SOURCE_PATTERNS);
        for threads in [2usize, 4] {
            let mut par_source = make();
            let par = ParFaultSimulator::with_threads(nl, faults.clone(), threads)
                .run_source(&mut *par_source, SOURCE_PATTERNS);
            if par.detection() != serial.detection()
                || par.patterns_applied() != serial.patterns_applied()
            {
                out.push(Divergence {
                    oracle: Oracle::Source,
                    detail: format!("{kind}: report differs at {threads} thread(s)"),
                });
            }
            if par_source.state_digest() != serial_source.state_digest() {
                out.push(Divergence {
                    oracle: Oracle::Source,
                    detail: format!("{kind}: stream digest differs at {threads} thread(s)"),
                });
            }
        }
    }
    out
}

/// Oracle 6: the optimizing pass pipeline must validate on every corpus
/// circuit, and the CEC-proven rewrite must be behaviorally invisible to
/// the fault simulators — the serial engine on the optimized program and
/// the parallel engine at 2 and 4 threads must reproduce the plain serial
/// report bit for bit on the same seeded stream.
pub fn check_opt(nl: &Netlist, program: &EvalProgram, seed: u64) -> Vec<Divergence> {
    let opt = match optimize(nl, program) {
        Ok(o) => o,
        Err(e) => {
            // The validator refuted (or could not prove) a pass — the
            // exact disagreement the oracle exists to catch.
            return vec![Divergence {
                oracle: Oracle::Opt,
                detail: format!("{e}"),
            }];
        }
    };
    let faults = FaultUniverse::collapsed(nl).faults().to_vec();
    if faults.is_empty() {
        return Vec::new();
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0797);
    let base = FaultSimulator::new(nl, faults.clone()).run_random(&mut rng, RANDOM_PATTERNS);
    let mut out = Vec::new();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0797);
    let serial = FaultSimulator::with_optimized(nl, &opt, faults.clone())
        .run_random(&mut rng, RANDOM_PATTERNS);
    if serial.detection() != base.detection()
        || serial.patterns_applied() != base.patterns_applied()
    {
        out.push(Divergence {
            oracle: Oracle::Opt,
            detail: format!(
                "optimized serial report differs from the plain serial report \
                 ({} instr(s) saved)",
                opt.stats().instrs_saved()
            ),
        });
    }
    for threads in [2usize, 4] {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0797);
        let par = ParFaultSimulator::with_optimized(nl, &opt, faults.clone(), threads)
            .run_random(&mut rng, RANDOM_PATTERNS);
        if par.detection() != base.detection() || par.patterns_applied() != base.patterns_applied()
        {
            out.push(Divergence {
                oracle: Oracle::Opt,
                detail: format!("optimized report differs at {threads} thread(s)"),
            });
        }
    }
    out
}

/// Oracle 7: wide-word evaluation is report-invisible. Each lane width
/// (256 and 512) re-runs the scalar baseline's seeded stream through a
/// `with_lanes`-configured serial engine and the parallel engine at 2
/// threads and requires bit-identical detection and pattern counts; a
/// second, plateau-limited run forces the wide driver to stop mid-sweep
/// and retract sub-blocks the scalar driver would never have applied.
pub fn check_lanes(nl: &Netlist, seed: u64) -> Vec<Divergence> {
    let faults = FaultUniverse::collapsed(nl).faults().to_vec();
    if faults.is_empty() {
        return Vec::new();
    }
    let source_seed = seed ^ 0x7A9E;
    let mut src = RandomWords::seeded(source_seed);
    let full = FaultSimulator::new(nl, faults.clone()).run_source(&mut src, SOURCE_PATTERNS);
    let mut src = RandomWords::seeded(source_seed);
    let stopped =
        FaultSimulator::new(nl, faults.clone()).run_source_with(&mut src, SOURCE_PATTERNS, 64, 1.0);
    let mut out = Vec::new();
    for lanes in [256usize, 512] {
        let mut src = RandomWords::seeded(source_seed);
        let wide = FaultSimulator::new(nl, faults.clone())
            .with_lanes(lanes)
            .run_source(&mut src, SOURCE_PATTERNS);
        if wide.detection() != full.detection()
            || wide.patterns_applied() != full.patterns_applied()
        {
            out.push(Divergence {
                oracle: Oracle::Lanes,
                detail: format!("serial report differs at {lanes} lanes"),
            });
        }
        let mut src = RandomWords::seeded(source_seed);
        let par = ParFaultSimulator::with_threads(nl, faults.clone(), 2)
            .with_lanes(lanes)
            .run_source(&mut src, SOURCE_PATTERNS);
        if par.detection() != full.detection() || par.patterns_applied() != full.patterns_applied()
        {
            out.push(Divergence {
                oracle: Oracle::Lanes,
                detail: format!("parallel report differs at {lanes} lanes (2 threads)"),
            });
        }
        let mut src = RandomWords::seeded(source_seed);
        let wide_stopped = FaultSimulator::new(nl, faults.clone())
            .with_lanes(lanes)
            .run_source_with(&mut src, SOURCE_PATTERNS, 64, 1.0);
        if wide_stopped.detection() != stopped.detection()
            || wide_stopped.patterns_applied() != stopped.patterns_applied()
        {
            out.push(Divergence {
                oracle: Oracle::Lanes,
                detail: format!("plateau-stop report differs at {lanes} lanes"),
            });
        }
    }
    out
}

/// Oracle 3: dominance-collapsed representatives expand to exactly the
/// full universe's exhaustive detection vector.
pub fn check_dominance(nl: &Netlist, program: &EvalProgram) -> Vec<Divergence> {
    let universe = FaultUniverse::full(nl);
    if universe.is_empty() {
        return Vec::new();
    }
    let direct = FaultSimulator::new(nl, universe.faults().to_vec()).run_exhaustive();
    let dc = universe.dominance_collapsed(program);
    let reps = FaultSimulator::new(nl, dc.representative_faults()).run_exhaustive();
    let expanded = dc.expand_detection(reps.detection());
    if expanded != direct.detection() {
        let bad = expanded
            .iter()
            .zip(direct.detection())
            .position(|(a, b)| a != b)
            .unwrap_or(0);
        return vec![Divergence {
            oracle: Oracle::Dominance,
            detail: format!(
                "fault {} ({}): expanded {:?} != direct {:?} ({} reps for {} faults)",
                bad,
                universe.faults()[bad],
                expanded[bad],
                direct.detection()[bad],
                dc.rep_count(),
                dc.universe_len()
            ),
        }];
    }
    Vec::new()
}

/// Oracle 4: statically-proven-untestable faults are never detected
/// exhaustively.
pub fn check_prover(nl: &Netlist, program: &EvalProgram) -> Vec<Divergence> {
    let universe = FaultUniverse::full(nl);
    if universe.is_empty() {
        return Vec::new();
    }
    let sfa = StaticFaultAnalysis::new(program);
    let (_, untestable) = sfa.partition(program, universe.faults());
    if untestable.is_empty() {
        return Vec::new();
    }
    let faults: Vec<_> = untestable.iter().map(|(f, _)| *f).collect();
    let report = FaultSimulator::new(nl, faults.clone()).run_exhaustive();
    for (i, det) in report.detection().iter().enumerate() {
        if let Some(pattern) = det {
            return vec![Divergence {
                oracle: Oracle::Prover,
                detail: format!(
                    "fault {} proven untestable ({}) but detected at pattern {pattern}",
                    faults[i], untestable[i].1.witness
                ),
            }];
        }
    }
    Vec::new()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::Family;

    #[test]
    fn healthy_circuits_produce_no_divergences() {
        for f in [
            Family::Adder { width: 4 },
            Family::Multiplier { width: 3 },
            Family::Pipeline { width: 3, depth: 3 },
            Family::RandomDag {
                seed: 0xBEEF,
                inputs: 5,
                ops: 18,
            },
        ] {
            let nl = f.build();
            let d = check_all(&nl, 42);
            assert!(d.is_empty(), "{f}: {:?}", d);
        }
    }

    #[test]
    fn exhaustive_oracles_respect_the_pi_limit() {
        // A 32-bit adder has 65 PI bits; check_all must not attempt 2^65
        // patterns (it would hang long before failing).
        let nl = Family::Adder { width: 32 }.build();
        assert!(nl.input_width() > EXHAUSTIVE_PI_LIMIT);
        let d = check_all(&nl, 7);
        assert!(d.is_empty(), "{:?}", d);
    }
}
