//! Seeded, parameterized synthetic circuit families.
//!
//! Each [`Family`] value deterministically builds one circuit; the same
//! value always produces the same netlist, so fuzz failures are
//! reproducible from the family description alone (printed in regression
//! fixture headers). The families span the structures the engines care
//! about: carry chains (adders), deep reconvergent arrays (multipliers),
//! the paper's filter datapaths, long DFF pipelines, multi-kernel
//! register-bounded designs, and unstructured random DAGs.
//!
//! [`scaling_suite`] enumerates the instances used for scaling curves —
//! up to 64-bit arithmetic and a design with hundreds of kernels — and
//! [`SizeReport`] records their sizes.

use bibs_netlist::builder::NetlistBuilder;
use bibs_netlist::Netlist;
use bibs_rtl::{Circuit, CircuitBuilder, LogicFunction};
use std::fmt;

/// A deterministic circuit-family instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Ripple-carry adder: two `width`-bit operands, sum plus carry-out.
    Adder {
        /// Operand width in bits.
        width: usize,
    },
    /// Array multiplier truncated to the low `width` product bits (the
    /// paper's datapath convention).
    Multiplier {
        /// Operand width in bits.
        width: usize,
    },
    /// One of the paper's Table 1 filter datapaths, elaborated whole.
    Filter {
        /// Which datapath: 0 = `c5a2m`, 1 = `c3a2m`, 2 = `c4a4m`.
        which: usize,
        /// Datapath word width.
        width: u32,
    },
    /// A `depth`-stage registered pipeline over a `width`-bit XOR/AND
    /// mixing stage — exercises `sequential_depth` and DFF handling.
    Pipeline {
        /// Word width in bits.
        width: usize,
        /// Number of register stages.
        depth: usize,
    },
    /// A register-bounded RTL chain of `stages` add→mul stages. Under the
    /// kernel-width bound from [`Family::bibs_options`] the BIBS TDM is
    /// forced to cut every stage boundary, so `stages` scales the kernel
    /// count directly.
    MultiKernel {
        /// Number of add→mul stages (= kernels).
        stages: usize,
        /// Datapath word width.
        width: u32,
    },
    /// An unstructured random gate DAG from the shared
    /// [`bibs_netlist::testgen`] generator.
    RandomDag {
        /// RNG seed.
        seed: u64,
        /// Number of primary inputs.
        inputs: usize,
        /// Number of gate-creation operations.
        ops: usize,
    },
}

/// Names of the Table 1 filter datapaths, indexed by `Filter::which`.
pub const FILTER_NAMES: [&str; 3] = ["c5a2m", "c3a2m", "c4a4m"];

impl fmt::Display for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Family::Adder { width } => write!(f, "adder{width}"),
            Family::Multiplier { width } => write!(f, "mul{width}"),
            Family::Filter { which, width } => {
                write!(f, "{}_w{width}", FILTER_NAMES[which % 3])
            }
            Family::Pipeline { width, depth } => write!(f, "pipe{width}x{depth}"),
            Family::MultiKernel { stages, width } => write!(f, "kchain{stages}_w{width}"),
            Family::RandomDag { seed, inputs, ops } => {
                write!(f, "dag_{seed:x}_{inputs}i{ops}o")
            }
        }
    }
}

impl Family {
    /// Builds the instance as a gate-level netlist (RTL families are
    /// elaborated whole; registers appear as DFFs).
    pub fn build(self) -> Netlist {
        match self {
            Family::Adder { width } => adder(width),
            Family::Multiplier { width } => multiplier(width),
            Family::Filter { .. } | Family::MultiKernel { .. } => {
                bibs_datapath::elab::elaborate_whole(&self.rtl().expect("RTL family"))
                    .expect("generated RTL elaborates")
                    .netlist
            }
            Family::Pipeline { width, depth } => pipeline(width, depth),
            Family::RandomDag { seed, inputs, ops } => {
                bibs_netlist::testgen::random_netlist_seeded(seed, inputs, ops)
            }
        }
    }

    /// The register-transfer-level circuit behind the instance, for the
    /// families that have one (`Filter`, `MultiKernel`).
    pub fn rtl(self) -> Option<Circuit> {
        match self {
            Family::Filter { which, width } => Some(bibs_datapath::filters::scaled(
                FILTER_NAMES[which % 3],
                width,
            )),
            Family::MultiKernel { stages, width } => Some(multi_kernel(stages, width)),
            _ => None,
        }
    }

    /// BIBS selection options for measuring the instance. `MultiKernel`
    /// bounds the kernel input width at one stage's worth (3·`width`: the
    /// `Rx`/`Rc`/`Rd` TPGs) — a balanced feed-forward chain exhibits no
    /// Definition-1 violation on its own, so without the bound the whole
    /// chain would be a single kernel. The exact search is skipped
    /// (`max_nodes = 0`): its branching factor on a width violation is
    /// the full internal register count, hopeless at hundreds of stages,
    /// while the greedy repair converts exactly the stage boundaries —
    /// which here is also the minimum-cost design.
    pub fn bibs_options(self) -> bibs_core::bibs::BibsOptions {
        let mut opts = bibs_core::bibs::BibsOptions::default();
        if let Family::MultiKernel { width, .. } = self {
            opts.max_kernel_width = Some(3 * width);
            opts.max_nodes = 0;
        }
        opts
    }
}

fn adder(width: usize) -> Netlist {
    let mut b = NetlistBuilder::new(format!("adder{width}"));
    let a = b.input_word("a", width);
    let c = b.input_word("b", width);
    let (s, co) = b.ripple_carry_adder(&a, &c, None);
    b.output_word("s", &s);
    b.output("co", co);
    b.finish().expect("adder is well-formed")
}

fn multiplier(width: usize) -> Netlist {
    let mut b = NetlistBuilder::new(format!("mul{width}"));
    let a = b.input_word("a", width);
    let c = b.input_word("b", width);
    let p = b.array_multiplier(&a, &c, 2 * width);
    b.output_word("p", &p[..width]);
    b.finish().expect("multiplier is well-formed")
}

/// `depth` register stages, each mixing the word with the previous stage
/// (`w[i] = XOR(w[i], AND(w[i-1], w[i]))` bit-rotated) — a deep sequential
/// structure with reconvergence inside every stage.
fn pipeline(width: usize, depth: usize) -> Netlist {
    let mut b = NetlistBuilder::new(format!("pipe{width}x{depth}"));
    let mut word = b.input_word("x", width.max(1));
    for _ in 0..depth {
        let mixed: Vec<_> = (0..word.len())
            .map(|i| {
                let prev = word[(i + word.len() - 1) % word.len()];
                let t = b.and2(prev, word[i]);
                b.xor2(word[i], t)
            })
            .collect();
        word = b.register(&mixed);
    }
    b.output_word("y", &word);
    b.finish().expect("pipeline is well-formed")
}

/// A chain of `stages` IO-registered add→mul stages:
/// `x_{k+1} = reg((reg(x_k) + reg(c_k)) · reg(d_k))`. Every stage sits
/// between registers, so the BIBS TDM extracts one kernel per stage.
fn multi_kernel(stages: usize, width: u32) -> Circuit {
    let stages = stages.max(1);
    let mut b = CircuitBuilder::new(format!("kchain{stages}_w{width}"));
    let x = b.input("x");
    let mut prev = x;
    for k in 0..stages {
        let a = b.logic_fn(format!("A{k}"), LogicFunction::Add);
        let m = b.logic_fn(format!("M{k}"), LogicFunction::Mul { out_width: width });
        let c = b.input(format!("c{k}"));
        let d = b.input(format!("d{k}"));
        b.register(format!("Rx{k}"), width, prev, a);
        b.register(format!("Rc{k}"), width, c, a);
        b.wire(a, m);
        b.register(format!("Rd{k}"), width, d, m);
        prev = m;
    }
    let o = b.output("o");
    b.register("Ro", width, prev, o);
    b.finish().expect("kernel chain is well-formed")
}

/// Size record for one corpus instance, for scaling curves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SizeReport {
    /// Family description (stable across runs).
    pub family: String,
    /// Primary-input bits.
    pub inputs: usize,
    /// Primary-output bits.
    pub outputs: usize,
    /// Gate count.
    pub gates: usize,
    /// Flip-flop count.
    pub dffs: usize,
    /// Combinational logic depth (levels) of the DFF-cut equivalent.
    pub levels: usize,
    /// Kernel count under the BIBS TDM, for the RTL families.
    pub kernels: Option<usize>,
}

impl fmt::Display for SizeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} PI, {} PO, {} gates, {} FF, {} levels",
            self.family, self.inputs, self.outputs, self.gates, self.dffs, self.levels
        )?;
        if let Some(k) = self.kernels {
            write!(f, ", {k} kernels")?;
        }
        Ok(())
    }
}

/// Measures one family instance (building it in the process).
pub fn size_report(family: Family) -> SizeReport {
    let nl = family.build();
    let comb = nl.combinational_equivalent();
    let levels = comb
        .levelize()
        .map(|order| {
            let mut level = vec![0usize; comb.net_count()];
            let mut max = 0;
            for gid in order {
                let g = comb.gate(gid);
                let l = 1 + g.inputs.iter().map(|i| level[i.index()]).max().unwrap_or(0);
                level[g.output.index()] = l;
                max = max.max(l);
            }
            max
        })
        .unwrap_or(0);
    let kernels = family.rtl().map(|circuit| {
        let r = bibs_core::bibs::select(&circuit, &family.bibs_options())
            .expect("generated RTL is IO-registered");
        bibs_core::design::kernels(&r.circuit, &r.design).len()
    });
    SizeReport {
        family: family.to_string(),
        inputs: nl.input_width(),
        outputs: nl.output_width(),
        gates: nl.gate_count(),
        dffs: nl.dff_count(),
        levels,
        kernels,
    }
}

/// The instances used for scaling curves: arithmetic up to 64 bits, deep
/// pipelines, and kernel counts into the hundreds.
pub fn scaling_suite() -> Vec<Family> {
    vec![
        Family::Adder { width: 8 },
        Family::Adder { width: 32 },
        Family::Adder { width: 64 },
        Family::Multiplier { width: 8 },
        Family::Multiplier { width: 16 },
        Family::Multiplier { width: 32 },
        Family::Multiplier { width: 64 },
        Family::Filter { which: 0, width: 8 },
        Family::Filter { which: 1, width: 8 },
        Family::Filter { which: 2, width: 8 },
        Family::Filter {
            which: 0,
            width: 32,
        },
        Family::Pipeline {
            width: 16,
            depth: 64,
        },
        Family::MultiKernel {
            stages: 256,
            width: 8,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_build_deterministically() {
        for f in [
            Family::Adder { width: 4 },
            Family::Multiplier { width: 3 },
            Family::Filter { which: 0, width: 3 },
            Family::Pipeline { width: 3, depth: 4 },
            Family::MultiKernel {
                stages: 5,
                width: 2,
            },
            Family::RandomDag {
                seed: 7,
                inputs: 4,
                ops: 9,
            },
        ] {
            let a = bibs_netlist::bench::to_text(&f.build());
            let b = bibs_netlist::bench::to_text(&f.build());
            assert_eq!(a, b, "{f} must be deterministic");
        }
    }

    #[test]
    fn multi_kernel_scales_kernel_count() {
        let r = size_report(Family::MultiKernel {
            stages: 120,
            width: 2,
        });
        assert_eq!(r.kernels, Some(120), "one kernel per stage: {r}");
    }

    #[test]
    fn pipeline_has_expected_depth() {
        let nl = Family::Pipeline { width: 4, depth: 6 }.build();
        assert_eq!(nl.sequential_depth(), 6);
        assert_eq!(nl.dff_count(), 24);
    }

    #[test]
    fn scaling_suite_covers_the_claimed_extremes() {
        let suite = scaling_suite();
        assert!(suite.contains(&Family::Adder { width: 64 }));
        assert!(suite.contains(&Family::Multiplier { width: 64 }));
        assert!(suite
            .iter()
            .any(|f| matches!(f, Family::MultiKernel { stages, .. } if *stages >= 200)));
    }
}
