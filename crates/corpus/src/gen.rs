//! Seeded, parameterized synthetic circuit families.
//!
//! Each [`Family`] value deterministically builds one circuit; the same
//! value always produces the same netlist, so fuzz failures are
//! reproducible from the family description alone (printed in regression
//! fixture headers). The families span the structures the engines care
//! about: carry chains (adders), deep reconvergent arrays (multipliers),
//! the paper's filter datapaths, long DFF pipelines, multi-kernel
//! register-bounded designs, and unstructured random DAGs.
//!
//! [`scaling_suite`] enumerates the instances used for scaling curves —
//! up to 64-bit arithmetic and a design with hundreds of kernels — and
//! [`SizeReport`] records their sizes.

use bibs_netlist::builder::NetlistBuilder;
use bibs_netlist::Netlist;
use bibs_rtl::{Circuit, CircuitBuilder, LogicFunction};
use std::fmt;

/// A deterministic circuit-family instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Ripple-carry adder: two `width`-bit operands, sum plus carry-out.
    Adder {
        /// Operand width in bits.
        width: usize,
    },
    /// Array multiplier truncated to the low `width` product bits (the
    /// paper's datapath convention).
    Multiplier {
        /// Operand width in bits.
        width: usize,
    },
    /// One of the paper's Table 1 filter datapaths, elaborated whole.
    Filter {
        /// Which datapath: 0 = `c5a2m`, 1 = `c3a2m`, 2 = `c4a4m`.
        which: usize,
        /// Datapath word width.
        width: u32,
    },
    /// A `depth`-stage registered pipeline over a `width`-bit XOR/AND
    /// mixing stage — exercises `sequential_depth` and DFF handling.
    Pipeline {
        /// Word width in bits.
        width: usize,
        /// Number of register stages.
        depth: usize,
    },
    /// A register-bounded RTL chain of `stages` add→mul stages. Under the
    /// kernel-width bound from [`Family::bibs_options`] the BIBS TDM is
    /// forced to cut every stage boundary, so `stages` scales the kernel
    /// count directly.
    MultiKernel {
        /// Number of add→mul stages (= kernels).
        stages: usize,
        /// Datapath word width.
        width: u32,
    },
    /// An unstructured random gate DAG from the shared
    /// [`bibs_netlist::testgen`] generator.
    RandomDag {
        /// RNG seed.
        seed: u64,
        /// Number of primary inputs.
        inputs: usize,
        /// Number of gate-creation operations.
        ops: usize,
    },
    /// A deliberately X-unsafe sequential fixture — each variant trips
    /// exactly one of the B05x sequential lint codes:
    /// 0 = observed never-initialized feedback flop (B050),
    /// 1 = constant-fed stuck register (B052),
    /// 2 = unobservable flop (B053 + B051).
    SeqUnsafe {
        /// Which defect (taken modulo 3).
        variant: usize,
    },
    /// A feed-forward random DAG with registered intermediate nets: every
    /// flop's D cone is PI-driven and every net is XOR-folded into the
    /// output, so the instance is sequentially healthy by construction —
    /// the oracle target for the B050/B051 zero-false-claim test.
    SeqDag {
        /// RNG seed.
        seed: u64,
        /// Number of primary inputs.
        inputs: usize,
        /// Number of gate-creation operations.
        ops: usize,
        /// Number of register insertions.
        dffs: usize,
    },
}

/// Names of the Table 1 filter datapaths, indexed by `Filter::which`.
pub const FILTER_NAMES: [&str; 3] = ["c5a2m", "c3a2m", "c4a4m"];

impl fmt::Display for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Family::Adder { width } => write!(f, "adder{width}"),
            Family::Multiplier { width } => write!(f, "mul{width}"),
            Family::Filter { which, width } => {
                write!(f, "{}_w{width}", FILTER_NAMES[which % 3])
            }
            Family::Pipeline { width, depth } => write!(f, "pipe{width}x{depth}"),
            Family::MultiKernel { stages, width } => write!(f, "kchain{stages}_w{width}"),
            Family::RandomDag { seed, inputs, ops } => {
                write!(f, "dag_{seed:x}_{inputs}i{ops}o")
            }
            Family::SeqUnsafe { variant } => write!(f, "sequnsafe{}", variant % 3),
            Family::SeqDag {
                seed,
                inputs,
                ops,
                dffs,
            } => write!(f, "seqdag_{seed:x}_{inputs}i{ops}o{dffs}f"),
        }
    }
}

impl Family {
    /// Builds the instance as a gate-level netlist (RTL families are
    /// elaborated whole; registers appear as DFFs).
    pub fn build(self) -> Netlist {
        match self {
            Family::Adder { width } => adder(width),
            Family::Multiplier { width } => multiplier(width),
            Family::Filter { .. } | Family::MultiKernel { .. } => {
                bibs_datapath::elab::elaborate_whole(&self.rtl().expect("RTL family"))
                    .expect("generated RTL elaborates")
                    .netlist
            }
            Family::Pipeline { width, depth } => pipeline(width, depth),
            Family::RandomDag { seed, inputs, ops } => {
                bibs_netlist::testgen::random_netlist_seeded(seed, inputs, ops)
            }
            Family::SeqUnsafe { variant } => seq_unsafe(variant),
            Family::SeqDag {
                seed,
                inputs,
                ops,
                dffs,
            } => seq_dag(seed, inputs, ops, dffs),
        }
    }

    /// The register-transfer-level circuit behind the instance, for the
    /// families that have one (`Filter`, `MultiKernel`).
    pub fn rtl(self) -> Option<Circuit> {
        match self {
            Family::Filter { which, width } => Some(bibs_datapath::filters::scaled(
                FILTER_NAMES[which % 3],
                width,
            )),
            Family::MultiKernel { stages, width } => Some(multi_kernel(stages, width)),
            _ => None,
        }
    }

    /// BIBS selection options for measuring the instance. `MultiKernel`
    /// bounds the kernel input width at one stage's worth (3·`width`: the
    /// `Rx`/`Rc`/`Rd` TPGs) — a balanced feed-forward chain exhibits no
    /// Definition-1 violation on its own, so without the bound the whole
    /// chain would be a single kernel. The exact search is skipped
    /// (`max_nodes = 0`): its branching factor on a width violation is
    /// the full internal register count, hopeless at hundreds of stages,
    /// while the greedy repair converts exactly the stage boundaries —
    /// which here is also the minimum-cost design.
    pub fn bibs_options(self) -> bibs_core::bibs::BibsOptions {
        let mut opts = bibs_core::bibs::BibsOptions::default();
        if let Family::MultiKernel { width, .. } = self {
            opts.max_kernel_width = Some(3 * width);
            opts.max_nodes = 0;
        }
        opts
    }
}

fn adder(width: usize) -> Netlist {
    let mut b = NetlistBuilder::new(format!("adder{width}"));
    let a = b.input_word("a", width);
    let c = b.input_word("b", width);
    let (s, co) = b.ripple_carry_adder(&a, &c, None);
    b.output_word("s", &s);
    b.output("co", co);
    b.finish().expect("adder is well-formed")
}

fn multiplier(width: usize) -> Netlist {
    let mut b = NetlistBuilder::new(format!("mul{width}"));
    let a = b.input_word("a", width);
    let c = b.input_word("b", width);
    let p = b.array_multiplier(&a, &c, 2 * width);
    b.output_word("p", &p[..width]);
    b.finish().expect("multiplier is well-formed")
}

/// `depth` register stages, each mixing the word with the previous stage
/// (`w[i] = XOR(w[i], AND(w[i-1], w[i]))` bit-rotated) — a deep sequential
/// structure with reconvergence inside every stage.
fn pipeline(width: usize, depth: usize) -> Netlist {
    let mut b = NetlistBuilder::new(format!("pipe{width}x{depth}"));
    let mut word = b.input_word("x", width.max(1));
    for _ in 0..depth {
        let mixed: Vec<_> = (0..word.len())
            .map(|i| {
                let prev = word[(i + word.len() - 1) % word.len()];
                let t = b.and2(prev, word[i]);
                b.xor2(word[i], t)
            })
            .collect();
        word = b.register(&mixed);
    }
    b.output_word("y", &word);
    b.finish().expect("pipeline is well-formed")
}

/// A chain of `stages` IO-registered add→mul stages:
/// `x_{k+1} = reg((reg(x_k) + reg(c_k)) · reg(d_k))`. Every stage sits
/// between registers, so the BIBS TDM extracts one kernel per stage.
fn multi_kernel(stages: usize, width: u32) -> Circuit {
    let stages = stages.max(1);
    let mut b = CircuitBuilder::new(format!("kchain{stages}_w{width}"));
    let x = b.input("x");
    let mut prev = x;
    for k in 0..stages {
        let a = b.logic_fn(format!("A{k}"), LogicFunction::Add);
        let m = b.logic_fn(format!("M{k}"), LogicFunction::Mul { out_width: width });
        let c = b.input(format!("c{k}"));
        let d = b.input(format!("d{k}"));
        b.register(format!("Rx{k}"), width, prev, a);
        b.register(format!("Rc{k}"), width, c, a);
        b.wire(a, m);
        b.register(format!("Rd{k}"), width, d, m);
        prev = m;
    }
    let o = b.output("o");
    b.register("Ro", width, prev, o);
    b.finish().expect("kernel chain is well-formed")
}

/// One deliberately X-unsafe sequential fixture per B05x defect class.
/// Each instance keeps a healthy PI-to-output path next to the defective
/// flop so the combinational passes stay quiet and the sequential finding
/// stands alone.
fn seq_unsafe(variant: usize) -> Netlist {
    let variant = variant % 3;
    let mut b = NetlistBuilder::new(format!("sequnsafe{variant}"));
    let x = b.input("x");
    match variant {
        // A self-inverting flop observed at the output: its power-up X is
        // permanent and concretely visible (B050).
        0 => {
            let (q, d) = b.register_deferred();
            let nq = b.not(q);
            b.resolve_deferred(d, nq);
            let y = b.or2(q, x);
            b.output("y", y);
        }
        // A flop fed by a tied constant: stuck after one frame (B052).
        1 => {
            let z = b.const0();
            let r = b.register(&[z]);
            let y = b.or2(r[0], x);
            b.output("y", y);
        }
        // A never-initialized flop whose Q feeds nothing (B053 + B051).
        _ => {
            let (q, d) = b.register_deferred();
            let nq = b.not(q);
            b.resolve_deferred(d, nq);
            let y = b.not(x);
            b.output("y", y);
        }
    }
    b.finish().expect("seq-unsafe fixture is well-formed")
}

/// Feed-forward random DAG with `dffs` register insertions. Gate outputs
/// are sometimes registered before joining the operand pool, and the whole
/// pool is XOR-folded into one output — so every flop is PI-initializable
/// and observable by construction.
fn seq_dag(seed: u64, inputs: usize, ops: usize, dffs: usize) -> Netlist {
    fn next(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    let inputs = inputs.max(1);
    let ops = ops.max(1);
    let mut rng = seed;
    let mut b = NetlistBuilder::new(format!("seqdag_{seed:x}_{inputs}i{ops}o{dffs}f"));
    let mut pool: Vec<_> = (0..inputs).map(|i| b.input(format!("x{i}"))).collect();
    let mut remaining = dffs;
    for _ in 0..ops {
        let a = pool[next(&mut rng) as usize % pool.len()];
        let c = pool[next(&mut rng) as usize % pool.len()];
        let out = match next(&mut rng) % 4 {
            0 => b.and2(a, c),
            1 => b.or2(a, c),
            2 => b.xor2(a, c),
            _ => b.not(a),
        };
        // Register roughly dffs of the ops outputs, spread over the run.
        let out = if remaining > 0 && next(&mut rng) % (2 * ops as u64) < 3 * dffs as u64 {
            remaining -= 1;
            b.register(&[out])[0]
        } else {
            out
        };
        pool.push(out);
    }
    while remaining > 0 {
        remaining -= 1;
        let d = pool[pool.len() - 1];
        let q = b.register(&[d])[0];
        pool.push(q);
    }
    let mut acc = pool[0];
    for &n in &pool[1..] {
        acc = b.xor2(acc, n);
    }
    b.output("y", acc);
    b.finish().expect("seq dag is well-formed")
}

/// Size record for one corpus instance, for scaling curves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SizeReport {
    /// Family description (stable across runs).
    pub family: String,
    /// Primary-input bits.
    pub inputs: usize,
    /// Primary-output bits.
    pub outputs: usize,
    /// Gate count.
    pub gates: usize,
    /// Flip-flop count.
    pub dffs: usize,
    /// Combinational logic depth (levels) of the DFF-cut equivalent.
    pub levels: usize,
    /// Kernel count under the BIBS TDM, for the RTL families.
    pub kernels: Option<usize>,
}

impl fmt::Display for SizeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} PI, {} PO, {} gates, {} FF, {} levels",
            self.family, self.inputs, self.outputs, self.gates, self.dffs, self.levels
        )?;
        if let Some(k) = self.kernels {
            write!(f, ", {k} kernels")?;
        }
        Ok(())
    }
}

/// Measures one family instance (building it in the process).
pub fn size_report(family: Family) -> SizeReport {
    let nl = family.build();
    let comb = nl.combinational_equivalent();
    let levels = comb
        .levelize()
        .map(|order| {
            let mut level = vec![0usize; comb.net_count()];
            let mut max = 0;
            for gid in order {
                let g = comb.gate(gid);
                let l = 1 + g.inputs.iter().map(|i| level[i.index()]).max().unwrap_or(0);
                level[g.output.index()] = l;
                max = max.max(l);
            }
            max
        })
        .unwrap_or(0);
    let kernels = family.rtl().map(|circuit| {
        let r = bibs_core::bibs::select(&circuit, &family.bibs_options())
            .expect("generated RTL is IO-registered");
        bibs_core::design::kernels(&r.circuit, &r.design).len()
    });
    SizeReport {
        family: family.to_string(),
        inputs: nl.input_width(),
        outputs: nl.output_width(),
        gates: nl.gate_count(),
        dffs: nl.dff_count(),
        levels,
        kernels,
    }
}

/// The instances used for scaling curves: arithmetic up to 64 bits, deep
/// pipelines, and kernel counts into the hundreds.
pub fn scaling_suite() -> Vec<Family> {
    vec![
        Family::Adder { width: 8 },
        Family::Adder { width: 32 },
        Family::Adder { width: 64 },
        Family::Multiplier { width: 8 },
        Family::Multiplier { width: 16 },
        Family::Multiplier { width: 32 },
        Family::Multiplier { width: 64 },
        Family::Filter { which: 0, width: 8 },
        Family::Filter { which: 1, width: 8 },
        Family::Filter { which: 2, width: 8 },
        Family::Filter {
            which: 0,
            width: 32,
        },
        Family::Pipeline {
            width: 16,
            depth: 64,
        },
        Family::MultiKernel {
            stages: 256,
            width: 8,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_build_deterministically() {
        for f in [
            Family::Adder { width: 4 },
            Family::Multiplier { width: 3 },
            Family::Filter { which: 0, width: 3 },
            Family::Pipeline { width: 3, depth: 4 },
            Family::MultiKernel {
                stages: 5,
                width: 2,
            },
            Family::RandomDag {
                seed: 7,
                inputs: 4,
                ops: 9,
            },
            Family::SeqUnsafe { variant: 0 },
            Family::SeqDag {
                seed: 11,
                inputs: 4,
                ops: 16,
                dffs: 3,
            },
        ] {
            let a = bibs_netlist::bench::to_text(&f.build());
            let b = bibs_netlist::bench::to_text(&f.build());
            assert_eq!(a, b, "{f} must be deterministic");
        }
    }

    #[test]
    fn multi_kernel_scales_kernel_count() {
        let r = size_report(Family::MultiKernel {
            stages: 120,
            width: 2,
        });
        assert_eq!(r.kernels, Some(120), "one kernel per stage: {r}");
    }

    #[test]
    fn pipeline_has_expected_depth() {
        let nl = Family::Pipeline { width: 4, depth: 6 }.build();
        assert_eq!(nl.sequential_depth(), 6);
        assert_eq!(nl.dff_count(), 24);
    }

    #[test]
    fn seq_families_have_the_advertised_shape() {
        for v in 0..3 {
            let nl = Family::SeqUnsafe { variant: v }.build();
            assert_eq!(nl.dff_count(), 1, "sequnsafe{v}");
            nl.validate().unwrap();
        }
        let nl = Family::SeqDag {
            seed: 11,
            inputs: 4,
            ops: 24,
            dffs: 5,
        }
        .build();
        assert_eq!(nl.dff_count(), 5, "every requested register lands");
        nl.validate().unwrap();
    }

    #[test]
    fn scaling_suite_covers_the_claimed_extremes() {
        let suite = scaling_suite();
        assert!(suite.contains(&Family::Adder { width: 64 }));
        assert!(suite.contains(&Family::Multiplier { width: 64 }));
        assert!(suite
            .iter()
            .any(|f| matches!(f, Family::MultiKernel { stages, .. } if *stages >= 200)));
    }
}
