//! Differential fuzzer over the synthetic corpus.
//!
//! `bibs-fuzz --smoke` runs N seeded circuits (on-disk `corpus/*.bench`
//! seeds first, then generated family instances) through the seven
//! differential oracles; any divergence is minimized and committed to
//! `corpus/regressions/` as a `.bench` fixture, and the run exits
//! nonzero. `bibs-fuzz --regressions` replays every committed fixture —
//! the permanent gate that past failures stay fixed. `bibs-fuzz --sizes`
//! prints the scaling-suite size reports, and `--write-seeds`
//! (re)generates the committed `corpus/*.bench` seed files.
//!
//! `bibs-fuzz --cec A.bench B.bench` runs the standalone combinational
//! equivalence checker on two netlists: exit 0 with the proof statistics
//! when they are equivalent, exit 1 printing a named counterexample
//! (replayed through both programs) when they are not — the CI gate for
//! the committed adversarial fixtures uses this to prove the validator
//! actually rejects broken rewrites.

use bibs_corpus::gen::{scaling_suite, size_report, Family};
use bibs_corpus::{fixture_seed, load_corpus, oracle, write_regression};
use bibs_netlist::Netlist;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const DEFAULT_CASES: usize = 200;
const DEFAULT_SEED: u64 = 0xB1B5;

/// The committed seed circuits: one representative per family, small
/// enough that all four oracles (including the exhaustive two) apply.
const SEED_FAMILIES: [Family; 8] = [
    Family::Adder { width: 4 },
    Family::Multiplier { width: 3 },
    Family::Filter { which: 0, width: 3 },
    Family::Filter { which: 1, width: 2 },
    Family::Filter { which: 2, width: 2 },
    Family::Pipeline { width: 3, depth: 4 },
    Family::MultiKernel {
        stages: 4,
        width: 2,
    },
    Family::RandomDag {
        seed: 0xC0FFEE,
        inputs: 6,
        ops: 20,
    },
];

/// Sequential seeds, committed under `corpus/seq/` instead of the corpus
/// root: the smoke oracles reason over the combinational equivalent, where
/// a feedback flop turns into a combinational cycle, so these instances
/// are kept out of [`load_corpus`]'s non-recursive seed scan — the
/// recursive `bibs-lint --batch corpus/` walk still lints them.
const SEQ_SEED_FAMILIES: [Family; 5] = [
    Family::SeqUnsafe { variant: 0 },
    Family::SeqUnsafe { variant: 1 },
    Family::SeqUnsafe { variant: 2 },
    Family::SeqDag {
        seed: 0xB1B5_0001,
        inputs: 5,
        ops: 24,
        dffs: 4,
    },
    Family::SeqDag {
        seed: 0xB1B5_0002,
        inputs: 6,
        ops: 40,
        dffs: 8,
    },
];

fn usage() -> ! {
    eprintln!(
        "usage: bibs-fuzz (--smoke | --regressions | --sizes | --write-seeds \
         | --cec A.bench B.bench) [--cases N] [--seed S] [--corpus DIR]"
    );
    std::process::exit(2);
}

enum Mode {
    Smoke,
    Regressions,
    Sizes,
    WriteSeeds,
    Cec(PathBuf, PathBuf),
}

fn main() -> ExitCode {
    let mut mode = None;
    let mut cases = DEFAULT_CASES;
    let mut seed = DEFAULT_SEED;
    let mut corpus_dir = PathBuf::from("corpus");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => mode = Some(Mode::Smoke),
            "--regressions" => mode = Some(Mode::Regressions),
            "--sizes" => mode = Some(Mode::Sizes),
            "--write-seeds" => mode = Some(Mode::WriteSeeds),
            "--cec" => {
                let a = args.next().map(PathBuf::from).unwrap_or_else(|| usage());
                let b = args.next().map(PathBuf::from).unwrap_or_else(|| usage());
                mode = Some(Mode::Cec(a, b));
            }
            "--cases" => {
                cases = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--corpus" => corpus_dir = args.next().map(PathBuf::from).unwrap_or_else(|| usage()),
            _ => usage(),
        }
    }
    match mode {
        Some(Mode::Smoke) => smoke(cases, seed, &corpus_dir),
        Some(Mode::Regressions) => regressions(&corpus_dir),
        Some(Mode::Sizes) => {
            for family in scaling_suite() {
                println!("{}", size_report(family));
            }
            ExitCode::SUCCESS
        }
        Some(Mode::WriteSeeds) => write_seeds(&corpus_dir),
        Some(Mode::Cec(a, b)) => cec(&a, &b),
        None => usage(),
    }
}

/// The deterministic generated-case mix: mostly random DAGs (the widest
/// structural net), interleaved with small family instances whose PI
/// width keeps the exhaustive oracles in play.
fn generated_case(seed: u64, i: usize) -> Family {
    let s = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(i as u64);
    match i % 8 {
        0 => Family::Adder { width: 2 + i % 5 },
        1 => Family::Multiplier { width: 2 + i % 3 },
        2 => Family::Filter {
            which: i % 3,
            width: 2 + (i as u32 / 3) % 3,
        },
        3 => Family::Pipeline {
            width: 2 + i % 4,
            depth: 1 + i % 5,
        },
        4 => Family::MultiKernel {
            stages: 1 + i % 6,
            width: 2,
        },
        _ => Family::RandomDag {
            seed: s,
            inputs: 2 + (s as usize >> 8) % 7,
            ops: 4 + (s as usize >> 16) % 28,
        },
    }
}

fn write_seeds(corpus_dir: &Path) -> ExitCode {
    if let Err(e) = std::fs::create_dir_all(corpus_dir) {
        eprintln!("error: cannot create {}: {e}", corpus_dir.display());
        return ExitCode::FAILURE;
    }
    for family in SEED_FAMILIES {
        let path = corpus_dir.join(format!("{family}.bench"));
        let text = bibs_netlist::bench::to_text(&family.build());
        if let Err(e) = std::fs::write(&path, text) {
            eprintln!("error: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("wrote {}", path.display());
    }
    let seq_dir = corpus_dir.join("seq");
    if let Err(e) = std::fs::create_dir_all(&seq_dir) {
        eprintln!("error: cannot create {}: {e}", seq_dir.display());
        return ExitCode::FAILURE;
    }
    for family in SEQ_SEED_FAMILIES {
        let path = seq_dir.join(format!("{family}.bench"));
        let text = bibs_netlist::bench::to_text(&family.build());
        if let Err(e) = std::fs::write(&path, text) {
            eprintln!("error: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("wrote {}", path.display());
    }
    ExitCode::SUCCESS
}

fn smoke(cases: usize, seed: u64, corpus_dir: &Path) -> ExitCode {
    let mut queue: Vec<(String, Netlist)> = Vec::new();
    match load_corpus(corpus_dir) {
        Ok(seeds) => {
            for (path, nl) in seeds {
                let name = path
                    .file_stem()
                    .and_then(|s| s.to_str())
                    .unwrap_or("seed")
                    .to_string();
                queue.push((format!("corpus:{name}"), nl));
            }
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            eprintln!("note: no corpus directory at {}", corpus_dir.display());
        }
        Err(e) => {
            eprintln!("error: cannot load corpus: {e}");
            return ExitCode::FAILURE;
        }
    }
    for i in queue.len()..cases.max(queue.len()) {
        let family = generated_case(seed, i);
        queue.push((family.to_string(), family.build()));
    }

    let mut failures = 0usize;
    for (i, (name, nl)) in queue.iter().enumerate() {
        let case_seed = seed ^ (i as u64).wrapping_mul(0xD1B5_4A32_D192_ED03);
        let divergences = oracle::check_all(nl, case_seed);
        if divergences.is_empty() {
            continue;
        }
        failures += 1;
        eprintln!("FAIL {name} (case {i}, seed {case_seed}):");
        for d in &divergences {
            eprintln!("  {d}");
        }
        let first = divergences[0].oracle;
        let small = bibs_corpus::minimize::minimize(nl.clone(), |cand| {
            oracle::check_all(cand, case_seed)
                .iter()
                .any(|d| d.oracle == first)
        });
        let final_div = oracle::check_all(&small, case_seed);
        match write_regression(
            &corpus_dir.join("regressions"),
            name,
            case_seed,
            &small,
            &final_div,
        ) {
            Ok(path) => eprintln!(
                "  minimized {} -> {} gates, committed {}",
                nl.gate_count(),
                small.gate_count(),
                path.display()
            ),
            Err(e) => eprintln!("  minimized but could not write fixture: {e}"),
        }
    }
    println!(
        "bibs-fuzz: {} case(s), {} divergence(s)",
        queue.len(),
        failures
    );
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Standalone CEC driver: loads two `.bench` netlists, compiles their
/// combinational equivalents and asks [`bibs_netlist::cec::check`] whether
/// they implement the same function. A refutation prints the witness with
/// input/output names taken from the first netlist and replays it through
/// both programs so the mismatch is demonstrated, not just asserted.
fn cec(path_a: &Path, path_b: &Path) -> ExitCode {
    use bibs_netlist::cec::{check, CecResult};
    use bibs_netlist::EvalProgram;

    fn load(path: &Path) -> Result<(Netlist, EvalProgram), String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let nl = bibs_netlist::bench::from_text(&text)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        let comb = nl.combinational_equivalent();
        let program = EvalProgram::compile(&comb)
            .map_err(|e| format!("{}: does not compile: {e}", path.display()))?;
        Ok((comb, program))
    }

    let ((nl_a, prog_a), (_nl_b, prog_b)) = match (load(path_a), load(path_b)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match check(&prog_a, &prog_b) {
        CecResult::Proven(stats) => {
            println!(
                "bibs-fuzz: equivalent — {} output(s) proven ({} structural, \
                 {} exhaustive, {} classes, {} patterns{})",
                stats.outputs,
                stats.structural,
                stats.exhaustive,
                stats.classes,
                stats.patterns,
                if stats.whole_space {
                    ", whole input space swept"
                } else {
                    ""
                }
            );
            ExitCode::SUCCESS
        }
        CecResult::Refuted(w) => {
            println!("bibs-fuzz: NOT equivalent — counterexample:");
            println!("  {}", w.render(&nl_a));
            let (got_a, got_b) = w.replay(&prog_a, &prog_b);
            println!(
                "  replayed: {} -> {}, {} -> {}",
                path_a.display(),
                u8::from(got_a),
                path_b.display(),
                u8::from(got_b)
            );
            ExitCode::FAILURE
        }
        CecResult::Unknown { unproven, stats } => {
            println!(
                "bibs-fuzz: UNKNOWN — {} of {} output(s) neither proven nor \
                 refuted within budget",
                unproven.len(),
                stats.outputs
            );
            ExitCode::FAILURE
        }
        CecResult::Incompatible(why) => {
            println!("bibs-fuzz: INCOMPATIBLE — {why}");
            ExitCode::FAILURE
        }
    }
}

fn regressions(corpus_dir: &Path) -> ExitCode {
    let dir = corpus_dir.join("regressions");
    let fixtures = match load_corpus(&dir) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            println!("bibs-fuzz: no regression fixtures at {}", dir.display());
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("error: cannot load regressions: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut failures = 0usize;
    for (path, nl) in &fixtures {
        let seed = std::fs::read_to_string(path)
            .map(|t| fixture_seed(&t))
            .unwrap_or(0);
        let divergences = oracle::check_all(nl, seed);
        if divergences.is_empty() {
            continue;
        }
        failures += 1;
        eprintln!("FAIL {} (seed {seed}):", path.display());
        for d in &divergences {
            eprintln!("  {d}");
        }
    }
    println!(
        "bibs-fuzz: {} fixture(s), {} still diverging",
        fixtures.len(),
        failures
    );
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
