//! The circuit front door: one loader for every on-disk circuit format.
//!
//! The bench pipeline historically only read the repo's own RTL `.ckt`
//! files. This module dispatches on the file extension and hands back a
//! [`LoadedCircuit`] the tools can consume uniformly:
//!
//! * `.ckt` — the RTL format of [`bibs_rtl::fmt`], elaborated whole to a
//!   gate-level netlist. Both the [`Circuit`] (for TDM selection /
//!   Table 2 runs) and the [`Netlist`] are available.
//! * `.bench` — ISCAS-85/89 interchange text ([`bibs_netlist::bench`]),
//!   gate-level only — unless the file carries an **RTL sidecar** (see
//!   below), in which case the original `Circuit` is recovered too.
//! * `.v` — the structural-Verilog subset of
//!   [`bibs_netlist::verilog`], gate-level only.
//!
//! # The RTL sidecar
//!
//! A gate-level `.bench` file cannot feed the register-transfer-level
//! stages of the pipeline (kernel extraction needs register edges, which
//! elaboration flattens away). When a `.bench` file is *written by this
//! repo* via [`bench_with_rtl`], every line of the canonical `.ckt` text
//! is embedded as a `# rtl:` comment after the gate section. Stock ISCAS
//! tools ignore those comments; this loader parses them back, elaborates
//! the recovered circuit and cross-checks that it produces **exactly**
//! the gates in the file (byte-equal `.bench` text), so the sidecar can
//! never drift from the netlist it annotates. A `.bench` without a
//! sidecar simply loads as [`LoadedCircuit::Gate`].

use crate::elab::{elaborate_whole, ElabError};
use bibs_netlist::{bench, verilog, Netlist};
use bibs_rtl::Circuit;
use std::fmt;
use std::path::{Path, PathBuf};

/// Prefix of the sidecar comment lines [`bench_with_rtl`] emits.
pub const RTL_SIDECAR_PREFIX: &str = "# rtl:";

/// A circuit loaded through the front door.
#[derive(Debug, Clone)]
pub enum LoadedCircuit {
    /// RTL source (a `.ckt` file or a `.bench` RTL sidecar): the circuit
    /// plus its whole-design elaboration.
    Rtl {
        /// The register-transfer-level circuit.
        circuit: Circuit,
        /// `circuit` elaborated whole ([`elaborate_whole`]).
        netlist: Netlist,
    },
    /// Gate-level source with no RTL behind it.
    Gate {
        /// The parsed netlist.
        netlist: Netlist,
    },
}

impl LoadedCircuit {
    /// The gate-level netlist (always present).
    pub fn netlist(&self) -> &Netlist {
        match self {
            LoadedCircuit::Rtl { netlist, .. } | LoadedCircuit::Gate { netlist } => netlist,
        }
    }

    /// The RTL circuit, when the source carried one.
    pub fn circuit(&self) -> Option<&Circuit> {
        match self {
            LoadedCircuit::Rtl { circuit, .. } => Some(circuit),
            LoadedCircuit::Gate { .. } => None,
        }
    }
}

/// Errors from the front-door loader.
#[derive(Debug)]
pub enum FrontError {
    /// The file could not be read.
    Io {
        /// The offending path.
        path: PathBuf,
        /// The underlying I/O error.
        error: std::io::Error,
    },
    /// The path has no extension this loader dispatches on.
    UnknownExtension {
        /// The offending path.
        path: PathBuf,
    },
    /// `.ckt` (or sidecar) text failed to parse.
    Ckt(bibs_rtl::fmt::ParseError),
    /// `.bench` text failed to parse.
    Bench(bench::ParseError),
    /// `.v` text failed to parse.
    Verilog(verilog::ParseError),
    /// RTL parsed but could not be elaborated to gates.
    Elab(ElabError),
    /// A `.bench` RTL sidecar elaborates to a different netlist than the
    /// gate section of the same file — the file was edited inconsistently.
    SidecarMismatch,
}

impl fmt::Display for FrontError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrontError::Io { path, error } => {
                write!(f, "cannot read {}: {error}", path.display())
            }
            FrontError::UnknownExtension { path } => write!(
                f,
                "{}: unknown circuit format (expected .ckt, .bench or .v)",
                path.display()
            ),
            FrontError::Ckt(e) => write!(f, "invalid .ckt: {e}"),
            FrontError::Bench(e) => write!(f, "invalid .bench: {e}"),
            FrontError::Verilog(e) => write!(f, "invalid .v: {e}"),
            FrontError::Elab(e) => write!(f, "elaboration failed: {e}"),
            FrontError::SidecarMismatch => write!(
                f,
                "the # rtl: sidecar does not elaborate to the gates in the file"
            ),
        }
    }
}

impl std::error::Error for FrontError {}

impl From<ElabError> for FrontError {
    fn from(e: ElabError) -> Self {
        FrontError::Elab(e)
    }
}

/// Loads a circuit file, dispatching on its extension (`.ckt`, `.bench`,
/// `.v`; case-insensitive).
///
/// # Errors
///
/// [`FrontError::Io`] when the file cannot be read,
/// [`FrontError::UnknownExtension`] for anything else on disk, plus
/// whatever the per-format loaders return.
pub fn load_path(path: &Path) -> Result<LoadedCircuit, FrontError> {
    let ext = path
        .extension()
        .and_then(|e| e.to_str())
        .map(|e| e.to_ascii_lowercase())
        .unwrap_or_default();
    let read = |path: &Path| {
        std::fs::read_to_string(path).map_err(|error| FrontError::Io {
            path: path.to_path_buf(),
            error,
        })
    };
    match ext.as_str() {
        "ckt" => load_ckt_text(&read(path)?),
        "bench" => load_bench_text(&read(path)?),
        "v" => load_verilog_text(&read(path)?),
        _ => Err(FrontError::UnknownExtension {
            path: path.to_path_buf(),
        }),
    }
}

/// Loads `.ckt` text: parse, then elaborate the whole design.
pub fn load_ckt_text(text: &str) -> Result<LoadedCircuit, FrontError> {
    let circuit = bibs_rtl::fmt::from_text(text).map_err(FrontError::Ckt)?;
    let netlist = elaborate_whole(&circuit)?.netlist;
    Ok(LoadedCircuit::Rtl { circuit, netlist })
}

/// Loads `.bench` text; recovers and cross-checks the RTL sidecar when
/// one is present.
pub fn load_bench_text(text: &str) -> Result<LoadedCircuit, FrontError> {
    let netlist = bench::from_text(text).map_err(FrontError::Bench)?;
    let Some(rtl_text) = extract_rtl_sidecar(text) else {
        return Ok(LoadedCircuit::Gate { netlist });
    };
    let circuit = bibs_rtl::fmt::from_text(&rtl_text).map_err(FrontError::Ckt)?;
    let elaborated = elaborate_whole(&circuit)?.netlist;
    // The sidecar is only trusted when it reproduces the gate section
    // exactly; `.bench` printing is canonical, so byte equality is the
    // right notion of "same netlist".
    if bench::to_text(&elaborated) != bench::to_text(&netlist) {
        return Err(FrontError::SidecarMismatch);
    }
    Ok(LoadedCircuit::Rtl { circuit, netlist })
}

/// Loads structural-Verilog text (gate-level only).
pub fn load_verilog_text(text: &str) -> Result<LoadedCircuit, FrontError> {
    let netlist = verilog::from_verilog(text).map_err(FrontError::Verilog)?;
    Ok(LoadedCircuit::Gate { netlist })
}

/// Collects the `# rtl:` sidecar lines of a `.bench` file back into
/// `.ckt` text, or `None` when the file has no sidecar.
fn extract_rtl_sidecar(text: &str) -> Option<String> {
    let mut rtl = String::new();
    let mut found = false;
    for line in text.lines() {
        if let Some(rest) = line.trim_start().strip_prefix(RTL_SIDECAR_PREFIX) {
            found = true;
            rtl.push_str(rest.strip_prefix(' ').unwrap_or(rest));
            rtl.push('\n');
        }
    }
    found.then_some(rtl)
}

/// Serializes `circuit` as a `.bench` file with an RTL sidecar: the
/// whole-design elaboration printed by [`bench::to_text`], followed by
/// every line of the canonical `.ckt` text as a `# rtl:` comment.
///
/// [`load_bench_text`] on the result recovers the circuit exactly, and
/// re-serializing the recovered circuit reproduces the file byte for
/// byte — the stability property the CI smoke pins for `c5a2m`.
///
/// # Errors
///
/// [`FrontError::Elab`] when the circuit cannot be elaborated.
pub fn bench_with_rtl(circuit: &Circuit) -> Result<String, FrontError> {
    let netlist = elaborate_whole(circuit)?.netlist;
    let mut out = bench::to_text(&netlist);
    for line in bibs_rtl::fmt::to_text(circuit).lines() {
        if line.is_empty() {
            out.push_str(RTL_SIDECAR_PREFIX);
            out.push('\n');
        } else {
            out.push_str(&format!("{RTL_SIDECAR_PREFIX} {line}\n"));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ckt_text_loads_with_rtl() {
        let text = bibs_rtl::fmt::to_text(&crate::fig9::figure9());
        let loaded = load_ckt_text(&text).unwrap();
        assert!(loaded.circuit().is_some());
        assert!(loaded.netlist().gate_count() > 0);
    }

    #[test]
    fn ckt_to_verilog_round_trip_preserves_the_netlist() {
        // The full chain .ckt text -> elaborated netlist -> structural
        // Verilog -> re-import: the interface and gate population survive.
        let text = bibs_rtl::fmt::to_text(&crate::filters::scaled("c3a2m", 3));
        let loaded = load_ckt_text(&text).unwrap();
        let nl = loaded.netlist();
        let v = bibs_netlist::verilog::to_verilog(nl);
        let back = load_verilog_text(&v).unwrap();
        assert!(back.circuit().is_none(), "Verilog is gate-level only");
        assert_eq!(back.netlist().input_width(), nl.input_width());
        assert_eq!(back.netlist().output_width(), nl.output_width());
        assert_eq!(back.netlist().gate_count(), nl.gate_count());
        assert_eq!(back.netlist().dff_count(), nl.dff_count());
    }

    #[test]
    fn bench_sidecar_round_trips_byte_stably() {
        let circuit = crate::filters::scaled("c5a2m", 4);
        let text = bench_with_rtl(&circuit).unwrap();
        let loaded = load_bench_text(&text).unwrap();
        let recovered = loaded.circuit().expect("sidecar recovers RTL");
        assert_eq!(
            bibs_rtl::fmt::to_text(recovered),
            bibs_rtl::fmt::to_text(&circuit)
        );
        assert_eq!(bench_with_rtl(recovered).unwrap(), text, "byte fixpoint");
    }

    #[test]
    fn plain_bench_is_gate_level() {
        let text = "# name: c\nINPUT(a)\nINPUT(b)\nOUTPUT(o)\no = AND(a, b)\n";
        let loaded = load_bench_text(text).unwrap();
        assert!(loaded.circuit().is_none());
        assert_eq!(loaded.netlist().gate_count(), 1);
    }

    #[test]
    fn tampered_sidecar_is_rejected() {
        let circuit = crate::filters::scaled("c3a2m", 3);
        let text = bench_with_rtl(&circuit).unwrap();
        // Replace the gate section with a different (valid) netlist while
        // keeping the sidecar: the cross-check must fire.
        let sidecar: String = text
            .lines()
            .filter(|l| l.trim_start().starts_with(RTL_SIDECAR_PREFIX))
            .map(|l| format!("{l}\n"))
            .collect();
        let tampered = format!("INPUT(a)\nOUTPUT(o)\no = NOT(a)\n{sidecar}");
        assert!(matches!(
            load_bench_text(&tampered),
            Err(FrontError::SidecarMismatch)
        ));
    }

    #[test]
    fn unknown_extension_is_reported() {
        let err = load_path(Path::new("/nonexistent/foo.xyz")).unwrap_err();
        assert!(matches!(err, FrontError::UnknownExtension { .. }));
        let err = load_path(Path::new("/nonexistent/foo.ckt")).unwrap_err();
        assert!(matches!(err, FrontError::Io { .. }));
    }
}
