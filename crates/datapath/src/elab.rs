//! Elaboration of RTL circuit graphs into gate-level netlists.
//!
//! Fault-coverage experiments (Table 2 of the paper) need gate-level views
//! of two kinds of test configuration:
//!
//! * the **whole datapath** as one BIBS kernel — primary inputs at the PI
//!   BILBO registers, observation at the PO BILBO register(s), all internal
//!   registers plain (they become wires in the combinational equivalent);
//! * **individual blocks** as kernels of the Krasniewski–Albicki TDM —
//!   inputs and observation at the registers surrounding one adder or
//!   multiplier.
//!
//! [`elaborate_kernel`] covers both: it takes a *cut set* of register edges
//! (the BILBO registers) and a kernel vertex set, creates netlist primary
//! inputs for cut edges entering the kernel and primary outputs for cut
//! edges leaving it, and elaborates everything in between.

use bibs_netlist::builder::NetlistBuilder;
use bibs_netlist::{NetId, Netlist, NetlistError};
use bibs_rtl::{Circuit, EdgeId, EdgeKind, LogicFunction, VertexId, VertexKind};
use std::collections::HashSet;
use std::fmt;

/// Errors from elaboration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ElabError {
    /// The kernel subgraph (cut edges removed) contains a directed cycle.
    CyclicKernel,
    /// A logic block has the wrong number of input ports for its function
    /// (e.g. an `Add` with one input).
    BadArity {
        /// The offending vertex.
        vertex: VertexId,
        /// Number of in-edges found.
        found: usize,
    },
    /// A vertex inside the kernel has no driven inputs and is not fed by a
    /// cut edge — its value would be undefined.
    UndrivenVertex {
        /// The offending vertex.
        vertex: VertexId,
    },
    /// The produced netlist failed validation.
    Netlist(NetlistError),
}

impl fmt::Display for ElabError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElabError::CyclicKernel => write!(f, "kernel subgraph is cyclic"),
            ElabError::BadArity { vertex, found } => {
                write!(f, "vertex {vertex} has invalid input-port count {found}")
            }
            ElabError::UndrivenVertex { vertex } => {
                write!(f, "vertex {vertex} has no driven inputs")
            }
            ElabError::Netlist(e) => write!(f, "netlist error: {e}"),
        }
    }
}

impl std::error::Error for ElabError {}

impl From<NetlistError> for ElabError {
    fn from(e: NetlistError) -> Self {
        ElabError::Netlist(e)
    }
}

/// The result of elaborating a kernel: the netlist plus the order of PI/PO
/// words so callers can map TPG registers onto netlist inputs.
#[derive(Debug, Clone)]
pub struct ElabResult {
    /// The gate-level netlist. Internal (non-cut) registers appear as D
    /// flip-flops; take
    /// [`combinational_equivalent`](Netlist::combinational_equivalent)
    /// before fault simulation.
    pub netlist: Netlist,
    /// For each cut edge made a primary input: `(edge, bit width)`, in the
    /// order the input words were created.
    pub input_edges: Vec<(EdgeId, u32)>,
    /// For each cut edge made a primary output: `(edge, bit width)`, in
    /// output-word creation order.
    pub output_edges: Vec<(EdgeId, u32)>,
}

/// Elaborates one kernel of `circuit` into a gate-level netlist.
///
/// * `kernel` — the vertices of the kernel (logic, fanout, vacuous blocks).
/// * `cut` — register edges treated as test boundaries (BILBO registers):
///   a cut edge whose head is in the kernel becomes a primary-input word; a
///   cut edge whose tail is in the kernel becomes a primary-output word
///   (taking the low *w* bits of the driving bus, *w* = register width).
///
/// Non-cut register edges inside the kernel become D flip-flops.
///
/// # Errors
///
/// See [`ElabError`].
pub fn elaborate_kernel(
    circuit: &Circuit,
    kernel: &HashSet<VertexId>,
    cut: &HashSet<EdgeId>,
) -> Result<ElabResult, ElabError> {
    let in_kernel = |v: VertexId| kernel.contains(&v);
    let keep = |e: EdgeId| {
        !cut.contains(&e) && in_kernel(circuit.edge(e).from) && in_kernel(circuit.edge(e).to)
    };
    let order = circuit
        .topo_order_filtered(keep)
        .ok_or(ElabError::CyclicKernel)?;

    let mut b = NetlistBuilder::new(format!("{}_kernel", circuit.name()));
    // Buses produced at each vertex output.
    let mut bus: Vec<Option<Vec<NetId>>> = vec![None; circuit.vertex_count()];
    // Incoming cut edges become PI words feeding their target vertex as an
    // extra input port.
    let mut input_edges = Vec::new();
    let mut extra_inputs: Vec<Vec<(EdgeId, Vec<NetId>)>> = vec![Vec::new(); circuit.vertex_count()];
    for e in circuit.edge_ids() {
        if cut.contains(&e) && in_kernel(circuit.edge(e).to) {
            let width = circuit
                .edge(e)
                .kind
                .width()
                .expect("cut edges are register edges");
            let name = circuit
                .edge(e)
                .name
                .clone()
                .unwrap_or_else(|| format!("cut{}", e.index()));
            let word = b.input_word(&name, width as usize);
            input_edges.push((e, width));
            extra_inputs[circuit.edge(e).to.index()].push((e, word));
        }
    }

    for &v in &order {
        if !in_kernel(v) {
            continue;
        }
        let vertex = circuit.vertex(v);
        // Collect the vertex's input buses: kernel-internal edges in
        // in-edge order, then incoming cut-edge words.
        let mut inputs: Vec<Vec<NetId>> = Vec::new();
        for &e in circuit.in_edges(v) {
            if !keep(e) {
                continue;
            }
            let src = circuit.edge(e).from;
            let src_bus = bus[src.index()]
                .clone()
                .ok_or(ElabError::UndrivenVertex { vertex: src })?;
            match circuit.edge(e).kind {
                EdgeKind::Register { width } => {
                    let w = (width as usize).min(src_bus.len());
                    inputs.push(b.register(&src_bus[..w]));
                }
                EdgeKind::Wire => inputs.push(src_bus),
            }
        }
        for (_, word) in &extra_inputs[v.index()] {
            inputs.push(word.clone());
        }

        let out = match vertex.kind {
            VertexKind::Input | VertexKind::Output => {
                // IO vertices inside a kernel just forward data.
                inputs.into_iter().next()
            }
            VertexKind::Fanout | VertexKind::Vacuous => {
                if inputs.is_empty() {
                    return Err(ElabError::UndrivenVertex { vertex: v });
                }
                Some(inputs.swap_remove(0))
            }
            VertexKind::Logic => Some(elaborate_logic(&mut b, v, &vertex.function, inputs)?),
        };
        bus[v.index()] = out;
    }

    // Outgoing cut edges become PO words.
    let mut output_edges = Vec::new();
    for e in circuit.edge_ids() {
        if cut.contains(&e) && in_kernel(circuit.edge(e).from) {
            let width = circuit
                .edge(e)
                .kind
                .width()
                .expect("cut edges are register edges") as usize;
            let src = circuit.edge(e).from;
            let src_bus = bus[src.index()]
                .clone()
                .ok_or(ElabError::UndrivenVertex { vertex: src })?;
            let w = width.min(src_bus.len());
            let name = circuit
                .edge(e)
                .name
                .clone()
                .unwrap_or_else(|| format!("obs{}", e.index()));
            b.output_word(&format!("{name}_d"), &src_bus[..w]);
            output_edges.push((e, w as u32));
        }
    }

    Ok(ElabResult {
        netlist: b.finish()?,
        input_edges,
        output_edges,
    })
}

/// Elaborates the whole circuit with its PI-adjacent and PO-adjacent
/// register edges as the cut set — the BIBS single-kernel configuration
/// for a balanced datapath.
pub fn elaborate_whole(circuit: &Circuit) -> Result<ElabResult, ElabError> {
    let mut cut = HashSet::new();
    for e in circuit.register_edges() {
        let edge = circuit.edge(e);
        if circuit.vertex(edge.from).kind == VertexKind::Input
            || circuit.vertex(edge.to).kind == VertexKind::Output
        {
            cut.insert(e);
        }
    }
    let kernel: HashSet<VertexId> = circuit
        .vertex_ids()
        .filter(|&v| {
            !matches!(
                circuit.vertex(v).kind,
                VertexKind::Input | VertexKind::Output
            )
        })
        .collect();
    elaborate_kernel(circuit, &kernel, &cut)
}

fn elaborate_logic(
    b: &mut NetlistBuilder,
    v: VertexId,
    function: &LogicFunction,
    inputs: Vec<Vec<NetId>>,
) -> Result<Vec<NetId>, ElabError> {
    match function {
        LogicFunction::Add => {
            if inputs.len() != 2 {
                return Err(ElabError::BadArity {
                    vertex: v,
                    found: inputs.len(),
                });
            }
            let (a, c) = (&inputs[0], &inputs[1]);
            let w = a.len().min(c.len());
            let (sum, _carry) = b.ripple_carry_adder(&a[..w], &c[..w], None);
            Ok(sum)
        }
        LogicFunction::Sub => {
            if inputs.len() != 2 {
                return Err(ElabError::BadArity {
                    vertex: v,
                    found: inputs.len(),
                });
            }
            let (a, c) = (&inputs[0], &inputs[1]);
            let w = a.len().min(c.len());
            let not_c: Vec<NetId> = c[..w].iter().map(|&x| b.not(x)).collect();
            let one = b.const1();
            let (diff, _carry) = b.ripple_carry_adder(&a[..w], &not_c, Some(one));
            Ok(diff)
        }
        LogicFunction::Mul { out_width: _ } => {
            if inputs.len() != 2 {
                return Err(ElabError::BadArity {
                    vertex: v,
                    found: inputs.len(),
                });
            }
            let (a, c) = (&inputs[0], &inputs[1]);
            let w = a.len().min(c.len());
            // Build the FULL product — MABAL allocates a complete w×w
            // multiplier module. The datapath wires only the low bits of it
            // onward (the register edge truncates), so the high-half logic
            // exists on silicon but is unobservable: exactly the source of
            // undetectable faults the paper's "coverage of detectable
            // faults" phrasing accounts for.
            Ok(b.array_multiplier(&a[..w], &c[..w], 2 * w))
        }
        LogicFunction::Opaque => {
            // A deterministic stand-in: XOR-combine all input buses at the
            // width of the widest one (shorter buses repeat cyclically), so
            // opaque blocks are cheap but fully observable/controllable.
            let width = inputs.iter().map(Vec::len).max().unwrap_or(0);
            if width == 0 {
                return Err(ElabError::UndrivenVertex { vertex: v });
            }
            let mut out: Vec<NetId> = Vec::with_capacity(width);
            for i in 0..width {
                let mut acc: Option<NetId> = None;
                for bus in &inputs {
                    let bit = bus[i % bus.len()];
                    acc = Some(match acc {
                        None => bit,
                        Some(prev) => b.xor2(prev, bit),
                    });
                }
                let bit = acc.expect("at least one input bus");
                // Ensure the net is a fresh gate output so per-block fault
                // sites exist even for single-input opaque blocks.
                out.push(if inputs.len() == 1 {
                    b.gate(bibs_netlist::GateKind::Buf, &[bit])
                } else {
                    bit
                });
            }
            Ok(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bibs_netlist::sim::{broadcast_pattern, PatternSim};
    use bibs_rtl::CircuitBuilder;

    /// PI -Ra-> ADD <-Rb- PI; ADD -Ro-> PO, 4 bits.
    fn adder_circuit() -> Circuit {
        let mut b = CircuitBuilder::new("add");
        let a = b.input("a");
        let c = b.input("b");
        let add = b.logic_fn("ADD", LogicFunction::Add);
        let po = b.output("o");
        b.register("Ra", 4, a, add);
        b.register("Rb", 4, c, add);
        b.register("Ro", 4, add, po);
        b.finish().unwrap()
    }

    #[test]
    fn whole_circuit_elaboration_computes_sum() {
        let circuit = adder_circuit();
        let elab = elaborate_whole(&circuit).unwrap();
        assert_eq!(elab.netlist.input_width(), 8);
        assert_eq!(elab.netlist.output_width(), 4);
        assert_eq!(elab.input_edges.len(), 2);
        assert_eq!(elab.output_edges.len(), 1);
        let comb = elab.netlist.combinational_equivalent();
        let mut sim = PatternSim::new(&comb);
        // a=5, b=9 -> 14 mod 16
        let mut words = broadcast_pattern(5, 4);
        words.extend(broadcast_pattern(9, 4));
        sim.set_inputs(&words);
        sim.eval_comb();
        let out: Vec<_> = comb.outputs().to_vec();
        assert_eq!(sim.output_lane(&out, 0), 14);
    }

    #[test]
    fn multiplier_keeps_full_product_logic() {
        let mut b = CircuitBuilder::new("mul");
        let a = b.input("a");
        let c = b.input("b");
        let mul = b.logic_fn("MUL", LogicFunction::Mul { out_width: 4 });
        let po = b.output("o");
        b.register("Ra", 4, a, mul);
        b.register("Rb", 4, c, mul);
        b.register("Ro", 4, mul, po); // truncates to 4 bits
        let circuit = b.finish().unwrap();
        let elab = elaborate_whole(&circuit).unwrap();
        // Output register keeps 4 of 8 product bits.
        assert_eq!(elab.netlist.output_width(), 4);
        let comb = elab.netlist.combinational_equivalent();
        let mut sim = PatternSim::new(&comb);
        let mut words = broadcast_pattern(7, 4);
        words.extend(broadcast_pattern(5, 4));
        sim.set_inputs(&words);
        sim.eval_comb();
        let out: Vec<_> = comb.outputs().to_vec();
        assert_eq!(sim.output_lane(&out, 0), (7 * 5) & 0xF);
    }

    #[test]
    fn internal_registers_become_dffs() {
        // a -Ra-> C1 -Rm-> C2 -Ro-> o : Rm is internal, so it must appear
        // as flip-flops in the elaborated kernel.
        let mut b = CircuitBuilder::new("pipe");
        let a = b.input("a");
        let c1 = b.logic("C1");
        let c2 = b.logic("C2");
        let po = b.output("o");
        b.register("Ra", 4, a, c1);
        b.register("Rm", 4, c1, c2);
        b.register("Ro", 4, c2, po);
        let circuit = b.finish().unwrap();
        let elab = elaborate_whole(&circuit).unwrap();
        assert_eq!(elab.netlist.dff_count(), 4);
        assert_eq!(elab.netlist.sequential_depth(), 1);
    }

    #[test]
    fn single_block_kernel_extraction() {
        let circuit = adder_circuit();
        let add = circuit.vertex_by_name("ADD").unwrap();
        let kernel: HashSet<VertexId> = [add].into_iter().collect();
        let cut: HashSet<EdgeId> = circuit.register_edges().collect();
        let elab = elaborate_kernel(&circuit, &kernel, &cut).unwrap();
        assert_eq!(elab.netlist.input_width(), 8);
        assert_eq!(elab.netlist.output_width(), 4);
        assert_eq!(elab.netlist.dff_count(), 0);
    }

    #[test]
    fn arity_errors_reported() {
        let mut b = CircuitBuilder::new("bad");
        let a = b.input("a");
        let add = b.logic_fn("ADD", LogicFunction::Add);
        let po = b.output("o");
        b.register("Ra", 4, a, add);
        b.register("Ro", 4, add, po);
        let circuit = b.finish().unwrap();
        assert!(matches!(
            elaborate_whole(&circuit),
            Err(ElabError::BadArity { found: 1, .. })
        ));
    }

    #[test]
    fn fanout_duplicates_bus() {
        let mut b = CircuitBuilder::new("fan");
        let a = b.input("a");
        let f = b.fanout("F");
        let add = b.logic_fn("ADD", LogicFunction::Add);
        let po = b.output("o");
        b.register("Ra", 4, a, f);
        b.wire(f, add);
        b.wire(f, add);
        b.register("Ro", 4, add, po);
        let circuit = b.finish().unwrap();
        let elab = elaborate_whole(&circuit).unwrap();
        let comb = elab.netlist.combinational_equivalent();
        let mut sim = PatternSim::new(&comb);
        sim.set_inputs(&broadcast_pattern(6, 4));
        sim.eval_comb();
        let out: Vec<_> = comb.outputs().to_vec();
        assert_eq!(sim.output_lane(&out, 0), 12, "a + a = 2a");
    }
}
