//! The paper's illustrative circuits: Figures 1, 2, 3, 4 and 12(a).
//!
//! These are the worked examples Sections 2 and 3 reason about; the
//! integration tests and the `examples` bench binary check that our
//! analyses reach the paper's conclusions on them.

use bibs_rtl::{Circuit, CircuitBuilder};

/// Figure 1: an **unbalanced** circuit. PI feeds fanout block `F`; `F`
/// feeds combinational block `C` both directly and through register `R`.
///
/// Every detectable stuck-at fault here is 2-pattern detectable and the
/// circuit is 2-step functionally testable.
pub fn figure1() -> Circuit {
    let mut b = CircuitBuilder::new("fig1");
    let pi = b.input("PI");
    let f = b.fanout("F");
    let c = b.logic("C");
    let po = b.output("PO");
    b.wire(pi, f);
    b.wire(f, c);
    b.register("R", 8, f, c);
    b.wire(c, po);
    b.finish().expect("figure 1 is well-formed")
}

/// Figure 2: a **1-step functionally testable** pipeline
/// `PI -R1-> C1 -R2-> C2 -R3-> PO`.
pub fn figure2() -> Circuit {
    let mut b = CircuitBuilder::new("fig2");
    let pi = b.input("PI");
    let c1 = b.logic("C1");
    let c2 = b.logic("C2");
    let po = b.output("PO");
    b.register("R1", 8, pi, c1);
    b.register("R2", 8, c1, c2);
    b.register("R3", 8, c2, po);
    b.finish().expect("figure 2 is well-formed")
}

/// Figure 3: the example circuit whose graph contains both a **cycle**
/// (`F ↔ H`) and an **URFS** (the reconvergent paths `FO1→A→D→H` with one
/// register edge versus `FO1→C→E→G→H` with two). All registers 8 bits.
pub fn figure3() -> Circuit {
    let mut b = CircuitBuilder::new("fig3");
    let pi = b.input("PI");
    let fo1 = b.fanout("FO1");
    let a = b.logic("A");
    let bb = b.logic("B");
    let c = b.logic("C");
    let d = b.logic("D");
    let e = b.logic("E");
    let g = b.logic("G");
    let h = b.logic("H");
    let f = b.logic("F");
    let po = b.output("PO");
    b.register("R1", 8, pi, fo1);
    b.wire(fo1, a);
    b.wire(fo1, bb);
    b.wire(fo1, c);
    // Unbalanced reconvergence at H.
    b.register("R2", 8, a, d);
    b.wire(d, h);
    b.register("R3", 8, c, e);
    b.register("R4", 8, e, g);
    b.wire(g, h);
    // B is a side branch: B -R7-> V1 -R8-> PO side logic (vacuous block
    // between back-to-back registers, as in the figure).
    let v1 = b.vacuous("V1");
    b.register("R7", 8, bb, v1);
    b.register("R8", 8, v1, h);
    // Cycle F <-> H.
    b.register("R5", 8, h, f);
    b.register("R6", 8, f, h);
    b.wire(h, po);
    b.finish().expect("figure 3 is well-formed")
}

/// Figure 4 (Example 1): the circuit used to show that the partial-scan
/// balancing solution (converting `R3` and `R9` to scan) is **not** enough
/// for BIST — `R3` and `R9` would be TPG and SA simultaneously — so BIBS
/// additionally converts `R7` and `R8`, yielding two balanced BISTable
/// kernels.
///
/// Reconstruction notes (the figure itself is not in the provided text):
/// nine registers; paths from `C1` to `C3` of sequential lengths 3 (via
/// `R2,R4,R3`), 1 (via `R8`), 1 (via `R7`) and 2 (via `R5,R9`), so
/// `{R3, R9}` is a minimum-cost balancing cut for partial scan;
/// BIBS converts `{R1, R3, R7, R8, R9, R6}` (6 registers), giving kernel 1
/// = `{C1,FO,C2,C4,C5,V1,C7}` (TPG `R1`; SAs `R3,R7,R8,R9`) and kernel 2 =
/// `{C3}` (TPGs `R3,R7,R8,R9`; SA `R6`); the TDM of \[3\] converts all nine.
/// The datapath registers `R2`, `R4`, `R5` are 8 bits wide while the
/// status-signal registers `R3`, `R7`, `R8`, `R9` are 2 bits, which makes
/// the paper's 6-register solution the minimum-cost one (cutting the wide
/// registers instead would cost more flip-flops).
pub fn figure4() -> Circuit {
    let mut b = CircuitBuilder::new("fig4");
    let pi = b.input("PI");
    let c1 = b.logic("C1");
    let fo = b.fanout("FO");
    let c2 = b.logic("C2");
    let c4 = b.logic("C4");
    let c5 = b.logic("C5");
    let v1 = b.vacuous("V1");
    let c7 = b.logic("C7");
    let c3 = b.logic("C3");
    let po = b.output("PO");
    b.register("R1", 8, pi, c1);
    b.wire(c1, fo);
    b.wire(fo, c2);
    b.wire(fo, c4);
    b.register("R2", 8, c2, c5);
    b.register("R4", 8, c5, v1);
    b.register("R3", 2, v1, c3);
    b.register("R8", 2, c2, c3);
    b.register("R7", 2, c4, c3);
    b.register("R5", 8, c4, c7);
    b.register("R9", 2, c7, c3);
    b.register("R6", 8, c3, po);
    b.finish().expect("figure 4 is well-formed")
}

/// Figure 12(a): a balanced BISTable kernel whose generalized structure has
/// input registers `R1, R2, R3` (4 bits each in Example 2) at sequential
/// lengths `d = (2, 1, 0)` from the output block `C3`.
///
/// `R1` reaches `C3` through `C1` and then the reconvergent pair
/// `C2`/`C4` (both at length 2 — "represented by a single path"), `R2`
/// enters `C2` (length 1), `R3` enters `C3` directly (length 0), and `C5`
/// is the single-input-port block behind `C3`.
pub fn figure12a() -> Circuit {
    let mut b = CircuitBuilder::new("fig12a");
    let i1 = b.input("IN1");
    let i2 = b.input("IN2");
    let i3 = b.input("IN3");
    let c1 = b.logic("C1");
    let fo = b.fanout("FO");
    let c2 = b.logic("C2");
    let c4 = b.logic("C4");
    let c3 = b.logic("C3");
    let c5 = b.logic("C5");
    let po = b.output("PO");
    b.register("R1", 4, i1, c1);
    b.wire(c1, fo);
    b.register("Ra", 4, fo, c2);
    b.register("Rb", 4, fo, c4);
    b.register("Rc", 4, c2, c3);
    b.register("Rd", 4, c4, c3);
    b.register("R2", 4, i2, c2);
    b.register("R3", 4, i3, c3);
    b.wire(c3, c5);
    b.register("Rout", 4, c5, po);
    b.finish().expect("figure 12a is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use bibs_rtl::SeqLen;

    #[test]
    fn figure1_unbalanced_figure2_balanced() {
        assert!(!figure1().is_balanced());
        assert!(figure2().is_balanced());
    }

    #[test]
    fn figure3_cycle_and_urfs() {
        let c = figure3();
        assert!(!c.is_acyclic());
        let cycle = c.find_cycle().expect("F<->H cycle exists");
        assert!(cycle.len() >= 2);
    }

    #[test]
    fn figure4_imbalance_structure() {
        let c = figure4();
        assert!(c.is_acyclic());
        assert!(!c.is_balanced());
        // C1 -> C3 paths of lengths 1, 1, 2 and 3.
        let c1 = c.vertex_by_name("C1").unwrap();
        let c3 = c.vertex_by_name("C3").unwrap();
        let lens = c.seq_lengths_from(c1).unwrap();
        assert_eq!(lens[c3.index()], SeqLen::Conflict { min: 1, max: 3 });
    }

    #[test]
    fn figure4_scan_cut_balances() {
        // Converting R3 and R9 to scan (cutting those edges) balances the
        // circuit, as the paper's partial-scan solution states.
        let c = figure4();
        let r3 = c.register_by_name("R3").unwrap();
        let r9 = c.register_by_name("R9").unwrap();
        let report = c.balance_report_filtered(|e| e != r3 && e != r9);
        assert!(report.is_balanced());
        // But no single cut suffices.
        for cut in [r3, r9] {
            let rep = c.balance_report_filtered(|e| e != cut);
            assert!(!rep.is_balanced(), "a single cut must not balance fig4");
        }
    }

    #[test]
    fn figure12a_kernel_is_balanced_with_depth_2() {
        let c = figure12a();
        assert!(c.is_balanced());
        // d(R1) = 2, d(R2) = 1, d(R3) = 0 measured at C3.
        let c3 = c.vertex_by_name("C3").unwrap();
        for (reg, expect) in [("R1", 2u32), ("R2", 1), ("R3", 0)] {
            let e = c.register_by_name(reg).unwrap();
            let head = c.edge(e).to;
            let lens = c.seq_lengths_from(head).unwrap();
            assert_eq!(
                lens[c3.index()],
                SeqLen::Exact(expect),
                "sequential length from {reg} to C3"
            );
        }
    }
}
