//! Reconstruction of the example circuit of Krasniewski–Albicki \[3\] used in
//! the paper's Figure 9.
//!
//! The figure itself is not in the provided text, so the circuit is
//! reconstructed to match **every number the paper reports about it**:
//!
//! * the TDM of \[3\] converts **10 BILBO registers totalling 52
//!   flip-flops**;
//! * the BIBS TDM converts **8 BILBO registers totalling 43 flip-flops**;
//! * both TDMs partition the circuit into **two kernels**.
//!
//! Structure: two pipeline stages. Stage 1 (`C1 → C2`) contains two
//! internal registers `R3` (4 bits) and `R4` (5 bits) on parallel balanced
//! paths — \[3\] must convert them because they feed input ports of the
//! two-port block `C2`, but BIBS leaves them plain because the kernel stays
//! balanced. Stage 2 is the block `C3` behind the five mid-cut registers.
//!
//! The paper's BIBS design keeps the two-kernel partition of \[3\] (cutting
//! `Rc1..Rc5`); that partition is the designer's kernel choice, not forced
//! by Definition 1 — on this reconstruction the whole circuit is itself one
//! balanced BISTable kernel, so the unconstrained optimum converts only
//! the three I/O registers. [`bibs_bilbo_names`]/[`ka85_bilbo_names`] name the
//! paper's stated designs; both are verified valid.

use bibs_rtl::{Circuit, CircuitBuilder, EdgeId};

/// Builds the reconstructed Figure 9 circuit.
pub fn figure9() -> Circuit {
    let mut b = CircuitBuilder::new("fig9");
    let i1 = b.input("I1");
    let i2 = b.input("I2");
    let c1 = b.logic("C1");
    let c2 = b.logic("C2");
    let c3 = b.logic("C3");
    let po = b.output("PO");
    // Primary input registers (8 + 8 FFs).
    b.register("R1", 8, i1, c1);
    b.register("R2", 8, i2, c1);
    // Internal stage-1 registers on parallel balanced paths (4 + 5 FFs):
    // these are the two registers BIBS does NOT convert.
    b.register("R3", 4, c1, c2);
    b.register("R4", 5, c1, c2);
    // Mid-cut registers between the kernels (4+4+4+4+3 = 19 FFs).
    b.register("Rc1", 4, c2, c3);
    b.register("Rc2", 4, c2, c3);
    b.register("Rc3", 4, c2, c3);
    b.register("Rc4", 4, c2, c3);
    b.register("Rc5", 3, c2, c3);
    // Primary output register (8 FFs).
    b.register("R10", 8, c3, po);
    b.finish().expect("figure 9 is well-formed")
}

/// The register names the BIBS TDM converts (8 registers, 43 flip-flops).
pub fn bibs_bilbo_names() -> &'static [&'static str] {
    &["R1", "R2", "Rc1", "Rc2", "Rc3", "Rc4", "Rc5", "R10"]
}

/// The register names the TDM of \[3\] converts (all 10 registers, 52
/// flip-flops).
pub fn ka85_bilbo_names() -> &'static [&'static str] {
    &[
        "R1", "R2", "R3", "R4", "Rc1", "Rc2", "Rc3", "Rc4", "Rc5", "R10",
    ]
}

/// Resolves a name list to edge ids on `circuit`.
///
/// # Panics
///
/// Panics if a name is missing — only meaningful for circuits produced by
/// [`figure9`].
pub fn resolve(circuit: &Circuit, names: &[&str]) -> Vec<EdgeId> {
    names
        .iter()
        .map(|n| {
            circuit
                .register_by_name(n)
                .unwrap_or_else(|| panic!("register {n} exists in fig9"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn width_sum(c: &Circuit, names: &[&str]) -> u32 {
        resolve(c, names)
            .iter()
            .map(|&e| c.edge(e).kind.width().expect("register edge"))
            .sum()
    }

    #[test]
    fn flip_flop_totals_match_the_paper() {
        let c = figure9();
        assert_eq!(c.register_edges().count(), 10);
        assert_eq!(c.total_register_bits(), 52);
        assert_eq!(width_sum(&c, bibs_bilbo_names()), 43);
        assert_eq!(width_sum(&c, ka85_bilbo_names()), 52);
        assert_eq!(bibs_bilbo_names().len(), 8);
        assert_eq!(ka85_bilbo_names().len(), 10);
    }

    #[test]
    fn circuit_is_balanced() {
        let c = figure9();
        assert!(c.is_balanced(), "fig9 must be balanced (paths C1→C2 equal)");
    }

    #[test]
    fn bibs_cut_leaves_two_kernels() {
        // Cutting the BIBS BILBO edges separates {C1, C2} from {C3}.
        let c = figure9();
        let cut = resolve(&c, bibs_bilbo_names());
        let c1 = c.vertex_by_name("C1").unwrap();
        let c3 = c.vertex_by_name("C3").unwrap();
        let keep = |e: EdgeId| !cut.contains(&e);
        let reach = c.reachable_from_filtered(c1, keep);
        assert!(reach[c.vertex_by_name("C2").unwrap().index()]);
        assert!(!reach[c3.index()], "C3 is a separate kernel");
    }
}
