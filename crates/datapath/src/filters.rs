//! The paper's three MABAL-synthesized filter datapaths (Table 1) and two
//! extra filter workloads.
//!
//! All datapaths are 8 bits wide. Multipliers compute the full 16-bit
//! product but only the 8 least-significant lines feed the next stage, as
//! the paper states. Pipeline registers follow every block and
//! operand-alignment (delay) registers keep each structure **balanced**, so
//! each circuit is a single balanced BISTable kernel under the BIBS TDM.

use bibs_rtl::{Circuit, CircuitBuilder, LogicFunction, VertexId};

/// Datapath word width used throughout the paper's experiments.
pub const WIDTH: u32 = 8;

fn add(b: &mut CircuitBuilder, name: &str) -> VertexId {
    b.logic_fn(name, LogicFunction::Add)
}

fn mul(b: &mut CircuitBuilder, name: &str) -> VertexId {
    b.logic_fn(name, LogicFunction::Mul { out_width: WIDTH })
}

/// Rebuilds one of the three Table 1 circuits at a different word width
/// (used by fast tests; the paper's experiments are all at [`WIDTH`] = 8).
///
/// The structure — register count, balance, kernel decomposition — is
/// width-independent; only gate counts and pattern counts scale.
///
/// # Panics
///
/// Panics if `width == 0` or `name` is not one of `"c5a2m"`, `"c3a2m"`,
/// `"c4a4m"`.
pub fn scaled(name: &str, width: u32) -> Circuit {
    assert!(width > 0, "width must be positive");
    let base = match name {
        "c5a2m" => c5a2m(),
        "c3a2m" => c3a2m(),
        "c4a4m" => c4a4m(),
        other => panic!("unknown filter circuit {other:?}"),
    };
    if width == WIDTH {
        return base;
    }
    rescale(&base, width)
}

/// Copies a circuit with every register width replaced by `width`.
fn rescale(circuit: &Circuit, width: u32) -> Circuit {
    let mut b = CircuitBuilder::new(format!("{}_w{width}", circuit.name()));
    let ids: Vec<VertexId> = circuit
        .vertex_ids()
        .map(|v| {
            let vx = circuit.vertex(v);
            match vx.kind {
                bibs_rtl::VertexKind::Input => b.input(&vx.name),
                bibs_rtl::VertexKind::Output => b.output(&vx.name),
                bibs_rtl::VertexKind::Fanout => b.fanout(&vx.name),
                bibs_rtl::VertexKind::Vacuous => b.vacuous(&vx.name),
                bibs_rtl::VertexKind::Logic => {
                    let f = match vx.function {
                        LogicFunction::Mul { .. } => LogicFunction::Mul { out_width: width },
                        ref other => other.clone(),
                    };
                    b.logic_fn(&vx.name, f)
                }
            }
        })
        .collect();
    for e in circuit.edge_ids() {
        let edge = circuit.edge(e);
        match edge.kind {
            bibs_rtl::EdgeKind::Register { .. } => {
                b.register(
                    edge.name
                        .clone()
                        .unwrap_or_else(|| format!("r{}", e.index())),
                    width,
                    ids[edge.from.index()],
                    ids[edge.to.index()],
                );
            }
            bibs_rtl::EdgeKind::Wire => {
                b.wire(ids[edge.from.index()], ids[edge.to.index()]);
            }
        }
    }
    b.finish().expect("rescaling preserves well-formedness")
}

/// Inserts a chain of `delays` extra registers between `from` and `to`,
/// using vacuous blocks as intermediate vertices; the first hop is the PI
/// register itself.
///
/// This is the operand-alignment structure a pipelining synthesis tool
/// emits to keep a datapath balanced.
fn delayed_operand(b: &mut CircuitBuilder, pi: VertexId, base: &str, delays: u32, to: VertexId) {
    let mut cur = pi;
    for k in 0..delays {
        let v = b.vacuous(format!("V{base}{k}"));
        let reg = if k == 0 {
            format!("R{base}")
        } else {
            format!("D{base}{k}")
        };
        b.register(reg, WIDTH, cur, v);
        cur = v;
    }
    let last = if delays == 0 {
        format!("R{base}")
    } else {
        format!("D{base}{delays}")
    };
    b.register(last, WIDTH, cur, to);
}

/// `c5a2m`: `o = (a+b)(c+d) + (e+f)(g+h)` — 5 adders, 2 multipliers.
///
/// 15 registers; balanced; sequential depth 4. Under BIBS the 8 PI
/// registers and the PO register (9 total) become BILBOs; under the
/// Krasniewski–Albicki TDM all 15 do.
pub fn c5a2m() -> Circuit {
    let mut b = CircuitBuilder::new("c5a2m");
    let pis: Vec<VertexId> = ["a", "b", "c", "d", "e", "f", "g", "h"]
        .iter()
        .map(|n| b.input(*n))
        .collect();
    let a1 = add(&mut b, "A1");
    let a2 = add(&mut b, "A2");
    let a3 = add(&mut b, "A3");
    let a4 = add(&mut b, "A4");
    let m1 = mul(&mut b, "M1");
    let m2 = mul(&mut b, "M2");
    let a5 = add(&mut b, "A5");
    let po = b.output("o");
    for (i, &(adder, name)) in [
        (a1, "a"),
        (a1, "b"),
        (a2, "c"),
        (a2, "d"),
        (a3, "e"),
        (a3, "f"),
        (a4, "g"),
        (a4, "h"),
    ]
    .iter()
    .enumerate()
    {
        b.register(format!("R{name}"), WIDTH, pis[i], adder);
    }
    b.register("RA1", WIDTH, a1, m1);
    b.register("RA2", WIDTH, a2, m1);
    b.register("RA3", WIDTH, a3, m2);
    b.register("RA4", WIDTH, a4, m2);
    b.register("RM1", WIDTH, m1, a5);
    b.register("RM2", WIDTH, m2, a5);
    b.register("Ro", WIDTH, a5, po);
    b.finish().expect("c5a2m is well-formed")
}

/// `c3a2m`: `o = ((a+b)·c + d)·e + f` — 3 adders, 2 multipliers.
///
/// 21 registers (including the operand-alignment chains for `c`, `d`, `e`,
/// `f`); balanced; sequential depth 6. BIBS needs 7 BILBOs (6 PI + PO);
/// the Krasniewski–Albicki TDM needs 15.
pub fn c3a2m() -> Circuit {
    let mut b = CircuitBuilder::new("c3a2m");
    let pa = b.input("a");
    let pb = b.input("b");
    let pc = b.input("c");
    let pd = b.input("d");
    let pe = b.input("e");
    let pf = b.input("f");
    let a1 = add(&mut b, "A1");
    let m1 = mul(&mut b, "M1");
    let a2 = add(&mut b, "A2");
    let m2 = mul(&mut b, "M2");
    let a3 = add(&mut b, "A3");
    let po = b.output("o");
    b.register("Ra", WIDTH, pa, a1);
    b.register("Rb", WIDTH, pb, a1);
    b.register("RA1", WIDTH, a1, m1);
    delayed_operand(&mut b, pc, "c", 1, m1); // c arrives at seq-len 2
    b.register("RM1", WIDTH, m1, a2);
    delayed_operand(&mut b, pd, "d", 2, a2); // d at seq-len 3
    b.register("RA2", WIDTH, a2, m2);
    delayed_operand(&mut b, pe, "e", 3, m2); // e at seq-len 4
    b.register("RM2", WIDTH, m2, a3);
    delayed_operand(&mut b, pf, "f", 4, a3); // f at seq-len 5
    b.register("Ro", WIDTH, a3, po);
    b.finish().expect("c3a2m is well-formed")
}

/// `c4a4m`: `o = a(f+g) + e(b+c)` and `p = d(b+c) + h(f+g)` — 4 adders,
/// 4 multipliers, 2 outputs.
///
/// 20 registers; the adder outputs fan out to two multipliers each;
/// balanced; sequential depth 4. BIBS needs 10 BILBOs (8 PI + 2 PO); the
/// Krasniewski–Albicki TDM needs all 20.
pub fn c4a4m() -> Circuit {
    let mut b = CircuitBuilder::new("c4a4m");
    let pa = b.input("a");
    let pb = b.input("b");
    let pc = b.input("c");
    let pd = b.input("d");
    let pe = b.input("e");
    let pf = b.input("f");
    let pg = b.input("g");
    let ph = b.input("h");
    let a1 = add(&mut b, "A1"); // f + g
    let a2 = add(&mut b, "A2"); // b + c
    let m1 = mul(&mut b, "M1"); // a * (f+g)
    let m2 = mul(&mut b, "M2"); // e * (b+c)
    let m3 = mul(&mut b, "M3"); // d * (b+c)
    let m4 = mul(&mut b, "M4"); // h * (f+g)
    let a3 = add(&mut b, "A3"); // o
    let a4 = add(&mut b, "A4"); // p
    let o = b.output("o");
    let p = b.output("p");
    b.register("Rf", WIDTH, pf, a1);
    b.register("Rg", WIDTH, pg, a1);
    b.register("Rb", WIDTH, pb, a2);
    b.register("Rc", WIDTH, pc, a2);
    // Adder outputs fan out to two multipliers each.
    let fo1 = b.fanout("FO1");
    let fo2 = b.fanout("FO2");
    b.register("RA1", WIDTH, a1, fo1);
    b.register("RA2", WIDTH, a2, fo2);
    b.wire(fo1, m1);
    b.wire(fo1, m4);
    b.wire(fo2, m2);
    b.wire(fo2, m3);
    // Scalar operands need one alignment stage to stay balanced.
    delayed_operand(&mut b, pa, "a", 1, m1);
    delayed_operand(&mut b, ph, "h", 1, m4);
    delayed_operand(&mut b, pe, "e", 1, m2);
    delayed_operand(&mut b, pd, "d", 1, m3);
    b.register("RM1", WIDTH, m1, a3);
    b.register("RM2", WIDTH, m2, a3);
    b.register("RM3", WIDTH, m3, a4);
    b.register("RM4", WIDTH, m4, a4);
    b.register("Ro", WIDTH, a3, o);
    b.register("Rp", WIDTH, a4, p);
    b.finish().expect("c4a4m is well-formed")
}

/// A transposed-form FIR filter datapath with `taps` coefficient inputs:
/// `y = Σ c_i · x` with the accumulation chain delayed between taps.
///
/// Deliberately **unbalanced**: the path from `x` through tap 0 crosses
/// `taps − 1` more accumulation registers than the path through the last
/// tap. This is the motivating workload for the BIBS register-selection
/// algorithm (it must add BILBO hardware to balance the kernel).
///
/// # Panics
///
/// Panics if `taps < 2`.
pub fn fir_transposed(taps: usize) -> Circuit {
    assert!(taps >= 2, "a transposed FIR needs at least two taps");
    let mut b = CircuitBuilder::new(format!("fir{taps}"));
    let x = b.input("x");
    let fx = b.fanout("FX");
    b.register("Rx", WIDTH, x, fx);
    let po = b.output("y");
    let mut acc: Option<VertexId> = None;
    for i in 0..taps {
        let ci = b.input(format!("c{i}"));
        let mi = mul(&mut b, &format!("M{i}"));
        b.register(format!("Rc{i}"), WIDTH, ci, mi);
        b.wire(fx, mi);
        acc = Some(match acc {
            None => mi,
            Some(prev) => {
                let ai = add(&mut b, &format!("A{i}"));
                b.register(format!("Racc{i}"), WIDTH, prev, ai);
                b.wire(mi, ai);
                ai
            }
        });
    }
    b.register("Ry", WIDTH, acc.expect("taps >= 2"), po);
    b.finish().expect("fir is well-formed")
}

/// A direct-form-I biquad IIR section: contains a feedback **cycle**
/// through the output accumulator, so Theorem 2 applies (at least two
/// BILBO edges are needed on the cycle) and the single-register-cycle
/// remedy (register splitting / CBILBO) can be exercised.
pub fn biquad_iir() -> Circuit {
    let mut b = CircuitBuilder::new("biquad");
    let x = b.input("x");
    let b0 = b.input("b0");
    let a1c = b.input("a1");
    let po = b.output("y");
    let mff = mul(&mut b, "Mff"); // b0 * x
    let mfb = mul(&mut b, "Mfb"); // a1 * y (feedback)
    let acc = add(&mut b, "Acc"); // feedforward + feedback
    let fy = b.fanout("FY");
    b.register("Rx", WIDTH, x, mff);
    b.register("Rb0", WIDTH, b0, mff);
    b.register("Ra1", WIDTH, a1c, mfb);
    b.register("Rff", WIDTH, mff, acc);
    b.register("Rfb", WIDTH, mfb, acc);
    b.register("Racc", WIDTH, acc, fy);
    b.wire(fy, po);
    b.register("Ry1", WIDTH, fy, mfb); // the feedback register: a cycle
    b.finish().expect("biquad is well-formed")
}

/// A cascade of `sections` biquad IIR sections (each with its own feedback
/// cycle), the way higher-order filters are actually built. A larger
/// workload for the BIBS selection search: every section's cycle needs its
/// two BILBO edges (Theorem 2), and the feed-forward chain between
/// sections stays balanced.
///
/// # Panics
///
/// Panics if `sections == 0`.
pub fn biquad_cascade(sections: usize) -> Circuit {
    assert!(sections > 0, "a cascade needs at least one section");
    let mut b = CircuitBuilder::new(format!("cascade{sections}"));
    let x = b.input("x");
    let po = b.output("y");
    let mut carrier = x;
    for s in 0..sections {
        let b0 = b.input(format!("b{s}"));
        let a1 = b.input(format!("a{s}"));
        let mff = mul(&mut b, &format!("Mff{s}"));
        let mfb = mul(&mut b, &format!("Mfb{s}"));
        let acc = add(&mut b, &format!("Acc{s}"));
        let fy = b.fanout(format!("FY{s}"));
        b.register(format!("Rx{s}"), WIDTH, carrier, mff);
        b.register(format!("Rb{s}"), WIDTH, b0, mff);
        b.register(format!("Ra{s}"), WIDTH, a1, mfb);
        b.register(format!("Rff{s}"), WIDTH, mff, acc);
        b.register(format!("Rfb{s}"), WIDTH, mfb, acc);
        b.register(format!("Racc{s}"), WIDTH, acc, fy);
        b.register(format!("Ry{s}"), WIDTH, fy, mfb); // feedback cycle
        carrier = fy;
    }
    b.register("Rout", WIDTH, carrier, po);
    b.finish().expect("cascade is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elab::elaborate_whole;
    use bibs_rtl::VertexKind;

    #[test]
    fn c5a2m_structure_matches_paper() {
        let c = c5a2m();
        assert!(c.is_balanced(), "Table 2 requires c5a2m balanced");
        assert_eq!(c.register_edges().count(), 15);
        assert_eq!(c.inputs().len(), 8);
        assert_eq!(c.outputs().len(), 1);
        assert_eq!(c.sequential_depth(), Some(4));
    }

    #[test]
    fn c3a2m_structure_matches_paper() {
        let c = c3a2m();
        assert!(c.is_balanced());
        assert_eq!(c.register_edges().count(), 21);
        assert_eq!(c.inputs().len(), 6);
        assert_eq!(c.sequential_depth(), Some(6));
    }

    #[test]
    fn c4a4m_structure_matches_paper() {
        let c = c4a4m();
        assert!(c.is_balanced());
        assert_eq!(c.register_edges().count(), 20);
        assert_eq!(c.inputs().len(), 8);
        assert_eq!(c.outputs().len(), 2);
        assert_eq!(c.sequential_depth(), Some(4));
    }

    #[test]
    fn filters_elaborate_and_compute() {
        use bibs_netlist::sim::{broadcast_pattern, PatternSim};
        let c = c5a2m();
        let elab = elaborate_whole(&c).unwrap();
        let comb = elab.netlist.combinational_equivalent();
        let mut sim = PatternSim::new(&comb);
        // a..h = 1..8 -> o = (1+2)(3+4) + (5+6)(7+8) = 21 + 165 = 186
        let mut words = Vec::new();
        for v in 1..=8u64 {
            words.extend(broadcast_pattern(v, 8));
        }
        sim.set_inputs(&words);
        sim.eval_comb();
        let out: Vec<_> = comb.outputs().to_vec();
        assert_eq!(sim.output_lane(&out, 0), 186 & 0xFF);
    }

    #[test]
    fn c3a2m_computes_its_function() {
        use bibs_netlist::sim::{broadcast_pattern, PatternSim};
        let c = c3a2m();
        let elab = elaborate_whole(&c).unwrap();
        let comb = elab.netlist.combinational_equivalent();
        let mut sim = PatternSim::new(&comb);
        // ((a+b)*c + d)*e + f with a=2,b=3,c=4,d=5,e=6,f=7:
        // ((5)*4+5)*6+7 = 25*6+7 = 157
        let mut words = Vec::new();
        for v in [2u64, 3, 4, 5, 6, 7] {
            words.extend(broadcast_pattern(v, 8));
        }
        sim.set_inputs(&words);
        sim.eval_comb();
        let out: Vec<_> = comb.outputs().to_vec();
        assert_eq!(sim.output_lane(&out, 0), 157 & 0xFF);
    }

    #[test]
    fn c4a4m_computes_both_outputs() {
        use bibs_netlist::sim::{broadcast_pattern, PatternSim};
        let c = c4a4m();
        let elab = elaborate_whole(&c).unwrap();
        let comb = elab.netlist.combinational_equivalent();
        let mut sim = PatternSim::new(&comb);
        // a..h = 1..8: o = 1*(6+7) + 5*(2+3) = 13 + 25 = 38
        //              p = 4*(2+3) + 8*(6+7) = 20 + 104 = 124
        // PI words follow elab.input_edges order (register names "R<x>"),
        // so map each operand letter to its value explicitly.
        let mut words = Vec::new();
        for &(edge, _) in &elab.input_edges {
            let name = c.edge(edge).name.as_deref().unwrap();
            let letter = name.as_bytes()[1]; // "Ra" -> 'a'
            let v = (letter - b'a' + 1) as u64;
            words.extend(broadcast_pattern(v, 8));
        }
        sim.set_inputs(&words);
        sim.eval_comb();
        let outs = comb.outputs();
        // Output order follows cut-edge order; find by name prefix.
        let o_bus: Vec<_> = outs
            .iter()
            .copied()
            .filter(|&n| comb.net_name(n).is_some_and(|s| s.starts_with("Ro_d")))
            .collect();
        let p_bus: Vec<_> = outs
            .iter()
            .copied()
            .filter(|&n| comb.net_name(n).is_some_and(|s| s.starts_with("Rp_d")))
            .collect();
        assert_eq!(o_bus.len(), 8);
        assert_eq!(p_bus.len(), 8);
        assert_eq!(sim.output_lane(&o_bus, 0), 38);
        assert_eq!(sim.output_lane(&p_bus, 0), 124);
    }

    #[test]
    fn cascade_has_one_cycle_per_section() {
        let c = biquad_cascade(3);
        assert!(!c.is_acyclic());
        // Cutting each section's feedback register breaks all cycles.
        let feedback: Vec<_> = (0..3)
            .map(|s| c.register_by_name(&format!("Ry{s}")).unwrap())
            .collect();
        assert!(c.find_cycle_filtered(|e| !feedback.contains(&e)).is_none());
        // Any 2-of-3 cut still leaves the remaining section's cycle.
        assert!(c
            .find_cycle_filtered(|e| e != feedback[0] && e != feedback[1])
            .is_some());
    }

    #[test]
    fn fir_is_unbalanced_and_biquad_is_cyclic() {
        let fir = fir_transposed(4);
        assert!(fir.is_acyclic());
        assert!(!fir.is_balanced(), "transposed FIR must be unbalanced");
        let iir = biquad_iir();
        assert!(!iir.is_acyclic(), "biquad must contain a feedback cycle");
        assert!(iir.find_cycle().is_some());
    }

    #[test]
    fn gate_counts_reported_for_table1() {
        // Not the paper's absolute numbers (different cell library), but
        // the ordering must match Table 1: c4a4m > c5a2m > c3a2m.
        let g5 = elaborate_whole(&c5a2m())
            .unwrap()
            .netlist
            .logic_gate_count();
        let g3 = elaborate_whole(&c3a2m())
            .unwrap()
            .netlist
            .logic_gate_count();
        let g4 = elaborate_whole(&c4a4m())
            .unwrap()
            .netlist
            .logic_gate_count();
        assert!(g4 > g5, "c4a4m ({g4}) must exceed c5a2m ({g5})");
        assert!(g5 > g3, "c5a2m ({g5}) must exceed c3a2m ({g3})");
    }

    #[test]
    fn only_pi_po_registers_touch_io() {
        let c = c5a2m();
        let io_regs = c
            .register_edges()
            .filter(|&e| {
                let edge = c.edge(e);
                c.vertex(edge.from).kind == VertexKind::Input
                    || c.vertex(edge.to).kind == VertexKind::Output
            })
            .count();
        assert_eq!(io_regs, 9, "8 PI + 1 PO registers for BIBS");
    }
}
