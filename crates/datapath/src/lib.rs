//! MABAL-substitute datapath circuits and RTL→gate elaboration.
//!
//! The paper evaluates the BIBS TDM on three digital-filter datapaths
//! synthesized by MABAL, the USC module/bus allocation tool (Table 1):
//!
//! | circuit | function |
//! |---------|----------|
//! | `c5a2m` | `o = (a+b)(c+d) + (e+f)(g+h)` |
//! | `c3a2m` | `o = ((a+b)·c + d)·e + f` |
//! | `c4a4m` | `o = a(f+g) + e(b+c)`, `p = d(b+c) + h(f+g)` |
//!
//! MABAL is not available, so [`filters`] reconstructs these datapaths from
//! their functions: 8-bit operands, ripple-carry adders, 8×8 array
//! multipliers of which **only the 8 least-significant product lines feed
//! the next stage** (as the paper states), pipeline registers after every
//! block, and operand-alignment registers that keep every structure
//! balanced — which is what makes all three circuits single balanced
//! BISTable kernels under the BIBS TDM.
//!
//! [`examples`] builds the paper's illustrative circuits (Figures 1–4, 12)
//! and [`fig9`] reconstructs the Krasniewski–Albicki example circuit from
//! the numbers the paper reports about it. [`elab`] turns any acyclic RTL
//! circuit (or kernel of one) into a gate-level netlist for fault
//! simulation.
#![warn(missing_docs)]

pub mod elab;
pub mod examples;
pub mod fig9;
pub mod filters;
pub mod front;
