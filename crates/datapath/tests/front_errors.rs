//! Error-path tests for the circuit front door (`bibs_datapath::front`):
//! truncated and inconsistent `# rtl:` sidecars, unknown extensions and
//! per-format parse failures, all through the public loader API.

use bibs_datapath::front::{
    bench_with_rtl, load_bench_text, load_path, load_verilog_text, FrontError, RTL_SIDECAR_PREFIX,
};
use std::path::Path;

/// Splits a sidecar-carrying `.bench` text into (gate section, sidecar
/// lines).
fn split_sidecar(text: &str) -> (String, Vec<String>) {
    let mut gates = String::new();
    let mut sidecar = Vec::new();
    for line in text.lines() {
        if line.trim_start().starts_with(RTL_SIDECAR_PREFIX) {
            sidecar.push(line.to_string());
        } else {
            gates.push_str(line);
            gates.push('\n');
        }
    }
    (gates, sidecar)
}

#[test]
fn truncated_sidecar_payload_is_a_parse_error() {
    let circuit = bibs_datapath::filters::scaled("c3a2m", 2);
    let text = bench_with_rtl(&circuit).unwrap();
    let (gates, sidecar) = split_sidecar(&text);
    assert!(sidecar.len() > 4, "test premise: a multi-line sidecar");
    // Keep only the first few sidecar lines: the embedded .ckt text is
    // cut mid-document and must fail to parse (or to elaborate), never
    // load as a silently different circuit.
    let truncated = format!("{gates}{}\n{}\n", sidecar[0], sidecar[1]);
    let err = load_bench_text(&truncated).unwrap_err();
    assert!(
        matches!(err, FrontError::Ckt(_) | FrontError::Elab(_)),
        "truncated sidecar must be rejected, got: {err}"
    );
}

#[test]
fn sidecar_recovering_different_gates_is_a_mismatch() {
    // Gate section of one circuit, sidecar of another: the recovery
    // cross-check (byte-equal canonical .bench) must fire.
    let a = bench_with_rtl(&bibs_datapath::filters::scaled("c3a2m", 2)).unwrap();
    let b = bench_with_rtl(&bibs_datapath::filters::scaled("c3a2m", 3)).unwrap();
    let (gates_a, _) = split_sidecar(&a);
    let (_, sidecar_b) = split_sidecar(&b);
    let franken = format!("{gates_a}{}\n", sidecar_b.join("\n"));
    let err = load_bench_text(&franken).unwrap_err();
    assert!(
        matches!(err, FrontError::SidecarMismatch),
        "inconsistent sidecar must be a mismatch, got: {err}"
    );
    assert!(err.to_string().contains("sidecar"), "{err}");
}

#[test]
fn unknown_extension_is_reported_even_for_existing_files() {
    let dir = std::env::temp_dir().join(format!("bibs_front_ext_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("circuit.txt");
    std::fs::write(&path, "INPUT(a)\nOUTPUT(a)\n").unwrap();
    let err = load_path(&path).unwrap_err();
    assert!(
        matches!(err, FrontError::UnknownExtension { .. }),
        "got: {err}"
    );
    assert!(err.to_string().contains(".ckt"), "names the formats: {err}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn io_error_carries_the_path() {
    let err = load_path(Path::new("/nonexistent/dir/x.bench")).unwrap_err();
    assert!(matches!(err, FrontError::Io { .. }), "got: {err}");
    assert!(err.to_string().contains("x.bench"), "{err}");
}

#[test]
fn per_format_parse_errors_keep_their_format() {
    let err = load_bench_text("o = FROB(a)\n").unwrap_err();
    assert!(matches!(err, FrontError::Bench(_)), "got: {err}");
    let err = load_verilog_text("module ; garbage").unwrap_err();
    assert!(matches!(err, FrontError::Verilog(_)), "got: {err}");
}

#[test]
fn sidecar_only_text_still_parses_as_its_rtl() {
    // Degenerate but legal: a file that is all sidecar has an empty gate
    // section, which cannot match the elaboration of the recovered RTL.
    let text = bench_with_rtl(&bibs_datapath::filters::scaled("c3a2m", 2)).unwrap();
    let (_, sidecar) = split_sidecar(&text);
    let only = format!("{}\n", sidecar.join("\n"));
    let err = load_bench_text(&only).unwrap_err();
    assert!(
        matches!(err, FrontError::SidecarMismatch | FrontError::Bench(_)),
        "got: {err}"
    );
}
