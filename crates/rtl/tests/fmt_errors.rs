//! Error-path matrix for the `.ckt` loader: every class of malformed
//! input must surface as the *typed* [`ParseError`] variant the docs
//! promise, never a panic or a silently-wrong circuit. (The `.bench`
//! loader has the mirror matrix in `bibs_netlist::bench`.)

use bibs_rtl::fmt::{from_text, ParseError};
use bibs_rtl::CircuitBuildError;

#[test]
fn truncated_input_is_a_syntax_error() {
    for text in [
        "",
        "circuit",
        "circuit t",
        "circuit t {",
        "circuit t {\n  input a;\n",
        "circuit t {\n  reg R width 8 from a",
    ] {
        match from_text(text) {
            Err(ParseError::Syntax { message }) => {
                assert!(
                    message.contains("end of input"),
                    "{text:?}: message {message:?} should name the truncation"
                );
            }
            other => panic!("{text:?}: expected Syntax, got {other:?}"),
        }
    }
}

#[test]
fn unknown_statement_is_a_syntax_error() {
    let text = "circuit t {\n  frobnicate a;\n}";
    match from_text(text) {
        Err(ParseError::Syntax { message }) => {
            assert!(message.contains("frobnicate"), "{message:?}");
        }
        other => panic!("expected Syntax, got {other:?}"),
    }
}

#[test]
fn unknown_logic_function_is_a_syntax_error() {
    let text = "circuit t {\n  logic X frob;\n}";
    match from_text(text) {
        Err(ParseError::Syntax { message }) => {
            assert!(message.contains("frob"), "{message:?}");
        }
        other => panic!("expected Syntax, got {other:?}"),
    }
}

#[test]
fn bad_register_width_is_a_syntax_error() {
    let text = "circuit t {\n  input a;\n  output y;\n  reg R width eight from a to y;\n}";
    match from_text(text) {
        Err(ParseError::Syntax { message }) => {
            assert!(message.contains("eight"), "{message:?}");
        }
        other => panic!("expected Syntax, got {other:?}"),
    }
}

#[test]
fn undeclared_vertex_reference_is_typed() {
    let text = "circuit t {\n  input a;\n  output y;\n  reg R width 8 from a to ghost;\n}";
    match from_text(text) {
        Err(ParseError::UnknownVertex(name)) => assert_eq!(name, "ghost"),
        other => panic!("expected UnknownVertex, got {other:?}"),
    }
}

#[test]
fn duplicate_vertex_name_is_a_build_error() {
    let text = "circuit t {\n  input a;\n  input a;\n}";
    match from_text(text) {
        Err(ParseError::Build(CircuitBuildError::DuplicateVertexName(name))) => {
            assert_eq!(name, "a");
        }
        other => panic!("expected DuplicateVertexName, got {other:?}"),
    }
}

#[test]
fn duplicate_register_name_is_a_build_error() {
    let text = "circuit t {\n  input a;\n  logic L;\n  output y;\n  \
                reg R width 8 from a to L;\n  reg R width 8 from L to y;\n}";
    match from_text(text) {
        Err(ParseError::Build(CircuitBuildError::DuplicateRegisterName(name))) => {
            assert_eq!(name, "R");
        }
        other => panic!("expected DuplicateRegisterName, got {other:?}"),
    }
}

#[test]
fn combinational_cycle_is_a_build_error() {
    let text = "circuit t {\n  logic A;\n  logic B;\n  \
                wire from A to B;\n  wire from B to A;\n}";
    match from_text(text) {
        Err(ParseError::Build(CircuitBuildError::CombinationalCycle { .. })) => {}
        other => panic!("expected CombinationalCycle, got {other:?}"),
    }
}

#[test]
fn errors_display_without_panicking() {
    for text in [
        "circuit t {",
        "circuit t {\n  logic X frob;\n}",
        "circuit t {\n  input a;\n  input a;\n}",
        "circuit t {\n  wire from a to b;\n}",
    ] {
        let e = from_text(text).unwrap_err();
        assert!(!e.to_string().is_empty());
    }
}
