//! Property-based tests for the circuit-graph analyses.

use bibs_rtl::{Circuit, CircuitBuilder, SeqLen, VertexId};
use proptest::prelude::*;

/// Builds a random layered DAG circuit: `layers` layers of logic blocks,
/// edges only forward, each edge randomly register (with width) or wire.
/// Always acyclic and combinationally legal.
fn random_dag(layer_sizes: &[usize], edge_choices: &[(usize, usize, bool, u8)]) -> Circuit {
    let mut b = CircuitBuilder::new("rand");
    let pi = b.input("PI");
    let mut layers: Vec<Vec<VertexId>> = Vec::new();
    let mut counter = 0usize;
    for &size in layer_sizes {
        let layer: Vec<VertexId> = (0..size)
            .map(|_| {
                counter += 1;
                b.logic(format!("L{counter}"))
            })
            .collect();
        layers.push(layer);
    }
    let po = b.output("PO");
    // PI feeds every first-layer block through a register (keeps IO legal).
    for (i, &v) in layers[0].clone().iter().enumerate() {
        b.register(format!("Rin{i}"), 4, pi, v);
    }
    // Random forward edges between consecutive layers.
    let mut reg_count = 0usize;
    for &(from_idx, to_idx, is_reg, width) in edge_choices {
        let li = from_idx % (layers.len() - 1);
        let from = layers[li][from_idx % layers[li].len()];
        let to = layers[li + 1][to_idx % layers[li + 1].len()];
        if is_reg {
            reg_count += 1;
            b.register(format!("R{reg_count}"), (width % 8) as u32 + 1, from, to);
        } else {
            b.wire(from, to);
        }
    }
    // Every last-layer block feeds the PO through a register.
    for (i, &v) in layers.last().unwrap().clone().iter().enumerate() {
        b.register(format!("Rout{i}"), 4, v, po);
    }
    // Ensure connectivity: chain each layer's first block to the next.
    for w in 0..layers.len() - 1 {
        b.wire(layers[w][0], layers[w + 1][0]);
    }
    b.finish().expect("layered DAGs are well-formed")
}

fn dag_strategy() -> impl Strategy<Value = Circuit> {
    (
        proptest::collection::vec(1usize..4, 2..5),
        proptest::collection::vec(
            (any::<usize>(), any::<usize>(), any::<bool>(), any::<u8>()),
            0..15,
        ),
    )
        .prop_map(|(layers, edges)| random_dag(&layers, &edges))
}

proptest! {
    /// Layered DAGs are always acyclic, and topo_order is a valid
    /// topological order.
    #[test]
    fn topo_order_is_valid(circuit in dag_strategy()) {
        prop_assert!(circuit.is_acyclic());
        let order = circuit.topo_order().unwrap();
        prop_assert_eq!(order.len(), circuit.vertex_count());
        let mut pos = vec![usize::MAX; circuit.vertex_count()];
        for (i, v) in order.iter().enumerate() {
            pos[v.index()] = i;
        }
        for e in circuit.edge_ids() {
            let edge = circuit.edge(e);
            prop_assert!(pos[edge.from.index()] < pos[edge.to.index()]);
        }
    }

    /// balance_report and seq_lengths agree: the circuit is balanced iff
    /// no per-source map contains a conflict.
    #[test]
    fn balance_consistency(circuit in dag_strategy()) {
        let report = circuit.balance_report();
        let any_conflict = circuit.vertex_ids().any(|src| {
            circuit
                .seq_lengths_from(src)
                .unwrap()
                .iter()
                .any(|l| matches!(l, SeqLen::Conflict { .. }))
        });
        prop_assert_eq!(report.is_balanced(), !any_conflict);
        prop_assert_eq!(circuit.is_balanced(), report.is_balanced());
    }

    /// Sequential lengths are path-consistent: for every edge u→v with
    /// weight w, reachable u implies d(v) bounds compatible with d(u)+w.
    #[test]
    fn seq_lengths_respect_edges(circuit in dag_strategy()) {
        for src in circuit.vertex_ids() {
            let lens = circuit.seq_lengths_from(src).unwrap();
            for e in circuit.edge_ids() {
                let edge = circuit.edge(e);
                let w = edge.kind.seq_len();
                let (umin, umax) = match lens[edge.from.index()] {
                    SeqLen::Unreachable => continue,
                    SeqLen::Exact(d) => (d, d),
                    SeqLen::Conflict { min, max } => (min, max),
                };
                match lens[edge.to.index()] {
                    SeqLen::Unreachable => prop_assert!(false, "target must be reachable"),
                    SeqLen::Exact(d) => {
                        prop_assert!(d >= umin + w || d <= umax + w);
                    }
                    SeqLen::Conflict { min, max } => {
                        prop_assert!(min <= umin + w);
                        prop_assert!(max >= umax + w);
                    }
                }
            }
        }
    }

    /// The text format round-trips any generated circuit.
    #[test]
    fn text_format_round_trips(circuit in dag_strategy()) {
        let text = bibs_rtl::fmt::to_text(&circuit);
        let parsed = bibs_rtl::fmt::from_text(&text).unwrap();
        prop_assert_eq!(parsed.vertex_count(), circuit.vertex_count());
        prop_assert_eq!(parsed.edge_count(), circuit.edge_count());
        prop_assert_eq!(parsed.total_register_bits(), circuit.total_register_bits());
        // Printing again is a fixpoint.
        prop_assert_eq!(bibs_rtl::fmt::to_text(&parsed), text);
    }

    /// Reachability is reflexive and monotone along edges.
    #[test]
    fn reachability_closure(circuit in dag_strategy()) {
        for src in circuit.vertex_ids() {
            let reach = circuit.reachable_from_filtered(src, |_| true);
            prop_assert!(reach[src.index()]);
            for e in circuit.edge_ids() {
                let edge = circuit.edge(e);
                if reach[edge.from.index()] {
                    prop_assert!(reach[edge.to.index()]);
                }
            }
        }
    }

    /// Splitting a register edge preserves acyclicity and adds exactly one
    /// register and one vacuous vertex.
    #[test]
    fn split_register_preserves_structure(circuit in dag_strategy(), pick in any::<proptest::sample::Index>()) {
        let regs: Vec<_> = circuit.register_edges().collect();
        prop_assume!(!regs.is_empty());
        let target = regs[pick.index(regs.len())];
        let mut c2 = circuit.clone();
        let new_edge = c2.split_register_edge(target, "Rs");
        prop_assert!(c2.is_acyclic());
        prop_assert_eq!(c2.edge_count(), circuit.edge_count() + 1);
        prop_assert_eq!(c2.vertex_count(), circuit.vertex_count() + 1);
        prop_assert_eq!(
            c2.edge(new_edge).kind.width(),
            circuit.edge(target).kind.width()
        );
    }
}
