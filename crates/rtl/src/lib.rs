//! RTL circuit model and circuit graph for the BIBS reproduction.
//!
//! Section 3.1 of the paper models a circuit under consideration (CUC) as a
//! directed graph `G = (V, E, w)`:
//!
//! * vertices represent combinational **logic blocks**, **fanout blocks**,
//!   **vacuous blocks** (pure wire blocks between back-to-back registers) and
//!   **primary inputs/outputs**;
//! * edges represent connections either **through a register** (weight = the
//!   register width) or **through wires** (weight = ∞);
//! * combinational cycles are forbidden (they would behave asynchronously).
//!
//! This crate provides that model ([`Circuit`], [`CircuitBuilder`]) plus the
//! structural analyses the BIBS TDM is built on:
//!
//! * cycle enumeration (a cycle must contain at least one register edge);
//! * **balance** checking — all directed paths between every vertex pair
//!   have equal *sequential length* (number of register edges);
//! * **URFS** (unbalanced reconvergent-fanout structure) witnesses;
//! * per-source sequential-length maps, reachability, and output **cones**;
//! * a compact text format ([`fmt`]) standing in for the EDIF import/export
//!   of the authors' BITS system.
//!
//! # Example
//!
//! ```
//! use bibs_rtl::CircuitBuilder;
//!
//! // The paper's Figure 2: PI -R1-> C1 -R2-> C2 -R3-> PO
//! let mut b = CircuitBuilder::new("fig2");
//! let pi = b.input("PI");
//! let c1 = b.logic("C1");
//! let c2 = b.logic("C2");
//! let po = b.output("PO");
//! b.register("R1", 8, pi, c1);
//! b.register("R2", 8, c1, c2);
//! b.register("R3", 8, c2, po);
//! let circuit = b.finish().expect("well-formed");
//! assert!(circuit.is_acyclic());
//! assert!(circuit.is_balanced());
//! ```
#![warn(missing_docs)]

mod analysis;
mod circuit;
pub mod dot;
pub mod fmt;

pub use analysis::{BalanceReport, PairImbalance, SeqLen};
pub use circuit::{
    Circuit, CircuitBuildError, CircuitBuilder, Edge, EdgeId, EdgeKind, LogicFunction, Vertex,
    VertexId, VertexKind,
};
