//! A compact structural text format for circuit graphs.
//!
//! The authors' BITS system "reads in a circuit (in EDIF description) to be
//! made BISTable". This module plays that role with a small hand-written
//! format:
//!
//! ```text
//! circuit fig2 {
//!   input PI;
//!   output PO;
//!   logic C1 add;      # functions: add | sub | mul<K> | opaque
//!   logic C2;
//!   reg R1 width 8 from PI to C1;
//!   reg R2 width 8 from C1 to C2;
//!   wire from C2 to PO;
//! }
//! ```
//!
//! `#` starts a comment running to end of line. [`to_text`] and
//! [`from_text`] round-trip losslessly.

use crate::circuit::{
    Circuit, CircuitBuildError, CircuitBuilder, EdgeKind, LogicFunction, VertexId, VertexKind,
};
use std::fmt;

/// Errors from [`from_text`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Unexpected token or end of input.
    Syntax {
        /// Human-readable description of what went wrong.
        message: String,
    },
    /// A statement referenced a vertex name that was never declared.
    UnknownVertex(String),
    /// The parsed structure failed circuit validation.
    Build(CircuitBuildError),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Syntax { message } => write!(f, "syntax error: {message}"),
            ParseError::UnknownVertex(n) => write!(f, "unknown vertex {n:?}"),
            ParseError::Build(e) => write!(f, "invalid circuit: {e}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<CircuitBuildError> for ParseError {
    fn from(e: CircuitBuildError) -> Self {
        ParseError::Build(e)
    }
}

fn function_name(f: &LogicFunction) -> String {
    match f {
        LogicFunction::Add => "add".to_string(),
        LogicFunction::Sub => "sub".to_string(),
        LogicFunction::Mul { out_width } => format!("mul{out_width}"),
        LogicFunction::Opaque => "opaque".to_string(),
    }
}

fn parse_function(s: &str) -> Option<LogicFunction> {
    match s {
        "add" => Some(LogicFunction::Add),
        "sub" => Some(LogicFunction::Sub),
        "opaque" => Some(LogicFunction::Opaque),
        _ => s
            .strip_prefix("mul")
            .and_then(|k| k.parse::<u32>().ok())
            .map(|out_width| LogicFunction::Mul { out_width }),
    }
}

/// Serializes a circuit to the text format.
///
/// # Example
///
/// ```
/// use bibs_rtl::CircuitBuilder;
/// use bibs_rtl::fmt::{to_text, from_text};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = CircuitBuilder::new("t");
/// let a = b.input("A");
/// let c = b.logic("C");
/// b.register("R", 4, a, c);
/// let circuit = b.finish()?;
/// let text = to_text(&circuit);
/// let parsed = from_text(&text)?;
/// assert_eq!(parsed.name(), "t");
/// assert_eq!(parsed.edge_count(), 1);
/// # Ok(())
/// # }
/// ```
pub fn to_text(circuit: &Circuit) -> String {
    let mut out = String::new();
    out.push_str(&format!("circuit {} {{\n", circuit.name()));
    for v in circuit.vertex_ids() {
        let vx = circuit.vertex(v);
        match vx.kind {
            VertexKind::Input => out.push_str(&format!("  input {};\n", vx.name)),
            VertexKind::Output => out.push_str(&format!("  output {};\n", vx.name)),
            VertexKind::Fanout => out.push_str(&format!("  fanout {};\n", vx.name)),
            VertexKind::Vacuous => out.push_str(&format!("  vacuous {};\n", vx.name)),
            VertexKind::Logic => {
                if vx.function == LogicFunction::Opaque {
                    out.push_str(&format!("  logic {};\n", vx.name));
                } else {
                    out.push_str(&format!(
                        "  logic {} {};\n",
                        vx.name,
                        function_name(&vx.function)
                    ));
                }
            }
        }
    }
    for e in circuit.edge_ids() {
        let edge = circuit.edge(e);
        let from = &circuit.vertex(edge.from).name;
        let to = &circuit.vertex(edge.to).name;
        match edge.kind {
            EdgeKind::Register { width } => {
                let name = edge.name.as_deref().unwrap_or("_");
                out.push_str(&format!(
                    "  reg {name} width {width} from {from} to {to};\n"
                ));
            }
            EdgeKind::Wire => out.push_str(&format!("  wire from {from} to {to};\n")),
        }
    }
    out.push_str("}\n");
    out
}

/// Parses a circuit from the text format.
///
/// # Errors
///
/// Returns [`ParseError`] on malformed syntax, references to undeclared
/// vertices, or structural validation failures (e.g. combinational cycles).
pub fn from_text(text: &str) -> Result<Circuit, ParseError> {
    // Strip comments, then tokenize; `{`, `}`, `;` are their own tokens.
    let mut tokens: Vec<String> = Vec::new();
    for line in text.lines() {
        let line = line.split('#').next().unwrap_or("");
        let spaced = line
            .replace('{', " { ")
            .replace('}', " } ")
            .replace(';', " ; ");
        tokens.extend(spaced.split_whitespace().map(str::to_string));
    }
    let mut pos = 0usize;
    let next = |pos: &mut usize, tokens: &[String], what: &str| -> Result<String, ParseError> {
        let t = tokens
            .get(*pos)
            .cloned()
            .ok_or_else(|| ParseError::Syntax {
                message: format!("expected {what}, found end of input"),
            })?;
        *pos += 1;
        Ok(t)
    };
    let expect = |pos: &mut usize, tokens: &[String], lit: &str| -> Result<(), ParseError> {
        let t = next(pos, tokens, lit)?;
        if t != lit {
            return Err(ParseError::Syntax {
                message: format!("expected {lit:?}, found {t:?}"),
            });
        }
        Ok(())
    };

    expect(&mut pos, &tokens, "circuit")?;
    let name = next(&mut pos, &tokens, "circuit name")?;
    expect(&mut pos, &tokens, "{")?;
    let mut builder = CircuitBuilder::new(name);
    let mut vertex_names: Vec<(String, VertexId)> = Vec::new();
    let lookup = |names: &[(String, VertexId)], n: &str| -> Result<VertexId, ParseError> {
        names
            .iter()
            .find(|(name, _)| name == n)
            .map(|&(_, id)| id)
            .ok_or_else(|| ParseError::UnknownVertex(n.to_string()))
    };

    loop {
        let t = next(&mut pos, &tokens, "statement or '}'")?;
        match t.as_str() {
            "}" => break,
            "input" | "output" | "fanout" | "vacuous" => {
                let vname = next(&mut pos, &tokens, "vertex name")?;
                expect(&mut pos, &tokens, ";")?;
                let id = match t.as_str() {
                    "input" => builder.input(&vname),
                    "output" => builder.output(&vname),
                    "fanout" => builder.fanout(&vname),
                    _ => builder.vacuous(&vname),
                };
                vertex_names.push((vname, id));
            }
            "logic" => {
                let vname = next(&mut pos, &tokens, "vertex name")?;
                let peek = next(&mut pos, &tokens, "';' or function")?;
                let function = if peek == ";" {
                    LogicFunction::Opaque
                } else {
                    let f = parse_function(&peek).ok_or_else(|| ParseError::Syntax {
                        message: format!("unknown logic function {peek:?}"),
                    })?;
                    expect(&mut pos, &tokens, ";")?;
                    f
                };
                let id = builder.logic_fn(&vname, function);
                vertex_names.push((vname, id));
            }
            "reg" => {
                let rname = next(&mut pos, &tokens, "register name")?;
                expect(&mut pos, &tokens, "width")?;
                let wtok = next(&mut pos, &tokens, "register width")?;
                let width: u32 = wtok.parse().map_err(|_| ParseError::Syntax {
                    message: format!("invalid register width {wtok:?}"),
                })?;
                expect(&mut pos, &tokens, "from")?;
                let from = next(&mut pos, &tokens, "source vertex")?;
                expect(&mut pos, &tokens, "to")?;
                let to = next(&mut pos, &tokens, "destination vertex")?;
                expect(&mut pos, &tokens, ";")?;
                let fv = lookup(&vertex_names, &from)?;
                let tv = lookup(&vertex_names, &to)?;
                builder.register(rname, width, fv, tv);
            }
            "wire" => {
                expect(&mut pos, &tokens, "from")?;
                let from = next(&mut pos, &tokens, "source vertex")?;
                expect(&mut pos, &tokens, "to")?;
                let to = next(&mut pos, &tokens, "destination vertex")?;
                expect(&mut pos, &tokens, ";")?;
                let fv = lookup(&vertex_names, &from)?;
                let tv = lookup(&vertex_names, &to)?;
                builder.wire(fv, tv);
            }
            other => {
                return Err(ParseError::Syntax {
                    message: format!("unknown statement {other:?}"),
                });
            }
        }
    }
    Ok(builder.finish()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::CircuitBuilder;

    fn sample() -> Circuit {
        let mut b = CircuitBuilder::new("sample");
        let pi = b.input("PI");
        let f = b.fanout("F");
        let c1 = b.logic_fn("C1", LogicFunction::Add);
        let c2 = b.logic_fn("C2", LogicFunction::Mul { out_width: 8 });
        let v = b.vacuous("V1");
        let po = b.output("PO");
        b.wire(pi, f);
        b.register("R1", 8, f, c1);
        b.register("R2", 8, f, c2);
        b.wire(c1, v);
        b.register("R3", 8, v, po);
        b.wire(c2, po);
        b.finish().unwrap()
    }

    #[test]
    fn round_trip_preserves_structure() {
        let c = sample();
        let text = to_text(&c);
        let parsed = from_text(&text).unwrap();
        assert_eq!(parsed.name(), c.name());
        assert_eq!(parsed.vertex_count(), c.vertex_count());
        assert_eq!(parsed.edge_count(), c.edge_count());
        assert_eq!(parsed.register_edges().count(), c.register_edges().count());
        // Functions survive.
        let c2 = parsed.vertex_by_name("C2").unwrap();
        assert_eq!(
            parsed.vertex(c2).function,
            LogicFunction::Mul { out_width: 8 }
        );
        // Second round trip is identical text.
        assert_eq!(to_text(&parsed), text);
    }

    #[test]
    fn comments_and_whitespace_ignored() {
        let text = "circuit t { # header\n  input A; # a PI\n  logic C;\n  reg R width 4 from A to C;\n}\n";
        let c = from_text(text).unwrap();
        assert_eq!(c.vertex_count(), 2);
        assert_eq!(c.edge_count(), 1);
    }

    #[test]
    fn unknown_vertex_reported() {
        let text = "circuit t { input A; wire from A to B; }";
        assert!(matches!(
            from_text(text),
            Err(ParseError::UnknownVertex(n)) if n == "B"
        ));
    }

    #[test]
    fn syntax_errors_reported() {
        assert!(matches!(
            from_text("circuit t { bogus X; }"),
            Err(ParseError::Syntax { .. })
        ));
        assert!(matches!(
            from_text("circuit t { input A;"),
            Err(ParseError::Syntax { .. })
        ));
        assert!(matches!(
            from_text("circuit t { reg R width four from A to B; }"),
            Err(ParseError::Syntax { .. })
        ));
    }

    #[test]
    fn build_errors_propagate() {
        let text = "circuit t { logic A; logic B; wire from A to B; wire from B to A; }";
        assert!(matches!(from_text(text), Err(ParseError::Build(_))));
    }

    #[test]
    fn logic_function_spellings() {
        assert_eq!(parse_function("add"), Some(LogicFunction::Add));
        assert_eq!(
            parse_function("mul12"),
            Some(LogicFunction::Mul { out_width: 12 })
        );
        assert_eq!(parse_function("bogus"), None);
        assert_eq!(parse_function("mulx"), None);
    }
}
