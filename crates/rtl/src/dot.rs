//! Graphviz (DOT) export of circuit graphs.
//!
//! Renders the paper's circuit-graph convention: bold arcs for wire edges,
//! labelled arcs for register edges (name and width), distinct shapes per
//! vertex kind. Useful for inspecting TDM results:
//! `dot -Tsvg fig4.dot > fig4.svg`.

use crate::circuit::{Circuit, EdgeId, EdgeKind, VertexKind};

/// Options controlling the rendering.
#[derive(Debug, Clone, Default)]
pub struct DotOptions {
    /// Register edges drawn highlighted (e.g. a design's BILBO edges).
    pub highlighted_edges: Vec<EdgeId>,
}

/// Serializes the circuit graph to DOT.
///
/// # Example
///
/// ```
/// use bibs_rtl::CircuitBuilder;
/// use bibs_rtl::dot::{to_dot, DotOptions};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = CircuitBuilder::new("t");
/// let pi = b.input("PI");
/// let c = b.logic("C");
/// let po = b.output("PO");
/// b.register("R1", 8, pi, c);
/// b.register("R2", 8, c, po);
/// let circuit = b.finish()?;
/// let dot = to_dot(&circuit, &DotOptions::default());
/// assert!(dot.contains("digraph"));
/// assert!(dot.contains("R1"));
/// # Ok(())
/// # }
/// ```
pub fn to_dot(circuit: &Circuit, options: &DotOptions) -> String {
    let mut out = String::new();
    out.push_str(&format!("digraph \"{}\" {{\n", circuit.name()));
    out.push_str("  rankdir=LR;\n  node [fontname=\"Helvetica\"];\n");
    for v in circuit.vertex_ids() {
        let vx = circuit.vertex(v);
        let (shape, style) = match vx.kind {
            VertexKind::Logic => ("box", "filled,rounded\" fillcolor=\"#dbeafe"),
            VertexKind::Fanout => ("point", "filled"),
            VertexKind::Vacuous => ("box", "dashed"),
            VertexKind::Input => ("invtriangle", "filled\" fillcolor=\"#dcfce7"),
            VertexKind::Output => ("triangle", "filled\" fillcolor=\"#fee2e2"),
        };
        out.push_str(&format!(
            "  v{} [label=\"{}\" shape={shape} style=\"{style}\"];\n",
            v.index(),
            circuit.vertex_name(v)
        ));
    }
    for e in circuit.edge_ids() {
        let edge = circuit.edge(e);
        let highlighted = options.highlighted_edges.contains(&e);
        match edge.kind {
            EdgeKind::Register { .. } => {
                let label = circuit.edge_label(e);
                let color = if highlighted { "#dc2626" } else { "#1f2937" };
                let pen = if highlighted { 2.5 } else { 1.2 };
                out.push_str(&format!(
                    "  v{} -> v{} [label=\"{label}\" color=\"{color}\" penwidth={pen}];\n",
                    edge.from.index(),
                    edge.to.index()
                ));
            }
            EdgeKind::Wire => {
                out.push_str(&format!(
                    "  v{} -> v{} [penwidth=2.2 color=\"#6b7280\"];\n",
                    edge.from.index(),
                    edge.to.index()
                ));
            }
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::CircuitBuilder;

    #[test]
    fn dot_lists_every_vertex_and_edge() {
        let mut b = CircuitBuilder::new("d");
        let pi = b.input("PI");
        let f = b.fanout("F");
        let c = b.logic("C");
        let po = b.output("PO");
        b.register("Rin", 4, pi, f);
        b.wire(f, c);
        let r = b.register("R", 4, f, c);
        b.register("Rout", 4, c, po);
        let circuit = b.finish().unwrap();
        let dot = to_dot(
            &circuit,
            &DotOptions {
                highlighted_edges: vec![r],
            },
        );
        for name in ["PI", "F", "C", "PO", "Rin[4]", "R[4]", "Rout[4]"] {
            assert!(dot.contains(name), "missing {name} in DOT output");
        }
        assert!(dot.contains("#dc2626"), "highlight color present");
        assert_eq!(dot.matches("->").count(), 4);
    }

    #[test]
    fn dot_is_stable_under_reparse_of_source() {
        let mut b = CircuitBuilder::new("d");
        let pi = b.input("PI");
        let c = b.logic("C");
        let po = b.output("PO");
        b.register("R1", 2, pi, c);
        b.register("R2", 2, c, po);
        let circuit = b.finish().unwrap();
        let d1 = to_dot(&circuit, &DotOptions::default());
        let round = crate::fmt::from_text(&crate::fmt::to_text(&circuit)).unwrap();
        let d2 = to_dot(&round, &DotOptions::default());
        assert_eq!(d1, d2);
    }
}
