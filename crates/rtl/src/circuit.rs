//! The circuit graph data structure (Section 3.1 of the paper).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a vertex (an RTL block) within a [`Circuit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VertexId(pub(crate) u32);

/// Identifier of an edge (a register or wire connection) within a
/// [`Circuit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EdgeId(pub(crate) u32);

impl VertexId {
    /// The raw index of this vertex.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// The raw index of this edge.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// The role of a vertex in the circuit graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VertexKind {
    /// A combinational logic block.
    Logic,
    /// A fanout block: transfers its input to all outputs unaltered.
    Fanout,
    /// A vacuous block: pure wires between back-to-back registers.
    Vacuous,
    /// A primary input.
    Input,
    /// A primary output.
    Output,
}

impl fmt::Display for VertexKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            VertexKind::Logic => "logic",
            VertexKind::Fanout => "fanout",
            VertexKind::Vacuous => "vacuous",
            VertexKind::Input => "input",
            VertexKind::Output => "output",
        };
        f.write_str(s)
    }
}

/// The word-level function of a logic block, used when elaborating the RTL
/// circuit to a gate-level netlist for fault simulation.
///
/// The paper's datapaths are built from adders and multipliers; `Opaque`
/// covers blocks whose internals are irrelevant to the structural analyses.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum LogicFunction {
    /// Word addition (modulo `2^width`).
    Add,
    /// Word multiplication keeping the low `out_width` product bits — the
    /// paper's filter datapaths keep only the 8 least-significant multiplier
    /// outputs between stages.
    Mul {
        /// Number of low product bits kept.
        out_width: u32,
    },
    /// Word subtraction (modulo `2^width`).
    Sub,
    /// A block with unspecified combinational contents.
    #[default]
    Opaque,
}

/// A vertex of the circuit graph.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Vertex {
    /// The block's name (unique within the circuit).
    pub name: String,
    /// The block's role.
    pub kind: VertexKind,
    /// Word-level function, meaningful only for [`VertexKind::Logic`].
    pub function: LogicFunction,
}

impl Vertex {
    /// Short lowercase name of the block's word-level function (`"add"`,
    /// `"mul"`, `"sub"`, `"opaque"`), for diagnostics.
    pub fn function_name(&self) -> &'static str {
        match self.function {
            LogicFunction::Add => "add",
            LogicFunction::Mul { .. } => "mul",
            LogicFunction::Sub => "sub",
            LogicFunction::Opaque => "opaque",
        }
    }
}

/// The kind of connection an edge represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EdgeKind {
    /// A connection through a register of the given bit width. The paper
    /// sets `w(e)` to the register width.
    Register {
        /// The register's bit width.
        width: u32,
    },
    /// A direct wire connection; the paper sets `w(e) = ∞`.
    Wire,
}

impl EdgeKind {
    /// The sequential length contribution: 1 for a register edge, 0 for a
    /// wire edge.
    pub fn seq_len(self) -> u32 {
        match self {
            EdgeKind::Register { .. } => 1,
            EdgeKind::Wire => 0,
        }
    }

    /// The register width, if this is a register edge.
    pub fn width(self) -> Option<u32> {
        match self {
            EdgeKind::Register { width } => Some(width),
            EdgeKind::Wire => None,
        }
    }
}

/// An edge of the circuit graph.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Edge {
    /// Source vertex (the block driving the connection).
    pub from: VertexId,
    /// Destination vertex (the block driven by the connection).
    pub to: VertexId,
    /// Register or wire.
    pub kind: EdgeKind,
    /// The register's name for register edges (unique within the circuit);
    /// `None` for wires.
    pub name: Option<String>,
}

impl Edge {
    /// Whether this is a register edge.
    pub fn is_register(&self) -> bool {
        matches!(self.kind, EdgeKind::Register { .. })
    }
}

/// Errors detected when finishing a [`CircuitBuilder`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CircuitBuildError {
    /// Two vertices share a name.
    DuplicateVertexName(String),
    /// Two register edges share a name.
    DuplicateRegisterName(String),
    /// The wire-only subgraph contains a cycle, i.e. a combinational loop,
    /// which the paper's model forbids (it may behave asynchronously).
    CombinationalCycle {
        /// A vertex on the combinational cycle.
        vertex: VertexId,
    },
    /// An `Input` vertex has incoming edges or an `Output` vertex has
    /// outgoing edges.
    BadIoDirection {
        /// The offending vertex.
        vertex: VertexId,
    },
}

impl fmt::Display for CircuitBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitBuildError::DuplicateVertexName(n) => {
                write!(f, "duplicate vertex name {n:?}")
            }
            CircuitBuildError::DuplicateRegisterName(n) => {
                write!(f, "duplicate register name {n:?}")
            }
            CircuitBuildError::CombinationalCycle { vertex } => {
                write!(f, "combinational cycle through vertex {vertex}")
            }
            CircuitBuildError::BadIoDirection { vertex } => {
                write!(
                    f,
                    "primary input/output vertex {vertex} has edges in the wrong direction"
                )
            }
        }
    }
}

impl std::error::Error for CircuitBuildError {}

/// A validated circuit graph.
///
/// Construct with [`CircuitBuilder`]; the structure is immutable except for
/// [`Circuit::split_register_edge`], which models inserting an extra
/// transparent register (the fix the paper prescribes for cycles containing
/// a single register edge).
#[derive(Debug, Clone, PartialEq)]
pub struct Circuit {
    pub(crate) name: String,
    pub(crate) vertices: Vec<Vertex>,
    pub(crate) edges: Vec<Edge>,
    pub(crate) out_edges: Vec<Vec<EdgeId>>,
    pub(crate) in_edges: Vec<Vec<EdgeId>>,
}

impl Circuit {
    /// The circuit's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Looks up a vertex.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn vertex(&self, id: VertexId) -> &Vertex {
        &self.vertices[id.index()]
    }

    /// Looks up an edge.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.index()]
    }

    /// Iterates over all vertex ids.
    pub fn vertex_ids(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.vertices.len() as u32).map(VertexId)
    }

    /// Iterates over all edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edges.len() as u32).map(EdgeId)
    }

    /// Iterates over all register edge ids.
    pub fn register_edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.edge_ids().filter(|&e| self.edge(e).is_register())
    }

    /// Outgoing edges of a vertex — the block's *output ports* in the
    /// paper's terminology.
    pub fn out_edges(&self, v: VertexId) -> &[EdgeId] {
        &self.out_edges[v.index()]
    }

    /// Incoming edges of a vertex — the block's *input ports*.
    pub fn in_edges(&self, v: VertexId) -> &[EdgeId] {
        &self.in_edges[v.index()]
    }

    /// Finds a vertex by name.
    pub fn vertex_by_name(&self, name: &str) -> Option<VertexId> {
        self.vertices
            .iter()
            .position(|v| v.name == name)
            .map(|i| VertexId(i as u32))
    }

    /// Finds a register edge by register name.
    pub fn register_by_name(&self, name: &str) -> Option<EdgeId> {
        self.edges
            .iter()
            .position(|e| e.name.as_deref() == Some(name))
            .map(|i| EdgeId(i as u32))
    }

    /// All primary input vertices.
    pub fn inputs(&self) -> Vec<VertexId> {
        self.vertex_ids()
            .filter(|&v| self.vertex(v).kind == VertexKind::Input)
            .collect()
    }

    /// All primary output vertices.
    pub fn outputs(&self) -> Vec<VertexId> {
        self.vertex_ids()
            .filter(|&v| self.vertex(v).kind == VertexKind::Output)
            .collect()
    }

    /// Total flip-flop count over all register edges.
    pub fn total_register_bits(&self) -> u32 {
        self.edges.iter().filter_map(|e| e.kind.width()).sum()
    }

    /// The declared name of a vertex — the preferred way to render a
    /// [`VertexId`] in diagnostics and witnesses.
    pub fn vertex_name(&self, v: VertexId) -> &str {
        &self.vertex(v).name
    }

    /// A human-readable label for an edge: `"R1[8]"` for a named register
    /// edge of width 8, `"_[8]"` for an anonymous one, and `"A->B"` for a
    /// wire from `A` to `B`.
    pub fn edge_label(&self, e: EdgeId) -> String {
        let edge = self.edge(e);
        match edge.kind {
            EdgeKind::Register { width } => {
                format!("{}[{width}]", edge.name.as_deref().unwrap_or("_"))
            }
            EdgeKind::Wire => format!(
                "{}->{}",
                self.vertex_name(edge.from),
                self.vertex_name(edge.to)
            ),
        }
    }

    /// Renders a connected edge sequence as a named path, e.g.
    /// `"F -R2[8]-> D -> H"` (register edges show their label, wires show a
    /// bare arrow). Empty input renders as `"(empty path)"`.
    pub fn describe_path(&self, edges: &[EdgeId]) -> String {
        let Some(&first) = edges.first() else {
            return "(empty path)".to_string();
        };
        let mut out = String::new();
        out.push_str(self.vertex_name(self.edge(first).from));
        for &eid in edges {
            let edge = self.edge(eid);
            match edge.kind {
                EdgeKind::Register { width } => {
                    let name = edge.name.as_deref().unwrap_or("_");
                    out.push_str(&format!(" -{name}[{width}]-> "));
                }
                EdgeKind::Wire => out.push_str(" -> "),
            }
            out.push_str(self.vertex_name(edge.to));
        }
        out
    }

    /// Renders a cycle (edge sequence whose last edge returns to the first
    /// edge's source) as a named path, e.g. `"H -R5[8]-> F -R6[8]-> H"`.
    ///
    /// Currently identical to [`Self::describe_path`]; a separate entry
    /// point so callers can state intent and future formatting can diverge.
    pub fn describe_cycle(&self, edges: &[EdgeId]) -> String {
        self.describe_path(edges)
    }

    /// Splits a register edge `u -R-> v` into `u -R-> X -R'-> v` where `X`
    /// is a new vacuous vertex and `R'` a new register of the same width.
    ///
    /// This models the paper's remedy for a cycle containing a single
    /// register edge: "an extra register needs to be added in the circuit
    /// [that is] transparent during normal functional mode". Returns the new
    /// register's edge id.
    ///
    /// # Panics
    ///
    /// Panics if `edge` is not a register edge.
    pub fn split_register_edge(&mut self, edge: EdgeId, new_name: &str) -> EdgeId {
        let e = self.edges[edge.index()].clone();
        let width = match e.kind {
            EdgeKind::Register { width } => width,
            EdgeKind::Wire => panic!("can only split register edges"),
        };
        let x = VertexId(self.vertices.len() as u32);
        self.vertices.push(Vertex {
            name: format!("{}_split", new_name),
            kind: VertexKind::Vacuous,
            function: LogicFunction::Opaque,
        });
        let new_edge = EdgeId(self.edges.len() as u32);
        self.edges.push(Edge {
            from: x,
            to: e.to,
            kind: EdgeKind::Register { width },
            name: Some(new_name.to_string()),
        });
        self.edges[edge.index()].to = x;
        self.rebuild_adjacency();
        new_edge
    }

    /// Converts a wire edge into a register edge of the given width.
    ///
    /// This models inserting a register on a direct connection — used to
    /// buffer primary inputs/outputs before applying a BILBO-style TDM.
    /// Note it adds a pipeline stage to the functional behaviour.
    ///
    /// # Panics
    ///
    /// Panics if `edge` is already a register edge.
    pub fn convert_wire_to_register(&mut self, edge: EdgeId, name: impl Into<String>, width: u32) {
        let e = &mut self.edges[edge.index()];
        assert_eq!(e.kind, EdgeKind::Wire, "edge is already a register");
        e.kind = EdgeKind::Register { width };
        e.name = Some(name.into());
    }

    pub(crate) fn rebuild_adjacency(&mut self) {
        self.out_edges = vec![Vec::new(); self.vertices.len()];
        self.in_edges = vec![Vec::new(); self.vertices.len()];
        for (i, e) in self.edges.iter().enumerate() {
            self.out_edges[e.from.index()].push(EdgeId(i as u32));
            self.in_edges[e.to.index()].push(EdgeId(i as u32));
        }
    }
}

/// Incremental builder for [`Circuit`].
///
/// See the [crate-level example](crate) for usage.
#[derive(Debug, Clone)]
pub struct CircuitBuilder {
    name: String,
    vertices: Vec<Vertex>,
    edges: Vec<Edge>,
}

impl CircuitBuilder {
    /// Creates an empty builder for a circuit with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        CircuitBuilder {
            name: name.into(),
            vertices: Vec::new(),
            edges: Vec::new(),
        }
    }

    fn add_vertex(&mut self, name: impl Into<String>, kind: VertexKind) -> VertexId {
        let id = VertexId(self.vertices.len() as u32);
        self.vertices.push(Vertex {
            name: name.into(),
            kind,
            function: LogicFunction::Opaque,
        });
        id
    }

    /// Adds a primary input vertex.
    pub fn input(&mut self, name: impl Into<String>) -> VertexId {
        self.add_vertex(name, VertexKind::Input)
    }

    /// Adds a primary output vertex.
    pub fn output(&mut self, name: impl Into<String>) -> VertexId {
        self.add_vertex(name, VertexKind::Output)
    }

    /// Adds a combinational logic block with unspecified contents.
    pub fn logic(&mut self, name: impl Into<String>) -> VertexId {
        self.add_vertex(name, VertexKind::Logic)
    }

    /// Adds a combinational logic block with a word-level function.
    pub fn logic_fn(&mut self, name: impl Into<String>, function: LogicFunction) -> VertexId {
        let id = self.add_vertex(name, VertexKind::Logic);
        self.vertices[id.index()].function = function;
        id
    }

    /// Adds a fanout block.
    pub fn fanout(&mut self, name: impl Into<String>) -> VertexId {
        self.add_vertex(name, VertexKind::Fanout)
    }

    /// Adds a vacuous block.
    pub fn vacuous(&mut self, name: impl Into<String>) -> VertexId {
        self.add_vertex(name, VertexKind::Vacuous)
    }

    /// Adds a register edge of the given width.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        width: u32,
        from: VertexId,
        to: VertexId,
    ) -> EdgeId {
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(Edge {
            from,
            to,
            kind: EdgeKind::Register { width },
            name: Some(name.into()),
        });
        id
    }

    /// Adds a wire edge.
    pub fn wire(&mut self, from: VertexId, to: VertexId) -> EdgeId {
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(Edge {
            from,
            to,
            kind: EdgeKind::Wire,
            name: None,
        });
        id
    }

    /// Finishes construction, validating the circuit graph.
    ///
    /// # Errors
    ///
    /// Returns an error on duplicate names, combinational (wire-only)
    /// cycles, or edges entering an input / leaving an output.
    pub fn finish(self) -> Result<Circuit, CircuitBuildError> {
        // Name uniqueness.
        let mut names: Vec<&str> = self.vertices.iter().map(|v| v.name.as_str()).collect();
        names.sort_unstable();
        if let Some(w) = names.windows(2).find(|w| w[0] == w[1]) {
            return Err(CircuitBuildError::DuplicateVertexName(w[0].to_string()));
        }
        let mut regs: Vec<&str> = self
            .edges
            .iter()
            .filter_map(|e| e.name.as_deref())
            .collect();
        regs.sort_unstable();
        if let Some(w) = regs.windows(2).find(|w| w[0] == w[1]) {
            return Err(CircuitBuildError::DuplicateRegisterName(w[0].to_string()));
        }
        let mut circuit = Circuit {
            name: self.name,
            vertices: self.vertices,
            edges: self.edges,
            out_edges: Vec::new(),
            in_edges: Vec::new(),
        };
        circuit.rebuild_adjacency();
        // IO direction.
        for v in circuit.vertex_ids() {
            match circuit.vertex(v).kind {
                VertexKind::Input if !circuit.in_edges(v).is_empty() => {
                    return Err(CircuitBuildError::BadIoDirection { vertex: v });
                }
                VertexKind::Output if !circuit.out_edges(v).is_empty() => {
                    return Err(CircuitBuildError::BadIoDirection { vertex: v });
                }
                _ => {}
            }
        }
        // Combinational (wire-only) cycles: Kahn over the wire subgraph.
        let n = circuit.vertex_count();
        let mut indeg = vec![0usize; n];
        for e in &circuit.edges {
            if e.kind == EdgeKind::Wire {
                indeg[e.to.index()] += 1;
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
        let mut seen = 0usize;
        while let Some(v) = queue.pop() {
            seen += 1;
            for &eid in circuit.out_edges(VertexId(v as u32)) {
                let e = circuit.edge(eid);
                if e.kind == EdgeKind::Wire {
                    indeg[e.to.index()] -= 1;
                    if indeg[e.to.index()] == 0 {
                        queue.push(e.to.index());
                    }
                }
            }
        }
        if seen != n {
            let stuck = (0..n).find(|&v| indeg[v] > 0).expect("cycle exists");
            return Err(CircuitBuildError::CombinationalCycle {
                vertex: VertexId(stuck as u32),
            });
        }
        Ok(circuit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_records_structure() {
        let mut b = CircuitBuilder::new("t");
        let pi = b.input("PI");
        let f = b.fanout("F");
        let c = b.logic("C");
        let po = b.output("PO");
        b.wire(pi, f);
        b.wire(f, c);
        let r = b.register("R", 8, f, c);
        b.register("Rout", 8, c, po);
        let circuit = b.finish().unwrap();
        assert_eq!(circuit.vertex_count(), 4);
        assert_eq!(circuit.edge_count(), 4);
        assert_eq!(circuit.register_edges().count(), 2);
        assert_eq!(circuit.edge(r).kind, EdgeKind::Register { width: 8 });
        assert_eq!(circuit.total_register_bits(), 16);
        assert_eq!(circuit.in_edges(c).len(), 2);
    }

    #[test]
    fn duplicate_vertex_names_rejected() {
        let mut b = CircuitBuilder::new("t");
        b.logic("X");
        b.logic("X");
        assert!(matches!(
            b.finish(),
            Err(CircuitBuildError::DuplicateVertexName(_))
        ));
    }

    #[test]
    fn duplicate_register_names_rejected() {
        let mut b = CircuitBuilder::new("t");
        let a = b.logic("A");
        let c = b.logic("B");
        b.register("R", 4, a, c);
        b.register("R", 4, c, a);
        assert!(matches!(
            b.finish(),
            Err(CircuitBuildError::DuplicateRegisterName(_))
        ));
    }

    #[test]
    fn combinational_cycle_rejected() {
        let mut b = CircuitBuilder::new("t");
        let a = b.logic("A");
        let c = b.logic("B");
        b.wire(a, c);
        b.wire(c, a);
        assert!(matches!(
            b.finish(),
            Err(CircuitBuildError::CombinationalCycle { .. })
        ));
    }

    #[test]
    fn sequential_cycle_allowed_at_build_time() {
        // Cycles through registers are legal structure (the F/H loop of
        // the paper's Figure 3); the TDM handles them later.
        let mut b = CircuitBuilder::new("t");
        let f = b.logic("F");
        let h = b.logic("H");
        b.register("R1", 4, f, h);
        b.register("R2", 4, h, f);
        assert!(b.finish().is_ok());
    }

    #[test]
    fn io_direction_enforced() {
        let mut b = CircuitBuilder::new("t");
        let pi = b.input("PI");
        let c = b.logic("C");
        b.wire(c, pi);
        assert!(matches!(
            b.finish(),
            Err(CircuitBuildError::BadIoDirection { .. })
        ));
    }

    #[test]
    fn split_register_edge_inserts_vacuous_stage() {
        let mut b = CircuitBuilder::new("t");
        let f = b.logic("F");
        let h = b.logic("H");
        let r1 = b.register("R1", 4, f, h);
        b.register("R2", 4, h, f);
        let mut circuit = b.finish().unwrap();
        let before_edges = circuit.edge_count();
        let new_edge = circuit.split_register_edge(r1, "R1b");
        assert_eq!(circuit.edge_count(), before_edges + 1);
        assert!(circuit.edge(new_edge).is_register());
        // R1 now ends at the vacuous vertex; the new edge continues to H.
        let mid = circuit.edge(r1).to;
        assert_eq!(circuit.vertex(mid).kind, VertexKind::Vacuous);
        assert_eq!(circuit.edge(new_edge).from, mid);
        assert_eq!(circuit.vertex(circuit.edge(new_edge).to).name, "H");
    }

    #[test]
    fn lookup_by_name() {
        let mut b = CircuitBuilder::new("t");
        let a = b.logic("A");
        let c = b.logic("B");
        b.register("R", 4, a, c);
        let circuit = b.finish().unwrap();
        assert_eq!(circuit.vertex_by_name("A"), Some(a));
        assert!(circuit.register_by_name("R").is_some());
        assert!(circuit.vertex_by_name("Z").is_none());
    }
}
