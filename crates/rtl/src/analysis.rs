//! Structural analyses on circuit graphs: cycles, sequential lengths,
//! balance, and URFS witnesses (Sections 2 and 3 of the paper).

use crate::circuit::{Circuit, EdgeId, VertexId};

/// The sequential length(s) of directed paths from a source vertex to a
/// destination vertex.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SeqLen {
    /// No directed path exists.
    Unreachable,
    /// All paths have the same sequential length (number of register
    /// edges) — the balanced case.
    Exact(u32),
    /// Paths of different sequential lengths exist — an imbalance.
    Conflict {
        /// Shortest path sequential length.
        min: u32,
        /// Longest path sequential length.
        max: u32,
    },
}

impl SeqLen {
    /// The exact sequential length, if unique.
    pub fn exact(self) -> Option<u32> {
        match self {
            SeqLen::Exact(d) => Some(d),
            _ => None,
        }
    }

    /// Whether any path exists.
    pub fn is_reachable(self) -> bool {
        !matches!(self, SeqLen::Unreachable)
    }
}

/// A pair of vertices joined by directed paths of unequal sequential
/// lengths — the witness of an **unbalanced reconvergent-fanout structure**
/// (URFS) in the paper's terminology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PairImbalance {
    /// Path source.
    pub from: VertexId,
    /// Path destination.
    pub to: VertexId,
    /// Shortest path sequential length.
    pub min: u32,
    /// Longest path sequential length.
    pub max: u32,
}

impl PairImbalance {
    /// Renders the imbalance with vertex *names* looked up in `circuit`,
    /// e.g. `"FO1 ~> H: paths of sequential length 1 and 2"`.
    pub fn describe(&self, circuit: &Circuit) -> String {
        format!(
            "{} ~> {}: paths of sequential length {} and {}",
            circuit.vertex_name(self.from),
            circuit.vertex_name(self.to),
            self.min,
            self.max
        )
    }
}

/// The result of a balance analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BalanceReport {
    /// Whether the graph is acyclic (a balanced structure must be).
    pub acyclic: bool,
    /// All vertex pairs with paths of unequal sequential length. Empty for
    /// a balanced acyclic circuit.
    pub imbalances: Vec<PairImbalance>,
}

impl BalanceReport {
    /// Whether the circuit is balanced: acyclic with no imbalanced pairs.
    pub fn is_balanced(&self) -> bool {
        self.acyclic && self.imbalances.is_empty()
    }
}

impl Circuit {
    /// Topological order of all vertices, or `None` if the graph has a
    /// directed cycle.
    pub fn topo_order(&self) -> Option<Vec<VertexId>> {
        self.topo_order_filtered(|_| true)
    }

    /// Topological order of the subgraph containing only edges accepted by
    /// `keep`, or `None` if that subgraph has a directed cycle.
    pub fn topo_order_filtered(&self, keep: impl Fn(EdgeId) -> bool) -> Option<Vec<VertexId>> {
        let n = self.vertex_count();
        let mut indeg = vec![0usize; n];
        for e in self.edge_ids() {
            if keep(e) {
                indeg[self.edge(e).to.index()] += 1;
            }
        }
        let mut queue: Vec<VertexId> = self
            .vertex_ids()
            .filter(|v| indeg[v.index()] == 0)
            .collect();
        let mut order = Vec::with_capacity(n);
        while let Some(v) = queue.pop() {
            order.push(v);
            for &eid in self.out_edges(v) {
                if keep(eid) {
                    let to = self.edge(eid).to;
                    indeg[to.index()] -= 1;
                    if indeg[to.index()] == 0 {
                        queue.push(to);
                    }
                }
            }
        }
        if order.len() == n {
            Some(order)
        } else {
            None
        }
    }

    /// Whether the circuit graph is acyclic (the first requirement of a
    /// balanced BISTable structure, Definition 1).
    pub fn is_acyclic(&self) -> bool {
        self.topo_order().is_some()
    }

    /// Finds one directed cycle, returned as its edge sequence, or `None`
    /// if the graph is acyclic.
    ///
    /// Because combinational (wire-only) cycles are rejected at build time,
    /// any returned cycle contains at least one register edge, as the
    /// paper's model requires.
    pub fn find_cycle(&self) -> Option<Vec<EdgeId>> {
        self.find_cycle_filtered(|_| true)
    }

    /// Finds one directed cycle using only edges accepted by `keep`.
    pub fn find_cycle_filtered(&self, keep: impl Fn(EdgeId) -> bool) -> Option<Vec<EdgeId>> {
        // Iterative DFS with colors; the edge stack reconstructs the cycle.
        const WHITE: u8 = 0;
        const GRAY: u8 = 1;
        const BLACK: u8 = 2;
        let n = self.vertex_count();
        let mut color = vec![WHITE; n];
        for start in self.vertex_ids() {
            if color[start.index()] != WHITE {
                continue;
            }
            // Stack of (vertex, next out-edge index); edge_path[k] led to
            // stack[k+1].
            let mut stack: Vec<(VertexId, usize)> = vec![(start, 0)];
            let mut edge_path: Vec<EdgeId> = Vec::new();
            color[start.index()] = GRAY;
            while let Some(&(v, idx)) = stack.last() {
                let outs = self.out_edges(v);
                if idx >= outs.len() {
                    color[v.index()] = BLACK;
                    stack.pop();
                    edge_path.pop();
                    continue;
                }
                stack.last_mut().expect("just peeked").1 += 1;
                let eid = outs[idx];
                if !keep(eid) {
                    continue;
                }
                let to = self.edge(eid).to;
                match color[to.index()] {
                    GRAY => {
                        // Found a cycle: slice the path from `to` onward.
                        let pos = stack
                            .iter()
                            .position(|&(w, _)| w == to)
                            .expect("gray vertex is on the stack");
                        let mut cycle: Vec<EdgeId> = edge_path[pos..].to_vec();
                        cycle.push(eid);
                        return Some(cycle);
                    }
                    WHITE => {
                        color[to.index()] = GRAY;
                        stack.push((to, 0));
                        edge_path.push(eid);
                    }
                    _ => {}
                }
            }
        }
        None
    }

    /// Sequential lengths of paths from `src` to every vertex, or `None` if
    /// a directed cycle is reachable from `src`.
    pub fn seq_lengths_from(&self, src: VertexId) -> Option<Vec<SeqLen>> {
        self.seq_lengths_from_filtered(src, |_| true)
    }

    /// Sequential lengths of paths from `src` in the subgraph of edges
    /// accepted by `keep`.
    ///
    /// Used by kernel-level analyses: passing a filter that cuts BILBO
    /// edges restricts paths to one kernel. Returns `None` if a cycle in
    /// the filtered subgraph is reachable from `src`.
    pub fn seq_lengths_from_filtered(
        &self,
        src: VertexId,
        keep: impl Fn(EdgeId) -> bool,
    ) -> Option<Vec<SeqLen>> {
        let order = self.topo_order_filtered(&keep)?;
        let mut result = vec![SeqLen::Unreachable; self.vertex_count()];
        result[src.index()] = SeqLen::Exact(0);
        for &v in &order {
            let cur = result[v.index()];
            if !cur.is_reachable() {
                continue;
            }
            let (cmin, cmax) = match cur {
                SeqLen::Exact(d) => (d, d),
                SeqLen::Conflict { min, max } => (min, max),
                SeqLen::Unreachable => unreachable!(),
            };
            for &eid in self.out_edges(v) {
                if !keep(eid) {
                    continue;
                }
                let e = self.edge(eid);
                let w = e.kind.seq_len();
                let (nmin, nmax) = (cmin + w, cmax + w);
                let entry = &mut result[e.to.index()];
                *entry = match *entry {
                    SeqLen::Unreachable => {
                        if nmin == nmax {
                            SeqLen::Exact(nmin)
                        } else {
                            SeqLen::Conflict {
                                min: nmin,
                                max: nmax,
                            }
                        }
                    }
                    SeqLen::Exact(d) => {
                        let min = d.min(nmin);
                        let max = d.max(nmax);
                        if min == max {
                            SeqLen::Exact(min)
                        } else {
                            SeqLen::Conflict { min, max }
                        }
                    }
                    SeqLen::Conflict { min, max } => SeqLen::Conflict {
                        min: min.min(nmin),
                        max: max.max(nmax),
                    },
                };
            }
        }
        Some(result)
    }

    /// Full balance analysis: acyclicity plus every imbalanced vertex pair.
    pub fn balance_report(&self) -> BalanceReport {
        self.balance_report_filtered(|_| true)
    }

    /// Balance analysis restricted to the subgraph of edges accepted by
    /// `keep`.
    pub fn balance_report_filtered(&self, keep: impl Fn(EdgeId) -> bool) -> BalanceReport {
        let keep = &keep;
        if self.topo_order_filtered(keep).is_none() {
            return BalanceReport {
                acyclic: false,
                imbalances: Vec::new(),
            };
        }
        let mut imbalances = Vec::new();
        for src in self.vertex_ids() {
            let lens = self
                .seq_lengths_from_filtered(src, keep)
                .expect("acyclicity checked above");
            for dst in self.vertex_ids() {
                if let SeqLen::Conflict { min, max } = lens[dst.index()] {
                    imbalances.push(PairImbalance {
                        from: src,
                        to: dst,
                        min,
                        max,
                    });
                }
            }
        }
        BalanceReport {
            acyclic: true,
            imbalances,
        }
    }

    /// Whether the circuit is **balanced**: acyclic, and all directed paths
    /// between every vertex pair have equal sequential length (the first two
    /// requirements of Definition 1).
    pub fn is_balanced(&self) -> bool {
        self.balance_report().is_balanced()
    }

    /// Concrete witness paths for a (potential) imbalance: a
    /// minimum-sequential-length path and a maximum-sequential-length path
    /// from `from` to `to` in the subgraph of edges accepted by `keep`.
    ///
    /// Returns `None` if the filtered subgraph is cyclic or `to` is
    /// unreachable from `from`. For a balanced pair the two paths have equal
    /// sequential length (they may still be distinct edge sequences); for a
    /// [`PairImbalance`] they are the unequal-length pair the paper's URFS
    /// definition talks about. Render them with
    /// [`Circuit::describe_path`].
    pub fn witness_paths_filtered(
        &self,
        from: VertexId,
        to: VertexId,
        keep: impl Fn(EdgeId) -> bool,
    ) -> Option<(Vec<EdgeId>, Vec<EdgeId>)> {
        let order = self.topo_order_filtered(&keep)?;
        let n = self.vertex_count();
        // dist/pred tables for the min- and max-sequential-length paths.
        let mut min_d: Vec<Option<u32>> = vec![None; n];
        let mut max_d: Vec<Option<u32>> = vec![None; n];
        let mut min_pred: Vec<Option<EdgeId>> = vec![None; n];
        let mut max_pred: Vec<Option<EdgeId>> = vec![None; n];
        min_d[from.index()] = Some(0);
        max_d[from.index()] = Some(0);
        for &v in &order {
            let (Some(vmin), Some(vmax)) = (min_d[v.index()], max_d[v.index()]) else {
                continue;
            };
            for &eid in self.out_edges(v) {
                if !keep(eid) {
                    continue;
                }
                let e = self.edge(eid);
                let w = e.kind.seq_len();
                let t = e.to.index();
                if min_d[t].is_none_or(|d| vmin + w < d) {
                    min_d[t] = Some(vmin + w);
                    min_pred[t] = Some(eid);
                }
                if max_d[t].is_none_or(|d| vmax + w > d) {
                    max_d[t] = Some(vmax + w);
                    max_pred[t] = Some(eid);
                }
            }
        }
        min_d[to.index()]?;
        let walk_back = |pred: &[Option<EdgeId>]| -> Vec<EdgeId> {
            let mut path = Vec::new();
            let mut cur = to;
            while cur != from {
                let eid = pred[cur.index()].expect("reachable vertex has a predecessor");
                path.push(eid);
                cur = self.edge(eid).from;
            }
            path.reverse();
            path
        };
        Some((walk_back(&min_pred), walk_back(&max_pred)))
    }

    /// Unfiltered version of [`Self::witness_paths_filtered`].
    pub fn witness_paths(
        &self,
        from: VertexId,
        to: VertexId,
    ) -> Option<(Vec<EdgeId>, Vec<EdgeId>)> {
        self.witness_paths_filtered(from, to, |_| true)
    }

    /// The set of vertices reachable from `src` (inclusive) in the subgraph
    /// of edges accepted by `keep`.
    pub fn reachable_from_filtered(
        &self,
        src: VertexId,
        keep: impl Fn(EdgeId) -> bool,
    ) -> Vec<bool> {
        let mut seen = vec![false; self.vertex_count()];
        let mut stack = vec![src];
        seen[src.index()] = true;
        while let Some(v) = stack.pop() {
            for &eid in self.out_edges(v) {
                if keep(eid) {
                    let to = self.edge(eid).to;
                    if !seen[to.index()] {
                        seen[to.index()] = true;
                        stack.push(to);
                    }
                }
            }
        }
        seen
    }

    /// The sequential depth of the circuit: the maximum sequential length
    /// from any primary input to any primary output.
    ///
    /// Returns `None` for cyclic circuits (depth undefined).
    pub fn sequential_depth(&self) -> Option<u32> {
        let mut depth = 0u32;
        for pi in self.inputs() {
            let lens = self.seq_lengths_from(pi)?;
            for po in self.outputs() {
                match lens[po.index()] {
                    SeqLen::Exact(d) => depth = depth.max(d),
                    SeqLen::Conflict { max, .. } => depth = depth.max(max),
                    SeqLen::Unreachable => {}
                }
            }
        }
        Some(depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::CircuitBuilder;

    /// The paper's Figure 1: PI feeds fanout F; F feeds C directly and
    /// through register R — an unbalanced circuit.
    fn figure1() -> Circuit {
        let mut b = CircuitBuilder::new("fig1");
        let pi = b.input("PI");
        let f = b.fanout("F");
        let c = b.logic("C");
        let po = b.output("PO");
        b.wire(pi, f);
        b.wire(f, c);
        b.register("R", 8, f, c);
        b.wire(c, po);
        b.finish().unwrap()
    }

    /// The paper's Figure 2: PI -R1-> C1 -R2-> C2 -R3-> PO, balanced.
    fn figure2() -> Circuit {
        let mut b = CircuitBuilder::new("fig2");
        let pi = b.input("PI");
        let c1 = b.logic("C1");
        let c2 = b.logic("C2");
        let po = b.output("PO");
        b.register("R1", 8, pi, c1);
        b.register("R2", 8, c1, c2);
        b.register("R3", 8, c2, po);
        b.finish().unwrap()
    }

    /// The cycle + URFS structure of the paper's Figure 3 (simplified to the
    /// relevant vertices): F <-> H cycle and an URFS through A/C branches.
    fn figure3_like() -> Circuit {
        let mut b = CircuitBuilder::new("fig3");
        let pi = b.input("PI");
        let fo1 = b.fanout("FO1");
        let a = b.logic("A");
        let c = b.logic("C");
        let d = b.logic("D");
        let e = b.logic("E");
        let g = b.logic("G");
        let h = b.logic("H");
        let f = b.logic("F");
        let po = b.output("PO");
        b.register("R1", 8, pi, fo1);
        b.wire(fo1, a);
        b.wire(fo1, c);
        // Branch 1: A -R-> D -> H (one register edge).
        b.register("R2", 8, a, d);
        b.wire(d, h);
        // Branch 2: C -R-> E -R-> G -> H (two register edges).
        b.register("R3", 8, c, e);
        b.register("R4", 8, e, g);
        b.wire(g, h);
        // Cycle F <-> H.
        b.register("R5", 8, h, f);
        b.register("R6", 8, f, h);
        b.wire(h, po);
        b.finish().unwrap()
    }

    #[test]
    fn figure1_is_unbalanced() {
        let c = figure1();
        assert!(c.is_acyclic());
        assert!(!c.is_balanced());
        let report = c.balance_report();
        let f = c.vertex_by_name("F").unwrap();
        let blk = c.vertex_by_name("C").unwrap();
        assert!(report
            .imbalances
            .iter()
            .any(|i| i.from == f && i.to == blk && i.min == 0 && i.max == 1));
    }

    #[test]
    fn figure2_is_balanced() {
        let c = figure2();
        assert!(c.is_balanced());
        assert_eq!(c.sequential_depth(), Some(3));
    }

    #[test]
    fn figure3_has_cycle_and_urfs() {
        let c = figure3_like();
        assert!(!c.is_acyclic());
        let cycle = c.find_cycle().expect("F<->H cycle");
        assert_eq!(cycle.len(), 2);
        for e in &cycle {
            assert!(c.edge(*e).is_register());
        }
        // Cutting the cycle leaves the URFS visible.
        let r5 = c.register_by_name("R5").unwrap();
        let report = c.balance_report_filtered(|e| e != r5);
        assert!(report.acyclic);
        assert!(!report.imbalances.is_empty(), "URFS must be reported");
        let fo1 = c.vertex_by_name("FO1").unwrap();
        let h = c.vertex_by_name("H").unwrap();
        assert!(report
            .imbalances
            .iter()
            .any(|i| i.from == fo1 && i.to == h && i.min == 1 && i.max == 2));
    }

    #[test]
    fn seq_lengths_basic() {
        let c = figure2();
        let pi = c.vertex_by_name("PI").unwrap();
        let lens = c.seq_lengths_from(pi).unwrap();
        let c2 = c.vertex_by_name("C2").unwrap();
        let po = c.vertex_by_name("PO").unwrap();
        assert_eq!(lens[c2.index()], SeqLen::Exact(2));
        assert_eq!(lens[po.index()], SeqLen::Exact(3));
        assert_eq!(lens[pi.index()], SeqLen::Exact(0));
    }

    #[test]
    fn seq_lengths_none_on_reachable_cycle() {
        let c = figure3_like();
        let pi = c.vertex_by_name("PI").unwrap();
        assert!(c.seq_lengths_from(pi).is_none());
    }

    #[test]
    fn filtered_seq_lengths_cut_kernel_boundaries() {
        let c = figure2();
        // Cut R2: C2 becomes unreachable from PI.
        let r2 = c.register_by_name("R2").unwrap();
        let pi = c.vertex_by_name("PI").unwrap();
        let lens = c.seq_lengths_from_filtered(pi, |e| e != r2).unwrap();
        let c1 = c.vertex_by_name("C1").unwrap();
        let c2 = c.vertex_by_name("C2").unwrap();
        assert_eq!(lens[c1.index()], SeqLen::Exact(1));
        assert_eq!(lens[c2.index()], SeqLen::Unreachable);
    }

    #[test]
    fn reachability() {
        let c = figure2();
        let pi = c.vertex_by_name("PI").unwrap();
        let seen = c.reachable_from_filtered(pi, |_| true);
        assert!(seen.iter().all(|&s| s));
        let c2 = c.vertex_by_name("C2").unwrap();
        let seen2 = c.reachable_from_filtered(c2, |_| true);
        assert!(!seen2[pi.index()]);
    }

    #[test]
    fn figure1_sequential_depth_uses_longest_path() {
        let c = figure1();
        assert_eq!(c.sequential_depth(), Some(1));
    }

    #[test]
    fn witness_paths_expose_the_urfs_pair_by_name() {
        let c = figure3_like();
        let r5 = c.register_by_name("R5").unwrap();
        let fo1 = c.vertex_by_name("FO1").unwrap();
        let h = c.vertex_by_name("H").unwrap();
        let (short, long) = c
            .witness_paths_filtered(fo1, h, |e| e != r5)
            .expect("H reachable from FO1 once the cycle is cut");
        let seq = |p: &[crate::circuit::EdgeId]| -> u32 {
            p.iter().map(|&e| c.edge(e).kind.seq_len()).sum()
        };
        assert_eq!(seq(&short), 1);
        assert_eq!(seq(&long), 2);
        // Paths are rendered with names, not indices.
        assert_eq!(c.describe_path(&short), "FO1 -> A -R2[8]-> D -> H");
        assert_eq!(
            c.describe_path(&long),
            "FO1 -> C -R3[8]-> E -R4[8]-> G -> H"
        );
        let imb = PairImbalance {
            from: fo1,
            to: h,
            min: 1,
            max: 2,
        };
        assert_eq!(
            imb.describe(&c),
            "FO1 ~> H: paths of sequential length 1 and 2"
        );
    }

    #[test]
    fn witness_paths_none_when_unreachable_or_cyclic() {
        let c = figure2();
        let pi = c.vertex_by_name("PI").unwrap();
        let c2 = c.vertex_by_name("C2").unwrap();
        assert!(
            c.witness_paths(c2, pi).is_none(),
            "PI not reachable from C2"
        );
        let cyc = figure3_like();
        let p = cyc.vertex_by_name("PI").unwrap();
        let po = cyc.vertex_by_name("PO").unwrap();
        assert!(cyc.witness_paths(p, po).is_none(), "cyclic graph");
    }

    #[test]
    fn balanced_pair_witnesses_have_equal_length() {
        let c = figure2();
        let pi = c.vertex_by_name("PI").unwrap();
        let po = c.vertex_by_name("PO").unwrap();
        let (a, b) = c.witness_paths(pi, po).unwrap();
        let seq = |p: &[crate::circuit::EdgeId]| -> u32 {
            p.iter().map(|&e| c.edge(e).kind.seq_len()).sum()
        };
        assert_eq!(seq(&a), 3);
        assert_eq!(seq(&b), 3);
        assert_eq!(
            c.describe_path(&a),
            "PI -R1[8]-> C1 -R2[8]-> C2 -R3[8]-> PO"
        );
    }

    #[test]
    fn describe_cycle_names_the_loop() {
        let c = figure3_like();
        let cycle = c.find_cycle().unwrap();
        let rendered = c.describe_cycle(&cycle);
        // The F<->H loop, whichever vertex DFS entered first.
        assert!(
            rendered == "H -R5[8]-> F -R6[8]-> H" || rendered == "F -R6[8]-> H -R5[8]-> F",
            "unexpected cycle rendering: {rendered}"
        );
        assert_eq!(c.describe_path(&[]), "(empty path)");
    }
}
