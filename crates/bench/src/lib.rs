//! Experiment pipeline shared by the table/figure binaries.
//!
//! [`table2_column`] implements the full Table 2 methodology for one
//! circuit under one TDM:
//!
//! 1. select BILBO registers (BIBS best-first search, or the
//!    Krasniewski–Albicki criteria);
//! 2. extract kernels, schedule test sessions, compute the maximal-delay
//!    metric;
//! 3. elaborate each kernel to gates, classify faults with PODEM (the
//!    "detectable" universe), fault-simulate random patterns with fault
//!    dropping;
//! 4. per-kernel pattern counts at a coverage target combine into the
//!    paper's two aggregates: **# of patterns** = Σ over kernels (kernels
//!    tested in sequence) and **test time** = Σ over sessions of the
//!    session maximum (kernels of a session run concurrently).
#![warn(missing_docs)]

use bibs_core::bibs::{self, BibsOptions};
use bibs_core::delay::maximal_delay;
use bibs_core::design::{kernels, BilboDesign, Kernel};
use bibs_core::ka85;
use bibs_core::schedule::{schedule_test_time, schedule_traced, sequential_test_time, TestSession};
use bibs_core::source::MinTpgSource;
use bibs_core::structure::GeneralizedStructure;
use bibs_core::tpg::sc_tpg;
use bibs_datapath::elab::elaborate_kernel;
use bibs_faultsim::atpg::Atpg;
use bibs_faultsim::fault::{DominanceCollapse, Fault, FaultUniverse, StaticFaultAnalysis};
use bibs_faultsim::par::{default_jobs, ParFaultSimulator};
use bibs_faultsim::reference::ReferenceSimulator;
use bibs_faultsim::sim::BlockSim;
use bibs_faultsim::source::{
    LfsrSource, PatternSource, RandomWords, StoredSeedReplay, WeightedRandomSource,
};
use bibs_faultsim::stats::SimStats;
use bibs_netlist::opt::{optimize_traced, OptStats};
use bibs_netlist::EvalProgram;
use bibs_obs::{CounterId, Recorder, TraceMode};
use bibs_rtl::{Circuit, VertexKind};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;
use std::time::Instant;

/// Which TDM to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tdm {
    /// The paper's BIBS methodology.
    Bibs,
    /// The Krasniewski–Albicki baseline (reference \[3\]).
    Ka85,
}

impl std::fmt::Display for Tdm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Tdm::Bibs => write!(f, "BIBS"),
            Tdm::Ka85 => write!(f, "[3]"),
        }
    }
}

/// Which fault-simulation engine drives the random phase.
///
/// The detection results (and therefore every Table 2 number) are
/// bit-identical across engines — the choice only trades wall-clock time,
/// which is exactly what makes the reference interpreter useful as an
/// equivalence oracle in CI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Compiled [`bibs_netlist::EvalProgram`] IR on `jobs` worker threads
    /// (the default production path).
    #[default]
    Compiled,
    /// The original gate-walking interpreter
    /// ([`bibs_faultsim::reference`]), single-threaded.
    Reference,
}

impl std::str::FromStr for Engine {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "compiled" => Ok(Engine::Compiled),
            "reference" => Ok(Engine::Reference),
            other => Err(format!(
                "unknown engine '{other}' (expected 'compiled' or 'reference')"
            )),
        }
    }
}

impl std::fmt::Display for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Engine::Compiled => write!(f, "compiled"),
            Engine::Reference => write!(f, "reference"),
        }
    }
}

/// How aggressively the fault universe is collapsed before simulation.
///
/// Every mode produces **byte-identical** Table 2 JSON: dominance classes
/// are functional equivalences, so per-representative detection results
/// expand exactly back to the full list (see
/// [`DominanceCollapse::expand_detection`]). The mode only changes how
/// many faulty machines the engine actually simulates
/// ([`SimStats::simulated_faults`] vs [`SimStats::universe_faults`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CollapseMode {
    /// Structural local-equivalence collapsing
    /// ([`FaultUniverse::collapsed`]) — the PR 1 baseline.
    #[default]
    Equiv,
    /// Local equivalence plus transitive dominance-class collapsing over
    /// the compiled IR ([`FaultUniverse::dominance_collapsed`]): only
    /// class representatives are simulated and results are expanded
    /// through the recorded representative map.
    Dominance,
    /// No collapsing at all ([`FaultUniverse::full`]) — the reference
    /// point for measuring what collapsing buys.
    None,
}

impl std::str::FromStr for CollapseMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "equiv" => Ok(CollapseMode::Equiv),
            "dominance" => Ok(CollapseMode::Dominance),
            "none" => Ok(CollapseMode::None),
            other => Err(format!(
                "unknown collapse mode '{other}' (expected 'equiv', 'dominance' or 'none')"
            )),
        }
    }
}

impl std::fmt::Display for CollapseMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CollapseMode::Equiv => write!(f, "equiv"),
            CollapseMode::Dominance => write!(f, "dominance"),
            CollapseMode::None => write!(f, "none"),
        }
    }
}

/// Which [`PatternSource`] drives the per-kernel random phase — the
/// coverage-vs-clocks axis as a CLI knob.
///
/// `None` in [`Table2Options::source`] (the default) keeps the pre-source
/// code path and its byte-identical JSON; [`SourceSpec::Random`] draws the
/// *same* seeded stream through the source layer (CI diffs the two
/// byte-for-byte). Every other variant trades the uniform stream for a
/// hardware-faithful one and reports its clock budget alongside the
/// detection indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SourceSpec {
    /// Seeded xoshiro256** words — the legacy stream behind the
    /// [`PatternSource`] interface ([`RandomWords`]).
    Random,
    /// A maximal-length type-1 LFSR sized to the kernel width, plus the
    /// appended all-zero pattern ([`LfsrSource`]).
    Lfsr,
    /// The paper's TPG ([`MinTpgSource`]) built from the kernel's
    /// generalized structure; kernels whose structure is not a
    /// width-matched single cone fall back to [`SourceSpec::Lfsr`]
    /// (visible in the emitted descriptor's `"kind"`).
    MinTpg,
    /// Biased random words, every input weighted to 0.75
    /// ([`WeightedRandomSource`]).
    Weighted,
    /// Replays a stored seed schedule from a file ([`StoredSeedReplay`]).
    Replay(String),
}

impl std::str::FromStr for SourceSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "random" => Ok(SourceSpec::Random),
            "lfsr" => Ok(SourceSpec::Lfsr),
            "mintpg" => Ok(SourceSpec::MinTpg),
            "weighted" => Ok(SourceSpec::Weighted),
            other => match other.strip_prefix("replay:") {
                Some(path) if !path.is_empty() => Ok(SourceSpec::Replay(path.to_string())),
                _ => Err(format!(
                    "unknown source '{other}' (expected 'random', 'lfsr', 'mintpg', \
                     'weighted' or 'replay:<file>')"
                )),
            },
        }
    }
}

impl SourceSpec {
    /// Fail fast on specs that reference external state: a missing or
    /// malformed replay schedule should be a pointed CLI error before
    /// any simulation starts, not a mid-run panic deep in a kernel loop.
    pub fn preflight(&self) -> Result<(), String> {
        if let SourceSpec::Replay(path) = self {
            StoredSeedReplay::from_file(path)?;
        }
        Ok(())
    }
}

impl std::fmt::Display for SourceSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SourceSpec::Random => write!(f, "random"),
            SourceSpec::Lfsr => write!(f, "lfsr"),
            SourceSpec::MinTpg => write!(f, "mintpg"),
            SourceSpec::Weighted => write!(f, "weighted"),
            SourceSpec::Replay(path) => write!(f, "replay:{path}"),
        }
    }
}

/// Builds the [`PatternSource`] a [`SourceSpec`] names for one kernel.
///
/// `width` must be the kernel's combinational-equivalent input width (what
/// [`BlockSim::run_source_with`] will request per block); `seed` is the
/// kernel-personalized RNG seed. [`SourceSpec::MinTpg`] extracts the
/// kernel's [`GeneralizedStructure`] and designs an SC_TPG for it; when
/// the structure is multi-cone, unbalanced, or its total width disagrees
/// with the elaborated netlist, it falls back to the plain LFSR — the
/// returned descriptor's `"kind"` field records which source actually ran.
///
/// # Errors
///
/// Propagates source-construction failures (kernel wider than 64 bits for
/// the LFSR family, unreadable or malformed replay files).
pub fn build_source(
    spec: &SourceSpec,
    seed: u64,
    width: usize,
    circuit: &Circuit,
    design: &BilboDesign,
    kernel: &Kernel,
) -> Result<Box<dyn PatternSource>, String> {
    match spec {
        SourceSpec::Random => Ok(Box::new(RandomWords::seeded(seed))),
        SourceSpec::Lfsr => Ok(Box::new(LfsrSource::new(width, seed)?)),
        SourceSpec::MinTpg => {
            // The fallback is never silent: a kernel the SC_TPG cannot
            // drive gets the plain LFSR *and* a stderr warning naming the
            // reason, so a width mismatch no longer masquerades as a
            // mintpg run (the descriptor's "kind" records it too).
            let reason = match GeneralizedStructure::from_kernel(circuit, design, kernel) {
                Ok(structure) => {
                    if !structure.is_single_cone() {
                        "kernel structure is multi-cone".to_string()
                    } else if structure.total_width() as usize != width {
                        format!(
                            "structure width {} disagrees with the kernel's \
                             combinational input width {width}",
                            structure.total_width()
                        )
                    } else {
                        let tpg = sc_tpg(&structure);
                        match MinTpgSource::new(&tpg, &structure) {
                            Ok(source) => return Ok(Box::new(source)),
                            Err(e) => format!("SC_TPG construction failed: {e}"),
                        }
                    }
                }
                Err(e) => format!("no generalized structure: {e}"),
            };
            eprintln!("warning: mintpg source falls back to lfsr: {reason}");
            Ok(Box::new(LfsrSource::new(width, seed)?))
        }
        SourceSpec::Weighted => Ok(Box::new(WeightedRandomSource::new(
            seed,
            vec![0.75; width],
        )?)),
        SourceSpec::Replay(path) => {
            let replay = StoredSeedReplay::from_file(path)?;
            // B060 preflight: a schedule that declares the width it was
            // recorded for must match the kernel it is about to drive.
            let report = bibs_lint::lint_source_width(
                &format!("replay:{path}"),
                replay.declared_width(),
                width,
                "kernel",
                &bibs_lint::LintConfig::new(),
            );
            if !report.is_clean() {
                return Err(report
                    .diagnostics
                    .iter()
                    .map(|d| d.to_string())
                    .collect::<Vec<_>>()
                    .join("\n"));
            }
            Ok(Box::new(replay))
        }
    }
}

/// The coverage-vs-clocks record of a non-uniform pattern source's run on
/// one kernel (carried in [`KernelFaultStats::source`] and emitted in the
/// JSON). All three fields are detection-deterministic: blocks are pulled
/// serially, so thread count and engine cannot change them.
#[derive(Debug, Clone)]
pub struct SourceRun {
    /// The source's self-describing descriptor, already rendered as a JSON
    /// object (see [`bibs_faultsim::source::SourceDescriptor::to_json`]).
    pub descriptor_json: String,
    /// Hardware clock cycles the source accounts for (warm-up + one per
    /// pattern + reseed loads) — the denominator of coverage-vs-clocks.
    pub clocks: u64,
    /// Patterns the source emitted (lanes across all pulled blocks).
    pub emitted: u64,
}

/// Per-kernel fault-simulation outcome.
#[derive(Debug, Clone)]
pub struct KernelFaultStats {
    /// Collapsed fault count.
    pub faults: usize,
    /// Faults PODEM proved redundant.
    pub redundant: usize,
    /// Faults PODEM aborted on. Aborted faults are excluded from the
    /// detectable universe (none were detected by the random stream and
    /// none could be proven either way); reported for transparency.
    pub aborted: usize,
    /// Faults PODEM found a test for but the random stream never reached
    /// within the pattern cap (would inflate the 100 % rows; reported).
    pub unreached: usize,
    /// Detected fault count after simulation.
    pub detected: usize,
    /// Sorted first-detection pattern indices.
    pub detection_indices: Vec<u64>,
    /// Fault-simulation engine counters for the random phase (threads,
    /// evaluations, per-shard balance, wall time).
    pub sim: SimStats,
    /// Coverage-vs-clocks record when a non-uniform [`SourceSpec`] drove
    /// the random phase (`None` for the legacy path and
    /// [`SourceSpec::Random`], whose JSON stays byte-identical).
    pub source: Option<SourceRun>,
    /// Optimizer statistics when `--opt` rewrote the simulated program
    /// (`None` otherwise). Diagnostics only — never part of the Table 2
    /// JSON, which stays byte-identical under `--opt` by construction.
    pub opt: Option<OptStats>,
}

impl KernelFaultStats {
    /// The detectable universe size (faults detected plus testable-but-
    /// unreached ones).
    pub fn detectable(&self) -> usize {
        self.faults - self.redundant - self.aborted
    }

    /// Patterns needed to detect `fraction` of the detectable faults.
    pub fn patterns_for(&self, fraction: f64) -> u64 {
        if self.detection_indices.is_empty() {
            return 0;
        }
        let need = ((fraction * self.detection_indices.len() as f64).ceil() as usize)
            .clamp(1, self.detection_indices.len());
        self.detection_indices[need - 1] + 1
    }
}

/// One column of Table 2 (one circuit under one TDM).
#[derive(Debug, Clone)]
pub struct Table2Column {
    /// The TDM applied.
    pub tdm: Tdm,
    /// Circuit name.
    pub circuit: String,
    /// Row 1: number of kernels.
    pub kernel_count: usize,
    /// Row 2: number of test sessions.
    pub session_count: usize,
    /// Row 3: number of BILBO (and CBILBO) registers.
    pub bilbo_count: usize,
    /// Row 4: maximal delay in time units.
    pub max_delay: u32,
    /// Row 5: patterns to 99.5 % coverage of detectable faults.
    pub patterns_995: u64,
    /// Row 6: test time to 99.5 % coverage.
    pub time_995: u64,
    /// Row 7: patterns to 100 % coverage of detectable faults.
    pub patterns_100: u64,
    /// Row 8: test time to 100 % coverage.
    pub time_100: u64,
    /// Per-kernel statistics (diagnostics).
    pub kernel_stats: Vec<KernelFaultStats>,
}

/// Options for the Table 2 pipeline.
#[derive(Debug, Clone)]
pub struct Table2Options {
    /// RNG seed for the random pattern streams.
    pub seed: u64,
    /// Cap on random patterns per kernel.
    pub max_patterns: u64,
    /// Stop simulating a kernel once this many consecutive patterns bring
    /// no new detection (the survivors go to PODEM).
    pub plateau: u64,
    /// PODEM backtrack limit.
    pub backtrack_limit: usize,
    /// Worker threads for fault simulation (default: `BIBS_JOBS` or the
    /// machine's available parallelism — see
    /// [`bibs_faultsim::par::default_jobs`]). The results are
    /// bit-identical for any value; this only trades wall-clock time.
    pub jobs: usize,
    /// Fault-simulation engine for the random phase. The results are
    /// bit-identical across engines (see [`Engine`]).
    pub engine: Engine,
    /// Fault-universe collapsing mode. The results are bit-identical
    /// across modes (see [`CollapseMode`]); only
    /// [`SimStats::simulated_faults`] and wall-clock change.
    pub collapse: CollapseMode,
    /// Pattern source for the random phase. `None` (the default) is the
    /// legacy seeded-RNG path; [`SourceSpec::Random`] reproduces it
    /// byte-for-byte through the [`PatternSource`] layer; other specs
    /// change the stream and add per-kernel `source`/`source_clocks`/
    /// `source_patterns` fields to the JSON.
    pub source: Option<SourceSpec>,
    /// Run the optimizing pass pipeline ([`bibs_netlist::opt`]) over each
    /// kernel's compiled program and fault-simulate the validated rewrite
    /// (`--opt`). Detection results are bit-identical (the translation
    /// validator proves every pass); only `gate_evals` and wall-clock
    /// drop. [`Engine::Reference`] ignores the flag — the interpreter
    /// walks the netlist, not the program.
    pub opt: bool,
    /// Evaluation width in lanes (`--lanes`): 64 (the scalar default),
    /// 256 or 512. Widths past 64 run the PPSFP wide sweeps — one
    /// good-machine evaluation per 4- or 8-word block — and add a
    /// `lanes` telemetry counter; detection results are bit-identical at
    /// every width, only `gate_evals`-per-second and wall-clock change.
    /// [`Engine::Reference`] ignores the setting — the interpreter is
    /// always 64-lane.
    pub lanes: usize,
}

impl Default for Table2Options {
    fn default() -> Self {
        Table2Options {
            seed: 0x51B5_1994,
            max_patterns: 1_000_000,
            plateau: 100_000,
            backtrack_limit: 100_000,
            jobs: default_jobs(),
            engine: Engine::Compiled,
            collapse: CollapseMode::Equiv,
            source: None,
            opt: false,
            lanes: 64,
        }
    }
}

/// Selects a design under the given TDM and extracts logic-bearing kernels.
pub fn apply_tdm(circuit: &Circuit, tdm: Tdm) -> (Circuit, BilboDesign, Vec<Kernel>) {
    let (circuit, design) = match tdm {
        Tdm::Bibs => {
            let r = bibs::select(circuit, &BibsOptions::default())
                .expect("experiment circuits are IO-registered");
            (r.circuit, r.design)
        }
        Tdm::Ka85 => (
            circuit.clone(),
            ka85::select(circuit).expect("experiment circuits satisfy [3]'s assumptions"),
        ),
    };
    let ks: Vec<Kernel> = kernels(&circuit, &design)
        .into_iter()
        .filter(|k| {
            k.vertices
                .iter()
                .any(|&v| circuit.vertex(v).kind == VertexKind::Logic)
        })
        .collect();
    (circuit, design, ks)
}

/// Fault-classifies and fault-simulates one kernel.
///
/// Three-phase flow:
///
/// * **Phase 0 — static analysis** (timed into
///   [`SimStats::analysis_wall`]): the backward observability sweep drops
///   faults with no path to an output; the semantic prover
///   ([`StaticFaultAnalysis`]) then proves further faults untestable under
///   the ternary lattice (counted in [`SimStats::untestable_static`]); in
///   [`CollapseMode::Dominance`] the remainder is collapsed into
///   functional-equivalence classes and only representatives are
///   simulated.
/// * **Phase 1 — random simulation** with fault dropping and a detection
///   plateau. Per-representative results are expanded back through the
///   class map, so every downstream number is collapse-independent.
/// * **Phase 2 — PODEM** rules on the (expanded) survivors only — proving
///   them redundant, finding a test (rare random-resistant faults,
///   reported as `unreached`), or aborting (excluded and reported).
pub fn kernel_fault_stats(
    circuit: &Circuit,
    design: &BilboDesign,
    kernel: &Kernel,
    options: &Table2Options,
) -> KernelFaultStats {
    kernel_fault_stats_traced(circuit, design, kernel, options, &mut Recorder::disabled())
}

/// [`kernel_fault_stats`] with the whole three-phase flow recorded into a
/// pipeline-level telemetry [`Recorder`] under its current span:
///
/// * `"compile"` — the netlist→IR compile (instruction/slot counters);
/// * `"analyze"` — observability split plus the semantic prover (with
///   `"ternary"` / `"scoap"` sub-spans and the `case_splits` counter),
///   carrying the `universe_faults` / `untestable_static` /
///   `simulated_faults` counters;
/// * `"collapse"` — dominance-class construction (dominance mode only);
/// * the engine's own `fault-sim[...]` tree, grafted verbatim (per-block
///   counters on its root, one detail child per worker shard);
/// * `"expand"` — representative→universe detection expansion
///   (dominance mode only);
/// * `"atpg"` — the PODEM sweep with the `podem_backtracks` counter.
///
/// Every exported counter is detection-deterministic: identical for any
/// thread count and collapse-independent where the numbers are.
pub fn kernel_fault_stats_traced(
    circuit: &Circuit,
    design: &BilboDesign,
    kernel: &Kernel,
    options: &Table2Options,
    rec: &mut Recorder,
) -> KernelFaultStats {
    let cut: HashSet<_> = design.bilbo.iter().chain(&design.cbilbo).copied().collect();
    let kernel_set: HashSet<_> = kernel.vertices.iter().copied().collect();
    let elab = elaborate_kernel(circuit, &kernel_set, &cut).expect("kernel elaborates");
    let comb = elab.netlist.combinational_equivalent();
    let universe = match options.collapse {
        CollapseMode::None => FaultUniverse::full(&comb),
        CollapseMode::Equiv | CollapseMode::Dominance => FaultUniverse::collapsed(&comb),
    };

    // Phase 0: static analysis over the compiled IR, timed as a unit.
    // Observability: faults with no net path to a PO (the truncated
    // multipliers' upper halves) are redundant outright. The semantic
    // prover then removes further statically-untestable faults, and
    // dominance mode collapses what is left into functional classes.
    let analysis_start = Instant::now();
    let program = EvalProgram::compile_traced(&comb, rec).expect("kernel equivalents are acyclic");
    let analyze = rec.enter("analyze");
    let (observable, unobservable) = universe.split_by_observability(&program);
    let sfa = StaticFaultAnalysis::new_traced(&program, rec);
    let (to_sim, untestable) = sfa.partition(&program, &observable);
    rec.add(CounterId::UniverseFaults, universe.len() as u64);
    rec.add(CounterId::UntestableStatic, untestable.len() as u64);
    rec.exit(analyze);
    let classes = match options.collapse {
        CollapseMode::Dominance => Some(DominanceCollapse::build_traced(&to_sim, &program, rec)),
        CollapseMode::Equiv | CollapseMode::None => None,
    };
    let analysis_wall = analysis_start.elapsed();

    let sim_faults = match &classes {
        Some(dc) => dc.representative_faults(),
        None => to_sim.clone(),
    };
    let simulated_faults = sim_faults.len() as u64;
    rec.add(CounterId::SimulatedFaults, simulated_faults);

    // `--opt`: rewrite the program the *simulators* run through the
    // validated pass pipeline. Analysis, collapsing and PODEM above and
    // below stay on the original program, so every classification number
    // is --opt-invariant; the validator proves detection is too. A
    // refuted rewrite is a hard abort carrying the counterexample — never
    // silently simulated. The reference interpreter walks the netlist
    // directly, so the flag is a no-op there.
    let optimized =
        if options.opt && options.engine == Engine::Compiled {
            Some(optimize_traced(&comb, &program, rec).unwrap_or_else(|e| {
                panic!("--opt aborted: {e} (kernel '{}')", elab.netlist.name())
            }))
        } else {
            None
        };

    // Phase 1: pattern simulation with fault dropping and a detection
    // plateau. Engines are interchangeable: the report is bit-identical
    // either way, and the plateau fires at the same block in every
    // collapse mode (a block brings a new detection iff it first-detects
    // some class representative). The engine records itself; its whole
    // span tree is grafted under the kernel's span afterwards. With no
    // `--source` the pre-source seeded-RNG path runs unchanged (and
    // recorder-silent); with one, the chosen [`PatternSource`] drives the
    // same generic driver and its coverage-vs-clocks accounting lands in
    // a `source[...]` telemetry span and (for non-uniform sources) in the
    // JSON.
    let kernel_seed = options.seed ^ kernel.input_edges.len() as u64;
    let mut source_run = None;
    let report = match &options.source {
        None => {
            let mut rng = StdRng::seed_from_u64(kernel_seed);
            match options.engine {
                Engine::Compiled => {
                    let mut sim = match &optimized {
                        Some(opt) => {
                            ParFaultSimulator::with_optimized(&comb, opt, sim_faults, options.jobs)
                        }
                        None => ParFaultSimulator::with_program(
                            &comb,
                            program.clone(),
                            sim_faults,
                            options.jobs,
                        ),
                    }
                    .with_lanes(options.lanes);
                    let report = sim.run_random_with_plateau(
                        &mut rng,
                        options.max_patterns,
                        options.plateau,
                    );
                    let cur = rec.current();
                    rec.graft(cur, sim.recorder());
                    report
                }
                Engine::Reference => {
                    let mut sim = ReferenceSimulator::new(&comb, sim_faults);
                    let report = sim.run_random_with_plateau(
                        &mut rng,
                        options.max_patterns,
                        options.plateau,
                    );
                    let cur = rec.current();
                    rec.graft(cur, sim.recorder());
                    report
                }
            }
        }
        Some(spec) => {
            let mut source = build_source(
                spec,
                kernel_seed,
                comb.input_width(),
                circuit,
                design,
                kernel,
            )
            .unwrap_or_else(|e| panic!("cannot build pattern source '{spec}': {e}"));
            let report = match options.engine {
                Engine::Compiled => {
                    let mut sim = match &optimized {
                        Some(opt) => {
                            ParFaultSimulator::with_optimized(&comb, opt, sim_faults, options.jobs)
                        }
                        None => ParFaultSimulator::with_program(
                            &comb,
                            program.clone(),
                            sim_faults,
                            options.jobs,
                        ),
                    }
                    .with_lanes(options.lanes);
                    let report = sim.run_source_with(
                        &mut *source,
                        options.max_patterns,
                        options.plateau,
                        1.0,
                    );
                    let cur = rec.current();
                    rec.graft(cur, sim.recorder());
                    report
                }
                Engine::Reference => {
                    let mut sim = ReferenceSimulator::new(&comb, sim_faults);
                    let report = sim.run_source_with(
                        &mut *source,
                        options.max_patterns,
                        options.plateau,
                        1.0,
                    );
                    let cur = rec.current();
                    rec.graft(cur, sim.recorder());
                    report
                }
            };
            rec.scope(format!("source[{spec}]"), |rec| {
                rec.add(CounterId::PatternsEmitted, source.patterns_emitted());
                rec.add(CounterId::SourceClocks, source.clocks_consumed());
            });
            // `random` reproduces the legacy stream, so it also keeps the
            // legacy JSON (byte-identical — a CI gate); every other source
            // reports its coverage-vs-clocks record.
            if *spec != SourceSpec::Random {
                source_run = Some(SourceRun {
                    descriptor_json: source.descriptor().to_json(),
                    clocks: source.clocks_consumed(),
                    emitted: source.patterns_emitted(),
                });
            }
            report
        }
    };

    // Expand per-representative detections back over `to_sim` so the
    // survivors (and every reported number) are collapse-independent.
    let detection: Vec<Option<u64>> = match &classes {
        Some(dc) => dc.expand_detection_traced(report.detection(), rec),
        None => report.detection().to_vec(),
    };

    // Phase 2: PODEM on the survivors, in universe order.
    let survivors: Vec<Fault> = to_sim
        .iter()
        .zip(&detection)
        .filter(|(_, d)| d.is_none())
        .map(|(&f, _)| f)
        .collect();
    let mut atpg = Atpg::new(&comb);
    let class = atpg.classify_traced(&survivors, options.backtrack_limit, rec);

    let mut detection_indices: Vec<u64> = detection.iter().flatten().copied().collect();
    detection_indices.sort_unstable();
    let detected = detection_indices.len();

    let mut sim = report.stats().clone();
    sim.universe_faults = universe.len() as u64;
    sim.simulated_faults = simulated_faults;
    sim.untestable_static = untestable.len() as u64;
    sim.analysis_wall = analysis_wall;

    KernelFaultStats {
        faults: universe.len(),
        redundant: unobservable.len() + untestable.len() + class.redundant.len(),
        aborted: class.aborted.len(),
        unreached: class.detectable.len(),
        detected,
        detection_indices,
        sim,
        source: source_run,
        opt: optimized.map(|o| o.stats().clone()),
    }
}

/// Runs the full Table 2 pipeline for one circuit under one TDM.
pub fn table2_column(circuit: &Circuit, tdm: Tdm, options: &Table2Options) -> Table2Column {
    table2_column_traced(circuit, tdm, options, &mut Recorder::disabled())
}

/// [`table2_column`] recorded into a pipeline-level telemetry
/// [`Recorder`]: one `"column[TDM circuit]"` span per call holding the
/// `"schedule"` span and one `"kernel N"` span per kernel (each the full
/// [`kernel_fault_stats_traced`] tree).
pub fn table2_column_traced(
    circuit: &Circuit,
    tdm: Tdm,
    options: &Table2Options,
    rec: &mut Recorder,
) -> Table2Column {
    let column = rec.enter(format!("column[{tdm} {}]", circuit.name()));
    let (circuit, design, ks) = apply_tdm(circuit, tdm);
    let sessions: Vec<TestSession> = schedule_traced(&design, &ks, rec);
    let stats: Vec<KernelFaultStats> = ks
        .iter()
        .enumerate()
        .map(|(i, k)| {
            rec.scope(format!("kernel {i}"), |rec| {
                kernel_fault_stats_traced(&circuit, &design, k, options, rec)
            })
        })
        .collect();
    let out = table2_assemble(tdm, &circuit, &design, &ks, &sessions, stats);
    rec.exit(column);
    out
}

fn table2_assemble(
    tdm: Tdm,
    circuit: &Circuit,
    design: &BilboDesign,
    ks: &[Kernel],
    sessions: &[TestSession],
    stats: Vec<KernelFaultStats>,
) -> Table2Column {
    let per_kernel =
        |fraction: f64| -> Vec<u64> { stats.iter().map(|s| s.patterns_for(fraction)).collect() };
    let p995 = per_kernel(0.995);
    let p100 = per_kernel(1.0);
    Table2Column {
        tdm,
        circuit: circuit.name().to_string(),
        kernel_count: ks.len(),
        session_count: sessions.len(),
        bilbo_count: design.register_count(),
        max_delay: maximal_delay(circuit, design).unwrap_or(0),
        patterns_995: sequential_test_time(&p995),
        time_995: schedule_test_time(sessions, &p995),
        patterns_100: sequential_test_time(&p100),
        time_100: schedule_test_time(sessions, &p100),
        kernel_stats: stats,
    }
}

/// Renders Table 2 for a list of (BIBS, \[3\]) column pairs.
pub fn render_table2(columns: &[(Table2Column, Table2Column)]) -> String {
    let mut out = String::new();
    let mut header = format!("{:<34}", "Circuit");
    for (b, _) in columns {
        header.push_str(&format!("{:>24}", b.circuit));
    }
    out.push_str(header.trim_end());
    out.push('\n');
    let mut sub = format!("{:<34}", "");
    for _ in columns {
        sub.push_str(&format!("{:>12}{:>12}", "BIBS", "[3]"));
    }
    out.push_str(&sub);
    out.push('\n');
    type RowFn = Box<dyn Fn(&Table2Column) -> String>;
    let rows: Vec<(&str, RowFn)> = vec![
        (
            "1 # of kernels",
            Box::new(|c: &Table2Column| c.kernel_count.to_string()),
        ),
        (
            "2 # of test sessions",
            Box::new(|c: &Table2Column| c.session_count.to_string()),
        ),
        (
            "3 # of BILBO registers",
            Box::new(|c: &Table2Column| c.bilbo_count.to_string()),
        ),
        (
            "4 Maximal delay",
            Box::new(|c: &Table2Column| c.max_delay.to_string()),
        ),
        (
            "5 # patterns @ 99.5% FC",
            Box::new(|c: &Table2Column| c.patterns_995.to_string()),
        ),
        (
            "6 Test time @ 99.5% FC",
            Box::new(|c: &Table2Column| c.time_995.to_string()),
        ),
        (
            "7 # patterns @ 100% FC",
            Box::new(|c: &Table2Column| c.patterns_100.to_string()),
        ),
        (
            "8 Test time @ 100% FC",
            Box::new(|c: &Table2Column| c.time_100.to_string()),
        ),
    ];
    for (name, f) in rows {
        let mut line = format!("{name:<34}");
        for (b, k) in columns {
            line.push_str(&format!("{:>12}{:>12}", f(b), f(k)));
        }
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// Renders Table 2 columns as machine-readable JSON containing **only
/// detection-deterministic fields** — everything here is a pure function
/// of `(circuit, TDM, options.seed, options.max_patterns,
/// options.plateau, options.backtrack_limit, options.source)` and
/// independent of the engine, thread count, and wall clock. CI diffs the
/// output of the compiled and reference engines byte-for-byte, and the
/// legacy path against `--source random`. Non-uniform sources add three
/// per-kernel fields (`source`, `source_clocks`, `source_patterns`) —
/// blocks are pulled serially, so these too are thread-count independent.
pub fn table2_json(columns: &[(Table2Column, Table2Column)]) -> String {
    fn u64s(xs: &[u64]) -> String {
        let body: Vec<String> = xs.iter().map(|x| x.to_string()).collect();
        format!("[{}]", body.join(","))
    }
    fn column(c: &Table2Column) -> String {
        let kernels: Vec<String> = c
            .kernel_stats
            .iter()
            .map(|s| {
                // Non-uniform sources report their coverage-vs-clocks
                // record; the legacy path and `--source random` add
                // nothing, keeping their JSON byte-identical.
                let source = match &s.source {
                    Some(run) => format!(
                        ",\"source\":{},\"source_clocks\":{},\"source_patterns\":{}",
                        run.descriptor_json, run.clocks, run.emitted
                    ),
                    None => String::new(),
                };
                format!(
                    "{{\"faults\":{},\"redundant\":{},\"aborted\":{},\"unreached\":{},\
                     \"detected\":{},\"detection_indices\":{}{}}}",
                    s.faults,
                    s.redundant,
                    s.aborted,
                    s.unreached,
                    s.detected,
                    u64s(&s.detection_indices),
                    source
                )
            })
            .collect();
        format!(
            "{{\"tdm\":\"{}\",\"circuit\":\"{}\",\"kernels\":{},\"sessions\":{},\
             \"bilbo_registers\":{},\"max_delay\":{},\"patterns_995\":{},\"time_995\":{},\
             \"patterns_100\":{},\"time_100\":{},\"kernel_stats\":[{}]}}",
            c.tdm,
            c.circuit,
            c.kernel_count,
            c.session_count,
            c.bilbo_count,
            c.max_delay,
            c.patterns_995,
            c.time_995,
            c.patterns_100,
            c.time_100,
            kernels.join(",")
        )
    }
    let cols: Vec<String> = columns
        .iter()
        .flat_map(|(b, k)| [column(b), column(k)])
        .collect();
    format!("{{\"columns\":[{}]}}\n", cols.join(","))
}

/// A typed failure from one of the bench binaries — replaces the bare
/// `unwrap()`s that used to abort with an opaque panic. Every variant
/// renders a human-readable message and the binaries exit nonzero on it.
#[derive(Debug)]
pub enum BinError {
    /// A hard-coded paper structure failed to validate (a programming
    /// error in the example tables, reported instead of panicking).
    Structure(String),
    /// A netlist built by a binary failed to finish.
    Netlist(bibs_netlist::NetlistError),
    /// A named register was missing from an example circuit.
    MissingRegister(String),
    /// No primitive polynomial is tabulated for the requested degree.
    NoPolynomial(u32),
    /// Telemetry could not be written to the requested path.
    Telemetry(std::io::Error),
}

impl std::fmt::Display for BinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BinError::Structure(e) => write!(f, "invalid example structure: {e}"),
            BinError::Netlist(e) => write!(f, "netlist construction failed: {e}"),
            BinError::MissingRegister(name) => {
                write!(f, "example circuit has no register named '{name}'")
            }
            BinError::NoPolynomial(degree) => {
                write!(f, "no primitive polynomial tabulated for degree {degree}")
            }
            BinError::Telemetry(e) => write!(f, "cannot write telemetry: {e}"),
        }
    }
}

impl std::error::Error for BinError {}

impl From<bibs_netlist::NetlistError> for BinError {
    fn from(e: bibs_netlist::NetlistError) -> Self {
        BinError::Netlist(e)
    }
}

/// Parsed telemetry options shared by the bench binaries: the
/// `--telemetry <out.json>` flag plus the `BIBS_TRACE` environment knob.
#[derive(Debug, Default)]
pub struct Telemetry {
    /// Where to write the span-tree JSON, if requested.
    pub path: Option<std::path::PathBuf>,
    /// What to print to stderr after the run.
    pub trace: TraceMode,
}

impl Telemetry {
    /// Builds from an already-parsed `--telemetry` value and the process
    /// environment (`BIBS_TRACE`).
    pub fn new(path: Option<std::path::PathBuf>) -> Telemetry {
        Telemetry {
            path,
            trace: TraceMode::from_env(),
        }
    }

    /// Whether anything downstream will consume a recording — used to
    /// pick between a live and a [`Recorder::disabled`] recorder so the
    /// default path stays overhead-free.
    pub fn wanted(&self) -> bool {
        self.path.is_some() || self.trace != TraceMode::Off
    }

    /// A recorder matching [`Telemetry::wanted`].
    pub fn recorder(&self, root: &str) -> Recorder {
        if self.wanted() {
            Recorder::new(root)
        } else {
            Recorder::disabled()
        }
    }

    /// Finishes the recorder, writes the JSON file (wall clocks included;
    /// strip `wall_ns` to compare runs) and prints the `BIBS_TRACE`
    /// output to stderr.
    pub fn emit(&self, rec: &mut Recorder) -> Result<(), BinError> {
        if !rec.is_enabled() {
            return Ok(());
        }
        rec.finish();
        if let Some(path) = &self.path {
            std::fs::write(path, rec.to_json(true)).map_err(BinError::Telemetry)?;
        }
        match self.trace {
            TraceMode::Off => {}
            TraceMode::Spans => eprint!("{}", rec.render_spans()),
            TraceMode::Counters => eprint!("{}", rec.render_counters()),
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bibs_datapath::filters::scaled;

    #[test]
    fn pipeline_on_scaled_c5a2m_reproduces_structural_rows() {
        // 3-bit version keeps debug-mode runtime low; rows 1-4 are
        // width-independent.
        let c = scaled("c5a2m", 3);
        let opts = Table2Options {
            max_patterns: 200_000,
            ..Table2Options::default()
        };
        let b = table2_column(&c, Tdm::Bibs, &opts);
        let k = table2_column(&c, Tdm::Ka85, &opts);
        assert_eq!((b.kernel_count, k.kernel_count), (1, 7));
        assert_eq!((b.session_count, k.session_count), (1, 2));
        assert_eq!((b.bilbo_count, k.bilbo_count), (9, 15));
        assert_eq!((b.max_delay, k.max_delay), (2, 4));
        // Coverage rows: everything detectable must be detected.
        for s in b.kernel_stats.iter().chain(&k.kernel_stats) {
            assert_eq!(
                s.detected + s.unreached,
                s.detectable(),
                "universe accounting"
            );
            assert_eq!(s.unreached, 0, "random stream reaches every test");
            // A handful of deeply controllability-redundant faults abort
            // (all verified undetectable by exhaustive simulation at this
            // width; see EXPERIMENTS.md).
            assert!(
                s.aborted * 50 <= s.faults,
                "aborts must stay rare: {}/{}",
                s.aborted,
                s.faults
            );
        }
        // Shape: concurrent sessions make [3]'s test time no larger than
        // its sequential pattern count.
        assert!(k.time_100 <= k.patterns_100);
        let table = render_table2(&[(b.clone(), k.clone())]);
        assert!(table.contains("BILBO"));
        let json = table2_json(&[(b, k)]);
        assert!(json.starts_with("{\"columns\":["));
        assert!(json.contains("\"tdm\":\"BIBS\""));
        assert!(json.contains("\"detection_indices\":["));
        assert!(
            !json.contains("wall") && !json.contains("threads"),
            "JSON must carry only detection-deterministic fields"
        );
    }

    /// The reference interpreter and the compiled engine must agree on the
    /// full detection-deterministic JSON — the same invariant CI checks on
    /// the full-width circuits.
    #[test]
    fn engines_agree_on_scaled_c3a2m_json() {
        let c = scaled("c3a2m", 2);
        let base = Table2Options {
            max_patterns: 50_000,
            ..Table2Options::default()
        };
        let compiled = Table2Options {
            engine: Engine::Compiled,
            ..base.clone()
        };
        let reference = Table2Options {
            engine: Engine::Reference,
            ..base
        };
        let jc = table2_json(&[(
            table2_column(&c, Tdm::Bibs, &compiled),
            table2_column(&c, Tdm::Ka85, &compiled),
        )]);
        let jr = table2_json(&[(
            table2_column(&c, Tdm::Bibs, &reference),
            table2_column(&c, Tdm::Ka85, &reference),
        )]);
        assert_eq!(jc, jr, "engine choice must not change any reported number");
    }

    /// Dominance collapsing must be invisible in the detection-deterministic
    /// JSON (classes are functional equivalences, expansion is exact) while
    /// strictly shrinking the simulated fault list. `none` mode grows the
    /// universe, so only its accounting invariants are checked.
    #[test]
    fn collapse_modes_agree_on_scaled_c5a2m_json() {
        let c = scaled("c5a2m", 3);
        let base = Table2Options {
            max_patterns: 200_000,
            ..Table2Options::default()
        };
        let run = |collapse: CollapseMode| {
            (
                table2_column(
                    &c,
                    Tdm::Bibs,
                    &Table2Options {
                        collapse,
                        ..base.clone()
                    },
                ),
                table2_column(
                    &c,
                    Tdm::Ka85,
                    &Table2Options {
                        collapse,
                        ..base.clone()
                    },
                ),
            )
        };
        let equiv = run(CollapseMode::Equiv);
        let dom = run(CollapseMode::Dominance);
        assert_eq!(
            table2_json(std::slice::from_ref(&equiv)),
            table2_json(std::slice::from_ref(&dom)),
            "collapse mode must not change any reported number"
        );
        // Dominance never simulates more faults than equiv, and strictly
        // fewer in aggregate (some tiny kernels have nothing to merge).
        let (mut e_total, mut d_total) = (0u64, 0u64);
        for (e, d) in equiv
            .0
            .kernel_stats
            .iter()
            .chain(&equiv.1.kernel_stats)
            .zip(dom.0.kernel_stats.iter().chain(&dom.1.kernel_stats))
        {
            assert_eq!(e.sim.universe_faults, d.sim.universe_faults);
            assert!(d.sim.simulated_faults <= e.sim.simulated_faults);
            e_total += e.sim.simulated_faults;
            d_total += d.sim.simulated_faults;
        }
        assert!(
            d_total < e_total,
            "dominance must shrink in aggregate: {d_total} vs {e_total}"
        );
        // ...and the full universe satisfies the same accounting identity.
        let (fb, _) = run(CollapseMode::None);
        for s in &fb.kernel_stats {
            assert_eq!(s.detected + s.unreached, s.detectable());
            assert!(s.sim.universe_faults >= equiv.0.kernel_stats[0].sim.universe_faults);
        }
    }

    #[test]
    fn source_spec_parses_and_displays() {
        for (text, spec) in [
            ("random", SourceSpec::Random),
            ("lfsr", SourceSpec::Lfsr),
            ("mintpg", SourceSpec::MinTpg),
            ("weighted", SourceSpec::Weighted),
            (
                "replay:seeds/a.txt",
                SourceSpec::Replay("seeds/a.txt".into()),
            ),
        ] {
            assert_eq!(text.parse::<SourceSpec>().unwrap(), spec);
            assert_eq!(spec.to_string(), text);
        }
        assert!("replay:".parse::<SourceSpec>().is_err());
        assert!("exhaustive".parse::<SourceSpec>().is_err());
    }

    /// `preflight` turns a dangling replay path into a CLI-time error;
    /// specs with no external state always pass.
    #[test]
    fn source_spec_preflight_rejects_missing_replay_file() {
        let missing = SourceSpec::Replay("/nonexistent/bibs.seeds".into());
        let err = missing.preflight().unwrap_err();
        assert!(err.contains("/nonexistent/bibs.seeds"), "{err}");
        for ok in [
            SourceSpec::Random,
            SourceSpec::Lfsr,
            SourceSpec::MinTpg,
            SourceSpec::Weighted,
        ] {
            ok.preflight().unwrap();
        }
    }

    /// `--source random` must reproduce the legacy seeded-RNG path
    /// byte-for-byte: same stream (the RNG words are drawn identically by
    /// [`RandomWords`]), same plateau, and no extra JSON fields. CI
    /// enforces the same identity on the full-width c5a2m.
    #[test]
    fn source_random_json_is_byte_identical_to_legacy() {
        let c = scaled("c3a2m", 2);
        let legacy = Table2Options {
            max_patterns: 50_000,
            ..Table2Options::default()
        };
        let sourced = Table2Options {
            source: Some(SourceSpec::Random),
            ..legacy.clone()
        };
        let jl = table2_json(&[(
            table2_column(&c, Tdm::Bibs, &legacy),
            table2_column(&c, Tdm::Ka85, &legacy),
        )]);
        let js = table2_json(&[(
            table2_column(&c, Tdm::Bibs, &sourced),
            table2_column(&c, Tdm::Ka85, &sourced),
        )]);
        assert_eq!(jl, js, "--source random must not change a byte");
    }

    /// Non-uniform sources surface the coverage-vs-clocks record in the
    /// JSON — a self-describing descriptor plus the clock budget — and the
    /// record agrees between the struct and its rendering.
    #[test]
    fn source_lfsr_reports_coverage_vs_clocks() {
        let c = scaled("c3a2m", 2);
        let opts = Table2Options {
            max_patterns: 50_000,
            source: Some(SourceSpec::Lfsr),
            ..Table2Options::default()
        };
        let b = table2_column(&c, Tdm::Bibs, &opts);
        let run = b.kernel_stats[0]
            .source
            .as_ref()
            .expect("lfsr source reports its run");
        assert!(run.descriptor_json.starts_with("{\"kind\":\"lfsr\""));
        // The LFSR charges one clock per emitted pattern plus warm-up (0
        // here), and the engine never applies more than it pulled.
        assert!(run.clocks >= run.emitted);
        assert!(run.emitted > 0);
        let json = table2_json(&[(b.clone(), b.clone())]);
        assert!(json.contains("\"source\":{\"kind\":\"lfsr\""));
        assert!(json.contains("\"source_clocks\":"));
        assert!(json.contains("\"source_patterns\":"));
    }
}
