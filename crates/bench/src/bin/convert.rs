//! Converts circuits between the supported on-disk formats.
//!
//! Usage: `convert INPUT OUTPUT`
//!
//! `INPUT` is a circuit file (`.ckt`, `.bench`, `.v`) or a built-in
//! datapath spec `NAME[@WIDTH]` (`c5a2m`, `c3a2m`, `c4a4m`; default
//! width 8). `OUTPUT` is a file path whose extension selects the target
//! format, or `-:EXT` to print that format on stdout:
//!
//! * `.ckt` — canonical RTL text (only when the input has an RTL view:
//!   a `.ckt` file, a `.bench` with an `# rtl:` sidecar, or a built-in);
//! * `.bench` — ISCAS-style gate-level netlist; when the input has an
//!   RTL view the sidecar is embedded, so the file converts back to
//!   `.ckt` losslessly and `table2 --circuit` accepts it;
//! * `.v` — structural Verilog.
//!
//! Conversions are deterministic: converting the same input twice gives
//! byte-identical output, and `.bench` output is a print→parse→print
//! fixpoint (CI diffs this for c5a2m).

use bibs_datapath::front::{self, LoadedCircuit};
use bibs_netlist::{bench, verilog};

fn usage() -> ! {
    eprintln!("usage: convert (FILE|NAME[@WIDTH]) (OUT.ckt|OUT.bench|OUT.v|-:EXT)");
    std::process::exit(2);
}

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("convert: {msg}");
    std::process::exit(1);
}

fn load_input(spec: &str) -> LoadedCircuit {
    let path = std::path::Path::new(spec);
    if path.exists() {
        return front::load_path(path).unwrap_or_else(|e| fail(e));
    }
    let (name, width) = match spec.split_once('@') {
        Some((n, w)) => (
            n,
            w.parse()
                .unwrap_or_else(|_| fail(format!("bad width in '{spec}'"))),
        ),
        None => (spec, 8),
    };
    if !["c5a2m", "c3a2m", "c4a4m"].contains(&name) {
        fail(format!(
            "'{spec}' is neither a file nor a built-in (c5a2m, c3a2m, c4a4m)"
        ));
    }
    let circuit = bibs_datapath::filters::scaled(name, width);
    let netlist = bibs_datapath::elab::elaborate_whole(&circuit)
        .unwrap_or_else(|e| fail(e))
        .netlist;
    LoadedCircuit::Rtl { circuit, netlist }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [input, output] = args.as_slice() else {
        usage()
    };
    let loaded = load_input(input);
    let (ext, dest) = match output.strip_prefix("-:") {
        Some(ext) => (ext.to_string(), None),
        None => {
            let path = std::path::PathBuf::from(output);
            let ext = path
                .extension()
                .and_then(|e| e.to_str())
                .unwrap_or_else(|| fail(format!("'{output}' has no format extension")))
                .to_ascii_lowercase();
            (ext, Some(path))
        }
    };
    let text = match ext.as_str() {
        "ckt" => match loaded.circuit() {
            Some(c) => bibs_rtl::fmt::to_text(c),
            None => fail(
                "input is a gate-level netlist with no register-transfer view; \
                 .ckt output needs RTL (a .ckt input, a .bench with an '# rtl:' \
                 sidecar, or a built-in name)",
            ),
        },
        "bench" => match loaded.circuit() {
            Some(c) => front::bench_with_rtl(c).unwrap_or_else(|e| fail(e)),
            None => bench::to_text(loaded.netlist()),
        },
        "v" => verilog::to_verilog(loaded.netlist()),
        other => fail(format!("unknown output format '.{other}'")),
    };
    match dest {
        Some(path) => std::fs::write(&path, text)
            .unwrap_or_else(|e| fail(format!("cannot write {}: {e}", path.display()))),
        None => print!("{text}"),
    }
}
