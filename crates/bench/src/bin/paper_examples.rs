//! Regenerates the Section 2–3 worked examples: k-step testability of the
//! Figures 1–3 circuits, and the Figure 4 / Example 1 BIBS-vs-\[3\] register
//! counts.
//!
//! Run with `cargo run --release -p bibs-bench --bin examples`.

use bibs_bench::{apply_tdm, BinError, Tdm};
use bibs_core::kstep::k_step;
use bibs_datapath::examples::{figure1, figure2, figure3, figure4};
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("paper_examples: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), BinError> {
    println!("Section 2 examples:");
    for c in [figure1(), figure2()] {
        println!(
            "  {}: balanced={}, k-step functional testability = {:?}",
            c.name(),
            c.is_balanced(),
            k_step(&c)
        );
    }
    let f3 = figure3();
    println!(
        "  {}: acyclic={}, contains cycle={}",
        f3.name(),
        f3.is_acyclic(),
        f3.find_cycle().is_some()
    );

    println!("\nExample 1 (Figure 4):");
    let f4 = figure4();
    // Partial-scan solution: {R3, R9} balances the circuit.
    let r3 = f4
        .register_by_name("R3")
        .ok_or_else(|| BinError::MissingRegister("R3".into()))?;
    let r9 = f4
        .register_by_name("R9")
        .ok_or_else(|| BinError::MissingRegister("R9".into()))?;
    let balanced = f4
        .balance_report_filtered(|e| e != r3 && e != r9)
        .is_balanced();
    println!("  converting R3, R9 to scan balances the circuit: {balanced}");
    for tdm in [Tdm::Bibs, Tdm::Ka85] {
        let (_, design, kernels) = apply_tdm(&f4, tdm);
        println!(
            "  {tdm}: {} BILBO registers, {} kernels",
            design.register_count(),
            kernels.len()
        );
    }
    println!("  paper: BIBS 6 registers / 2 kernels; [3] all 9 registers");
    println!("  note: on this reconstruction [3] converts fewer than 9 because");
    println!("  the delay-chain blocks are single-port (criterion 1 skips them).");
    Ok(())
}
