//! A BITS-style end-to-end driver.
//!
//! The authors integrated BIBS into **BITS**, their CAD test system, which
//! "reads in a circuit (in EDIF description) to be made BISTable,
//! reorganizes the circuit into a RTL description ..., systematically
//! explores the BISTable design space ..., generates an optimal test
//! schedule, designs low area and high fault coverage TPGs and SAs,
//! synthesizes a test controller, and finally exports the fully testable
//! circuit". This binary runs that flow on a circuit file — `.ckt`, or a
//! `.bench` carrying an `# rtl:` sidecar (the flow starts from RTL, so a
//! plain gate-level `.bench` is rejected):
//!
//! ```text
//! cargo run --release -p bibs-bench --bin bits -- circuits/mac.ckt
//! cargo run --release -p bibs-bench --bin bits -- circuits/c5a2m.bench
//! cargo run --release -p bibs-bench --bin bits -- circuits/fig4.ckt --tdm ka85
//! cargo run --release -p bibs-bench --bin bits -- circuits/mac.ckt --telemetry out.json
//! ```
//!
//! `--telemetry OUT.json` writes the span tree (schedule/verify stages
//! with their counters) as `bibs-telemetry/1` JSON;
//! `BIBS_TRACE=spans|counters` prints it to stderr.
//!
//! `--source random|lfsr|mintpg|weighted|replay:FILE` additionally
//! fault-simulates each kernel with the chosen pattern source under a
//! bounded budget and prints the coverage-vs-clocks estimate (detectable
//! faults reached, patterns emitted, hardware clock cycles). `--opt` runs
//! those simulations on the CEC-validated optimized program (see
//! `bibs_netlist::opt`) — results are identical by construction, only
//! faster. `--lanes 64|256|512` sets the evaluation width for those
//! simulations (wide PPSFP sweeps; identical results, higher
//! gate-evals/s).

use bibs_bench::{kernel_fault_stats_traced, SourceSpec, Table2Options, Telemetry};
use bibs_core::bibs::{self, BibsOptions};
use bibs_core::controller;
use bibs_core::delay::maximal_delay;
use bibs_core::design::{kernels, BilboDesign};
use bibs_core::ka85;
use bibs_core::mintpg::minimize_degree;
use bibs_core::schedule::schedule_traced;
use bibs_core::structure::GeneralizedStructure;
use bibs_core::tpg::mc_tpg;
use bibs_core::verify::verify_exhaustive_traced;
use bibs_faultsim::par::default_jobs;
use bibs_lfsr::bilbo::AreaModel;
use bibs_lint::{lint_circuit, lint_design, LintConfig, Severity};
use bibs_obs::Recorder;
use bibs_rtl::{Circuit, VertexKind};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let telemetry_path = args.iter().position(|a| a == "--telemetry").map(|i| {
        if i + 1 >= args.len() {
            eprintln!("bits: --telemetry needs an output path");
            std::process::exit(2);
        }
        let p = std::path::PathBuf::from(args.remove(i + 1));
        args.remove(i);
        p
    });
    let opt = args
        .iter()
        .position(|a| a == "--opt")
        .map(|i| {
            args.remove(i);
        })
        .is_some();
    let lanes = args
        .iter()
        .position(|a| a == "--lanes")
        .map(|i| {
            if i + 1 >= args.len() {
                eprintln!("bits: --lanes needs a value");
                std::process::exit(2);
            }
            let value = args.remove(i + 1);
            args.remove(i);
            match value.parse() {
                Ok(l @ (64 | 256 | 512)) => l,
                _ => {
                    eprintln!("bits: --lanes expects 64, 256 or 512 (got '{value}')");
                    std::process::exit(2);
                }
            }
        })
        .unwrap_or(64);
    let source = args.iter().position(|a| a == "--source").map(|i| {
        if i + 1 >= args.len() {
            eprintln!("bits: --source needs a value");
            std::process::exit(2);
        }
        let spec: SourceSpec = args.remove(i + 1).parse().unwrap_or_else(|e| {
            eprintln!("bits: {e}");
            std::process::exit(2);
        });
        if let Err(e) = spec.preflight() {
            eprintln!("bits: {e}");
            std::process::exit(2);
        }
        args.remove(i);
        spec
    });
    let Some(path) = args.first() else {
        eprintln!(
            "usage: bits <circuit.{{ckt,bench}}> [--tdm bibs|ka85] [--source SPEC] \
             [--opt] [--lanes 64|256|512] [--telemetry out.json]"
        );
        return ExitCode::FAILURE;
    };
    let tdm = args
        .iter()
        .position(|a| a == "--tdm")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("bibs");

    let loaded = match bibs_datapath::front::load_path(std::path::Path::new(path)) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("bits: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(circuit) = loaded.circuit().cloned() else {
        eprintln!(
            "bits: {path} is a gate-level netlist with no register-transfer view; \
             the BITS flow starts from RTL (use a .ckt file, or a .bench carrying \
             an '# rtl:' sidecar)"
        );
        return ExitCode::FAILURE;
    };
    let telemetry = Telemetry::new(telemetry_path);
    let mut rec = telemetry.recorder("bits");
    let outcome = run(&circuit, tdm, source.as_ref(), opt, lanes, &mut rec);
    if let Err(e) = telemetry.emit(&mut rec) {
        eprintln!("bits: {e}");
        return ExitCode::FAILURE;
    }
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("bits: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(
    circuit: &Circuit,
    tdm: &str,
    source: Option<&SourceSpec>,
    opt: bool,
    lanes: usize,
    rec: &mut Recorder,
) -> Result<(), Box<dyn std::error::Error>> {
    println!("== BITS flow for circuit {} ==", circuit.name());
    println!(
        "{} vertices, {} register edges, {} flip-flops; balanced = {}, acyclic = {}",
        circuit.vertex_count(),
        circuit.register_edges().count(),
        circuit.total_register_bits(),
        circuit.is_balanced(),
        circuit.is_acyclic()
    );

    // 0. Static lint of the bare circuit (notes only: cycles and URFSes
    // here are what the selection exists to repair).
    let lint_cfg = LintConfig::new();
    let bare = lint_circuit(circuit, &lint_cfg);
    if !bare.diagnostics.is_empty() {
        println!("\nlint (bare circuit): {bare}");
    }
    if !bare.is_clean() {
        return Err("bare circuit fails lint; aborting before selection".into());
    }

    // 1. Register selection.
    let (circuit, design): (Circuit, BilboDesign) = match tdm {
        "ka85" => (circuit.clone(), ka85::select(circuit)?),
        _ => {
            let r = bibs::select(circuit, &BibsOptions::default())?;
            (r.circuit, r.design)
        }
    };

    // 1b. Static lint of the selected design — Definition 1, TPG and
    // cross-layer checks must all pass before any simulation is run.
    let selected = lint_design(&circuit, &design, &lint_cfg);
    if !selected.is_clean() {
        println!("\nlint (selected design):\n{selected}");
        return Err("selected design fails lint; refusing to simulate".into());
    }
    println!(
        "lint: design clean ({} note(s), {} warning(s))",
        selected.count(Severity::Allow),
        selected.count(Severity::Warn),
    );
    let names: Vec<String> = design
        .bilbo
        .iter()
        .chain(&design.cbilbo)
        .filter_map(|&e| circuit.edge(e).name.clone())
        .collect();
    println!(
        "\nselection ({tdm}): {} registers ({} flip-flops): {:?}",
        design.register_count(),
        design.flip_flop_count(&circuit),
        names
    );
    let model = AreaModel::default();
    println!(
        "area overhead: {:.1} gate equivalents; maximal delay: {:?} time units",
        design.area_overhead(&circuit, &model),
        maximal_delay(&circuit, &design)
    );

    // 2. Kernels and schedule.
    let ks: Vec<_> = kernels(&circuit, &design)
        .into_iter()
        .filter(|k| {
            k.vertices
                .iter()
                .any(|&v| circuit.vertex(v).kind == VertexKind::Logic)
        })
        .collect();
    let sessions = schedule_traced(&design, &ks, rec);
    println!(
        "\n{} kernel(s), {} test session(s)",
        ks.len(),
        sessions.len()
    );

    // 3. TPG per kernel (with the minimal-LFSR pass).
    let mut patterns = Vec::new();
    for (i, kernel) in ks.iter().enumerate() {
        let structure = GeneralizedStructure::from_kernel(&circuit, &design, kernel)?;
        let tpg = mc_tpg(&structure);
        let min = minimize_degree(&tpg, 100);
        println!(
            "kernel {i}: M = {} bits, depth {}, TPG degree {} (minimal {}), {} extra FFs, test time {} cycles",
            structure.total_width(),
            structure.sequential_depth(),
            tpg.lfsr_degree(),
            min.design.lfsr_degree(),
            min.design.extra_flip_flops(),
            min.design.test_time()
        );
        // Brute-force check of functional exhaustiveness where feasible
        // (cones are verified concurrently on BIBS_JOBS worker threads).
        if min.design.lfsr_degree() <= 16 {
            let covs = verify_exhaustive_traced(&min.design, default_jobs(), rec);
            let ok = covs.iter().all(|c| c.is_exhaustive_modulo_zero());
            println!(
                "  exhaustiveness: {} over {} cone(s) ({} thread(s))",
                if ok { "verified" } else { "FAILED" },
                covs.len(),
                default_jobs()
            );
        }
        // The controller runs pseudo-random sessions; size them by the
        // kernel width (functionally exhaustive when feasible, else a
        // pseudo-random budget).
        let budget = if min.design.lfsr_degree() <= 20 {
            min.design.test_time() as u64
        } else {
            64 * structure.total_width() as u64
        };
        patterns.push(budget);
        // Optional coverage-vs-clocks estimate: fault-simulate the kernel
        // with the requested pattern source under a bounded budget.
        if let Some(spec) = source {
            let opts = Table2Options {
                max_patterns: 65_536,
                plateau: 65_536,
                backtrack_limit: 1_000,
                source: Some(spec.clone()),
                opt,
                lanes,
                ..Table2Options::default()
            };
            let stats = rec.scope(format!("source-coverage[kernel {i}]"), |rec| {
                kernel_fault_stats_traced(&circuit, &design, kernel, &opts, rec)
            });
            match &stats.source {
                Some(run) => println!(
                    "  source '{spec}': {}/{} detectable faults in {} patterns, {} clocks — {}",
                    stats.detected,
                    stats.detectable(),
                    run.emitted,
                    run.clocks,
                    run.descriptor_json
                ),
                None => println!(
                    "  source '{spec}': {}/{} detectable faults in {} patterns",
                    stats.detected,
                    stats.detectable(),
                    stats.detection_indices.last().map_or(0, |&p| p + 1)
                ),
            }
        }
    }

    // 4. Test controller.
    let ctrl = controller::synthesize(&circuit, &design, &ks, &sessions, &patterns);
    println!("\n{ctrl}");

    // 5. Export the testable design.
    println!("modified circuit (text export):");
    print!("{}", bibs_rtl::fmt::to_text(&circuit));
    println!("# BILBO registers: {names:?}");
    Ok(())
}
