//! The Section 4.1 contrast: a circular self-test path (CSTP, ref \[4\])
//! needs ≈ T·2^M patterns (T estimated 4–8 in the literature) to apply an
//! exhaustive set — when it covers at all — while the BIBS TPG needs
//! exactly 2^M − 1 + d.
//!
//! Run with `cargo run --release -p bibs-bench --bin cstp`.

use bibs_bench::BinError;
use bibs_core::cstp::simulate_cstp;
use bibs_netlist::builder::NetlistBuilder;
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("cstp: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), BinError> {
    println!("CSTP vs BIBS TPG on small adder kernels:");
    println!(
        "{:>6}{:>8}{:>12}{:>12}{:>10}{:>14}",
        "M", "seed", "covered", "cycles", "T", "BIBS cycles"
    );
    for width in [3usize, 4, 5, 6] {
        let mut b = NetlistBuilder::new("add");
        let a = b.input_word("a", width);
        let c = b.input_word("b", width);
        let (s, co) = b.ripple_carry_adder(&a, &c, None);
        b.output_word("s", &s);
        b.output("co", co);
        let nl = b.finish()?;
        let m = 2 * width;
        for seed in [1u64, 0x5A] {
            let run = simulate_cstp(&nl, seed, 16);
            let t = if run.exhaustive {
                format!("{:.2}", run.t_factor())
            } else {
                "n/a".to_string()
            };
            println!(
                "{:>6}{:>8}{:>12}{:>12}{:>10}{:>14}",
                m,
                seed,
                format!("{}/{}", run.covered, 1u64 << m),
                run.cycles,
                t,
                (1u64 << m) - 1
            );
        }
    }
    println!("\nBIBS TPG always covers in 2^M - 1 + d cycles (Corollary 1);");
    println!("CSTP coverage is seed-dependent and costs multiple passes when it covers.");
    Ok(())
}
