//! Telemetry regression gate: diffs a fresh `bibs-telemetry/1` export
//! against a committed baseline.
//!
//! ```text
//! cargo run --release -p bibs-bench --bin table2 -- 4 --telemetry /tmp/fresh.json
//! cargo run --release -p bibs-bench --bin perfdiff -- BENCH_table2.json /tmp/fresh.json
//! ```
//!
//! The comparison has two tiers:
//!
//! * **Hard equality** on everything detection-deterministic: the schema
//!   string, the span-tree shape (labels, child order) and every exported
//!   counter value. These are bit-identical across thread counts, engines
//!   and collapse modes by construction, so *any* drift is a behavioural
//!   regression and fails the gate.
//! * **Tolerance** on wall clocks: a span whose baseline wall is at least
//!   `--min-wall-ms` (default 50) may grow up to `--tolerance`×
//!   (default 5.0) before the gate fails. Wall times are the only
//!   machine-dependent content, so the band is wide; the gate catches
//!   order-of-magnitude throughput collapses, not percent-level noise.
//!
//! Exit codes: 0 clean, 1 regression found, 2 usage/IO/parse error.

use bibs_obs::json::{self, Value};
use std::process::ExitCode;

const SCHEMA: &str = "bibs-telemetry/1";

fn main() -> ExitCode {
    let mut tolerance = 5.0f64;
    let mut min_wall_ms = 50.0f64;
    let mut paths: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tolerance" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(t) if t >= 1.0 => tolerance = t,
                _ => return usage("--tolerance needs a factor >= 1.0"),
            },
            "--min-wall-ms" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(m) if m >= 0.0 => min_wall_ms = m,
                _ => return usage("--min-wall-ms needs a non-negative number"),
            },
            _ => paths.push(arg),
        }
    }
    let [baseline_path, fresh_path] = paths.as_slice() else {
        return usage("expected exactly two positional arguments");
    };
    let baseline = match load(baseline_path) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("perfdiff: {baseline_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let fresh = match load(fresh_path) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("perfdiff: {fresh_path}: {e}");
            return ExitCode::from(2);
        }
    };

    let mut diff = Diff {
        tolerance,
        min_wall_ns: min_wall_ms * 1e6,
        ..Diff::default()
    };
    diff.compare(&baseline, &fresh, "root");
    println!(
        "perfdiff: {} span(s), {} counter(s), {} wall check(s) compared \
         (tolerance {tolerance}x over {min_wall_ms} ms)",
        diff.spans, diff.counters, diff.wall_checks
    );
    if diff.failures.is_empty() {
        println!("perfdiff: OK — fresh telemetry matches the baseline");
        ExitCode::SUCCESS
    } else {
        for f in &diff.failures {
            println!("perfdiff: FAIL {f}");
        }
        println!("perfdiff: {} regression(s)", diff.failures.len());
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("perfdiff: {msg}");
    eprintln!("usage: perfdiff <baseline.json> <fresh.json> [--tolerance F] [--min-wall-ms N]");
    ExitCode::from(2)
}

/// Reads a telemetry file, checks its schema tag, and returns the root
/// span object.
fn load(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let doc = json::parse(&text).map_err(|e| e.to_string())?;
    match doc.get("schema").and_then(Value::as_str) {
        Some(SCHEMA) => {}
        Some(other) => return Err(format!("schema is '{other}', expected '{SCHEMA}'")),
        None => return Err(format!("missing 'schema' key (expected '{SCHEMA}')")),
    }
    doc.get("root")
        .cloned()
        .ok_or_else(|| "missing 'root' span".to_string())
}

#[derive(Default)]
struct Diff {
    tolerance: f64,
    min_wall_ns: f64,
    spans: usize,
    counters: usize,
    wall_checks: usize,
    failures: Vec<String>,
}

impl Diff {
    fn compare(&mut self, baseline: &Value, fresh: &Value, path: &str) {
        self.spans += 1;
        let b_label = baseline.get("label").and_then(Value::as_str).unwrap_or("");
        let f_label = fresh.get("label").and_then(Value::as_str).unwrap_or("");
        if b_label != f_label {
            self.failures.push(format!(
                "{path}: label changed: baseline '{b_label}', fresh '{f_label}'"
            ));
            return; // Children of a renamed span would only produce noise.
        }

        self.compare_counters(baseline, fresh, path);
        self.compare_wall(baseline, fresh, path);

        let empty: &[Value] = &[];
        let b_kids = baseline
            .get("children")
            .and_then(Value::as_array)
            .unwrap_or(empty);
        let f_kids = fresh
            .get("children")
            .and_then(Value::as_array)
            .unwrap_or(empty);
        if b_kids.len() != f_kids.len() {
            self.failures.push(format!(
                "{path}: child count changed: baseline {}, fresh {}",
                b_kids.len(),
                f_kids.len()
            ));
            return;
        }
        for (i, (b, f)) in b_kids.iter().zip(f_kids).enumerate() {
            let label = b.get("label").and_then(Value::as_str).unwrap_or("?");
            self.compare(b, f, &format!("{path}/{i}:{label}"));
        }
    }

    /// Hard equality on the deterministic counter maps: same keys, same
    /// values, both directions.
    fn compare_counters(&mut self, baseline: &Value, fresh: &Value, path: &str) {
        let empty: &[(String, Value)] = &[];
        let b = baseline
            .get("counters")
            .and_then(Value::as_object)
            .unwrap_or(empty);
        let f = fresh
            .get("counters")
            .and_then(Value::as_object)
            .unwrap_or(empty);
        for (key, bv) in b {
            self.counters += 1;
            match f.iter().find(|(k, _)| k == key) {
                None => self
                    .failures
                    .push(format!("{path}: counter '{key}' missing from fresh run")),
                Some((_, fv)) if fv.as_u64() != bv.as_u64() => self.failures.push(format!(
                    "{path}: counter '{key}' changed: baseline {:?}, fresh {:?}",
                    bv.as_u64(),
                    fv.as_u64()
                )),
                Some(_) => {}
            }
        }
        for (key, _) in f {
            if !b.iter().any(|(k, _)| k == key) {
                self.failures.push(format!(
                    "{path}: counter '{key}' appeared in fresh run but not in baseline"
                ));
            }
        }
    }

    /// Banded wall-clock check: only spans whose baseline wall clears the
    /// floor are compared, and only slowdowns beyond the tolerance fail.
    fn compare_wall(&mut self, baseline: &Value, fresh: &Value, path: &str) {
        let (Some(b), Some(f)) = (
            baseline.get("wall_ns").and_then(Value::as_f64),
            fresh.get("wall_ns").and_then(Value::as_f64),
        ) else {
            return; // Baseline or fresh exported without wall clocks.
        };
        if b < self.min_wall_ns {
            return;
        }
        self.wall_checks += 1;
        if f > b * self.tolerance {
            self.failures.push(format!(
                "{path}: wall regression: baseline {:.1} ms, fresh {:.1} ms ({:.1}x > {:.1}x)",
                b / 1e6,
                f / 1e6,
                f / b,
                self.tolerance
            ));
        }
    }
}
