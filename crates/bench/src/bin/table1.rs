//! Regenerates Table 1: the three datapath circuits, their functions and
//! gate counts.
//!
//! Run with `cargo run --release -p bibs-bench --bin table1`.

use bibs_datapath::elab::elaborate_whole;
use bibs_datapath::filters::{c3a2m, c4a4m, c5a2m};

fn main() {
    println!("Table 1: summary of the data path circuits");
    println!(
        "{:<10}{:<44}{:>10}{:>12}{:>12}",
        "Circuit", "Function", "# gates", "# registers", "# FFs"
    );
    let rows = [
        (c5a2m(), "o=(a+b)*(c+d)+(e+f)*(g+h)"),
        (c3a2m(), "o=((a+b)*c+d)*e+f"),
        (c4a4m(), "o=a*(f+g)+e*(b+c); p=d*(b+c)+h*(f+g)"),
    ];
    for (circuit, function) in rows {
        let elab = elaborate_whole(&circuit).expect("Table 1 circuits elaborate");
        println!(
            "{:<10}{:<44}{:>10}{:>12}{:>12}",
            circuit.name(),
            function,
            elab.netlist.logic_gate_count(),
            circuit.register_edges().count(),
            circuit.total_register_bits(),
        );
    }
    println!();
    println!("note: gate counts use our ripple-carry/array-multiplier cells;");
    println!("the paper's MABAL library reports 2,542 / 2,218 / 4,096.");
    println!("The ordering (c4a4m > c5a2m > c3a2m) is the reproduced shape.");
}
