//! The designer's trade-off family (Section 3.4: "this phenomenon provides
//! a designer with trade-offs between test time, test hardware and
//! performance degradation"): sweep the kernel-width bound on c5a2m and
//! report hardware vs test-time for each resulting BIBS design.
//!
//! Run with `cargo run --release -p bibs-bench --bin family`.

use bibs_core::bibs::{select, BibsOptions};
use bibs_core::delay::maximal_delay;
use bibs_core::design::kernels;
use bibs_core::schedule::schedule;
use bibs_datapath::filters::c5a2m;
use bibs_rtl::VertexKind;

fn main() {
    let circuit = c5a2m();
    println!(
        "family of BIBS designs for {} (64-bit total PI width):",
        circuit.name()
    );
    println!(
        "{:>12}{:>10}{:>8}{:>10}{:>10}{:>26}",
        "max M", "BILBOs", "FFs", "kernels", "sessions", "exhaustive test time"
    );
    for max_m in [None, Some(32u32), Some(16), Some(8)] {
        let options = BibsOptions {
            max_kernel_width: max_m,
            ..BibsOptions::default()
        };
        let r = select(&circuit, &options).expect("selectable");
        let ks: Vec<_> = kernels(&r.circuit, &r.design)
            .into_iter()
            .filter(|k| {
                k.vertices
                    .iter()
                    .any(|&v| r.circuit.vertex(v).kind == VertexKind::Logic)
            })
            .collect();
        let sessions = schedule(&r.design, &ks);
        // Exhaustive test time: sessions run serially, kernels of a
        // session concurrently, each kernel needs 2^M - 1 + d cycles.
        let time: u128 = sessions
            .iter()
            .map(|s| {
                s.kernels
                    .iter()
                    .map(|&k| {
                        let m = ks[k].input_width(&r.circuit).min(127);
                        (1u128 << m) - 1 + ks[k].sequential_depth(&r.circuit, &r.design) as u128
                    })
                    .max()
                    .unwrap_or(0)
            })
            .sum();
        let label = max_m.map_or("none".to_string(), |m| m.to_string());
        println!(
            "{:>12}{:>10}{:>8}{:>10}{:>10}{:>26}",
            label,
            r.design.register_count(),
            r.design.flip_flop_count(&r.circuit),
            ks.len(),
            sessions.len(),
            format!("{time:.3e} cycles"),
        );
        let _ = maximal_delay(&r.circuit, &r.design);
    }
    println!("\nshape: tightening the width bound buys exponentially shorter");
    println!("exhaustive sessions with more BILBO hardware — the paper's trade-off.");
}
