//! Regenerates the Section 4 TPG examples: Example 2/Figure 13 (12-bit
//! LFSR, 2 extra FFs, 7.2 % area, test time 2^12−1+2), Example 3/Figure 15
//! (sharing and separation), Example 4/Figure 16 (extreme skew), Example
//! 5/Figure 17 (9-stage LFSR) and Example 6/Figure 19 (11-stage LFSR),
//! each verified functionally exhaustive at reduced width.
//!
//! Run with `cargo run --release -p bibs-bench --bin tpg_examples`.

use bibs_bench::BinError;
use bibs_core::mintpg::minimize_degree;
use bibs_core::reconfig::ReconfigurableTpg;
use bibs_core::structure::{Cone, ConeDep, GeneralizedStructure, TpgRegister};
use bibs_core::tpg::{mc_tpg, sc_tpg};
use bibs_core::verify::verify_exhaustive;
use bibs_lfsr::bilbo::AreaModel;
use std::process::ExitCode;

fn two_cone(name: &str, d: [[u32; 2]; 2]) -> Result<GeneralizedStructure, BinError> {
    let regs = vec![
        TpgRegister {
            name: "R1".into(),
            width: 4,
        },
        TpgRegister {
            name: "R2".into(),
            width: 4,
        },
    ];
    let cones = (0..2)
        .map(|x| Cone {
            name: format!("O{}", x + 1),
            deps: vec![
                ConeDep {
                    register: 0,
                    seq_len: d[x][0],
                },
                ConeDep {
                    register: 1,
                    seq_len: d[x][1],
                },
            ],
        })
        .collect();
    GeneralizedStructure::new(name, regs, cones).map_err(|e| BinError::Structure(e.to_string()))
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("tpg_examples: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), BinError> {
    let model = AreaModel::default();

    println!("Example 2 (Figure 13):");
    let ex2 =
        GeneralizedStructure::single_cone("fig12a", &[("R1", 4, 2), ("R2", 4, 1), ("R3", 4, 0)]);
    let d2 = sc_tpg(&ex2);
    println!(
        "  LFSR degree {}, {} extra FFs, area overhead {:.1}%, test time {} = 2^12-1+2",
        d2.lfsr_degree(),
        d2.extra_flip_flops(),
        100.0 * model.extra_ff_overhead(12, d2.extra_flip_flops()),
        d2.test_time()
    );
    println!(
        "  polynomial: {}",
        d2.polynomial()
            .ok_or(BinError::NoPolynomial(d2.lfsr_degree()))?
    );

    println!("Example 3 (Figure 15): d = (1, 2, 0)");
    let ex3 =
        GeneralizedStructure::single_cone("fig12c", &[("R1", 4, 1), ("R2", 4, 2), ("R3", 4, 0)]);
    let d3 = sc_tpg(&ex3);
    println!(
        "  {} shared signal(s), R2 starts at L{}, R3 at L{}, degree {}",
        d3.shared_signal_count(),
        d3.cell_label(1, 0),
        d3.cell_label(2, 0),
        d3.lfsr_degree()
    );

    println!("Example 4 (Figure 16): displacement -5 on 4-bit registers");
    let ex4 = GeneralizedStructure::single_cone("fig16", &[("R1", 4, 0), ("R2", 4, 5)]);
    let d4 = sc_tpg(&ex4);
    println!(
        "  first LFSR stage is L{}, {} shared signals, degree {}",
        d4.first_lfsr_label(),
        d4.shared_signal_count(),
        d4.lfsr_degree()
    );

    println!("Example 5 (Figure 17): cones d=(2,0) and (1,0)");
    let d5 = mc_tpg(&two_cone("fig17", [[2, 0], [1, 0]])?);
    println!("  degree {} (paper: 9)", d5.lfsr_degree());

    println!("Example 6 (Figure 19): cones d=(2,0) and (0,1)");
    let s6 = two_cone("fig19", [[2, 0], [0, 1]])?;
    let d6 = mc_tpg(&s6);
    println!("  degree {} (paper: 11)", d6.lfsr_degree());
    let reconf = ReconfigurableTpg::new(&s6);
    println!(
        "  reconfigurable TPG (Figure 20): {} sessions, max degree {}, test time {} vs {} — {} steering muxes",
        reconf.session_count(),
        reconf.max_degree(),
        reconf.test_time(),
        d6.test_time(),
        reconf.steering_mux_count()
    );

    println!("\nSection 5 open problem — minimal-LFSR TPG (offset independence over GF(2)):");
    for (name, d) in [("Example 5", &d5), ("Example 6", &d6)] {
        let min = minimize_degree(d, 200);
        println!(
            "  {name}: constructive degree {} -> minimal degree {} ({} candidate polynomials tested)",
            min.original_degree,
            min.design.lfsr_degree(),
            min.candidates_tested
        );
    }

    println!("\nTheorem 4/7 verification (reduced 2-bit widths, brute force):");
    for (name, s) in [
        (
            "single-cone d=(2,1,0)",
            GeneralizedStructure::single_cone("v1", &[("R1", 2, 2), ("R2", 2, 1), ("R3", 2, 0)]),
        ),
        (
            "single-cone d=(1,2,0)",
            GeneralizedStructure::single_cone("v2", &[("R1", 2, 1), ("R2", 2, 2), ("R3", 2, 0)]),
        ),
    ] {
        let design = mc_tpg(&s);
        for cov in verify_exhaustive(&design) {
            println!(
                "  {name}: cone {} covered {}/{} (all-zero {}): functionally exhaustive = {}",
                cov.cone,
                cov.observed,
                cov.total,
                if cov.saw_all_zero {
                    "seen"
                } else {
                    "via complete LFSR"
                },
                cov.is_exhaustive_modulo_zero()
            );
        }
    }
    Ok(())
}
