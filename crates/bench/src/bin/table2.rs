//! Regenerates Table 2: the BIBS vs Krasniewski–Albicki comparison on the
//! three datapath circuits — kernels, sessions, BILBO registers, maximal
//! delay, and patterns/test time at 99.5 % and 100 % coverage of
//! detectable faults.
//!
//! Run with `cargo run --release -p bibs-bench --bin table2`.
//!
//! Usage: `table2 [WIDTH] [--json] [--opt] [--lanes 64|256|512]
//! [--engine compiled|reference] [--collapse equiv|dominance|none]
//! [--source random|lfsr|mintpg|weighted|replay:FILE] [--only NAME]
//! [--circuit PATH] [--telemetry OUT.json]`
//!
//! * `WIDTH` — word width (default 8; the paper's width);
//! * `--circuit PATH` — run on a circuit file instead of the built-in
//!   datapaths: `.ckt`, or `.bench` carrying an `# rtl:` sidecar (a
//!   plain gate-level `.bench` has no register-transfer view and is
//!   rejected — table2's TDM comparison needs RTL). `WIDTH` and
//!   `--only` are ignored with `--circuit`;
//! * `--json` — emit the detection-deterministic results as JSON on
//!   stdout (used by CI to diff the two engines byte-for-byte);
//! * `--engine` — fault-simulation engine (default `compiled`; the
//!   `reference` interpreter produces bit-identical results, slower);
//! * `--collapse` — fault-universe collapsing mode (default `equiv`;
//!   `dominance` additionally merges functional-equivalence classes over
//!   the compiled IR and simulates representatives only — the JSON stays
//!   byte-identical; `none` simulates the full uncollapsed universe);
//! * `--source` — pattern source for the per-kernel random phase (omitted:
//!   the legacy seeded-RNG path; `random` reproduces it byte-for-byte
//!   through the source layer; `lfsr`, `mintpg`, `weighted` and
//!   `replay:FILE` change the stream and add per-kernel
//!   `source`/`source_clocks`/`source_patterns` fields to the JSON — the
//!   coverage-vs-clocks axis);
//! * `--lanes` — evaluation width in lanes (default 64). 256 and 512 run
//!   the PPSFP wide sweeps (4 or 8 u64 words per evaluation, one
//!   good-machine sweep per wide block); the JSON stays byte-identical (a
//!   CI gate diffs all three widths) while gate-evals/s rises — a `lanes`
//!   counter lands in the telemetry export;
//! * `--opt` — run the optimizing pass pipeline over each kernel's
//!   compiled program and fault-simulate the validated rewrite; the JSON
//!   stays byte-identical (a CI gate diffs it) while `gate_evals` drops —
//!   per-pass statistics land in the telemetry export's `optimize` span;
//! * `--only NAME` — restrict to one circuit (`c5a2m`, `c3a2m`, `c4a4m`);
//! * `--telemetry OUT.json` — write the hierarchical span tree (stage
//!   wall clocks plus deterministic counters, schema `bibs-telemetry/1`)
//!   to a file. Set `BIBS_TRACE=spans|counters` to additionally print the
//!   tree or the aggregate counters to stderr.
//!
//! Fault simulation runs on `BIBS_JOBS` worker threads (default: all
//! cores); the results — and every exported telemetry counter — are
//! bit-identical for any thread count, engine, and collapse mode.

use bibs_bench::{
    render_table2, table2_column_traced, table2_json, CollapseMode, Engine, SourceSpec,
    Table2Options, Tdm, Telemetry,
};
use bibs_datapath::filters::scaled;

fn main() {
    let mut width: u32 = 8;
    let mut json = false;
    let mut engine = Engine::Compiled;
    let mut collapse = CollapseMode::Equiv;
    let mut source: Option<SourceSpec> = None;
    let mut opt = false;
    let mut lanes: usize = 64;
    let mut only: Option<String> = None;
    let mut circuit_path: Option<std::path::PathBuf> = None;
    let mut telemetry_path: Option<std::path::PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--opt" => opt = true,
            "--lanes" => {
                let value = args.next().unwrap_or_default();
                lanes = match value.parse() {
                    Ok(l @ (64 | 256 | 512)) => l,
                    _ => {
                        eprintln!("--lanes expects 64, 256 or 512 (got '{value}')");
                        std::process::exit(2);
                    }
                };
            }
            "--telemetry" => {
                telemetry_path = Some(std::path::PathBuf::from(args.next().unwrap_or_else(|| {
                    eprintln!("--telemetry needs an output path");
                    std::process::exit(2);
                })));
            }
            "--engine" => {
                let value = args.next().unwrap_or_default();
                engine = value.parse().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(2);
                });
            }
            "--collapse" => {
                let value = args.next().unwrap_or_default();
                collapse = value.parse().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(2);
                });
            }
            "--source" => {
                let value = args.next().unwrap_or_default();
                let spec: SourceSpec = value.parse().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(2);
                });
                if let Err(e) = spec.preflight() {
                    eprintln!("{e}");
                    std::process::exit(2);
                }
                source = Some(spec);
            }
            "--only" => {
                only = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--only needs a circuit name");
                    std::process::exit(2);
                }));
            }
            "--circuit" => {
                circuit_path = Some(std::path::PathBuf::from(args.next().unwrap_or_else(|| {
                    eprintln!("--circuit needs a file path");
                    std::process::exit(2);
                })));
            }
            other => match other.parse() {
                Ok(w) => width = w,
                Err(_) => {
                    eprintln!("unknown argument '{other}'");
                    std::process::exit(2);
                }
            },
        }
    }
    let options = Table2Options {
        engine,
        collapse,
        source,
        opt,
        lanes,
        ..Table2Options::default()
    };
    eprintln!(
        "fault-simulating with the {} engine on {} worker thread(s) (set BIBS_JOBS to override), \
         collapse mode {}, source {}",
        options.engine,
        options.jobs,
        options.collapse,
        options
            .source
            .as_ref()
            .map_or_else(|| "default".to_string(), |s| s.to_string())
    );
    let circuits: Vec<bibs_rtl::Circuit> = if let Some(path) = &circuit_path {
        let loaded = bibs_datapath::front::load_path(path).unwrap_or_else(|e| {
            eprintln!("cannot load {}: {e}", path.display());
            std::process::exit(2);
        });
        match loaded.circuit() {
            Some(c) => vec![c.clone()],
            None => {
                eprintln!(
                    "{}: gate-level netlist has no register-transfer view; table2 \
                     compares TDMs over RTL (use a .ckt file, or a .bench carrying \
                     an '# rtl:' sidecar)",
                    path.display()
                );
                std::process::exit(2);
            }
        }
    } else {
        let names: Vec<&str> = ["c5a2m", "c3a2m", "c4a4m"]
            .into_iter()
            .filter(|n| only.as_deref().is_none_or(|o| o == *n))
            .collect();
        if names.is_empty() {
            eprintln!("--only matched no circuit (expected one of c5a2m, c3a2m, c4a4m)");
            std::process::exit(2);
        }
        names.into_iter().map(|n| scaled(n, width)).collect()
    };
    let telemetry = Telemetry::new(telemetry_path);
    let mut rec = telemetry.recorder("table2");
    let mut columns = Vec::new();
    for circuit in &circuits {
        let name = circuit.name().to_string();
        // Static lint gate: a datapath that violates the paper conditions
        // would fault-simulate to garbage — refuse up front.
        let report = bibs_lint::lint_full(circuit, &bibs_lint::LintConfig::new());
        if !report.is_clean() {
            eprintln!("{name} fails lint:\n{report}");
            std::process::exit(1);
        }
        eprintln!("running {name} (width {width}) under BIBS ...");
        let b = table2_column_traced(circuit, Tdm::Bibs, &options, &mut rec);
        eprintln!("running {name} under [3] ...");
        let k = table2_column_traced(circuit, Tdm::Ka85, &options, &mut rec);
        columns.push((b, k));
    }
    if let Err(e) = telemetry.emit(&mut rec) {
        eprintln!("table2: {e}");
        std::process::exit(1);
    }
    if json {
        print!("{}", table2_json(&columns));
        return;
    }
    println!("Table 2: BIBS vs the TDM of [3] (width {width})");
    println!("{}", render_table2(&columns));
    println!("fault universes (collapsed / redundant / detectable):");
    for (b, k) in &columns {
        let sum = |col: &bibs_bench::Table2Column| {
            let f: usize = col.kernel_stats.iter().map(|s| s.faults).sum();
            let r: usize = col.kernel_stats.iter().map(|s| s.redundant).sum();
            let d: usize = col.kernel_stats.iter().map(|s| s.detectable()).sum();
            let a: usize = col.kernel_stats.iter().map(|s| s.aborted).sum();
            let u: usize = col.kernel_stats.iter().map(|s| s.unreached).sum();
            (f, r, d, a, u)
        };
        let (bf, br, bd, ba, bu) = sum(b);
        let (kf, kr, kd, ka, ku) = sum(k);
        println!(
            "  {}: BIBS {bf}/{br}/{bd} (aborted {ba}, unreached {bu}); [3] {kf}/{kr}/{kd} (aborted {ka}, unreached {ku})",
            b.circuit
        );
    }
    // Engine observability: aggregate fault-sim throughput over every
    // kernel of every column.
    let all = columns
        .iter()
        .flat_map(|(b, k)| b.kernel_stats.iter().chain(&k.kernel_stats));
    let (mut evals, mut gate_evals, mut blocks, mut wall, mut compile) = (
        0u64,
        0u64,
        0u64,
        std::time::Duration::ZERO,
        std::time::Duration::ZERO,
    );
    let (mut universe, mut simulated, mut untestable) = (0u64, 0u64, 0u64);
    let mut analysis = std::time::Duration::ZERO;
    for s in all {
        evals += s.sim.fault_evals;
        gate_evals += s.sim.gate_evals;
        blocks += s.sim.blocks;
        wall += s.sim.wall;
        compile += s.sim.compile_wall;
        universe += s.sim.universe_faults;
        simulated += s.sim.simulated_faults;
        untestable += s.sim.untestable_static;
        analysis += s.sim.analysis_wall;
    }
    let secs = wall.as_secs_f64();
    println!(
        "fault-sim engine: {evals} faulty-machine evals over {blocks} blocks in {:.2} s \
         ({:.0}/s, {:.2e} gate evals/s, {:.1} ms compile, {} thread(s), {} engine)",
        secs,
        if secs > 0.0 { evals as f64 / secs } else { 0.0 },
        if secs > 0.0 {
            gate_evals as f64 / secs
        } else {
            0.0
        },
        compile.as_secs_f64() * 1e3,
        options.jobs,
        options.engine
    );
    println!(
        "static analysis ({} mode): {simulated}/{universe} faults simulated \
         (collapse {:.3}), {untestable} statically untestable, {:.1} ms analysis",
        options.collapse,
        if universe > 0 {
            simulated as f64 / universe as f64
        } else {
            1.0
        },
        analysis.as_secs_f64() * 1e3
    );
}
