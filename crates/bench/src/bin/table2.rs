//! Regenerates Table 2: the BIBS vs Krasniewski–Albicki comparison on the
//! three datapath circuits — kernels, sessions, BILBO registers, maximal
//! delay, and patterns/test time at 99.5 % and 100 % coverage of
//! detectable faults.
//!
//! Run with `cargo run --release -p bibs-bench --bin table2`.
//! Optional argument: a word width (default 8; the paper's width).
//! Fault simulation runs on `BIBS_JOBS` worker threads (default: all
//! cores); the results are bit-identical for any thread count.

use bibs_bench::{render_table2, table2_column, Table2Options, Tdm};
use bibs_datapath::filters::scaled;

fn main() {
    let width: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let options = Table2Options::default();
    eprintln!(
        "fault-simulating on {} worker thread(s) (set BIBS_JOBS to override)",
        options.jobs
    );
    let mut columns = Vec::new();
    for name in ["c5a2m", "c3a2m", "c4a4m"] {
        let circuit = scaled(name, width);
        // Static lint gate: a datapath that violates the paper conditions
        // would fault-simulate to garbage — refuse up front.
        let report = bibs_lint::lint_full(&circuit, &bibs_lint::LintConfig::new());
        if !report.is_clean() {
            eprintln!("{name} fails lint:\n{report}");
            std::process::exit(1);
        }
        eprintln!("running {name} (width {width}) under BIBS ...");
        let b = table2_column(&circuit, Tdm::Bibs, &options);
        eprintln!("running {name} under [3] ...");
        let k = table2_column(&circuit, Tdm::Ka85, &options);
        columns.push((b, k));
    }
    println!("Table 2: BIBS vs the TDM of [3] (width {width})");
    println!("{}", render_table2(&columns));
    println!("fault universes (collapsed / redundant / detectable):");
    for (b, k) in &columns {
        let sum = |col: &bibs_bench::Table2Column| {
            let f: usize = col.kernel_stats.iter().map(|s| s.faults).sum();
            let r: usize = col.kernel_stats.iter().map(|s| s.redundant).sum();
            let d: usize = col.kernel_stats.iter().map(|s| s.detectable()).sum();
            let a: usize = col.kernel_stats.iter().map(|s| s.aborted).sum();
            let u: usize = col.kernel_stats.iter().map(|s| s.unreached).sum();
            (f, r, d, a, u)
        };
        let (bf, br, bd, ba, bu) = sum(b);
        let (kf, kr, kd, ka, ku) = sum(k);
        println!(
            "  {}: BIBS {bf}/{br}/{bd} (aborted {ba}, unreached {bu}); [3] {kf}/{kr}/{kd} (aborted {ka}, unreached {ku})",
            b.circuit
        );
    }
    // Engine observability: aggregate fault-sim throughput over every
    // kernel of every column.
    let all = columns
        .iter()
        .flat_map(|(b, k)| b.kernel_stats.iter().chain(&k.kernel_stats));
    let (mut evals, mut blocks, mut wall) = (0u64, 0u64, std::time::Duration::ZERO);
    for s in all {
        evals += s.sim.fault_evals;
        blocks += s.sim.blocks;
        wall += s.sim.wall;
    }
    let secs = wall.as_secs_f64();
    println!(
        "fault-sim engine: {evals} faulty-machine evals over {blocks} blocks in {:.2} s ({:.0}/s, {} thread(s))",
        secs,
        if secs > 0.0 { evals as f64 / secs } else { 0.0 },
        options.jobs
    );
}
