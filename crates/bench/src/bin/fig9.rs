//! Regenerates the Figure 9 comparison: the Krasniewski–Albicki example
//! circuit needs 10 BILBO registers (52 FFs) under \[3\] but only 8 (43 FFs)
//! under BIBS.
//!
//! Run with `cargo run --release -p bibs-bench --bin fig9`.

use bibs_core::bibs::{select, BibsOptions};
use bibs_core::design::{is_bibs_testable, kernels, BilboDesign};
use bibs_core::ka85;
use bibs_datapath::fig9::{bibs_bilbo_names, figure9, resolve};

fn main() {
    let circuit = figure9();
    println!(
        "Figure 9 circuit (reconstructed): {} registers, {} flip-flops",
        circuit.register_edges().count(),
        circuit.total_register_bits()
    );

    // The paper's BIBS design (kernel partition chosen as in the figure).
    let paper = BilboDesign::from_bilbos(resolve(&circuit, bibs_bilbo_names()));
    println!(
        "BIBS (paper's partition): {} BILBO registers, {} flip-flops, {} kernels, valid = {}",
        paper.register_count(),
        paper.flip_flop_count(&circuit),
        kernels(&circuit, &paper).len(),
        is_bibs_testable(&circuit, &paper)
    );

    // The Krasniewski–Albicki criteria.
    let ka = ka85::select(&circuit).expect("fig9 satisfies [3]'s assumptions");
    println!(
        "[3]: {} BILBO registers, {} flip-flops, {} kernels",
        ka.register_count(),
        ka.flip_flop_count(&circuit),
        kernels(&circuit, &ka).len()
    );

    // The unconstrained optimum on this reconstruction does even better —
    // the kernel partition in the paper is a designer choice, not forced.
    let best = select(&circuit, &BibsOptions::default()).expect("selectable");
    println!(
        "BIBS (unconstrained optimum): {} registers, {} flip-flops, {} kernel(s)",
        best.design.register_count(),
        best.design.flip_flop_count(&best.circuit),
        kernels(&best.circuit, &best.design).len()
    );
    println!("paper: [3] 10 registers / 52 FFs; BIBS 8 registers / 43 FFs; 2 kernels each");
}
