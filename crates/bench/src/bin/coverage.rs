//! Fault-coverage convergence curves — the data behind Table 2's rows
//! 5–8, emitted as CSV series (patterns vs. cumulative coverage of
//! detectable faults) for BIBS and \[3\] on one circuit.
//!
//! Run with `cargo run --release -p bibs-bench --bin coverage --
//! [circuit] [width] [--opt] [--lanes 64|256|512]
//! [--collapse equiv|dominance|none]
//! [--source random|lfsr|mintpg|weighted|replay:FILE]
//! [--telemetry OUT.json]`
//! (defaults: c5a2m, width 4, equiv). `circuit` is a built-in name
//! (`c5a2m`, `c3a2m`, `c4a4m`) or a circuit file — `.ckt`, or `.bench`
//! with an `# rtl:` sidecar; `width` applies to built-ins only. Pipe to
//! a file and plot. `--source` swaps the per-kernel pattern stream for a
//! hardware-faithful source (the curve's x-axis stays pattern counts;
//! the per-kernel clock budget goes to stderr). `--opt` fault-simulates
//! each kernel's validator-proven optimized program (the CSV is
//! byte-identical; only throughput changes). `--lanes 256|512` widens the
//! evaluation word for the PPSFP wide sweeps (the CSV is byte-identical;
//! only gate-evals/s changes). Per-kernel
//! engine stats — including the collapse ratio, statically-untestable
//! count and analysis wall — go to stderr; `BIBS_JOBS` sets the
//! worker-thread count; `BIBS_TRACE=spans|counters` prints the telemetry
//! tree or aggregate counters to stderr. The CSV is byte-identical across
//! collapse modes.

use bibs_bench::{
    apply_tdm, kernel_fault_stats_traced, CollapseMode, SourceSpec, Table2Options, Tdm, Telemetry,
};
use bibs_datapath::filters::scaled;

fn main() {
    let mut positional: Vec<String> = Vec::new();
    let mut collapse = CollapseMode::Equiv;
    let mut source: Option<SourceSpec> = None;
    let mut opt = false;
    let mut lanes: usize = 64;
    let mut telemetry_path: Option<std::path::PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--opt" {
            opt = true;
        } else if arg == "--lanes" {
            let value = args.next().unwrap_or_default();
            lanes = match value.parse() {
                Ok(l @ (64 | 256 | 512)) => l,
                _ => {
                    eprintln!("--lanes expects 64, 256 or 512 (got '{value}')");
                    std::process::exit(2);
                }
            };
        } else if arg == "--collapse" {
            let value = args.next().unwrap_or_default();
            collapse = value.parse().unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(2);
            });
        } else if arg == "--source" {
            let value = args.next().unwrap_or_default();
            let spec: SourceSpec = value.parse().unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(2);
            });
            if let Err(e) = spec.preflight() {
                eprintln!("{e}");
                std::process::exit(2);
            }
            source = Some(spec);
        } else if arg == "--telemetry" {
            telemetry_path = Some(std::path::PathBuf::from(args.next().unwrap_or_else(|| {
                eprintln!("--telemetry needs an output path");
                std::process::exit(2);
            })));
        } else {
            positional.push(arg);
        }
    }
    let name = positional.first().map(String::as_str).unwrap_or("c5a2m");
    let width: u32 = positional.get(1).and_then(|s| s.parse().ok()).unwrap_or(4);
    // A path to an existing file loads through the format front door (and
    // must carry an RTL view for the TDM comparison); anything else names
    // a built-in datapath.
    let circuit = if std::path::Path::new(name).exists() {
        let loaded =
            bibs_datapath::front::load_path(std::path::Path::new(name)).unwrap_or_else(|e| {
                eprintln!("coverage: {e}");
                std::process::exit(2);
            });
        loaded.circuit().cloned().unwrap_or_else(|| {
            eprintln!(
                "coverage: {name} is a gate-level netlist with no register-transfer \
                 view; the TDM comparison needs RTL (use a .ckt file, or a .bench \
                 carrying an '# rtl:' sidecar)"
            );
            std::process::exit(2);
        })
    } else {
        scaled(name, width)
    };
    let options = Table2Options {
        collapse,
        source,
        opt,
        lanes,
        ..Table2Options::default()
    };

    let telemetry = Telemetry::new(telemetry_path);
    let mut rec = telemetry.recorder("coverage");

    println!("tdm,patterns,detected,detectable,coverage");
    for tdm in [Tdm::Bibs, Tdm::Ka85] {
        let (circuit, design, kernels) = apply_tdm(&circuit, tdm);
        // Merge all kernels' detection events on a common sequential
        // pattern axis (kernels tested one after another).
        let mut events: Vec<u64> = Vec::new();
        let mut offset = 0u64;
        let mut detectable = 0usize;
        for (i, kernel) in kernels.iter().enumerate() {
            let stats = rec.scope(format!("kernel {i}[{tdm}]"), |rec| {
                kernel_fault_stats_traced(&circuit, &design, kernel, &options, rec)
            });
            eprintln!("{tdm} kernel sim: {}", stats.sim);
            if let Some(run) = &stats.source {
                eprintln!(
                    "{tdm} kernel source: {} ({} patterns, {} clocks)",
                    run.descriptor_json, run.emitted, run.clocks
                );
            }
            detectable += stats.detectable();
            let last = stats.detection_indices.last().copied().unwrap_or(0);
            events.extend(stats.detection_indices.iter().map(|&i| offset + i));
            offset += last + 1;
        }
        events.sort_unstable();
        // Emit ~50 evenly spaced milestones plus the exact tail.
        let n = events.len();
        let mut printed = 0usize;
        for (i, &p) in events.iter().enumerate() {
            let is_milestone = i % (n / 50 + 1) == 0 || i + 10 >= n;
            if is_milestone {
                println!(
                    "{tdm},{},{},{},{:.5}",
                    p + 1,
                    i + 1,
                    detectable,
                    (i + 1) as f64 / detectable as f64
                );
                printed += 1;
            }
        }
        eprintln!("{tdm}: {printed} milestones, {n} detections, {detectable} detectable");
    }
    if let Err(e) = telemetry.emit(&mut rec) {
        eprintln!("coverage: {e}");
        std::process::exit(1);
    }
}
