//! Regenerates Examples 7 and 8: functionally pseudo-exhaustive testing of
//! the Figure 21 three-cone kernel. MC_TPG in the given register order
//! needs a degree-16 LFSR; permuting the registers reaches the 2^8 lower
//! bound; the McCluskey dependency-matrix baseline needs 12 stages.
//!
//! Run with `cargo run --release -p bibs-bench --bin fpet`.

use bibs_bench::BinError;
use bibs_core::fpet::{best_permutation, dependency_matrix, dependency_matrix_signals};
use bibs_core::structure::{Cone, ConeDep, GeneralizedStructure, TpgRegister};
use bibs_core::tpg::mc_tpg;
use std::process::ExitCode;

fn figure21() -> Result<GeneralizedStructure, BinError> {
    let regs = (1..=3)
        .map(|i| TpgRegister {
            name: format!("R{i}"),
            width: 4,
        })
        .collect();
    let cones = vec![
        Cone {
            name: "O1".into(),
            deps: vec![
                ConeDep {
                    register: 0,
                    seq_len: 2,
                },
                ConeDep {
                    register: 1,
                    seq_len: 0,
                },
            ],
        },
        Cone {
            name: "O2".into(),
            deps: vec![
                ConeDep {
                    register: 0,
                    seq_len: 0,
                },
                ConeDep {
                    register: 2,
                    seq_len: 1,
                },
            ],
        },
        Cone {
            name: "O3".into(),
            deps: vec![
                ConeDep {
                    register: 1,
                    seq_len: 1,
                },
                ConeDep {
                    register: 2,
                    seq_len: 0,
                },
            ],
        },
    ];
    GeneralizedStructure::new("fig21", regs, cones).map_err(|e| BinError::Structure(e.to_string()))
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fpet: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), BinError> {
    let s = figure21()?;
    let natural = mc_tpg(&s);
    println!("Example 7 (Figure 21):");
    println!(
        "  order R1,R2,R3: LFSR degree {} -> test time ≈ 2^{}",
        natural.lfsr_degree(),
        natural.lfsr_degree()
    );
    let search = best_permutation(&s);
    let names: Vec<&str> = search
        .order
        .iter()
        .map(|&i| s.registers[i].name.as_str())
        .collect();
    println!(
        "  best order {:?}: degree {} ({} orderings evaluated, lower bound hit: {})",
        names,
        search.design.lfsr_degree(),
        search.evaluated,
        search.hit_lower_bound
    );

    println!("Example 8 (dependency-matrix baseline):");
    for row in dependency_matrix(&s) {
        let bits: Vec<u8> = row.iter().map(|&b| b as u8).collect();
        println!("  D row: {bits:?}");
    }
    let (groups, stages) = dependency_matrix_signals(&s);
    println!(
        "  {} test signals -> {stages}-stage LFSR (test time ≈ 2^{stages}) vs MC_TPG's 2^{}",
        groups.len(),
        search.design.lfsr_degree()
    );
    Ok(())
}
