//! Round-trip test for the `convert` binary: `.ckt` (builtin spec) →
//! `.bench` → `.v` → `.bench`, checking that the final netlist computes
//! the same output words as the first over a multi-frame 64-lane
//! simulation — format conversions must preserve evaluation, not just
//! parse.

use bibs_netlist::{bench, EvalProgram, Netlist};
use std::path::PathBuf;
use std::process::Command;

fn convert(input: &str, output: &str) {
    let status = Command::new(env!("CARGO_BIN_EXE_convert"))
        .args([input, output])
        .status()
        .expect("convert runs");
    assert!(status.success(), "convert {input} {output} failed");
}

/// Simulates `frames` frames of 64-lane evaluation from the zero power-up
/// state with a fixed deterministic input schedule; returns the per-frame
/// output words.
fn eval_words(nl: &Netlist, frames: usize) -> Vec<Vec<u64>> {
    let program = EvalProgram::compile(nl).expect("round-trip netlist compiles");
    let mut values = program.new_values();
    let mut capture = Vec::new();
    let mut out = Vec::new();
    let mut seed = 0x0123_4567_89AB_CDEFu64;
    for _ in 0..frames {
        let inputs: Vec<u64> = (0..nl.input_width())
            .map(|_| {
                seed = seed
                    .wrapping_mul(0x2545_F491_4F6C_DD1D)
                    .wrapping_add(0x9E37_79B9_7F4A_7C15);
                seed
            })
            .collect();
        program.eval_good(&mut values, &inputs);
        out.push(
            program
                .output_slots()
                .iter()
                .map(|&s| values[s as usize])
                .collect(),
        );
        program.clock(&mut values, &mut capture);
    }
    out
}

#[test]
fn ckt_to_bench_to_verilog_to_bench_preserves_eval_words() {
    let dir = std::env::temp_dir().join(format!("bibs_convert_rt_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let p = |name: &str| -> PathBuf { dir.join(name) };

    convert("c3a2m@3", p("a.bench").to_str().unwrap());
    convert(p("a.bench").to_str().unwrap(), p("b.v").to_str().unwrap());
    convert(p("b.v").to_str().unwrap(), p("c.bench").to_str().unwrap());

    let first = bench::from_text(&std::fs::read_to_string(p("a.bench")).unwrap()).unwrap();
    let last = bench::from_text(&std::fs::read_to_string(p("c.bench")).unwrap()).unwrap();
    assert_eq!(first.input_width(), last.input_width());
    assert_eq!(first.output_width(), last.output_width());
    assert_eq!(first.dff_count(), last.dff_count());
    assert_eq!(
        eval_words(&first, 8),
        eval_words(&last, 8),
        "the .bench -> .v -> .bench chain changed evaluation"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn bench_conversion_is_a_print_parse_fixpoint() {
    let dir = std::env::temp_dir().join(format!("bibs_convert_fix_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let a = dir.join("a.bench");
    let b = dir.join("b.bench");
    convert("c5a2m@2", a.to_str().unwrap());
    convert(a.to_str().unwrap(), b.to_str().unwrap());
    // a carries an RTL sidecar and so does b (recovered through it), so
    // the files must be byte-identical.
    assert_eq!(
        std::fs::read_to_string(&a).unwrap(),
        std::fs::read_to_string(&b).unwrap()
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
