//! The telemetry contract of the observability spine: the exported span
//! tree and every deterministic counter must be byte-identical across
//! fault-sim worker-thread counts. Only wall clocks may vary, and
//! `Recorder::to_json(false)` strips them — so the whole determinism
//! claim collapses to string equality on the export.

use bibs_bench::{table2_column_traced, Table2Options, Tdm};
use bibs_datapath::filters::scaled;
use bibs_obs::Recorder;

fn export(jobs: usize, tdm: Tdm) -> String {
    let circuit = scaled("c5a2m", 3);
    let options = Table2Options {
        jobs,
        ..Table2Options::default()
    };
    let mut rec = Recorder::new("determinism");
    let _ = table2_column_traced(&circuit, tdm, &options, &mut rec);
    rec.finish();
    rec.to_json(false)
}

#[test]
fn telemetry_export_is_byte_identical_across_thread_counts() {
    for tdm in [Tdm::Bibs, Tdm::Ka85] {
        let baseline = export(1, tdm);
        assert!(baseline.starts_with("{\"schema\":\"bibs-telemetry/1\""));
        // The serial run must have recorded real work, not an empty tree.
        assert!(baseline.contains("\"fault_evals\":"), "{baseline}");
        for jobs in [2, 4, 8] {
            assert_eq!(
                export(jobs, tdm),
                baseline,
                "telemetry for {tdm} diverged between jobs=1 and jobs={jobs}"
            );
        }
    }
}

#[test]
fn wall_clocks_are_the_only_nondeterministic_content() {
    // With wall clocks included the export still parses and contains the
    // same counters; stripping wall_ns must reproduce the wall-free form.
    let circuit = scaled("c5a2m", 3);
    let mut rec = Recorder::new("determinism");
    let _ = table2_column_traced(&circuit, Tdm::Bibs, &Table2Options::default(), &mut rec);
    rec.finish();
    let with_wall = rec.to_json(true);
    let without_wall = rec.to_json(false);
    let stripped: String = {
        // Remove `"wall_ns":<digits>,` the same way the ci.sh gate does.
        let mut out = String::new();
        let mut rest = with_wall.as_str();
        while let Some(i) = rest.find("\"wall_ns\":") {
            out.push_str(&rest[..i]);
            let tail = &rest[i..];
            let end = tail.find(',').expect("wall_ns is never the last member") + 1;
            rest = &tail[end..];
        }
        out.push_str(rest);
        out
    };
    assert_eq!(stripped, without_wall);
}
