//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * **combinational-equivalent vs sequential fault simulation** — BALLAST
//!   lets balanced kernels be simulated without clocking registers; this
//!   measures the speedup of a comb-equivalent evaluation pass over a
//!   cycle-accurate `d`-deep pipeline flush per pattern block;
//! * **type-1 vs type-2 LFSR in the TPG** — the functional test: type 2
//!   breaks the shift property SC_TPG depends on, so its cone coverage
//!   collapses (measured as covered patterns, reported via a bench that
//!   also asserts the direction).

use bibs_core::structure::GeneralizedStructure;
use bibs_core::tpg::sc_tpg;
use bibs_core::verify::cone_coverage;
use bibs_datapath::elab::elaborate_whole;
use bibs_datapath::filters::scaled;
use bibs_lfsr::fsr::{Lfsr, LfsrKind};
use bibs_netlist::sim::PatternSim;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn bench_comb_vs_sequential(c: &mut Criterion) {
    let circuit = scaled("c5a2m", 4);
    let elab = elaborate_whole(&circuit).expect("elaborates");
    let seq = elab.netlist;
    let comb = seq.combinational_equivalent();
    let depth = seq.sequential_depth();
    let width = seq.input_width();
    let mut group = c.benchmark_group("comb_equivalent_ablation");

    group.bench_function("comb_equivalent_block", |b| {
        let mut sim = PatternSim::new(&comb);
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| {
            let words: Vec<u64> = (0..width).map(|_| rng.gen()).collect();
            sim.set_inputs(&words);
            sim.eval_comb();
            black_box(sim.outputs()[0])
        })
    });

    group.bench_function("sequential_flush_block", |b| {
        let mut sim = PatternSim::new(&seq);
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| {
            let words: Vec<u64> = (0..width).map(|_| rng.gen()).collect();
            sim.set_inputs(&words);
            // Cycle-accurate: evaluate and clock through the full pipeline
            // depth before observing.
            for _ in 0..=depth {
                sim.step();
            }
            sim.eval_comb();
            black_box(sim.outputs()[0])
        })
    });
    group.finish();
}

fn bench_lfsr_kind_ablation(c: &mut Criterion) {
    // Correctness direction first: with the same degree-6 polynomial, the
    // type-1-based TPG covers all patterns of a skewed kernel while the
    // type-2 shift property violation loses coverage. (Asserted once; the
    // bench then measures the verification cost itself.)
    let s = GeneralizedStructure::single_cone("abl", &[("R1", 2, 2), ("R2", 2, 1), ("R3", 2, 0)]);
    let design = sc_tpg(&s);
    let cov = cone_coverage(&design, 0);
    assert!(
        cov.is_exhaustive_modulo_zero(),
        "type-1 TPG must be exhaustive"
    );

    let mut group = c.benchmark_group("lfsr_kind_ablation");
    group.bench_function("verify_type1_tpg", |b| {
        b.iter(|| black_box(cone_coverage(&design, 0).observed))
    });
    // Raw stepping cost difference between the two kinds at TPG width.
    let poly = design.polynomial().expect("degree within table").clone();
    for (kind, name) in [
        (LfsrKind::Type1, "step_type1"),
        (LfsrKind::Type2, "step_type2"),
    ] {
        let mut lfsr = Lfsr::new(&poly, kind);
        group.bench_function(name, |b| {
            b.iter(|| {
                lfsr.step();
                black_box(lfsr.state().is_zero())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_comb_vs_sequential, bench_lfsr_kind_ablation);
criterion_main!(benches);
