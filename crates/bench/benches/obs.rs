//! Criterion benches for the observability spine: the recorder's raw
//! span/counter op cost, and — the number the ≤3 % overhead budget is
//! judged on — the end-to-end fault-sim hot path with an enabled
//! recorder vs `Recorder::disabled()`.

use bibs_faultsim::fault::FaultUniverse;
use bibs_faultsim::par::ParFaultSimulator;
use bibs_faultsim::sim::BlockSim;
use bibs_netlist::builder::NetlistBuilder;
use bibs_netlist::{EvalProgram, Netlist};
use bibs_obs::{CounterId, Recorder, ShardCounters};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn multiplier(width: usize) -> Netlist {
    let mut b = NetlistBuilder::new("mul");
    let a = b.input_word("a", width);
    let c = b.input_word("b", width);
    let p = b.array_multiplier(&a, &c, 2 * width);
    b.output_word("p", &p[..width]);
    b.finish().expect("multiplier is well-formed")
}

/// Raw recorder ops: a span round-trip with two counter adds, and the
/// plain-u64 shard-counter add used inside worker hot loops.
fn bench_recorder_ops(c: &mut Criterion) {
    c.bench_function("obs_span_enter_exit_add", |b| {
        let mut rec = Recorder::new("bench");
        b.iter(|| {
            let s = rec.enter("span");
            rec.add(CounterId::FaultEvals, 1);
            rec.add(CounterId::GateEvals, 97);
            rec.exit(black_box(s));
        })
    });
    c.bench_function("obs_shard_counter_add", |b| {
        let mut shard = ShardCounters::new();
        b.iter(|| {
            shard.add(CounterId::GateEvals, black_box(97));
        });
        black_box(&shard);
    });
}

/// The overhead budget check: the same 256-pattern random fault-sim run
/// on the 8-bit array multiplier with telemetry on vs off. The engine
/// fills stack-local `ShardCounters` in the hot loop and attaches them
/// once per block, so "on" must stay within a few percent of "off".
fn bench_recorder_overhead(c: &mut Criterion) {
    let nl = multiplier(8);
    let universe = FaultUniverse::collapsed(&nl);
    let program = EvalProgram::compile(&nl).unwrap();
    let (observable, _) = universe.split_by_observability(&program);
    let mut group = c.benchmark_group("fault_sim_recorder_mul8_256pat");
    group.sample_size(30);
    for (label, enabled) in [("disabled", false), ("enabled", true)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &enabled, |b, &on| {
            b.iter_batched(
                || {
                    let rec = if on {
                        Recorder::new("fault-sim[par]")
                    } else {
                        Recorder::disabled()
                    };
                    (
                        ParFaultSimulator::with_program_recorder(
                            &nl,
                            program.clone(),
                            observable.clone(),
                            1,
                            rec,
                        ),
                        StdRng::seed_from_u64(3),
                    )
                },
                |(mut sim, mut rng)| black_box(sim.run_random(&mut rng, 256).detected_count()),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_recorder_ops, bench_recorder_overhead);
criterion_main!(benches);
