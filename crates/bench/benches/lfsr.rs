//! Criterion benches for the LFSR substrate: stepping throughput at the
//! degrees the paper's TPGs use (12 for Example 2, 64 for the c5a2m BIBS
//! kernel), MISR absorption, and primitive-polynomial lookup/search.

use bibs_lfsr::fsr::{CompleteLfsr, Lfsr, LfsrKind};
use bibs_lfsr::misr::Misr;
use bibs_lfsr::poly::{find_primitive, primitive_polynomial};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_lfsr_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("lfsr_step");
    for degree in [12u32, 24, 64] {
        let poly = primitive_polynomial(degree).expect("table covers 1..=64");
        for (kind, name) in [(LfsrKind::Type1, "type1"), (LfsrKind::Type2, "type2")] {
            let mut lfsr = Lfsr::new(&poly, kind);
            group.bench_with_input(BenchmarkId::new(name, degree), &degree, |b, _| {
                b.iter(|| {
                    lfsr.step();
                    black_box(lfsr.state().is_zero())
                })
            });
        }
        let mut complete = CompleteLfsr::new(&poly);
        group.bench_with_input(BenchmarkId::new("complete", degree), &degree, |b, _| {
            b.iter(|| {
                complete.step();
                black_box(complete.state().is_zero())
            })
        });
    }
    group.finish();
}

fn bench_misr_absorb(c: &mut Criterion) {
    let poly = primitive_polynomial(16).expect("in table");
    let mut misr = Misr::new(&poly);
    let mut x = 0u64;
    c.bench_function("misr_absorb_16", |b| {
        b.iter(|| {
            x = x.wrapping_mul(0x9E37_79B9).wrapping_add(1);
            misr.absorb_u64(x & 0xFFFF);
            black_box(misr.cycles())
        })
    });
}

fn bench_polynomials(c: &mut Criterion) {
    c.bench_function("primitive_polynomial_table_64", |b| {
        b.iter(|| black_box(primitive_polynomial(black_box(64))))
    });
    c.bench_function("find_primitive_search_20", |b| {
        b.iter(|| black_box(find_primitive(black_box(20))))
    });
}

criterion_group!(
    benches,
    bench_lfsr_step,
    bench_misr_absorb,
    bench_polynomials
);
criterion_main!(benches);
