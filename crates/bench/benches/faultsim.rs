//! Criterion benches for the fault-simulation substrate: parallel-pattern
//! block throughput, PODEM test generation, and fault collapsing, on the
//! paper's multiplier cell (the dominant kernel of every Table 2 circuit).

use bibs_faultsim::atpg::Atpg;
use bibs_faultsim::fault::FaultUniverse;
use bibs_faultsim::par::ParFaultSimulator;
use bibs_faultsim::sim::{BlockSim, FaultSimulator};
use bibs_netlist::builder::NetlistBuilder;
use bibs_netlist::Netlist;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn multiplier(width: usize) -> Netlist {
    let mut b = NetlistBuilder::new("mul");
    let a = b.input_word("a", width);
    let c = b.input_word("b", width);
    let p = b.array_multiplier(&a, &c, 2 * width);
    // Observe only the low half, like the paper's datapaths.
    b.output_word("p", &p[..width]);
    b.finish().expect("multiplier is well-formed")
}

fn bench_fault_sim_block(c: &mut Criterion) {
    let mut group = c.benchmark_group("fault_sim_block64");
    for width in [4usize, 8] {
        let nl = multiplier(width);
        let universe = FaultUniverse::collapsed(&nl);
        let program = bibs_netlist::EvalProgram::compile(&nl).unwrap();
        let (observable, _) = universe.split_by_observability(&program);
        group.bench_with_input(BenchmarkId::from_parameter(width), &width, |b, _| {
            let mut rng = StdRng::seed_from_u64(7);
            b.iter_batched(
                || FaultSimulator::new(&nl, observable.clone()),
                |mut sim| {
                    let words: Vec<u64> = (0..nl.input_width()).map(|_| rng.gen()).collect();
                    black_box(sim.apply_block(&words, 64))
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

/// Serial vs parallel engine on the same 256-pattern random stream over
/// the 8-bit array multiplier (the c4a4m-scale workload): identical
/// reports by construction, so the only thing measured is wall clock.
fn bench_engines(c: &mut Criterion) {
    let nl = multiplier(8);
    let universe = FaultUniverse::collapsed(&nl);
    let program = bibs_netlist::EvalProgram::compile(&nl).unwrap();
    let (observable, _) = universe.split_by_observability(&program);
    let mut group = c.benchmark_group("fault_sim_engine_mul8_256pat");
    group.sample_size(10);
    group.bench_function("serial", |b| {
        b.iter_batched(
            || {
                (
                    FaultSimulator::new(&nl, observable.clone()),
                    StdRng::seed_from_u64(3),
                )
            },
            |(mut sim, mut rng)| black_box(sim.run_random(&mut rng, 256).detected_count()),
            criterion::BatchSize::SmallInput,
        )
    });
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("parallel", threads),
            &threads,
            |b, &threads| {
                b.iter_batched(
                    || {
                        (
                            ParFaultSimulator::with_threads(&nl, observable.clone(), threads),
                            StdRng::seed_from_u64(3),
                        )
                    },
                    |(mut sim, mut rng)| black_box(sim.run_random(&mut rng, 256).detected_count()),
                    criterion::BatchSize::SmallInput,
                )
            },
        );
    }
    group.finish();
}

fn bench_podem(c: &mut Criterion) {
    let nl = multiplier(8);
    let universe = FaultUniverse::collapsed(&nl);
    let faults: Vec<_> = universe.faults().iter().copied().take(32).collect();
    c.bench_function("podem_32_faults_mul8", |b| {
        b.iter(|| {
            let mut atpg = Atpg::new(&nl);
            black_box(atpg.classify(&faults, 10_000).detectable_count())
        })
    });
}

fn bench_collapse(c: &mut Criterion) {
    let nl = multiplier(8);
    c.bench_function("fault_collapse_mul8", |b| {
        b.iter(|| black_box(FaultUniverse::collapsed(&nl).len()))
    });
}

criterion_group!(
    benches,
    bench_fault_sim_block,
    bench_engines,
    bench_podem,
    bench_collapse
);
criterion_main!(benches);
