//! Criterion benches for the semantic analysis layer: what the static
//! sweeps cost (ternary abstract interpretation, SCOAP, the untestability
//! prover, dominance collapsing) and what they buy (fault-simulating only
//! dominance-class representatives and expanding the detection map vs
//! simulating the whole equivalence-collapsed universe). EXPERIMENTS.md
//! records the resulting shrink and wall-clock ratios.

use bibs_faultsim::fault::{DominanceCollapse, FaultUniverse, StaticFaultAnalysis};
use bibs_faultsim::sim::{BlockSim, FaultSimulator};
use bibs_netlist::analysis::{ternary_analyze, PiAssumption, Scoap};
use bibs_netlist::builder::NetlistBuilder;
use bibs_netlist::{EvalProgram, Netlist};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn multiplier(width: usize) -> Netlist {
    let mut b = NetlistBuilder::new("mul");
    let a = b.input_word("a", width);
    let c = b.input_word("b", width);
    let p = b.array_multiplier(&a, &c, 2 * width);
    // Observe only the low half, like the paper's datapaths.
    b.output_word("p", &p[..width]);
    b.finish().expect("multiplier is well-formed")
}

/// The individual static sweeps on the mul8 cell: each runs once per
/// kernel per table2 column, so single-sweep cost bounds the analysis
/// overhead reported in `SimStats::analysis_wall`.
fn bench_sweeps(c: &mut Criterion) {
    let nl = multiplier(8);
    let program = EvalProgram::compile(&nl).expect("acyclic");
    let mut group = c.benchmark_group("analysis_sweeps_mul8");
    group.bench_function("ternary_all_x", |b| {
        b.iter(|| {
            black_box(
                ternary_analyze(&program, &PiAssumption::AllX)
                    .constants()
                    .count(),
            )
        })
    });
    let abs = ternary_analyze(&program, &PiAssumption::AllX);
    group.bench_function("scoap_seeded", |b| {
        b.iter(|| black_box(Scoap::compute_with(&program, Some(&abs)).unobservable(0)))
    });
    group.bench_function("static_fault_analysis", |b| {
        b.iter(|| {
            let sfa = StaticFaultAnalysis::new(&program);
            black_box(sfa.scoap().unobservable(0))
        })
    });
    group.finish();
}

/// Partitioning and collapsing the full observable fault list: the two
/// per-kernel front-end passes the table2 pipeline runs before simulating.
fn bench_collapse(c: &mut Criterion) {
    let nl = multiplier(8);
    let program = EvalProgram::compile(&nl).expect("acyclic");
    let universe = FaultUniverse::collapsed(&nl);
    let (observable, _) = universe.split_by_observability(&program);
    let sfa = StaticFaultAnalysis::new(&program);
    let mut group = c.benchmark_group("analysis_collapse_mul8");
    group.bench_function("partition_untestable", |b| {
        b.iter(|| black_box(sfa.partition(&program, &observable).0.len()))
    });
    let (to_sim, _) = sfa.partition(&program, &observable);
    group.bench_function("dominance_build", |b| {
        b.iter(|| black_box(DominanceCollapse::build(&to_sim, &program).rep_count()))
    });
    group.finish();
}

/// The payoff: random-pattern fault simulation of every observable fault
/// vs only the dominance-class representatives plus exact expansion. Both
/// produce identical detection maps; the representative run simulates
/// strictly fewer faulty machines.
fn bench_payoff(c: &mut Criterion) {
    let nl = multiplier(8);
    let program = EvalProgram::compile(&nl).expect("acyclic");
    let universe = FaultUniverse::collapsed(&nl);
    let (observable, _) = universe.split_by_observability(&program);
    let sfa = StaticFaultAnalysis::new(&program);
    let (to_sim, _) = sfa.partition(&program, &observable);
    let dc = DominanceCollapse::build(&to_sim, &program);
    let mut group = c.benchmark_group("fault_sim_mul8_256pat_collapse");
    group.sample_size(10);
    group.bench_function("equiv_all_faults", |b| {
        b.iter_batched(
            || {
                (
                    FaultSimulator::new(&nl, to_sim.clone()),
                    StdRng::seed_from_u64(3),
                )
            },
            |(mut sim, mut rng)| black_box(sim.run_random(&mut rng, 256).detected_count()),
            criterion::BatchSize::SmallInput,
        )
    });
    group.bench_function("dominance_reps_expanded", |b| {
        b.iter_batched(
            || {
                (
                    FaultSimulator::new(&nl, dc.representative_faults()),
                    StdRng::seed_from_u64(3),
                )
            },
            |(mut sim, mut rng)| {
                let report = sim.run_random(&mut rng, 256);
                let expanded = dc.expand_detection(report.detection());
                black_box(expanded.iter().filter(|d| d.is_some()).count())
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_sweeps, bench_collapse, bench_payoff);
criterion_main!(benches);
