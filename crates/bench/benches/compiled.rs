//! Criterion benches for the compiled evaluation IR: the interpreted
//! reference engine vs the [`EvalProgram`]-based engines (serial and
//! parallel) on the paper's array-multiplier cell — the workload that
//! dominates every Table 2 circuit. The reports are bit-identical across
//! all engines, so the only thing measured is wall clock; EXPERIMENTS.md
//! records the resulting speedups.

use bibs_faultsim::fault::FaultUniverse;
use bibs_faultsim::par::ParFaultSimulator;
use bibs_faultsim::reference::ReferenceSimulator;
use bibs_faultsim::sim::{BlockSim, FaultSimulator};
use bibs_netlist::builder::NetlistBuilder;
use bibs_netlist::{EvalProgram, Netlist};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn multiplier(width: usize) -> Netlist {
    let mut b = NetlistBuilder::new("mul");
    let a = b.input_word("a", width);
    let c = b.input_word("b", width);
    let p = b.array_multiplier(&a, &c, 2 * width);
    // Observe only the low half, like the paper's datapaths.
    b.output_word("p", &p[..width]);
    b.finish().expect("multiplier is well-formed")
}

/// Good-machine evaluation only: one 64-pattern block through the
/// interpreter vs the compiled program (the hot loop both engines share).
fn bench_good_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("good_eval_block64_mul8");
    let nl = multiplier(8);
    let order = nl.levelize().expect("acyclic");
    let program = EvalProgram::compile(&nl).expect("acyclic");
    let mut rng = StdRng::seed_from_u64(5);
    let words: Vec<u64> = (0..nl.input_width()).map(|_| rng.gen()).collect();
    group.bench_function("interpreted", |b| {
        let mut values = vec![0u64; nl.net_count()];
        let mut scratch = Vec::new();
        b.iter(|| {
            bibs_faultsim::reference::eval_good(
                &nl,
                &order,
                black_box(&words),
                &mut values,
                &mut scratch,
            );
            black_box(values[nl.outputs()[0].index()])
        })
    });
    group.bench_function("compiled", |b| {
        let mut values = program.new_values();
        b.iter(|| {
            program.eval_good(&mut values, black_box(&words));
            black_box(values[nl.outputs()[0].index()])
        })
    });
    group.finish();
}

/// Full good+faulty block throughput (the table2 inner loop): interpreted
/// reference vs compiled serial vs compiled parallel.
fn bench_engines(c: &mut Criterion) {
    let nl = multiplier(8);
    let universe = FaultUniverse::collapsed(&nl);
    let program = bibs_netlist::EvalProgram::compile(&nl).unwrap();
    let (observable, _) = universe.split_by_observability(&program);
    let mut group = c.benchmark_group("fault_sim_mul8_256pat");
    group.sample_size(10);
    group.bench_function("reference", |b| {
        b.iter_batched(
            || {
                (
                    ReferenceSimulator::new(&nl, observable.clone()),
                    StdRng::seed_from_u64(3),
                )
            },
            |(mut sim, mut rng)| black_box(sim.run_random(&mut rng, 256).detected_count()),
            criterion::BatchSize::SmallInput,
        )
    });
    group.bench_function("compiled_serial", |b| {
        b.iter_batched(
            || {
                (
                    FaultSimulator::new(&nl, observable.clone()),
                    StdRng::seed_from_u64(3),
                )
            },
            |(mut sim, mut rng)| black_box(sim.run_random(&mut rng, 256).detected_count()),
            criterion::BatchSize::SmallInput,
        )
    });
    for threads in [2usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("compiled_parallel", threads),
            &threads,
            |b, &threads| {
                b.iter_batched(
                    || {
                        (
                            ParFaultSimulator::with_threads(&nl, observable.clone(), threads),
                            StdRng::seed_from_u64(3),
                        )
                    },
                    |(mut sim, mut rng)| black_box(sim.run_random(&mut rng, 256).detected_count()),
                    criterion::BatchSize::SmallInput,
                )
            },
        );
    }
    group.finish();
}

/// One-time compile cost, amortized over a whole table2 run.
fn bench_compile(c: &mut Criterion) {
    let nl = multiplier(8);
    c.bench_function("eval_program_compile_mul8", |b| {
        b.iter(|| black_box(EvalProgram::compile(&nl).expect("acyclic").instr_count()))
    });
}

criterion_group!(benches, bench_good_eval, bench_engines, bench_compile);
criterion_main!(benches);
