//! Criterion benches for TPG design and simulation: SC_TPG/MC_TPG
//! construction (the paper gives MC_TPG's complexity as O(m·n²)), the
//! register-permutation search of Section 4.3, and TPG stepping.

use bibs_core::fpet::best_permutation;
use bibs_core::structure::{Cone, ConeDep, GeneralizedStructure, TpgRegister};
use bibs_core::tpg::{mc_tpg, TpgSimulator};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// A synthetic n-register, n-cone structure with varied skews.
fn synthetic(n: usize) -> GeneralizedStructure {
    let regs = (0..n)
        .map(|i| TpgRegister {
            name: format!("R{i}"),
            width: 4,
        })
        .collect();
    let cones = (0..n)
        .map(|x| Cone {
            name: format!("O{x}"),
            deps: (0..n)
                .filter(|i| (i + x) % 3 != 0)
                .map(|i| ConeDep {
                    register: i,
                    seq_len: ((i + x) % 4) as u32,
                })
                .collect(),
        })
        .collect();
    GeneralizedStructure::new(format!("syn{n}"), regs, cones).expect("valid synthetic structure")
}

fn bench_mc_tpg(c: &mut Criterion) {
    let mut group = c.benchmark_group("mc_tpg_construct");
    for n in [4usize, 8, 16] {
        let s = synthetic(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(mc_tpg(&s).lfsr_degree()))
        });
    }
    group.finish();
}

fn bench_permutation_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("fpet_permutation_search");
    group.sample_size(10);
    for n in [4usize, 6] {
        let s = synthetic(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(best_permutation(&s).design.lfsr_degree()))
        });
    }
    group.finish();
}

fn bench_tpg_simulation(c: &mut Criterion) {
    let s = GeneralizedStructure::single_cone("ex2", &[("R1", 4, 2), ("R2", 4, 1), ("R3", 4, 0)]);
    let design = mc_tpg(&s);
    let mut sim = TpgSimulator::new(&design);
    c.bench_function("tpg_sim_step_and_view", |b| {
        b.iter(|| {
            sim.step();
            black_box(sim.cone_view(0).count_ones())
        })
    });
}

criterion_group!(
    benches,
    bench_mc_tpg,
    bench_permutation_search,
    bench_tpg_simulation
);
criterion_main!(benches);
