//! Criterion benches for the two TDM selection procedures on the Table 1
//! datapaths and on unbalanced/cyclic filter structures.

use bibs_core::bibs::{select, BibsOptions};
use bibs_core::design::kernels;
use bibs_core::ka85;
use bibs_core::schedule::schedule;
use bibs_datapath::filters::{c3a2m, c4a4m, c5a2m, fir_transposed};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_bibs_select(c: &mut Criterion) {
    let mut group = c.benchmark_group("bibs_select");
    for circuit in [c5a2m(), c3a2m(), c4a4m()] {
        group.bench_with_input(
            BenchmarkId::from_parameter(circuit.name().to_string()),
            &circuit,
            |b, circuit| {
                b.iter(|| {
                    black_box(
                        select(circuit, &BibsOptions::default())
                            .expect("selectable")
                            .design
                            .register_count(),
                    )
                })
            },
        );
    }
    // The unbalanced transposed FIR exercises the violation-driven search.
    for taps in [4usize, 8] {
        let fir = fir_transposed(taps);
        group.bench_with_input(BenchmarkId::new("fir", taps), &fir, |b, fir| {
            b.iter(|| {
                black_box(
                    select(fir, &BibsOptions::default())
                        .expect("selectable")
                        .design
                        .register_count(),
                )
            })
        });
    }
    group.finish();
}

fn bench_ka85_select(c: &mut Criterion) {
    let mut group = c.benchmark_group("ka85_select");
    for circuit in [c5a2m(), c3a2m(), c4a4m()] {
        group.bench_with_input(
            BenchmarkId::from_parameter(circuit.name().to_string()),
            &circuit,
            |b, circuit| {
                b.iter(|| black_box(ka85::select(circuit).expect("selectable").register_count()))
            },
        );
    }
    group.finish();
}

fn bench_schedule(c: &mut Criterion) {
    let circuit = c4a4m();
    let design = ka85::select(&circuit).expect("selectable");
    let ks = kernels(&circuit, &design);
    c.bench_function("schedule_c4a4m_ka85", |b| {
        b.iter(|| black_box(schedule(&design, &ks).len()))
    });
}

criterion_group!(
    benches,
    bench_bibs_select,
    bench_ka85_select,
    bench_schedule
);
criterion_main!(benches);
