//! Per-code lint tests: each pass gets a minimal violating structure and
//! must answer with the expected `B0xx` code and a *named* witness, plus
//! clean-bill checks on the paper datapaths and the shipped fixtures.

use bibs_lint::{lint_circuit, lint_ckt_text, lint_full, lint_netlist, LintConfig, Severity};
use bibs_netlist::{Dff, Gate, GateKind, Net, NetDriver, NetId, Netlist};
use bibs_rtl::{Circuit, CircuitBuilder, LogicFunction};

fn cfg() -> LintConfig {
    LintConfig::new()
}

fn net(name: Option<&str>, driver: NetDriver) -> Net {
    Net {
        name: name.map(str::to_string),
        driver,
    }
}

fn n(i: usize) -> NetId {
    NetId::from_index(i)
}

// ---------------------------------------------------------------- B00x --

#[test]
fn b001_undriven_net() {
    let nl = Netlist::from_parts_unchecked(
        "t".into(),
        vec![
            net(Some("a"), NetDriver::Input(0)),
            net(Some("loose"), NetDriver::Floating),
        ],
        vec![],
        vec![],
        vec![n(0)],
        vec![n(0)],
    );
    let report = lint_netlist(&nl, &cfg());
    assert!(report.has_code("B001"), "{report}");
    let d = report.with_code("B001").next().unwrap();
    assert_eq!(d.severity, Severity::Deny);
    assert!(d.witness.contains("loose"), "witness: {}", d.witness);
}

#[test]
fn b002_driver_record_mismatch() {
    // The gate drives n2, but n2's record claims it is an input.
    let nl = Netlist::from_parts_unchecked(
        "t".into(),
        vec![
            net(Some("a"), NetDriver::Input(0)),
            net(Some("b"), NetDriver::Input(1)),
            net(Some("x"), NetDriver::Input(0)), // stale/bogus record
        ],
        vec![Gate {
            kind: GateKind::And,
            inputs: vec![n(0), n(1)],
            output: n(2),
        }],
        vec![],
        vec![n(0), n(1)],
        vec![n(2)],
    );
    let report = lint_netlist(&nl, &cfg());
    assert!(report.has_code("B002"), "{report}");
    assert!(
        report
            .with_code("B002")
            .next()
            .unwrap()
            .message
            .contains("g0:and"),
        "{report}"
    );
}

#[test]
fn b002_dff_record_mismatch() {
    let nl = Netlist::from_parts_unchecked(
        "t".into(),
        vec![
            net(Some("a"), NetDriver::Input(0)),
            net(Some("q"), NetDriver::Floating), // should be Dff(ff0)
        ],
        vec![],
        vec![Dff { d: n(0), q: n(1) }],
        vec![n(0)],
        vec![n(1)],
    );
    let report = lint_netlist(&nl, &cfg());
    assert!(report.has_code("B002"), "{report}");
    assert!(
        report
            .with_code("B002")
            .next()
            .unwrap()
            .message
            .contains("ff0"),
        "{report}"
    );
}

#[test]
fn b003_combinational_cycle_with_gate_witness() {
    // g0 and g1 feed each other.
    let nl = Netlist::from_parts_unchecked(
        "t".into(),
        vec![
            net(Some("a"), NetDriver::Input(0)),
            net(
                Some("x"),
                NetDriver::Gate(bibs_netlist::GateId::from_index(0)),
            ),
            net(
                Some("y"),
                NetDriver::Gate(bibs_netlist::GateId::from_index(1)),
            ),
        ],
        vec![
            Gate {
                kind: GateKind::And,
                inputs: vec![n(0), n(2)],
                output: n(1),
            },
            Gate {
                kind: GateKind::Or,
                inputs: vec![n(0), n(1)],
                output: n(2),
            },
        ],
        vec![],
        vec![n(0)],
        vec![n(2)],
    );
    let report = lint_netlist(&nl, &cfg());
    assert!(report.has_code("B003"), "{report}");
    let d = report.with_code("B003").next().unwrap();
    // The witness names the explicit gate cycle and closes the loop.
    assert!(d.witness.contains("g0:and"), "witness: {}", d.witness);
    assert!(d.witness.contains("g1:or"), "witness: {}", d.witness);
    assert!(d.witness.contains(" => "), "witness: {}", d.witness);
}

#[test]
fn b004_dead_cone_is_allow_level() {
    // A valid netlist whose second gate feeds nothing.
    let mut b = bibs_netlist::builder::NetlistBuilder::new("t");
    let a = b.input("a");
    let c = b.input("c");
    let live = b.gate(GateKind::And, &[a, c]);
    b.output("o", live);
    let _dead = b.gate(GateKind::Or, &[a, c]);
    let nl = b.finish().unwrap();
    let report = lint_netlist(&nl, &cfg());
    assert!(report.has_code("B004"), "{report}");
    let d = report.with_code("B004").next().unwrap();
    assert_eq!(d.severity, Severity::Allow);
    assert!(
        report.is_clean(),
        "dead cones alone must not fail: {report}"
    );
}

#[test]
fn b005_duplicate_primary_input() {
    let nl = Netlist::from_parts_unchecked(
        "t".into(),
        vec![net(Some("a"), NetDriver::Input(0))],
        vec![],
        vec![],
        vec![n(0), n(0)], // same net listed twice
        vec![n(0)],
    );
    let report = lint_netlist(&nl, &cfg());
    assert!(report.has_code("B005"), "{report}");
}

#[test]
fn b006_bad_arity() {
    let nl = Netlist::from_parts_unchecked(
        "t".into(),
        vec![
            net(Some("a"), NetDriver::Input(0)),
            net(
                Some("x"),
                NetDriver::Gate(bibs_netlist::GateId::from_index(0)),
            ),
        ],
        vec![Gate {
            kind: GateKind::And,
            inputs: vec![n(0)], // AND of one input
            output: n(1),
        }],
        vec![],
        vec![n(0)],
        vec![n(1)],
    );
    let report = lint_netlist(&nl, &cfg());
    assert!(report.has_code("B006"), "{report}");
    assert!(
        report
            .with_code("B006")
            .next()
            .unwrap()
            .message
            .contains("at least 2"),
        "{report}"
    );
}

#[test]
fn b007_dead_slot_cross_checks_b004() {
    // A valid netlist whose second gate feeds nothing: its output slot is
    // never read by the compiled program, and it is exactly the root of
    // the B004 dead cone.
    let mut b = bibs_netlist::builder::NetlistBuilder::new("t");
    let a = b.input("a");
    let c = b.input("c");
    let live = b.gate(GateKind::And, &[a, c]);
    b.output("o", live);
    let _dead = b.gate(GateKind::Or, &[a, c]);
    let nl = b.finish().unwrap();
    let report = lint_netlist(&nl, &cfg());
    assert!(report.has_code("B007"), "{report}");
    let d = report.with_code("B007").next().unwrap();
    assert_eq!(d.severity, Severity::Allow);
    assert!(
        d.message.contains("B004 dead cone"),
        "gate-driven dead slots must cross-reference B004: {}",
        d.message
    );
    assert!(
        report.is_clean(),
        "dead slots alone must not fail: {report}"
    );
}

#[test]
fn b007_flags_unused_primary_input() {
    // B004's gate-only sweep cannot see an ignored input; B007 can.
    let mut b = bibs_netlist::builder::NetlistBuilder::new("t");
    let a = b.input("a");
    let _unused = b.input("unused");
    let c = b.input("c");
    let y = b.gate(GateKind::Xor, &[a, c]);
    b.output("y", y);
    let nl = b.finish().unwrap();
    let report = lint_netlist(&nl, &cfg());
    assert!(!report.has_code("B004"), "{report}");
    let d = report
        .with_code("B007")
        .next()
        .expect("unused input flagged");
    assert!(d.witness.contains("unused"), "witness: {}", d.witness);
    assert!(d.message.contains("primary input"), "{}", d.message);
}

#[test]
fn b007_silent_on_fully_live_netlist_and_invalid_input() {
    let mut b = bibs_netlist::builder::NetlistBuilder::new("t");
    let a = b.input("a");
    let c = b.input("c");
    let y = b.gate(GateKind::And, &[a, c]);
    b.output("y", y);
    let live = b.finish().unwrap();
    assert!(!lint_netlist(&live, &cfg()).has_code("B007"));
    // Unvalidatable netlist (floating net): B001 owns it, B007 stays out.
    let nl = Netlist::from_parts_unchecked(
        "t".into(),
        vec![
            net(Some("a"), NetDriver::Input(0)),
            net(Some("loose"), NetDriver::Floating),
        ],
        vec![],
        vec![],
        vec![n(0)],
        vec![n(0)],
    );
    let report = lint_netlist(&nl, &cfg());
    assert!(report.has_code("B001"), "{report}");
    assert!(!report.has_code("B007"), "{report}");
}

// ---------------------------------------------------------------- B01x --

#[test]
fn b010_register_cycle_is_noted_by_name() {
    let mut b = CircuitBuilder::new("cyc");
    let pi = b.input("PI");
    let f = b.logic("F");
    let h = b.logic("H");
    let po = b.output("PO");
    b.register("Rin", 4, pi, f);
    b.register("Rfh", 4, f, h);
    b.register("Rhf", 4, h, f);
    b.register("Rout", 4, h, po);
    let c = b.finish().unwrap();
    let report = lint_circuit(&c, &cfg());
    assert!(report.has_code("B010"), "{report}");
    let d = report.with_code("B010").next().unwrap();
    assert_eq!(d.severity, Severity::Allow, "bare cycles are TDM input");
    assert!(d.witness.contains("Rfh[4]"), "witness: {}", d.witness);
    assert!(d.message.contains("2 register edge(s)"), "{}", d.message);
}

#[test]
fn b011_urfs_reports_short_and_long_paths() {
    let mut b = CircuitBuilder::new("urfs");
    let pi = b.input("PI");
    let f = b.fanout("F");
    let c1 = b.logic("C1");
    let po = b.output("PO");
    b.register("Rin", 4, pi, f);
    b.wire(f, c1);
    b.register("Rskip", 4, f, c1);
    b.register("Rout", 4, c1, po);
    let c = b.finish().unwrap();
    let report = lint_circuit(&c, &cfg());
    assert!(report.has_code("B011"), "{report}");
    let d = report
        .with_code("B011")
        .find(|d| d.message.contains("join F to C1"))
        .expect("the F ~> C1 imbalance is reported");
    assert!(
        d.witness.contains("shorter: F -> C1"),
        "witness: {}",
        d.witness
    );
    assert!(
        d.witness.contains("longer: F -Rskip[4]-> C1"),
        "witness: {}",
        d.witness
    );
}

#[test]
fn b012_mixed_operand_widths() {
    let mut b = CircuitBuilder::new("mix");
    let p1 = b.input("P1");
    let p2 = b.input("P2");
    let add = b.logic_fn("ADD", LogicFunction::Add);
    let po = b.output("PO");
    b.register("Ra", 8, p1, add);
    b.register("Rb", 4, p2, add);
    b.register("Rout", 8, add, po);
    let c = b.finish().unwrap();
    let report = lint_circuit(&c, &cfg());
    assert!(report.has_code("B012"), "{report}");
    let d = report.with_code("B012").next().unwrap();
    assert_eq!(d.severity, Severity::Warn);
    assert!(d.witness.contains("Ra[8]") && d.witness.contains("Rb[4]"));
}

#[test]
fn b013_dangling_block() {
    let mut b = CircuitBuilder::new("dangle");
    let pi = b.input("PI");
    let c1 = b.logic("C1");
    let po = b.output("PO");
    let _orphan = b.logic("ORPHAN");
    b.register("Rin", 4, pi, c1);
    b.register("Rout", 4, c1, po);
    let c = b.finish().unwrap();
    let report = lint_circuit(&c, &cfg());
    assert!(report.has_code("B013"), "{report}");
    assert!(
        report
            .with_code("B013")
            .next()
            .unwrap()
            .message
            .contains("ORPHAN"),
        "{report}"
    );
}

// ---------------------------------------------------------------- B05x --

use bibs_lint::lint_text;

#[test]
fn b050_observed_uninitialized_flop() {
    let text = "INPUT(x)\nOUTPUT(y)\nnq = NOT(q)\nq = DFF(nq)\ny = OR(q, x)\n";
    let report = lint_text("t.bench", text, &cfg());
    assert!(report.has_code("B050"), "{report}");
    let d = report.with_code("B050").next().unwrap();
    assert_eq!(d.severity, Severity::Deny);
    assert!(d.witness.contains("seed"), "witness: {}", d.witness);
    assert!(d.witness.contains("frame"), "witness: {}", d.witness);
}

#[test]
fn b051_and_b053_unobservable_never_initialized_flop() {
    let text = "INPUT(x)\nOUTPUT(y)\nnq = NOT(q)\nq = DFF(nq)\ny = NOT(x)\n";
    let report = lint_text("t.bench", text, &cfg());
    assert!(report.has_code("B051"), "{report}");
    assert!(report.has_code("B053"), "{report}");
    assert!(
        !report.has_code("B050"),
        "unobservable X is not B050: {report}"
    );
    assert_eq!(
        report.with_code("B051").next().unwrap().severity,
        Severity::Warn
    );
    assert_eq!(
        report.with_code("B053").next().unwrap().severity,
        Severity::Allow
    );
}

#[test]
fn b052_stuck_register() {
    let text = "INPUT(x)\nOUTPUT(y)\nz = TIE0()\nq = DFF(z)\ny = OR(q, x)\n";
    let report = lint_text("t.bench", text, &cfg());
    assert!(report.has_code("B052"), "{report}");
    let d = report.with_code("B052").next().unwrap();
    assert_eq!(d.severity, Severity::Warn);
    assert!(d.message.contains("stuck at 0"), "{}", d.message);
}

#[test]
fn b054_depth_crosscheck_via_seq_pass() {
    // RTL depth 4 (c5a2m has registered I/O), gate netlist 3 stages deep:
    // expected gate depth after the boundary cut is 2, so B054 fires.
    let circuit = bibs_datapath::filters::scaled("c5a2m", 2);
    let mut b = bibs_netlist::builder::NetlistBuilder::new("deeper");
    let x = b.input("x");
    let r0 = b.register(&[x]);
    let r1 = b.register(&r0);
    let r2 = b.register(&r1);
    b.output("y", r2[0]);
    let deeper = b.finish().unwrap();
    let report = bibs_lint::lint_seq_depth(&circuit, &deeper, "t", &cfg());
    assert!(report.has_code("B054"), "{report}");
    assert_eq!(
        report.with_code("B054").next().unwrap().severity,
        Severity::Deny
    );
}

#[test]
fn b059_unused_suppression() {
    let text = "# bibs-lint: allow(B052)\nINPUT(a)\nINPUT(b)\ns = AND(a, b)\nOUTPUT(s)\n";
    let report = lint_text("t.bench", text, &cfg());
    assert!(report.has_code("B059"), "{report}");
    assert_eq!(
        report.with_code("B059").next().unwrap().severity,
        Severity::Warn
    );
}

// ------------------------------------------------------------ fixtures --

fn repo_path(rel: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(rel)
}

#[test]
fn shipped_good_fixtures_lint_clean_under_deny_warnings() {
    let mut config = cfg();
    config.deny_warnings = true;
    for file in [
        "circuits/fig4.ckt",
        "circuits/mac.ckt",
        "circuits/pipeline.ckt",
    ] {
        let text = std::fs::read_to_string(repo_path(file)).unwrap();
        let report = lint_ckt_text(file, &text, &config);
        assert!(report.is_clean(), "{file} must lint clean:\n{report}");
    }
}

#[test]
fn bad_fixture_is_rejected_with_coded_findings() {
    let text = std::fs::read_to_string(repo_path("circuits/bad_unbuffered_io.ckt")).unwrap();
    let report = lint_ckt_text("bad_unbuffered_io.ckt", &text, &cfg());
    assert!(!report.is_clean(), "{report}");
    assert!(report.has_code("B000"), "selection failure: {report}");
    assert!(report.has_code("B012"), "width mismatch: {report}");
    assert!(report.has_code("B011"), "URFS note: {report}");
}

#[test]
fn paper_filters_have_zero_deny_findings() {
    let mut config = cfg();
    config.deny_warnings = true;
    for (name, circuit) in [
        ("c5a2m", bibs_datapath::filters::c5a2m()),
        ("c3a2m", bibs_datapath::filters::c3a2m()),
        ("c4a4m", bibs_datapath::filters::c4a4m()),
        ("fig9", bibs_datapath::fig9::figure9()),
    ] {
        let report = lint_full(&circuit, &config);
        assert!(report.is_clean(), "{name}:\n{report}");
        // The truncated multipliers show up as documented B004 notes.
        if name != "fig9" {
            assert!(report.has_code("B004"), "{name} keeps low product bits");
        }
    }
}

// ------------------------------------------------------------ property --

use proptest::prelude::*;

/// Builds an `n`-stage register pipeline PI -R0-> L0 ... -Rn-> PO with a
/// fanout at stage `src`; when `bypass` is true, a wire jumps from the
/// fanout over the next register straight into the following block,
/// creating an URFS.
fn bypass_pipeline(n: usize, src: usize, bypass: bool) -> Circuit {
    let mut b = CircuitBuilder::new("pipe");
    let pi = b.input("PI");
    let mut prev = pi;
    let mut blocks = Vec::new();
    for i in 0..n {
        let v = if i == src {
            b.fanout(format!("F{i}"))
        } else {
            b.logic(format!("L{i}"))
        };
        b.register(format!("R{i}"), 4, prev, v);
        blocks.push(v);
        prev = v;
    }
    let po = b.output("PO");
    b.register(format!("R{n}"), 4, prev, po);
    if bypass {
        b.wire(blocks[src], blocks[src + 1]);
    }
    b.finish().unwrap()
}

proptest! {
    /// A pure pipeline is balanced; adding one register-skipping wire
    /// flips B011 on. The mutation is the minimal URFS of Figure 1.
    #[test]
    fn register_bypass_flips_b011(n in 2usize..6, src in 0usize..5) {
        let src = src % (n - 1);
        let clean = bypass_pipeline(n, src, false);
        let report = lint_circuit(&clean, &cfg());
        prop_assert!(
            !report.has_code("B011"),
            "pipeline must be balanced: {report}"
        );
        let mutated = bypass_pipeline(n, src, true);
        let report = lint_circuit(&mutated, &cfg());
        prop_assert!(
            report.has_code("B011"),
            "bypass at {src} of {n} must be an URFS: {report}"
        );
    }
}
