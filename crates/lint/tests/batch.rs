//! End-to-end tests of the `bibs-lint` binary: the batch driver's
//! job-count invariance, the exit-code matrix, inline suppressions,
//! baselines and SARIF output, all through the real executable.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_bibs-lint"))
}

fn run(args: &[&str]) -> Output {
    bin().args(args).output().expect("bibs-lint runs")
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).into_owned()
}

fn stderr(o: &Output) -> String {
    String::from_utf8_lossy(&o.stderr).into_owned()
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bibs_lint_cli_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_mixed_fixtures(dir: &Path) {
    std::fs::write(
        dir.join("clean.bench"),
        "INPUT(a)\nINPUT(b)\ns = XOR(a, b)\nOUTPUT(s)\n",
    )
    .unwrap();
    std::fs::write(
        dir.join("uninit.bench"),
        "INPUT(x)\nOUTPUT(y)\nnq = NOT(q)\nq = DFF(nq)\ny = OR(q, x)\n",
    )
    .unwrap();
    std::fs::write(
        dir.join("stuck.bench"),
        "INPUT(x)\nz = TIE0()\nq = DFF(z)\ny = OR(q, x)\nOUTPUT(y)\n",
    )
    .unwrap();
}

#[test]
fn batch_stdout_is_byte_identical_for_every_job_count() {
    let dir = scratch_dir("jobs");
    write_mixed_fixtures(&dir);
    let dir_arg = dir.to_str().unwrap();
    for format in ["text", "json", "sarif"] {
        let reference = run(&["--batch", dir_arg, "--jobs", "1", "--format", format]);
        for jobs in ["2", "4", "8"] {
            let out = run(&["--batch", dir_arg, "--jobs", jobs, "--format", format]);
            assert_eq!(
                stdout(&reference),
                stdout(&out),
                "--format {format} --jobs {jobs} must match --jobs 1"
            );
            assert_eq!(reference.status.code(), out.status.code());
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn exit_code_matrix() {
    let dir = scratch_dir("exits");
    write_mixed_fixtures(&dir);
    // 0: clean target.
    let ok = run(&[dir.join("clean.bench").to_str().unwrap()]);
    assert_eq!(ok.status.code(), Some(0), "{}", stderr(&ok));
    // 1: deny-level finding (B050 denies by default).
    let deny = run(&[dir.join("uninit.bench").to_str().unwrap()]);
    assert_eq!(deny.status.code(), Some(1));
    assert!(stdout(&deny).contains("B050"), "{}", stdout(&deny));
    // 1: warn promoted by --deny warnings.
    let warn = run(&[dir.join("stuck.bench").to_str().unwrap()]);
    assert_eq!(warn.status.code(), Some(0), "B052 warns by default");
    let promoted = run(&[
        "--deny",
        "warnings",
        dir.join("stuck.bench").to_str().unwrap(),
    ]);
    assert_eq!(promoted.status.code(), Some(1));
    // 2: unreadable target, diagnostics on stderr only.
    let missing = run(&[dir.join("missing.bench").to_str().unwrap()]);
    assert_eq!(missing.status.code(), Some(2));
    assert!(stderr(&missing).contains("cannot read"));
    // 2: usage errors.
    assert_eq!(run(&["--format", "yaml"]).status.code(), Some(2));
    assert_eq!(run(&["--no-such-flag"]).status.code(), Some(2));
    assert_eq!(run(&["--batch"]).status.code(), Some(2));
    let empty = scratch_dir("empty");
    assert_eq!(
        run(&["--batch", empty.to_str().unwrap()]).status.code(),
        Some(2),
        "an empty batch must not pass as clean"
    );
    std::fs::remove_dir_all(&dir).unwrap();
    std::fs::remove_dir_all(&empty).unwrap();
}

#[test]
fn inline_suppressions_demote_and_unused_ones_warn() {
    let dir = scratch_dir("supp");
    std::fs::write(
        dir.join("acked.bench"),
        "# bibs-lint: allow(B052)\nINPUT(x)\nz = TIE0()\nq = DFF(z)\n\
         y = OR(q, x)\nOUTPUT(y)\n",
    )
    .unwrap();
    let out = run(&[
        "--deny",
        "warnings",
        dir.join("acked.bench").to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stdout(&out));
    assert!(stdout(&out).contains("suppressed"), "{}", stdout(&out));

    std::fs::write(
        dir.join("stale.bench"),
        "# bibs-lint: allow(B052)\nINPUT(a)\nINPUT(b)\ns = AND(a, b)\nOUTPUT(s)\n",
    )
    .unwrap();
    let out = run(&[dir.join("stale.bench").to_str().unwrap()]);
    assert!(
        stdout(&out).contains("B059"),
        "unused suppression must warn: {}",
        stdout(&out)
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn baseline_round_trip_gates_clean() {
    let dir = scratch_dir("base");
    write_mixed_fixtures(&dir);
    let dir_arg = dir.to_string_lossy().into_owned();
    let base = dir.join("baseline.json");
    let base_arg = base.to_string_lossy().into_owned();
    // Without a baseline the batch fails on uninit.bench.
    assert_eq!(run(&["--batch", &dir_arg]).status.code(), Some(1));
    // Record the current findings, then the same batch gates clean.
    let wrote = run(&["--batch", &dir_arg, "--write-baseline", &base_arg]);
    assert_eq!(wrote.status.code(), Some(1), "writing does not absolve");
    let gated = run(&["--batch", &dir_arg, "--baseline", &base_arg]);
    assert_eq!(gated.status.code(), Some(0), "{}", stderr(&gated));
    // A corrupt baseline is a usage error.
    std::fs::write(&base, "not a baseline").unwrap();
    assert_eq!(
        run(&["--batch", &dir_arg, "--baseline", &base_arg])
            .status
            .code(),
        Some(2)
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn sarif_output_validates_and_json_carries_the_v2_schema() {
    let dir = scratch_dir("sarif");
    write_mixed_fixtures(&dir);
    let dir_arg = dir.to_string_lossy().into_owned();
    let sarif = run(&["--batch", &dir_arg, "--format", "sarif"]);
    let log = dir.join("lint.sarif");
    std::fs::write(&log, stdout(&sarif)).unwrap();
    let checked = run(&["--check-sarif", log.to_str().unwrap()]);
    assert_eq!(checked.status.code(), Some(0), "{}", stderr(&checked));

    let json = run(&["--batch", &dir_arg, "--format", "json"]);
    let text = stdout(&json);
    assert!(text.contains("\"schema\":\"bibs-lint/2\""), "{text}");
    assert!(text.contains("\"fingerprint\":\""), "{text}");
    assert!(text.contains("\"origin\":"), "{text}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn shipped_bad_fixture_trips_b050_under_deny_warnings() {
    let fixture = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../circuits/bad_uninit_dff.bench");
    let out = run(&["--deny", "warnings", fixture.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stdout(&out).contains("B050"), "{}", stdout(&out));
}

#[test]
fn telemetry_records_per_file_spans() {
    let dir = scratch_dir("telem");
    write_mixed_fixtures(&dir);
    let telem = dir.join("spans.json");
    let out = run(&[
        "--batch",
        dir.to_str().unwrap(),
        "--telemetry",
        telem.to_str().unwrap(),
    ]);
    assert!(out.status.code().is_some());
    let json = std::fs::read_to_string(&telem).unwrap();
    assert!(json.contains("lint_findings"), "{json}");
    assert!(json.contains("clean.bench"), "{json}");
    std::fs::remove_dir_all(&dir).unwrap();
}
