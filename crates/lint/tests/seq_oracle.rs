//! Zero-false-claim oracle for the B050/B051/B052 sequential verdicts.
//!
//! The analysis promises (see `bibs_netlist::seqanalysis`):
//!
//! * **B051 / B050** — a flop reported `NeverInitialized` stays ternary-X
//!   under *every* input sequence from the all-X power-up state;
//! * **B052** — a flop reported `Constant(v)` holds `v` from frame
//!   `frames_to_fix` on under every input sequence and power-up state;
//! * every **B050** divergence witness replays.
//!
//! This test checks those promises against *exhaustive* bounded-sequence
//! ternary simulation: every concrete input sequence of `frames` frames
//! (≤ 16 sequence bits total, so the enumeration is complete), evolved
//! frame by frame with the same `ternary_frame` the analysis itself
//! exports. A single counterexample — a sequence that initializes a
//! "never initialized" flop, or moves a "stuck" one — fails the test.

use bibs_corpus::gen::Family;
use bibs_lint::{lint_netlist_seq, LintConfig};
use bibs_netlist::analysis::Tv;
use bibs_netlist::builder::NetlistBuilder;
use bibs_netlist::seqanalysis::{
    find_x_witness, replay_x_witness, ternary_frame, InitStatus, SeqAnalysis, SeqOptions,
};
use bibs_netlist::{EvalProgram, GateKind, Netlist};

/// Runs the analysis on `nl`, then exhaustively simulates all concrete
/// input sequences of `frames` frames from the all-X state and asserts
/// that no negative claim has a counterexample.
fn assert_claims_sound(nl: &Netlist, frames: usize) {
    let program = EvalProgram::compile(nl).expect("oracle circuits compile");
    let opts = SeqOptions::default();
    let analysis = SeqAnalysis::analyze(&program, &opts);
    let npi = program.input_slots().len();
    let ndff = program.dff_slots().len();
    let bits = npi * frames;
    assert!(
        bits <= 16,
        "{}: oracle wants an exhaustive sweep",
        nl.name()
    );

    let mut ever_known = vec![false; ndff];
    for seq in 0u64..(1u64 << bits) {
        let mut state = vec![Tv::X; ndff];
        for t in 0..frames {
            let pis: Vec<Tv> = (0..npi)
                .map(|i| Tv::from_bool((seq >> (t * npi + i)) & 1 == 1))
                .collect();
            let vals = ternary_frame(&program, &state, &pis);
            state = program
                .dff_slots()
                .iter()
                .map(|&(_, d)| vals[d as usize])
                .collect();
            for f in 0..ndff {
                if state[f] != Tv::X {
                    ever_known[f] = true;
                }
                if t + 1 >= analysis.frames_to_fix {
                    if let InitStatus::Constant(v) = analysis.init[f] {
                        assert_eq!(
                            state[f],
                            Tv::from_bool(v),
                            "{}: B052 claim broken for ff{f}: sequence {seq:#x} \
                             moves the \"stuck\" flop at frame {t}",
                            nl.name()
                        );
                    }
                }
            }
        }
    }
    for (f, &known) in ever_known.iter().enumerate() {
        if matches!(analysis.init[f], InitStatus::NeverInitialized) {
            assert!(
                !known,
                "{}: false B050/B051 claim: ff{f} is initializable within \
                 {frames} frame(s)",
                nl.name()
            );
        }
        // Every B050 divergence witness must replay bit for bit.
        if matches!(analysis.init[f], InitStatus::NeverInitialized) && analysis.observable[f] {
            if let Some(w) = find_x_witness(&program, f, &opts) {
                assert!(
                    replay_x_witness(&program, &w, &opts),
                    "{}: B050 witness for ff{f} does not replay",
                    nl.name()
                );
            }
        }
    }
}

#[test]
fn pipelines_yield_no_false_claims() {
    for (width, depth, frames) in [(1, 1, 4), (1, 3, 5), (2, 2, 4), (3, 1, 3)] {
        let nl = Family::Pipeline { width, depth }.build();
        assert_claims_sound(&nl, frames);
    }
}

#[test]
fn random_seq_dags_yield_no_false_claims() {
    for seed in [1u64, 7, 42, 0xB1B5, 0xC0FFEE] {
        let nl = Family::SeqDag {
            seed,
            inputs: 3,
            ops: 12,
            dffs: 4,
        }
        .build();
        assert_claims_sound(&nl, 5);
    }
    for seed in [2u64, 9, 0xDEAD] {
        let nl = Family::SeqDag {
            seed,
            inputs: 2,
            ops: 18,
            dffs: 6,
        }
        .build();
        assert_claims_sound(&nl, 8);
    }
}

#[test]
fn feedback_structures_yield_no_false_claims() {
    // Inverter loop observed at the output: the canonical B050 case.
    let mut b = NetlistBuilder::new("osc");
    let (q, d) = b.register_deferred();
    let nq = b.not(q);
    b.resolve_deferred(d, nq);
    let x = b.input("x");
    let y = b.or2(q, x);
    b.output("y", y);
    assert_claims_sound(&b.finish().unwrap(), 8);

    // XOR feedback: d = XOR(q, x) keeps X forever — NeverInitialized.
    let mut b = NetlistBuilder::new("xorfb");
    let (q, d) = b.register_deferred();
    let x = b.input("x");
    let fb = b.xor2(q, x);
    b.resolve_deferred(d, fb);
    let y = b.gate(GateKind::Buf, &[q]);
    b.output("y", y);
    assert_claims_sound(&b.finish().unwrap(), 8);

    // AND-guarded self loop: d = AND(q, x) — x=0 concretely initializes
    // the flop, so the analysis must NOT claim NeverInitialized; the
    // oracle confirms whichever verdict it gives.
    let mut b = NetlistBuilder::new("andfb");
    let (q, d) = b.register_deferred();
    let x = b.input("x");
    let fb = b.and2(q, x);
    b.resolve_deferred(d, fb);
    b.output("y", q);
    assert_claims_sound(&b.finish().unwrap(), 8);
}

#[test]
fn stuck_and_unsafe_fixtures_yield_no_false_claims() {
    for variant in 0..3 {
        let nl = Family::SeqUnsafe { variant }.build();
        assert_claims_sound(&nl, 8);
    }
    // Constant-fed two-stage chain: both flops are B052-stuck, with
    // frames_to_fix > 1 covering the staged settling.
    let mut b = NetlistBuilder::new("chain");
    let one = b.const1();
    let r0 = b.register(&[one]);
    let r1 = b.register(&r0);
    let x = b.input("x");
    let y = b.and2(r1[0], x);
    b.output("y", y);
    assert_claims_sound(&b.finish().unwrap(), 6);
}

/// The lint pass and the raw analysis agree: B050 is emitted exactly for
/// the observed never-initialized flops with a concrete witness, and
/// B051 claims match `NeverInitialized` verdicts.
#[test]
fn lint_codes_match_the_analysis_verdicts() {
    for variant in 0..3 {
        let nl = Family::SeqUnsafe { variant }.build();
        let report = lint_netlist_seq(&nl, "oracle", &LintConfig::new());
        let program = EvalProgram::compile(&nl).unwrap();
        let analysis = SeqAnalysis::analyze(&program, &SeqOptions::default());
        let never: usize = analysis
            .init
            .iter()
            .filter(|s| matches!(s, InitStatus::NeverInitialized))
            .count();
        let claimed = report.with_code("B050").count() + report.with_code("B051").count();
        assert_eq!(claimed, never, "sequnsafe{variant}:\n{report}");
    }
}
