//! Pattern-source lint pass: B060, the width agreement check between a
//! pattern source and the kernel it is scheduled to drive.
//!
//! Pattern sources are serialized artifacts (stored replay schedules, TPG
//! descriptors) that live apart from the circuits they test, so a
//! schedule recorded for one kernel can silently be pointed at another.
//! A width mismatch is never recoverable — the stream either panics the
//! engine or drives the wrong number of inputs — so B060 is deny-level by
//! default and the bench binaries run this check as a `--source`
//! preflight before any simulation starts.

use crate::diag::{LintConfig, Report};

/// Checks a pattern source's declared input width against the width of
/// the kernel it will drive (`what` names the kernel in messages;
/// `source` names the source, usually its descriptor kind or file path).
///
/// Sources that declare no width (e.g. replay schedules without a
/// `width` directive) cannot be checked and produce an empty report —
/// the check is opt-in on the artifact side by design, so legacy
/// schedules keep working.
pub fn lint_source_width(
    source: &str,
    declared_width: Option<usize>,
    kernel_width: usize,
    what: &str,
    config: &LintConfig,
) -> Report {
    let mut report = Report::new();
    if let Some(w) = declared_width {
        if w != kernel_width {
            report.emit(
                config,
                "B060",
                format!(
                    "{what}: pattern source {source} declares width {w} but \
                     the kernel's combinational input width is {kernel_width}"
                ),
                format!("{source}: declared width {w} != kernel width {kernel_width}"),
            );
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;

    #[test]
    fn width_mismatch_is_denied() {
        let cfg = LintConfig::new();
        let report = lint_source_width("replay:sched.txt", Some(8), 12, "kernel #0", &cfg);
        assert!(report.has_code("B060"), "{report}");
        assert!(!report.is_clean());
        let d = report.with_code("B060").next().unwrap();
        assert_eq!(d.severity, Severity::Deny);
        assert!(d.message.contains("width 8"), "{}", d.message);
        assert!(d.message.contains("width is 12"), "{}", d.message);
    }

    #[test]
    fn matching_or_undeclared_width_is_clean() {
        let cfg = LintConfig::new();
        let ok = lint_source_width("replay:sched.txt", Some(12), 12, "kernel #0", &cfg);
        assert!(ok.diagnostics.is_empty(), "{ok}");
        let unchecked = lint_source_width("lfsr", None, 12, "kernel #0", &cfg);
        assert!(unchecked.diagnostics.is_empty(), "{unchecked}");
    }
}
