//! Netlist-level lint passes: B001–B007.
//!
//! These run on possibly-**unvalidated** netlists (see
//! [`Netlist::from_parts_unchecked`]) — the whole point is to diagnose the
//! structures [`Netlist::validate`] rejects, plus inconsistencies validate
//! does *not* check (driver-record clashes, dead cones, malformed word
//! records) that otherwise surface as silently wrong simulations.

use crate::diag::{LintConfig, Report};
use bibs_netlist::{EvalProgram, GateId, NetDriver, NetId, Netlist};

/// Renders a net as `n7 ("a[3]")` or `n7` when unnamed.
fn net_desc(nl: &Netlist, id: NetId) -> String {
    match nl.net_name(id) {
        Some(n) => format!("{id} (\"{n}\")"),
        None => format!("{id}"),
    }
}

/// Renders a gate as `g3:and -> n7 ("x")`.
fn gate_desc(nl: &Netlist, id: GateId) -> String {
    let g = nl.gate(id);
    format!("{id}:{} -> {}", g.kind, net_desc(nl, g.output))
}

/// Runs every netlist-level pass on `netlist`.
pub fn lint_netlist(netlist: &Netlist, config: &LintConfig) -> Report {
    let mut report = Report::new();
    undriven_nets(netlist, config, &mut report);
    driver_consistency(netlist, config, &mut report);
    gate_arity(netlist, config, &mut report);
    combinational_cycles(netlist, config, &mut report);
    dead_cones(netlist, config, &mut report);
    word_records(netlist, config, &mut report);
    dead_slots(netlist, config, &mut report);
    report
}

/// B001 — every net must have a driver.
fn undriven_nets(nl: &Netlist, config: &LintConfig, report: &mut Report) {
    for id in nl.net_ids() {
        if matches!(nl.driver(id), NetDriver::Floating) {
            report.emit(
                config,
                "B001",
                format!("net {} has no driver", net_desc(nl, id)),
                net_desc(nl, id),
            );
        }
    }
}

/// B002 — the per-net driver record must agree with the gate/flip-flop
/// tables. A disagreement means two elements claim the same net (or a
/// stale record), which the simulator would resolve silently and
/// arbitrarily.
fn driver_consistency(nl: &Netlist, config: &LintConfig, report: &mut Report) {
    for gid in nl.gate_ids() {
        let out = nl.gate(gid).output;
        let rec = nl.driver(out);
        if rec != NetDriver::Gate(gid) {
            report.emit(
                config,
                "B002",
                format!(
                    "gate {} drives net {} but the net records driver {:?}",
                    gate_desc(nl, gid),
                    net_desc(nl, out),
                    rec
                ),
                format!("{} vs {:?}", gate_desc(nl, gid), rec),
            );
        }
    }
    for (i, ff) in nl.dffs().iter().enumerate() {
        let id = bibs_netlist::DffId::from_index(i);
        let rec = nl.driver(ff.q);
        if rec != NetDriver::Dff(id) {
            report.emit(
                config,
                "B002",
                format!(
                    "flip-flop {id} drives net {} but the net records driver {:?}",
                    net_desc(nl, ff.q),
                    rec
                ),
                format!("{id} -> {} vs {:?}", net_desc(nl, ff.q), rec),
            );
        }
    }
}

/// B006 — unary gates take exactly one input, all others at least two.
fn gate_arity(nl: &Netlist, config: &LintConfig, report: &mut Report) {
    for gid in nl.gate_ids() {
        let g = nl.gate(gid);
        let arity = g.inputs.len();
        let bad = if g.kind.is_unary() {
            arity != 1
        } else {
            arity < 2
        };
        if bad {
            report.emit(
                config,
                "B006",
                format!(
                    "gate {} has {arity} input(s); kind {} requires {}",
                    gate_desc(nl, gid),
                    g.kind,
                    if g.kind.is_unary() {
                        "exactly 1".to_string()
                    } else {
                        "at least 2".to_string()
                    }
                ),
                gate_desc(nl, gid),
            );
        }
    }
}

/// B003 — the combinational part must be acyclic; the witness is an
/// explicit gate cycle.
fn combinational_cycles(nl: &Netlist, config: &LintConfig, report: &mut Report) {
    // Kahn over gate-to-gate dependencies; survivors are exactly the gates
    // on (or downstream-locked behind) cycles.
    let n = nl.gate_count();
    let mut indegree = vec![0usize; n];
    let mut fanout: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (gi, gate) in nl.gates().iter().enumerate() {
        for &inp in &gate.inputs {
            if inp.index() >= nl.net_count() {
                // Out-of-range reference; reported via B002/B001 ground
                // rules elsewhere — skip to stay panic-free.
                continue;
            }
            if let NetDriver::Gate(src) = nl.driver(inp) {
                if src.index() < n {
                    fanout[src.index()].push(gi);
                    indegree[gi] += 1;
                }
            }
        }
    }
    let mut queue: Vec<usize> = (0..n).filter(|&g| indegree[g] == 0).collect();
    let mut remaining = n;
    while let Some(g) = queue.pop() {
        remaining -= 1;
        for &next in &fanout[g] {
            indegree[next] -= 1;
            if indegree[next] == 0 {
                queue.push(next);
            }
        }
    }
    if remaining == 0 {
        return;
    }
    // Extract one explicit cycle among the stuck gates with an iterative
    // DFS (gray/black coloring).
    let stuck: Vec<usize> = (0..n).filter(|&g| indegree[g] > 0).collect();
    let mut color = vec![0u8; n]; // 0 white, 1 gray, 2 black
    for &start in &stuck {
        if color[start] != 0 {
            continue;
        }
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        color[start] = 1;
        while let Some(&(g, idx)) = stack.last() {
            // Only follow edges that stay inside the stuck set.
            let nexts: Vec<usize> = fanout[g]
                .iter()
                .copied()
                .filter(|&x| indegree[x] > 0)
                .collect();
            if idx >= nexts.len() {
                color[g] = 2;
                stack.pop();
                continue;
            }
            stack.last_mut().expect("just peeked").1 += 1;
            let next = nexts[idx];
            match color[next] {
                1 => {
                    let pos = stack
                        .iter()
                        .position(|&(v, _)| v == next)
                        .expect("gray gate is on the stack");
                    let cycle: Vec<usize> = stack[pos..].iter().map(|&(v, _)| v).collect();
                    let mut witness: Vec<String> = cycle
                        .iter()
                        .map(|&g| gate_desc(nl, GateId::from_index(g)))
                        .collect();
                    witness.push(gate_desc(nl, GateId::from_index(cycle[0])));
                    report.emit(
                        config,
                        "B003",
                        format!(
                            "combinational cycle through {} gate(s); the loop \
                             has no stable value",
                            cycle.len()
                        ),
                        witness.join(" => "),
                    );
                    return;
                }
                0 => {
                    color[next] = 1;
                    stack.push((next, 0));
                }
                _ => {}
            }
        }
    }
    // A cycle exists (remaining > 0) but DFS found none reachable — should
    // not happen; still report without a witness rather than stay silent.
    report.emit(
        config,
        "B003",
        format!("{remaining} gate(s) locked behind a combinational cycle"),
        String::new(),
    );
}

/// B004 — gates whose output cone reaches no primary output: dead logic.
///
/// One finding is emitted per *root* (a dead gate nothing consumes), with
/// the total dead-gate count, so a truncated multiplier's high half shows
/// up as a handful of notes rather than hundreds.
fn dead_cones(nl: &Netlist, config: &LintConfig, report: &mut Report) {
    // Backward liveness from the primary outputs.
    let mut live_net = vec![false; nl.net_count()];
    let mut stack: Vec<NetId> = Vec::new();
    for &o in nl.outputs() {
        if o.index() < nl.net_count() && !live_net[o.index()] {
            live_net[o.index()] = true;
            stack.push(o);
        }
    }
    let mut live_gate = vec![false; nl.gate_count()];
    while let Some(net) = stack.pop() {
        let mark = |nets: &[NetId], stack: &mut Vec<NetId>, live_net: &mut Vec<bool>| {
            for &i in nets {
                if i.index() < live_net.len() && !live_net[i.index()] {
                    live_net[i.index()] = true;
                    stack.push(i);
                }
            }
        };
        match nl.driver(net) {
            NetDriver::Gate(g) if g.index() < nl.gate_count() => {
                live_gate[g.index()] = true;
                mark(&nl.gate(g).inputs.clone(), &mut stack, &mut live_net);
            }
            NetDriver::Dff(ff) if ff.index() < nl.dff_count() => {
                mark(&[nl.dff(ff).d], &mut stack, &mut live_net);
            }
            _ => {}
        }
    }
    let dead_total = live_gate.iter().filter(|&&l| !l).count();
    if dead_total == 0 {
        return;
    }
    // Which nets are consumed by *anything* (live or dead)?
    let mut consumed = vec![false; nl.net_count()];
    for g in nl.gates() {
        for &i in &g.inputs {
            if i.index() < consumed.len() {
                consumed[i.index()] = true;
            }
        }
    }
    for ff in nl.dffs() {
        if ff.d.index() < consumed.len() {
            consumed[ff.d.index()] = true;
        }
    }
    for gid in nl.gate_ids() {
        if live_gate[gid.index()] {
            continue;
        }
        let out = nl.gate(gid).output;
        let is_root = out.index() >= consumed.len() || !consumed[out.index()];
        if is_root {
            report.emit(
                config,
                "B004",
                format!(
                    "dead logic cone rooted at fanout-free gate {} \
                     ({dead_total} dead gate(s) in this netlist); its faults \
                     are structurally undetectable",
                    gate_desc(nl, gid)
                ),
                gate_desc(nl, gid),
            );
        }
    }
}

/// B005 — the PI/PO word records must be internally consistent: each
/// input net's driver record names its position, and no net appears twice
/// in the input list.
fn word_records(nl: &Netlist, config: &LintConfig, report: &mut Report) {
    let mut seen = vec![false; nl.net_count()];
    for (i, &net) in nl.inputs().iter().enumerate() {
        if net.index() >= nl.net_count() {
            report.emit(
                config,
                "B005",
                format!("primary input {i} references out-of-range net {net}"),
                format!("pi {i} -> {net}"),
            );
            continue;
        }
        if seen[net.index()] {
            report.emit(
                config,
                "B005",
                format!(
                    "net {} appears more than once in the primary-input list",
                    net_desc(nl, net)
                ),
                format!("pi {i} -> {}", net_desc(nl, net)),
            );
        }
        seen[net.index()] = true;
        let rec = nl.driver(net);
        if rec != NetDriver::Input(i) {
            report.emit(
                config,
                "B005",
                format!(
                    "primary input {i} is net {} but the net records driver {:?}",
                    net_desc(nl, net),
                    rec
                ),
                format!("pi {i} -> {} vs {:?}", net_desc(nl, net), rec),
            );
        }
    }
    for (i, &net) in nl.outputs().iter().enumerate() {
        if net.index() >= nl.net_count() {
            report.emit(
                config,
                "B005",
                format!("primary output {i} references out-of-range net {net}"),
                format!("po {i} -> {net}"),
            );
        }
    }
}

/// B007 — nets whose **compiled evaluation slot** is never read.
///
/// The simulation layer compiles every netlist to an
/// [`EvalProgram`] whose value slots are the nets; a slot that no
/// instruction operand, flip-flop data input or primary output ever reads
/// is computed-then-discarded work on every evaluation of every machine
/// (good and faulty). Gate-driven unread nets coincide with the roots of
/// `B004` dead cones (the cross-check is recorded in the message); unread
/// *input* nets additionally reveal primary inputs the logic ignores,
/// which `B004`'s gate-only sweep cannot see.
///
/// The pass runs only on netlists that validate and compile — malformed
/// structure is already covered by B001–B006, and a compile failure means
/// a combinational cycle that B003 reports with a witness.
fn dead_slots(nl: &Netlist, config: &LintConfig, report: &mut Report) {
    if nl.validate().is_err() {
        return;
    }
    let Ok(program) = EvalProgram::compile(nl) else {
        return; // cyclic: B003 owns the diagnosis
    };
    let read = program.slot_read_mask();
    for id in nl.net_ids() {
        if read[id.index()] {
            continue;
        }
        let (role, cross) = match nl.driver(id) {
            NetDriver::Gate(g) => (
                format!("driven by gate {}", gate_desc(nl, g)),
                " (root of a B004 dead cone)",
            ),
            NetDriver::Input(i) => (format!("primary input {i}"), ""),
            NetDriver::Dff(ff) => (format!("driven by flip-flop {ff}"), ""),
            NetDriver::Const(v) => (format!("constant {}", u8::from(v)), ""),
            NetDriver::Floating => continue, // B001 owns undriven nets
        };
        report.emit(
            config,
            "B007",
            format!(
                "net {} ({role}) has a compiled slot no instruction, flip-flop \
                 or output reads{cross}; it is evaluated and discarded",
                net_desc(nl, id)
            ),
            net_desc(nl, id),
        );
    }
}
