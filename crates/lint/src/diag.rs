//! The diagnostics engine: severities, coded findings, reports and the
//! severity configuration shared by every lint pass.

use std::collections::BTreeMap;
use std::fmt;

/// How seriously a finding is taken.
///
/// `Allow` findings are still *recorded* — they document intentional
/// structure (e.g. a truncated multiplier's dead high half) — but never
/// affect the exit status. `Warn` findings indicate suspicious structure;
/// under [`LintConfig::deny_warnings`] they are promoted to `Deny`. `Deny`
/// findings violate a paper condition outright and fail the lint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational note; never fails the lint.
    Allow,
    /// Suspicious; fails only under `--deny warnings`.
    Warn,
    /// Violates a checked condition; fails the lint.
    Deny,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Allow => "allow",
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        })
    }
}

impl std::str::FromStr for Severity {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "allow" | "note" => Ok(Severity::Allow),
            "warn" | "warning" => Ok(Severity::Warn),
            "deny" | "error" => Ok(Severity::Deny),
            other => Err(format!("unknown severity {other:?}")),
        }
    }
}

/// A registry entry describing one diagnostic code.
#[derive(Debug, Clone, Copy)]
pub struct CodeInfo {
    /// The stable code, e.g. `"B003"`.
    pub code: &'static str,
    /// One-line summary of the condition the code checks.
    pub summary: &'static str,
    /// Severity applied when no [`LintConfig`] override is present.
    pub default_severity: Severity,
}

/// Every diagnostic code the lint passes can emit, with defaults.
///
/// The code space mirrors the analysis layers: `B00x` netlist-level,
/// `B01x` RTL/structure-level, `B02x` design/TPG-level, `B03x`
/// cross-layer. `DESIGN.md` maps each code to the paper condition it
/// enforces.
pub const CODES: &[CodeInfo] = &[
    CodeInfo {
        code: "B000",
        summary: "input rejected: parse, build or selection failure",
        default_severity: Severity::Deny,
    },
    CodeInfo {
        code: "B001",
        summary: "undriven (floating) net",
        default_severity: Severity::Deny,
    },
    CodeInfo {
        code: "B002",
        summary: "multiply-driven net or inconsistent driver record",
        default_severity: Severity::Deny,
    },
    CodeInfo {
        code: "B003",
        summary: "combinational gate cycle",
        default_severity: Severity::Deny,
    },
    CodeInfo {
        code: "B004",
        summary: "dead logic cone (fanout-free gate feeding no output)",
        default_severity: Severity::Allow,
    },
    CodeInfo {
        code: "B005",
        summary: "malformed primary-input/-output word record",
        default_severity: Severity::Warn,
    },
    CodeInfo {
        code: "B006",
        summary: "gate arity invalid for its kind",
        default_severity: Severity::Deny,
    },
    CodeInfo {
        code: "B007",
        summary: "net whose compiled evaluation slot is never read",
        default_severity: Severity::Allow,
    },
    CodeInfo {
        code: "B010",
        summary: "directed register cycle in the bare circuit",
        default_severity: Severity::Allow,
    },
    CodeInfo {
        code: "B011",
        summary: "unbalanced reconvergent fanout (URFS) in the bare circuit",
        default_severity: Severity::Allow,
    },
    CodeInfo {
        code: "B012",
        summary: "operand register widths differ at an Add/Sub block",
        default_severity: Severity::Warn,
    },
    CodeInfo {
        code: "B013",
        summary: "dangling block (no inputs or no outputs)",
        default_severity: Severity::Warn,
    },
    CodeInfo {
        code: "B020",
        summary: "kernel subgraph contains a directed cycle",
        default_severity: Severity::Deny,
    },
    CodeInfo {
        code: "B021",
        summary: "kernel imbalance: unequal-length register-to-register paths",
        default_severity: Severity::Deny,
    },
    CodeInfo {
        code: "B022",
        summary: "BILBO register would be TPG and SA of the same kernel",
        default_severity: Severity::Deny,
    },
    CodeInfo {
        code: "B023",
        summary: "LFSR polynomial missing, wrong-degree or non-primitive",
        default_severity: Severity::Deny,
    },
    CodeInfo {
        code: "B024",
        summary: "illegal TPG placement (labels, windows or offsets)",
        default_severity: Severity::Deny,
    },
    CodeInfo {
        code: "B025",
        summary: "netlist cone support exceeds the cone dependency matrix",
        default_severity: Severity::Deny,
    },
    CodeInfo {
        code: "B026",
        summary: "cone dependency matrix overapproximates netlist support",
        default_severity: Severity::Allow,
    },
    CodeInfo {
        code: "B030",
        summary: "sequential depth disagrees across RTL, structure and netlist",
        default_severity: Severity::Deny,
    },
    CodeInfo {
        code: "B031",
        summary: "kernel elaboration failed; cross-layer checks skipped",
        default_severity: Severity::Warn,
    },
    CodeInfo {
        code: "B040",
        summary: "gate-driven net proven constant under all-X inputs",
        default_severity: Severity::Warn,
    },
    CodeInfo {
        code: "B041",
        summary: "gate output independent of one of its input pins",
        default_severity: Severity::Allow,
    },
    CodeInfo {
        code: "B042",
        summary: "statically untestable fault outside intentional structure",
        default_severity: Severity::Deny,
    },
    CodeInfo {
        code: "B043",
        summary: "redundant logic cone (constant only by case analysis)",
        default_severity: Severity::Warn,
    },
    CodeInfo {
        code: "B050",
        summary: "power-up X from a never-initialized flop reaches an observed output",
        default_severity: Severity::Deny,
    },
    CodeInfo {
        code: "B051",
        summary: "flop never initialized by any bounded input sequence",
        default_severity: Severity::Warn,
    },
    CodeInfo {
        code: "B052",
        summary: "flop proven constant (stuck register) under all inputs",
        default_severity: Severity::Warn,
    },
    CodeInfo {
        code: "B053",
        summary: "flop output structurally unobservable at any output",
        default_severity: Severity::Allow,
    },
    CodeInfo {
        code: "B054",
        summary: "RTL sequential depth disagrees with gate-level unrolled depth",
        default_severity: Severity::Deny,
    },
    CodeInfo {
        code: "B059",
        summary: "unused inline lint suppression",
        default_severity: Severity::Warn,
    },
    // B06x — pattern-source checks. B060 fires when a source descriptor's
    // declared width disagrees with the kernel it is scheduled to drive (a
    // session that would panic or silently degrade at simulation time);
    // emitted by `source_pass` and wired into the bench binaries' --source
    // preflight.
    CodeInfo {
        code: "B060",
        summary: "pattern-source width disagrees with the kernel's input width",
        default_severity: Severity::Deny,
    },
    // B07x — optimizer/translation-validation checks (`opt_pass`, gated by
    // `LintConfig::optimizer` / the binary's --optimizer flag).
    CodeInfo {
        code: "B070",
        summary: "gate-driven net the optimizer's const-fold pass proves constant",
        default_severity: Severity::Warn,
    },
    CodeInfo {
        code: "B071",
        summary: "duplicated logic cone found by structural-hash CSE",
        default_severity: Severity::Warn,
    },
    CodeInfo {
        code: "B072",
        summary: "optimizer and translation validator disagree (refuted rewrite)",
        default_severity: Severity::Deny,
    },
    CodeInfo {
        code: "B073",
        summary: "fault patch-point unmapped by the optimizer rewrite",
        default_severity: Severity::Allow,
    },
];

/// Looks up the registry entry for `code`.
pub fn code_info(code: &str) -> Option<&'static CodeInfo> {
    CODES.iter().find(|c| c.code == code)
}

/// One finding: a coded, severity-tagged message with a concrete witness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The stable `B0xx` code.
    pub code: &'static str,
    /// The effective severity (after [`LintConfig`] overrides and
    /// `--deny warnings` promotion).
    pub severity: Severity,
    /// Human-readable description of the violated condition.
    pub message: String,
    /// The concrete structure that triggers the finding — named vertices,
    /// edges, nets or paths, never bare indices.
    pub witness: String,
    /// The file or target the finding belongs to. Empty for single-target
    /// reports; the batch driver stamps it via [`Report::set_origin`].
    pub origin: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)?;
        if !self.witness.is_empty() {
            write!(f, "\n    witness: {}", self.witness)?;
        }
        Ok(())
    }
}

/// Severity configuration: per-code overrides plus warning promotion.
#[derive(Debug, Clone, Default)]
pub struct LintConfig {
    /// Per-code severity overrides (`allow`/`warn`/`deny`).
    pub overrides: BTreeMap<String, Severity>,
    /// Promote every `Warn` finding to `Deny` (`--deny warnings`).
    pub deny_warnings: bool,
    /// Also run the semantic passes (B04x) — ternary constant analysis,
    /// independent-pin detection and static untestability proofs over the
    /// compiled IR (`--semantic`). Off by default: the passes run
    /// whole-netlist dataflow sweeps per kernel.
    pub semantic: bool,
    /// Also run the optimizer passes (B07x) — fold-provable constants,
    /// CSE-duplicated cones, the full optimize-then-validate pipeline
    /// (B072 on a refuted rewrite) and unmapped fault patch-points
    /// (`--optimizer`). Off by default: the pass optimizes and
    /// equivalence-checks every netlist it lints.
    pub optimizer: bool,
}

impl LintConfig {
    /// A configuration with no overrides and no promotion.
    pub fn new() -> Self {
        LintConfig::default()
    }

    /// Sets an override for one code.
    pub fn set(&mut self, code: &str, severity: Severity) -> &mut Self {
        self.overrides.insert(code.to_string(), severity);
        self
    }

    /// The effective severity for `code`: the override if present, else the
    /// registry default, with `Warn → Deny` promotion applied last.
    pub fn severity_of(&self, code: &str) -> Severity {
        let base = self
            .overrides
            .get(code)
            .copied()
            .or_else(|| code_info(code).map(|c| c.default_severity))
            .unwrap_or(Severity::Deny);
        if self.deny_warnings && base == Severity::Warn {
            Severity::Deny
        } else {
            base
        }
    }
}

/// The accumulated findings of one or more lint passes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    /// All findings, in pass order.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Records a finding under the severity `config` assigns to `code`.
    pub fn emit(
        &mut self,
        config: &LintConfig,
        code: &'static str,
        message: impl Into<String>,
        witness: impl Into<String>,
    ) {
        debug_assert!(code_info(code).is_some(), "unregistered code {code}");
        self.diagnostics.push(Diagnostic {
            code,
            severity: config.severity_of(code),
            message: message.into(),
            witness: witness.into(),
            origin: String::new(),
        });
    }

    /// Stamps `origin` on every finding that does not already carry one.
    pub fn set_origin(&mut self, origin: &str) {
        for d in &mut self.diagnostics {
            if d.origin.is_empty() {
                d.origin = origin.to_string();
            }
        }
    }

    /// Puts the report into its canonical form: findings sorted by
    /// `(code, origin, message, witness)` and exact duplicates removed.
    /// Batch output is byte-stable across `BIBS_JOBS` values because every
    /// merged report is normalized before rendering.
    pub fn normalize(&mut self) {
        self.diagnostics.sort_by(|a, b| {
            (a.code, &a.origin, &a.message, &a.witness)
                .cmp(&(b.code, &b.origin, &b.message, &b.witness))
        });
        self.diagnostics.dedup();
    }

    /// Appends every finding of `other`.
    pub fn merge(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Findings at exactly `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Number of deny-level findings.
    pub fn deny_count(&self) -> usize {
        self.count(Severity::Deny)
    }

    /// Whether the lint passes (no deny-level finding).
    pub fn is_clean(&self) -> bool {
        self.deny_count() == 0
    }

    /// Findings carrying `code`.
    pub fn with_code<'a>(&'a self, code: &'a str) -> impl Iterator<Item = &'a Diagnostic> + 'a {
        self.diagnostics.iter().filter(move |d| d.code == code)
    }

    /// Whether any finding carries `code`.
    pub fn has_code(&self, code: &str) -> bool {
        self.with_code(code).next().is_some()
    }

    /// Serializes the report as a JSON array of finding objects
    /// (`{"code","severity","origin","message","witness"}`) — hand-rolled
    /// because the build environment's `serde` is an offline stub.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"code\":{},\"severity\":{},\"origin\":{},\"message\":{},\"witness\":{}}}",
                json_string(d.code),
                json_string(&d.severity.to_string()),
                json_string(&d.origin),
                json_string(&d.message),
                json_string(&d.witness)
            ));
        }
        out.push(']');
        out
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        write!(
            f,
            "{} finding(s): {} deny, {} warn, {} allow",
            self.diagnostics.len(),
            self.count(Severity::Deny),
            self.count(Severity::Warn),
            self.count(Severity::Allow)
        )
    }
}

/// Escapes `s` as a JSON string literal (quotes included).
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_registry_is_well_formed() {
        // Unique, ordered, and every code parses as B0xx.
        for w in CODES.windows(2) {
            assert!(w[0].code < w[1].code, "registry must be sorted");
        }
        for c in CODES {
            assert!(c.code.starts_with("B0") && c.code.len() == 4, "{}", c.code);
            assert!(!c.summary.is_empty());
        }
    }

    #[test]
    fn severity_overrides_and_promotion() {
        let mut cfg = LintConfig::new();
        assert_eq!(cfg.severity_of("B004"), Severity::Allow);
        assert_eq!(cfg.severity_of("B005"), Severity::Warn);
        assert_eq!(cfg.severity_of("B001"), Severity::Deny);
        cfg.set("B004", Severity::Deny);
        assert_eq!(cfg.severity_of("B004"), Severity::Deny);
        cfg.deny_warnings = true;
        assert_eq!(cfg.severity_of("B005"), Severity::Deny);
        // Allow is not promoted.
        cfg.set("B004", Severity::Allow);
        assert_eq!(cfg.severity_of("B004"), Severity::Allow);
    }

    #[test]
    fn normalize_sorts_and_dedupes() {
        let cfg = LintConfig::new();
        let mut r = Report::new();
        r.emit(&cfg, "B004", "dead cone", "g7");
        r.emit(&cfg, "B001", "net \"x\" has no driver", "net n3 (x)");
        r.emit(&cfg, "B004", "dead cone", "g7"); // exact duplicate
        r.set_origin("a.bench");
        let mut s = Report::new();
        s.emit(&cfg, "B001", "net \"x\" has no driver", "net n3 (x)");
        s.set_origin("b.bench");
        r.merge(s);
        r.normalize();
        let keys: Vec<(&str, &str)> = r
            .diagnostics
            .iter()
            .map(|d| (d.code, d.origin.as_str()))
            .collect();
        assert_eq!(
            keys,
            vec![
                ("B001", "a.bench"),
                ("B001", "b.bench"),
                ("B004", "a.bench"),
            ]
        );
        // set_origin never overwrites an existing origin.
        r.set_origin("other");
        assert!(r.diagnostics.iter().all(|d| d.origin != "other"));
    }

    #[test]
    fn report_counting_and_json() {
        let cfg = LintConfig::new();
        let mut r = Report::new();
        r.emit(&cfg, "B001", "net \"x\" has no driver", "net n3 (x)");
        r.emit(&cfg, "B004", "dead cone", "g7");
        assert_eq!(r.deny_count(), 1);
        assert!(!r.is_clean());
        assert!(r.has_code("B001") && r.has_code("B004"));
        let json = r.to_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"code\":\"B001\""));
        assert!(json.contains("\\\"x\\\""), "quotes escaped: {json}");
        let human = r.to_string();
        assert!(human.contains("deny[B001]"));
        assert!(human.contains("witness: net n3 (x)"));
    }
}
