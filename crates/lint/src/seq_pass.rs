//! Sequential X-safety lint passes: B050–B054, driven by
//! [`bibs_netlist::seqanalysis`] over the compiled program *with* its
//! flip-flops (unlike the semantic passes, which analyze the
//! combinational equivalent).
//!
//! The MISR signature is only meaningful if no unknown reaches it, and
//! after power-up every flop holds an X until some input sequence defines
//! it. This pass grades each flop:
//!
//! * **B052** — the flop provably settles to a constant for *every* input
//!   sequence and power-up state: a stuck register;
//! * **B051** — no input sequence ever initializes the flop under ternary
//!   semantics: its power-up X is permanent;
//! * **B050** — B051 *and* a concrete divergence witness shows the X at
//!   an observed output: the deny-level case, because that X walks
//!   straight into the signature compactor;
//! * **B053** — the flop's output has no structural path to any output:
//!   whatever it holds is unobservable;
//! * **B054** — on circuits carrying both views, the RTL sequential depth
//!   disagrees with the gate-level unrolled depth (cross-layer
//!   consistency, the sequential sibling of B030).
//!
//! Soundness of the B050/B051 claims (zero false positives with respect
//! to exhaustive bounded-sequence ternary simulation) is argued in
//! [`bibs_netlist::seqanalysis`] and enforced by an oracle test.

use crate::diag::{LintConfig, Report};
use bibs_netlist::seqanalysis::{find_x_witness, InitStatus, SeqAnalysis, SeqOptions};
use bibs_netlist::{DffId, EvalProgram, NetId, Netlist};
use bibs_rtl::Circuit;

/// Renders a net as `n7 ("a[3]")` or `n7` when unnamed.
fn net_desc(nl: &Netlist, id: NetId) -> String {
    match nl.net_name(id) {
        Some(n) => format!("{id} (\"{n}\")"),
        None => format!("{id}"),
    }
}

/// Renders flop `f` as `ff2 (q = n9 ("acc[1]"))`.
fn dff_desc(nl: &Netlist, f: usize) -> String {
    let id = DffId::from_index(f);
    format!("{id} (q = {})", net_desc(nl, nl.dff(id).q))
}

/// Runs the sequential passes on one netlist (`what` names it in
/// messages). Netlists without flip-flops, invalid netlists and netlists
/// whose combinational part does not levelize are skipped silently — the
/// structural passes own those findings.
pub fn lint_netlist_seq(netlist: &Netlist, what: &str, config: &LintConfig) -> Report {
    let mut report = Report::new();
    if netlist.dff_count() == 0 || netlist.validate().is_err() {
        return report;
    }
    let Ok(program) = EvalProgram::compile(netlist) else {
        return report;
    };
    let opts = SeqOptions::default();
    let analysis = SeqAnalysis::analyze(&program, &opts);

    for f in 0..netlist.dff_count() {
        let desc = dff_desc(netlist, f);
        match analysis.init[f] {
            InitStatus::Constant(v) => {
                let v = u8::from(v);
                report.emit(
                    config,
                    "B052",
                    format!(
                        "{what}: flop {desc} is stuck at {v} after {} frame(s) for \
                         every input sequence and power-up state — a wasted register",
                        analysis.frames_to_fix
                    ),
                    format!("all-X state fixpoint: {desc} = {v}"),
                );
            }
            InitStatus::NeverInitialized => {
                let observed_witness = if analysis.observable[f] {
                    find_x_witness(&program, f, &opts)
                } else {
                    None
                };
                if let Some(w) = observed_witness {
                    let out = net_desc(netlist, netlist.outputs()[w.output]);
                    report.emit(
                        config,
                        "B050",
                        format!(
                            "{what}: power-up X of flop {desc} reaches observed \
                             output {out} — the MISR signature depends on an \
                             uninitialized register",
                        ),
                        format!(
                            "paired runs (seed {:#018x}, power-up differing only in \
                             {desc}) diverge at output {out} in frame {}",
                            w.seed, w.frame
                        ),
                    );
                } else {
                    report.emit(
                        config,
                        "B051",
                        format!(
                            "{what}: flop {desc} is never initialized by any input \
                             sequence — its power-up X is permanent under ternary \
                             semantics",
                        ),
                        format!(
                            "no input assignment makes the D cone of {desc} \
                             ternary-known in any frame (achievable-value fixpoint \
                             is empty)"
                        ),
                    );
                }
            }
            InitStatus::Initializable => {}
        }
        if !analysis.observable[f] {
            report.emit(
                config,
                "B053",
                format!(
                    "{what}: flop {desc} is unobservable — no structural path from \
                     its Q to any primary output, even through other flops",
                ),
                format!("backward reachability from the outputs never visits {desc}"),
            );
        }
    }
    report
}

/// Cross-checks the RTL sequential depth of `circuit` against the
/// gate-level unrolled depth of its elaborated `netlist` (B054).
///
/// The elaboration ([`bibs_datapath::elab::elaborate_whole`]) cuts the
/// PI-adjacent and PO-adjacent register edges out of the netlist — they
/// become the BILBO boundary — so for a datapath with fully registered
/// I/O the gate-level depth must equal `rtl_depth - 2`. Skipped when the
/// I/O is not fully registered (the offset is then path-dependent), when
/// either side cannot define a depth (cyclic on that layer), or when the
/// netlist does not compile.
pub fn lint_seq_depth(
    circuit: &Circuit,
    netlist: &Netlist,
    what: &str,
    config: &LintConfig,
) -> Report {
    let mut report = Report::new();
    let Some(rtl_depth) = circuit.sequential_depth() else {
        return report;
    };
    // Every PI-adjacent and PO-adjacent edge must be a register edge,
    // mirroring the boundary cut of `elaborate_whole`.
    use bibs_rtl::VertexKind;
    let registered_io = circuit.edge_ids().all(|e| {
        let edge = circuit.edge(e);
        let boundary = circuit.vertex(edge.from).kind == VertexKind::Input
            || circuit.vertex(edge.to).kind == VertexKind::Output;
        !boundary || edge.is_register()
    });
    if !registered_io || rtl_depth < 2 {
        return report;
    }
    let Ok(program) = EvalProgram::compile(netlist) else {
        return report;
    };
    let analysis = SeqAnalysis::analyze(&program, &SeqOptions::default());
    if analysis.depth_cyclic {
        return report;
    }
    let gate_depth = analysis.output_depths.iter().copied().max().unwrap_or(0);
    if gate_depth != rtl_depth - 2 {
        report.emit(
            config,
            "B054",
            format!(
                "{what}: RTL sequential depth {rtl_depth} disagrees with the \
                 gate-level unrolled depth {gate_depth} (expected {} after the \
                 BILBO boundary cut) — the two views describe different \
                 pipelines",
                rtl_depth - 2
            ),
            format!(
                "rtl sequential_depth() = {rtl_depth}; max over per-output \
                 flip-flop counts of the compiled netlist = {gate_depth}; the \
                 elaboration cuts one input and one output register stage"
            ),
        );
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use bibs_netlist::builder::NetlistBuilder;
    use bibs_netlist::GateKind;

    fn cfg() -> LintConfig {
        LintConfig::new()
    }

    /// An inverter-loop flop observed at an output: never initialized and
    /// concretely visible — B050, deny by default.
    #[test]
    fn visible_uninitialized_flop_is_b050() {
        let mut b = NetlistBuilder::new("osc");
        let (q, d) = b.register_deferred();
        let nq = b.not(q);
        b.resolve_deferred(d, nq);
        let x = b.input("x");
        let y = b.or2(q, x);
        b.output("y", y);
        let nl = b.finish().unwrap();
        let report = lint_netlist_seq(&nl, "t", &cfg());
        assert!(report.has_code("B050"), "{report}");
        assert!(!report.has_code("B051"), "B050 subsumes B051: {report}");
        assert!(!report.is_clean(), "{report}");
        let diag = report.with_code("B050").next().unwrap();
        assert!(diag.witness.contains("seed"), "{}", diag.witness);
        assert!(diag.message.contains("ff0"), "{}", diag.message);
    }

    /// The same loop masked by XOR(q, q): still never initialized, but no
    /// concrete divergence exists — B051 (warn), not B050.
    #[test]
    fn masked_uninitialized_flop_is_b051_not_b050() {
        let mut b = NetlistBuilder::new("mask");
        let (q, d) = b.register_deferred();
        let nq = b.not(q);
        b.resolve_deferred(d, nq);
        let y = b.gate(GateKind::Xor, &[q, q]);
        b.output("y", y);
        let nl = b.finish().unwrap();
        let report = lint_netlist_seq(&nl, "t", &cfg());
        assert!(report.has_code("B051"), "{report}");
        assert!(!report.has_code("B050"), "{report}");
        assert!(report.is_clean(), "warn-level by default: {report}");
        let mut strict = cfg();
        strict.deny_warnings = true;
        assert!(!lint_netlist_seq(&nl, "t", &strict).is_clean());
    }

    /// A flop fed by a tied constant is a stuck register: B052.
    #[test]
    fn stuck_register_is_b052() {
        let mut b = NetlistBuilder::new("stuck");
        let x = b.input("x");
        let z = b.const1();
        let r = b.register(&[z]);
        let y = b.and2(x, r[0]);
        b.output("y", y);
        let nl = b.finish().unwrap();
        let report = lint_netlist_seq(&nl, "t", &cfg());
        assert!(report.has_code("B052"), "{report}");
        let d = report.with_code("B052").next().unwrap();
        assert!(d.message.contains("stuck at 1"), "{}", d.message);
    }

    /// A flop whose Q feeds nothing: B053, and its never-init power-up X
    /// stays B051 (unobservable, so it cannot be B050).
    #[test]
    fn unobservable_flop_is_b053() {
        let mut b = NetlistBuilder::new("deaf");
        let (q, d) = b.register_deferred();
        let nq = b.not(q);
        b.resolve_deferred(d, nq);
        let x = b.input("x");
        let y = b.not(x);
        b.output("y", y);
        let nl = b.finish().unwrap();
        let report = lint_netlist_seq(&nl, "t", &cfg());
        assert!(report.has_code("B053"), "{report}");
        assert!(report.has_code("B051"), "{report}");
        assert!(!report.has_code("B050"), "{report}");
    }

    /// A healthy pipeline has no sequential findings.
    #[test]
    fn clean_pipeline_is_silent() {
        let mut b = NetlistBuilder::new("pipe");
        let x = b.input_word("x", 3);
        let r0 = b.register(&x);
        let r1 = b.register(&r0);
        b.output_word("y", &r1);
        let nl = b.finish().unwrap();
        let report = lint_netlist_seq(&nl, "t", &cfg());
        assert!(report.diagnostics.is_empty(), "{report}");
    }

    /// Combinational netlists are skipped entirely.
    #[test]
    fn combinational_netlist_is_skipped() {
        let mut b = NetlistBuilder::new("comb");
        let x = b.input("x");
        let y = b.not(x);
        b.output("y", y);
        let nl = b.finish().unwrap();
        assert!(lint_netlist_seq(&nl, "t", &cfg()).diagnostics.is_empty());
    }

    /// B054 stays silent when RTL and gate-level agree, and fires when the
    /// gate-level pipeline is one stage deeper than the RTL claims.
    #[test]
    fn depth_crosscheck_fires_on_disagreement() {
        let circuit = bibs_datapath::filters::scaled("c5a2m", 2);
        let nl = bibs_datapath::elab::elaborate_whole(&circuit)
            .unwrap()
            .netlist;
        let report = lint_seq_depth(&circuit, &nl, "t", &cfg());
        assert!(report.diagnostics.is_empty(), "{report}");

        // A netlist one register stage deeper than the RTL view claims
        // (rtl depth 4 -> expected gate depth 2, this one is 3).
        let mut b = NetlistBuilder::new("deeper");
        let x = b.input("x");
        let r0 = b.register(&[x]);
        let r1 = b.register(&r0);
        let r2 = b.register(&r1);
        b.output("y", r2[0]);
        let deeper = b.finish().unwrap();
        let report = lint_seq_depth(&circuit, &deeper, "t", &cfg());
        assert!(report.has_code("B054"), "{report}");
        assert!(!report.is_clean(), "B054 denies by default: {report}");
    }
}
