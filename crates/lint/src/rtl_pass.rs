//! RTL/structure-level lint passes on bare circuit graphs: B010–B013.
//!
//! "Bare" means *before* BILBO selection: a cycle or an URFS here is
//! normal input for the TDM (it exists to repair them), so B010/B011
//! default to `allow` — they become the hard `B020`/`B021` errors only
//! when they survive *inside a kernel* of a selected design (see
//! [`crate::design_pass`]).

use crate::diag::{LintConfig, Report};
use bibs_rtl::{Circuit, EdgeKind, LogicFunction, VertexKind};

/// Runs every RTL-level pass on `circuit`.
pub fn lint_circuit(circuit: &Circuit, config: &LintConfig) -> Report {
    let mut report = Report::new();
    cycles(circuit, config, &mut report);
    balance(circuit, config, &mut report);
    operand_widths(circuit, config, &mut report);
    dangling_blocks(circuit, config, &mut report);
    report
}

/// B010 — directed cycles in the bare circuit (Theorem 2 territory: a
/// cycle needs at least two converted registers, or a CBILBO).
fn cycles(circuit: &Circuit, config: &LintConfig, report: &mut Report) {
    if let Some(cycle) = circuit.find_cycle() {
        let regs = cycle
            .iter()
            .filter(|&&e| circuit.edge(e).is_register())
            .count();
        report.emit(
            config,
            "B010",
            format!(
                "directed cycle with {regs} register edge(s); BIBS selection \
                 must cut it (two BILBOs, or a CBILBO if only one register)"
            ),
            circuit.describe_cycle(&cycle),
        );
    }
}

/// B011 — URFS witnesses: vertex pairs joined by unequal-sequential-length
/// paths, each reported with a concrete min/max path pair by name.
fn balance(circuit: &Circuit, config: &LintConfig, report: &mut Report) {
    let b = circuit.balance_report();
    if !b.acyclic {
        // Balance is undefined on cyclic graphs; B010 already fired.
        return;
    }
    for im in &b.imbalances {
        let witness = match circuit.witness_paths(im.from, im.to) {
            Some((short, long)) => format!(
                "{}; shorter: {}; longer: {}",
                im.describe(circuit),
                circuit.describe_path(&short),
                circuit.describe_path(&long)
            ),
            None => im.describe(circuit),
        };
        report.emit(
            config,
            "B011",
            format!(
                "unbalanced reconvergent fanout: paths of sequential length \
                 {} and {} join {} to {}",
                im.min,
                im.max,
                circuit.vertex_name(im.from),
                circuit.vertex_name(im.to)
            ),
            witness,
        );
    }
}

/// B012 — an Add/Sub block fed by register edges of different widths
/// silently truncates to the narrower operand during elaboration.
fn operand_widths(circuit: &Circuit, config: &LintConfig, report: &mut Report) {
    for v in circuit.vertex_ids() {
        let vx = circuit.vertex(v);
        if vx.kind != VertexKind::Logic
            || !matches!(vx.function, LogicFunction::Add | LogicFunction::Sub)
        {
            continue;
        }
        let widths: Vec<(String, u32)> = circuit
            .in_edges(v)
            .iter()
            .filter_map(|&e| match circuit.edge(e).kind {
                EdgeKind::Register { width } => Some((circuit.edge_label(e), width)),
                EdgeKind::Wire => None,
            })
            .collect();
        let Some(&(_, first)) = widths.first() else {
            continue;
        };
        if widths.iter().any(|&(_, w)| w != first) {
            let list: Vec<String> = widths.iter().map(|(label, _)| label.clone()).collect();
            report.emit(
                config,
                "B012",
                format!(
                    "operand registers of {} {} have different widths; the \
                     wider operand is truncated",
                    vx.function_name(),
                    circuit.vertex_name(v)
                ),
                format!("{} <- {}", circuit.vertex_name(v), list.join(", ")),
            );
        }
    }
}

/// B013 — blocks with no in-edges or no out-edges: their values are
/// undefined or unobservable, and elaboration rejects them later anyway.
fn dangling_blocks(circuit: &Circuit, config: &LintConfig, report: &mut Report) {
    for v in circuit.vertex_ids() {
        let vx = circuit.vertex(v);
        if matches!(vx.kind, VertexKind::Input | VertexKind::Output) {
            continue;
        }
        let no_in = circuit.in_edges(v).is_empty();
        let no_out = circuit.out_edges(v).is_empty();
        if no_in || no_out {
            let what = match (no_in, no_out) {
                (true, true) => "no inputs and no outputs",
                (true, false) => "no inputs (value undefined)",
                _ => "no outputs (value unobservable)",
            };
            report.emit(
                config,
                "B013",
                format!("{} block {} has {what}", vx.kind, circuit.vertex_name(v)),
                circuit.vertex_name(v).to_string(),
            );
        }
    }
}
