//! Optimizer lint passes: B070–B073, driven by the optimizing pass
//! pipeline and translation validator of [`bibs_netlist::opt`] /
//! [`bibs_netlist::cec`].
//!
//! Where the semantic passes (B04x) prove facts by abstract
//! interpretation, these run the *actual optimizer* over the compiled
//! program and report what it finds:
//!
//! * **B070** (warn) — a gate-driven net the const-fold pass proves
//!   constant: its driver is deleted wholesale under `--opt`, so the net
//!   never toggles in any simulation;
//! * **B071** (warn) — a duplicated logic cone found by structural-hash
//!   CSE: two instructions compute the same `(kind, operands)` function,
//!   i.e. redundant area that also carries equivalent (collapsible)
//!   faults;
//! * **B072** (deny, hard) — the optimizer produced a rewrite the
//!   combinational equivalence checker **refuted**. This should be
//!   impossible for a correct pass pipeline; the finding carries the
//!   distinguishing input pattern as a replayable witness and must never
//!   be downgraded in CI;
//! * **B073** (allow) — a fault patch-point the rewrite cannot express on
//!   the optimized program (e.g. a pin fault inside a CSE-merged cone).
//!   Purely informational: the fault simulators transparently fall back
//!   to the original program for exactly these faults.
//!
//! The pass is opt-in (`LintConfig::optimizer`, the binary's
//! `--optimizer` flag) because it optimizes and equivalence-checks every
//! netlist it lints.

use crate::diag::{LintConfig, Report};
use bibs_netlist::opt::{duplicate_cone_pairs, fold_provable_slots, optimize};
use bibs_netlist::{EvalProgram, NetId, Netlist};

/// Renders a net as `n7 ("a[3]")` or `n7` when unnamed.
fn net_desc(nl: &Netlist, id: NetId) -> String {
    match nl.net_name(id) {
        Some(n) => format!("{id} (\"{n}\")"),
        None => format!("{id}"),
    }
}

/// Runs the optimizer passes on one netlist (`what` names it in
/// messages).
///
/// The netlist's combinational equivalent is compiled and pushed through
/// the full optimize-then-validate pipeline; netlists that do not compile
/// (combinational cycles) are skipped — the structural passes report
/// those as B003.
pub fn lint_netlist_opt(netlist: &Netlist, what: &str, config: &LintConfig) -> Report {
    let mut report = Report::new();
    let comb = netlist.combinational_equivalent();
    let Ok(program) = EvalProgram::compile(&comb) else {
        return report;
    };

    // B070 — nets the const-fold pass deletes the driver of.
    for (slot, value) in fold_provable_slots(&program) {
        let net = NetId::from_index(slot as usize);
        let v = u8::from(value);
        report.emit(
            config,
            "B070",
            format!(
                "{what}: net {} is fold-provable constant {v} — the \
                 optimizer's const-fold pass deletes its driving gate",
                net_desc(&comb, net)
            ),
            format!("{} = {v} by const-fold", net_desc(&comb, net)),
        );
    }

    // B071 — cones CSE proves pairwise identical.
    for (dup, rep) in duplicate_cone_pairs(&program) {
        let dup_net = NetId::from_index(dup as usize);
        let rep_net = NetId::from_index(rep as usize);
        report.emit(
            config,
            "B071",
            format!(
                "{what}: duplicated logic cone — net {} computes the same \
                 function as net {} (structural-hash CSE merges them)",
                net_desc(&comb, dup_net),
                net_desc(&comb, rep_net)
            ),
            format!(
                "{} ≡ {} by (kind, operands) hash",
                net_desc(&comb, dup_net),
                net_desc(&comb, rep_net)
            ),
        );
    }

    // B072 / B073 — run the real pipeline. A refutation is a hard deny
    // carrying the counterexample; an accepted rewrite is then probed for
    // patch-points the remap cannot express.
    match optimize(&comb, &program) {
        Err(e) => {
            report.emit(
                config,
                "B072",
                format!("{what}: {e}"),
                e.witness.render(&comb),
            );
        }
        Ok(opt) => {
            for net in comb.net_ids() {
                let patch = opt.original().patch_net(net, false);
                if opt.remap_patch(patch).is_none() {
                    report.emit(
                        config,
                        "B073",
                        format!(
                            "{what}: stem fault on net {} has no image on the \
                             optimized program (simulators fall back to the \
                             original)",
                            net_desc(&comb, net)
                        ),
                        format!("unmapped stem patch-point at {}", net_desc(&comb, net)),
                    );
                }
            }
            for gid in comb.gate_ids() {
                let gate = comb.gate(gid);
                for pin in 0..gate.inputs.len() {
                    let patch = opt.original().patch_pin(gid, pin, false);
                    if opt.remap_patch(patch).is_none() {
                        report.emit(
                            config,
                            "B073",
                            format!(
                                "{what}: pin fault {gid}.{pin} (reading net {}) \
                                 has no image on the optimized program \
                                 (simulators fall back to the original)",
                                net_desc(&comb, gate.inputs[pin])
                            ),
                            format!(
                                "unmapped pin patch-point at {gid} pin {pin} \
                                 driving {}",
                                net_desc(&comb, gate.output)
                            ),
                        );
                    }
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use bibs_netlist::builder::NetlistBuilder;
    use bibs_netlist::GateKind;

    #[test]
    fn fold_provable_constant_fires_b070() {
        // y = a AND (NOT a) is constant 0.
        let mut b = NetlistBuilder::new("tied");
        let a = b.input("a");
        let na = b.not(a);
        let y = b.and2(a, na);
        let o = b.or2(y, a);
        b.output("o", o);
        let nl = b.finish().unwrap();
        let cfg = LintConfig::new();
        let report = lint_netlist_opt(&nl, "tied", &cfg);
        assert!(report.has_code("B070"), "{report}");
        assert!(!report.has_code("B072"), "{report}");
    }

    #[test]
    fn duplicated_cone_fires_b071_and_unmapped_pin_fires_b073() {
        // Two ANDs of the same operands (one with swapped pins — the
        // symmetric hash still matches).
        let mut b = NetlistBuilder::new("dup");
        let a = b.input("a");
        let c = b.input("b");
        let d1 = b.and2(a, c);
        let d2 = b.and2(c, a);
        let x = b.input("x");
        let y1 = b.or2(d1, x);
        let y2 = b.xor2(d2, x);
        b.output("y1", y1);
        b.output("y2", y2);
        let nl = b.finish().unwrap();
        let cfg = LintConfig::new();
        let report = lint_netlist_opt(&nl, "dup", &cfg);
        assert!(report.has_code("B071"), "{report}");
        // The merged duplicate's pin faults have no optimized image.
        assert!(report.has_code("B073"), "{report}");
        assert!(report.is_clean(), "B071/B073 are not deny-level: {report}");
    }

    #[test]
    fn clean_circuit_reports_nothing_denied() {
        let mut b = NetlistBuilder::new("clean");
        let a = b.input_word("a", 3);
        let c = b.input_word("b", 3);
        let (s, co) = b.ripple_carry_adder(&a, &c, None);
        b.output_word("s", &s);
        b.output("co", co);
        let nl = b.finish().unwrap();
        let cfg = LintConfig::new();
        let report = lint_netlist_opt(&nl, "clean", &cfg);
        assert!(!report.has_code("B070"), "{report}");
        assert!(!report.has_code("B072"), "{report}");
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn buffer_chains_stay_mapped() {
        // Copy-forward maps buffer faults onto surviving readers — no
        // B073 for a plain chain.
        let mut b = NetlistBuilder::new("chain");
        let a = b.input("a");
        let mut cur = a;
        for _ in 0..3 {
            cur = b.gate(GateKind::Buf, &[cur]);
        }
        let c = b.input("b");
        let y = b.and2(cur, c);
        b.output("y", y);
        let nl = b.finish().unwrap();
        let cfg = LintConfig::new();
        let report = lint_netlist_opt(&nl, "chain", &cfg);
        assert!(!report.has_code("B073"), "{report}");
    }
}
