//! Command-line front end for the `bibs-lint` static analyses.
//!
//! ```text
//! bibs-lint                          # lint the four paper datapaths
//! bibs-lint c5a2m circuits/mac.ckt   # builtins and circuit files mix freely
//! bibs-lint circuits/c5a2m.bench     # .bench netlists too (gate-level
//!                                    # passes; full RTL via # rtl: sidecar)
//! bibs-lint --batch corpus/          # lint every .ckt/.bench/.v under a
//!                                    # directory (recursive) in parallel
//! bibs-lint --batch 'corpus/*.bench' # or by a final-component glob
//! bibs-lint --deny warnings ...      # CI gate: warnings fail the run
//! bibs-lint --semantic ...           # add the B04x semantic passes
//! bibs-lint --format json ...        # machine-readable findings (v2)
//! bibs-lint --format sarif ...       # SARIF 2.1.0 log on stdout
//! bibs-lint --baseline FILE ...      # demote baselined findings to allow
//! bibs-lint --write-baseline FILE .. # record current findings as baseline
//! bibs-lint --check-sarif FILE       # validate a SARIF log and exit
//! bibs-lint --allow B012 ...         # per-code severity overrides
//! bibs-lint --list-codes             # print the code registry
//! ```
//!
//! Diagnostics (text, JSON, SARIF) go to **stdout**; errors (unreadable
//! files, bad flags, malformed baselines) go to **stderr**.
//!
//! Exit-code matrix:
//!
//! | code | meaning                                                    |
//! |------|------------------------------------------------------------|
//! | 0    | every target linted, no deny-level finding                 |
//! | 1    | at least one deny-level finding (after overrides, `--deny  |
//! |      | warnings` promotion, suppressions and baseline application) |
//! | 2    | usage error, unreadable target/baseline, or empty batch    |
//!
//! Batch output is byte-identical for every `--jobs`/`BIBS_JOBS` value:
//! targets are sorted, results are indexed by target, and every report is
//! normalized before rendering.

use bibs_lint::batch::{collect_targets, lint_paths, lint_text, record_batch, BatchOutcome};
use bibs_lint::fingerprint::fingerprint;
use bibs_lint::{
    apply_baseline, check_sarif, lint_full, parse_baseline, to_sarif, write_baseline, LintConfig,
    Report, Severity, CODES,
};
use std::path::PathBuf;
use std::process::ExitCode;

/// Builtin circuit names resolvable without a file.
const BUILTINS: &[&str] = &["c5a2m", "c3a2m", "c4a4m", "fig9"];

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Text,
    Json,
    Sarif,
}

fn usage() {
    eprintln!(
        "usage: bibs-lint [options] [target...]\n\
         \n\
         targets: builtin circuit names ({}), .ckt file paths, .bench\n\
         netlist paths, or .v Verilog paths; default: all builtins\n\
         \n\
         options:\n\
           --batch DIR|GLOB     lint every .ckt/.bench/.v under a directory\n\
                                (recursive) or matching a final-component\n\
                                glob, in parallel; may be repeated\n\
           --jobs N             worker threads for --batch (default: the\n\
                                BIBS_JOBS environment variable, then the\n\
                                available parallelism)\n\
           --format text|json|sarif\n\
                                output style (default text); json carries\n\
                                the \"bibs-lint/2\" schema, sarif is a\n\
                                SARIF 2.1.0 log\n\
           --baseline FILE      demote findings fingerprinted in FILE to\n\
                                allow severity\n\
           --write-baseline FILE\n\
                                record the run's warn+deny findings to FILE\n\
                                and continue\n\
           --check-sarif FILE   validate FILE against the vendored minimal\n\
                                SARIF schema and exit (0 ok, 1 invalid)\n\
           --telemetry FILE     write per-file lint spans as telemetry JSON\n\
           --semantic           also run the semantic passes (B04x)\n\
           --optimizer          also run the optimizer passes (B07x)\n\
           --deny warnings      promote warn-level findings to deny\n\
           --deny CODE          force CODE to deny severity\n\
           --warn CODE          force CODE to warn severity\n\
           --allow CODE         force CODE to allow severity\n\
           --list-codes         print the diagnostic code registry and exit\n\
         \n\
         exit codes: 0 clean, 1 deny-level findings, 2 usage/read errors",
        BUILTINS.join(", ")
    );
}

fn builtin(name: &str) -> Option<bibs_rtl::Circuit> {
    match name {
        "c5a2m" => Some(bibs_datapath::filters::c5a2m()),
        "c3a2m" => Some(bibs_datapath::filters::c3a2m()),
        "c4a4m" => Some(bibs_datapath::filters::c4a4m()),
        "fig9" => Some(bibs_datapath::fig9::figure9()),
        _ => None,
    }
}

/// Renders one target's entry of the `bibs-lint/2` JSON document.
fn target_json(target: &str, report: &Report) -> String {
    let mut out = String::new();
    let s = |v: &str| {
        let mut buf = String::new();
        bibs_obs::json::write_string(&mut buf, v);
        buf
    };
    out.push_str(&format!(
        "{{\"target\":{},\"clean\":{},\"diagnostics\":[",
        s(target),
        report.is_clean()
    ));
    for (i, d) in report.diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"code\":{},\"severity\":{},\"origin\":{},\"message\":{},\"witness\":{},\
             \"fingerprint\":\"{:016x}\"}}",
            s(d.code),
            s(&d.severity.to_string()),
            s(&d.origin),
            s(&d.message),
            s(&d.witness),
            fingerprint(d)
        ));
    }
    out.push_str("]}");
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = LintConfig::new();
    let mut format = Format::Text;
    let mut targets: Vec<String> = Vec::new();
    let mut batch_patterns: Vec<String> = Vec::new();
    let mut jobs: Option<usize> = None;
    let mut baseline_path: Option<String> = None;
    let mut write_baseline_path: Option<String> = None;
    let mut telemetry_path: Option<String> = None;

    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        match arg {
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            "--list-codes" => {
                for c in CODES {
                    println!("{}  {:5}  {}", c.code, c.default_severity, c.summary);
                }
                return ExitCode::SUCCESS;
            }
            "--semantic" => config.semantic = true,
            "--optimizer" => config.optimizer = true,
            "--check-sarif" => {
                i += 1;
                let Some(path) = args.get(i) else {
                    eprintln!("bibs-lint: --check-sarif needs a file argument");
                    return ExitCode::from(2);
                };
                return match std::fs::read_to_string(path) {
                    Ok(text) => match check_sarif(&text) {
                        Ok(()) => {
                            println!("{path}: valid SARIF 2.1.0 (minimal schema)");
                            ExitCode::SUCCESS
                        }
                        Err(e) => {
                            eprintln!("bibs-lint: {path}: {e}");
                            ExitCode::FAILURE
                        }
                    },
                    Err(e) => {
                        eprintln!("bibs-lint: cannot read {path}: {e}");
                        ExitCode::from(2)
                    }
                };
            }
            "--batch" | "--jobs" | "--baseline" | "--write-baseline" | "--telemetry"
            | "--format" => {
                i += 1;
                let Some(value) = args.get(i).cloned() else {
                    eprintln!("bibs-lint: {arg} needs an argument");
                    return ExitCode::from(2);
                };
                match arg {
                    "--batch" => batch_patterns.push(value),
                    "--jobs" => match value.parse::<usize>() {
                        Ok(n) if n >= 1 => jobs = Some(n),
                        _ => {
                            eprintln!("bibs-lint: bad --jobs {value:?}");
                            return ExitCode::from(2);
                        }
                    },
                    "--baseline" => baseline_path = Some(value),
                    "--write-baseline" => write_baseline_path = Some(value),
                    "--telemetry" => telemetry_path = Some(value),
                    _ => match value.as_str() {
                        "text" => format = Format::Text,
                        "json" => format = Format::Json,
                        "sarif" => format = Format::Sarif,
                        other => {
                            eprintln!("bibs-lint: bad --format {other:?}");
                            return ExitCode::from(2);
                        }
                    },
                }
            }
            "--deny" | "--warn" | "--allow" => {
                i += 1;
                let Some(code) = args.get(i) else {
                    eprintln!("bibs-lint: {arg} needs an argument");
                    return ExitCode::from(2);
                };
                if arg == "--deny" && code == "warnings" {
                    config.deny_warnings = true;
                } else if bibs_lint::code_info(code).is_some() {
                    let sev = match arg {
                        "--deny" => Severity::Deny,
                        "--warn" => Severity::Warn,
                        _ => Severity::Allow,
                    };
                    config.set(code, sev);
                } else {
                    eprintln!("bibs-lint: unknown code {code:?} (see --list-codes)");
                    return ExitCode::from(2);
                }
            }
            _ if arg.starts_with('-') => {
                eprintln!("bibs-lint: unknown option {arg:?}");
                usage();
                return ExitCode::from(2);
            }
            _ => targets.push(arg.to_string()),
        }
        i += 1;
    }
    if targets.is_empty() && batch_patterns.is_empty() {
        targets = BUILTINS.iter().map(|s| s.to_string()).collect();
    }

    let baseline = match &baseline_path {
        Some(path) => match std::fs::read_to_string(path).map_err(|e| e.to_string()) {
            Ok(text) => match parse_baseline(&text) {
                Ok(fps) => Some(fps),
                Err(e) => {
                    eprintln!("bibs-lint: {path}: {e}");
                    return ExitCode::from(2);
                }
            },
            Err(e) => {
                eprintln!("bibs-lint: cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        },
        None => None,
    };

    // Collect every outcome: explicit targets in argument order, then each
    // batch pattern's sorted expansion.
    let mut outcomes: Vec<BatchOutcome> = Vec::new();
    for target in &targets {
        let result = if let Some(circuit) = builtin(target) {
            let mut report = lint_full(&circuit, &config);
            report.set_origin(target);
            report.normalize();
            Ok(report)
        } else {
            match std::fs::read_to_string(target) {
                Ok(text) => Ok(lint_text(target, &text, &config)),
                Err(e) => Err(format!("cannot read {target}: {e}")),
            }
        };
        outcomes.push(BatchOutcome {
            path: PathBuf::from(target),
            result,
        });
    }
    let jobs = jobs.unwrap_or_else(bibs_faultsim::par::default_jobs);
    for pattern in &batch_patterns {
        let paths = match collect_targets(pattern) {
            Ok(paths) => paths,
            Err(e) => {
                eprintln!("bibs-lint: {e}");
                return ExitCode::from(2);
            }
        };
        if paths.is_empty() {
            eprintln!("bibs-lint: --batch {pattern}: no .ckt/.bench/.v files found");
            return ExitCode::from(2);
        }
        outcomes.extend(lint_paths(&paths, &config, jobs));
    }

    // Baseline writing sees the findings *before* an existing baseline
    // demotes them, so regeneration never loses entries.
    if let Some(path) = &write_baseline_path {
        let mut merged = Report::new();
        for o in &outcomes {
            if let Ok(r) = &o.result {
                merged.merge(r.clone());
            }
        }
        merged.normalize();
        if let Err(e) = std::fs::write(path, write_baseline(&merged)) {
            eprintln!("bibs-lint: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
    }
    if let Some(fps) = &baseline {
        for o in &mut outcomes {
            if let Ok(r) = &mut o.result {
                apply_baseline(r, fps);
            }
        }
    }

    if let Some(path) = &telemetry_path {
        let mut rec = bibs_obs::Recorder::new("bibs-lint");
        record_batch(&mut rec, &outcomes);
        if let Err(e) = std::fs::write(path, rec.to_json(false)) {
            eprintln!("bibs-lint: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
    }

    let mut any_deny = false;
    let mut any_error = false;
    for o in &outcomes {
        match &o.result {
            Ok(report) => any_deny |= !report.is_clean(),
            Err(e) => {
                eprintln!("bibs-lint: {e}");
                any_error = true;
            }
        }
    }

    match format {
        Format::Text => {
            for o in &outcomes {
                if let Ok(report) = &o.result {
                    println!("== {} ==", o.path.display());
                    println!("{report}");
                    println!();
                }
            }
            if outcomes.len() > 1 {
                let linted = outcomes.iter().filter(|o| o.result.is_ok()).count();
                let findings: usize = outcomes
                    .iter()
                    .filter_map(|o| o.result.as_ref().ok())
                    .map(|r| r.diagnostics.len())
                    .sum();
                let denies: usize = outcomes
                    .iter()
                    .filter_map(|o| o.result.as_ref().ok())
                    .map(Report::deny_count)
                    .sum();
                println!("batch: {linted} file(s), {findings} finding(s), {denies} deny");
            }
        }
        Format::Json => {
            let parts: Vec<String> = outcomes
                .iter()
                .filter_map(|o| {
                    o.result
                        .as_ref()
                        .ok()
                        .map(|r| target_json(&o.path.display().to_string(), r))
                })
                .collect();
            println!(
                "{{\"schema\":\"bibs-lint/2\",\"targets\":[{}]}}",
                parts.join(",")
            );
        }
        Format::Sarif => {
            let mut merged = Report::new();
            for o in &outcomes {
                if let Ok(r) = &o.result {
                    merged.merge(r.clone());
                }
            }
            merged.normalize();
            print!("{}", to_sarif(&merged));
        }
    }

    if any_error {
        ExitCode::from(2)
    } else if any_deny {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
