//! Command-line front end for the `bibs-lint` static analyses.
//!
//! ```text
//! bibs-lint                          # lint the four paper datapaths
//! bibs-lint c5a2m circuits/mac.ckt   # builtins and circuit files mix freely
//! bibs-lint circuits/c5a2m.bench     # .bench netlists too (gate-level
//!                                    # passes; full RTL via # rtl: sidecar)
//! bibs-lint --deny warnings ...      # CI gate: warnings fail the run
//! bibs-lint --semantic ...           # add the B04x semantic passes
//! bibs-lint --format json ...        # machine-readable findings
//! bibs-lint --allow B012 ...         # per-code severity overrides
//! bibs-lint --list-codes             # print the code registry
//! ```
//!
//! Exit status is 1 when any target produces a deny-level finding (after
//! overrides and `--deny warnings` promotion), 2 on usage errors.

use bibs_lint::{lint_bench_text, lint_ckt_text, lint_full, LintConfig, Severity, CODES};
use std::process::ExitCode;

/// Builtin circuit names resolvable without a file.
const BUILTINS: &[&str] = &["c5a2m", "c3a2m", "c4a4m", "fig9"];

fn usage() {
    eprintln!(
        "usage: bibs-lint [options] [target...]\n\
         \n\
         targets: builtin circuit names ({}), .ckt file paths, or\n\
         .bench netlist paths; default: all builtins\n\
         \n\
         options:\n\
           --format text|json   output style (default text)\n\
           --semantic           also run the semantic passes (B04x):\n\
                                ternary constants, independent pins and\n\
                                statically-untestable-fault proofs\n\
           --deny warnings      promote warn-level findings to deny\n\
           --deny CODE          force CODE to deny severity\n\
           --warn CODE          force CODE to warn severity\n\
           --allow CODE         force CODE to allow severity\n\
           --list-codes         print the diagnostic code registry and exit",
        BUILTINS.join(", ")
    );
}

fn builtin(name: &str) -> Option<bibs_rtl::Circuit> {
    match name {
        "c5a2m" => Some(bibs_datapath::filters::c5a2m()),
        "c3a2m" => Some(bibs_datapath::filters::c3a2m()),
        "c4a4m" => Some(bibs_datapath::filters::c4a4m()),
        "fig9" => Some(bibs_datapath::fig9::figure9()),
        _ => None,
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = LintConfig::new();
    let mut format_json = false;
    let mut targets: Vec<String> = Vec::new();

    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        match arg {
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            "--list-codes" => {
                for c in CODES {
                    println!("{}  {:5}  {}", c.code, c.default_severity, c.summary);
                }
                return ExitCode::SUCCESS;
            }
            "--semantic" => config.semantic = true,
            "--format" => {
                i += 1;
                match args.get(i).map(String::as_str) {
                    Some("json") => format_json = true,
                    Some("text") => format_json = false,
                    other => {
                        eprintln!("bibs-lint: bad --format {other:?}");
                        return ExitCode::from(2);
                    }
                }
            }
            "--deny" | "--warn" | "--allow" => {
                i += 1;
                let Some(code) = args.get(i) else {
                    eprintln!("bibs-lint: {arg} needs an argument");
                    return ExitCode::from(2);
                };
                if arg == "--deny" && code == "warnings" {
                    config.deny_warnings = true;
                } else if bibs_lint::code_info(code).is_some() {
                    let sev = match arg {
                        "--deny" => Severity::Deny,
                        "--warn" => Severity::Warn,
                        _ => Severity::Allow,
                    };
                    config.set(code, sev);
                } else {
                    eprintln!("bibs-lint: unknown code {code:?} (see --list-codes)");
                    return ExitCode::from(2);
                }
            }
            _ if arg.starts_with('-') => {
                eprintln!("bibs-lint: unknown option {arg:?}");
                usage();
                return ExitCode::from(2);
            }
            _ => targets.push(arg.to_string()),
        }
        i += 1;
    }
    if targets.is_empty() {
        targets = BUILTINS.iter().map(|s| s.to_string()).collect();
    }

    let mut any_deny = false;
    let mut json_parts: Vec<String> = Vec::new();
    for target in &targets {
        let report = if let Some(circuit) = builtin(target) {
            lint_full(&circuit, &config)
        } else {
            match std::fs::read_to_string(target) {
                Ok(text) => {
                    let is_bench = std::path::Path::new(target)
                        .extension()
                        .and_then(|e| e.to_str())
                        .is_some_and(|e| e.eq_ignore_ascii_case("bench"));
                    if is_bench {
                        lint_bench_text(target, &text, &config)
                    } else {
                        lint_ckt_text(target, &text, &config)
                    }
                }
                Err(e) => {
                    eprintln!("bibs-lint: cannot read {target}: {e}");
                    return ExitCode::from(2);
                }
            }
        };
        any_deny |= !report.is_clean();
        if format_json {
            json_parts.push(format!(
                "{{\"target\":\"{}\",\"clean\":{},\"diagnostics\":{}}}",
                target.replace('\\', "\\\\").replace('"', "\\\""),
                report.is_clean(),
                report.to_json()
            ));
        } else {
            println!("== {target} ==");
            println!("{report}");
            println!();
        }
    }
    if format_json {
        println!("[{}]", json_parts.join(","));
    }

    if any_deny {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
