//! Design-level lint passes: B020–B026, B030, B031.
//!
//! These run on a circuit **plus** a BILBO selection ([`BilboDesign`]) and
//! check everything the paper demands of a finished BIBS design:
//!
//! * Definition 1 on every kernel — acyclic (B020), balanced (B021), no
//!   TPG/SA port conflict (B022) — with *named* witnesses instead of the
//!   bare ids [`bibs_core::design::find_violation`] returns;
//! * the TPG built for each kernel — primitive polynomial of the right
//!   degree (B023), legal SC_TPG/MC_TPG cell/offset placement (B024);
//! * a cross-layer cone-support check: the **netlist** support of each
//!   output cone, computed by forward propagation over the elaborated
//!   gates, must be contained in the RTL **cone dependency matrix**
//!   (B025 when the netlist reaches a register the matrix says it cannot,
//!   B026 when the matrix conservatively over-approximates);
//! * a cross-layer sequential-depth check: the generalized structure, the
//!   kernel graph and the elaborated netlist must agree on `d` (B030).
//!
//! Kernels whose elaboration fails (opaque blocks with no gate model, say)
//! are reported as B031 and skipped — the RTL-level checks still run.

use crate::diag::{LintConfig, Report};
use crate::netlist_pass::lint_netlist;
use bibs_core::design::{kernels, BilboDesign, Kernel};
use bibs_core::fpet::dependency_matrix;
use bibs_core::structure::GeneralizedStructure;
use bibs_core::tpg::mc_tpg;
use bibs_core::verify::precheck;
use bibs_datapath::elab::{elaborate_kernel, ElabResult};
use bibs_netlist::Netlist;
use bibs_rtl::{Circuit, EdgeId};
use std::collections::HashSet;

/// Runs every design-level pass on `circuit` under `design`.
///
/// This is the full cross-layer analysis: per-kernel Definition 1 checks,
/// TPG construction prechecks, netlist elaboration plus the netlist-level
/// passes on each kernel netlist, cone-support and sequential-depth
/// cross-checks.
pub fn lint_design(circuit: &Circuit, design: &BilboDesign, config: &LintConfig) -> Report {
    let mut report = Report::new();
    for (ki, kernel) in kernels(circuit, design).iter().enumerate() {
        lint_kernel(circuit, design, kernel, ki, config, &mut report);
    }
    report
}

/// Names a kernel for messages: `kernel #0 (inputs R1, R2)`.
fn kernel_desc(circuit: &Circuit, kernel: &Kernel, index: usize) -> String {
    let inputs: Vec<String> = kernel
        .input_edges
        .iter()
        .map(|&e| circuit.edge_label(e))
        .collect();
    if inputs.is_empty() {
        format!("kernel #{index}")
    } else {
        format!("kernel #{index} (inputs {})", inputs.join(", "))
    }
}

fn lint_kernel(
    circuit: &Circuit,
    design: &BilboDesign,
    kernel: &Kernel,
    index: usize,
    config: &LintConfig,
    report: &mut Report,
) {
    let keep = |e: EdgeId| {
        !design.is_cut(e)
            && kernel.vertices.contains(&circuit.edge(e).from)
            && kernel.vertices.contains(&circuit.edge(e).to)
    };
    let kd = kernel_desc(circuit, kernel, index);

    // B020 — Definition 1, requirement 1: the kernel subgraph is acyclic.
    let mut structural_ok = true;
    if let Some(cycle) = circuit.find_cycle_filtered(keep) {
        let regs = cycle
            .iter()
            .filter(|&&e| circuit.edge(e).is_register())
            .count();
        report.emit(
            config,
            "B020",
            format!(
                "{kd} contains a directed cycle with {regs} internal register \
                 edge(s); Definition 1 requires acyclic kernels (cut the cycle \
                 with a second BILBO or a CBILBO)"
            ),
            circuit.describe_cycle(&cycle),
        );
        structural_ok = false;
    }

    // B021 — requirement 2: the kernel is balanced. Witness: the concrete
    // shorter/longer register-to-register path pair.
    if structural_ok {
        let balance = circuit.balance_report_filtered(keep);
        for im in balance
            .imbalances
            .iter()
            .filter(|im| kernel.vertices.contains(&im.from) && kernel.vertices.contains(&im.to))
        {
            let witness = match circuit.witness_paths_filtered(im.from, im.to, keep) {
                Some((short, long)) => format!(
                    "shorter: {}; longer: {}",
                    circuit.describe_path(&short),
                    circuit.describe_path(&long)
                ),
                None => im.describe(circuit),
            };
            report.emit(
                config,
                "B021",
                format!(
                    "{kd} is unbalanced: paths of sequential length {} and {} \
                     join {} to {} (an URFS survives inside the kernel)",
                    im.min,
                    im.max,
                    circuit.vertex_name(im.from),
                    circuit.vertex_name(im.to)
                ),
                witness,
            );
            structural_ok = false;
        }
    }

    // B022 — requirement 3: no plain BILBO both feeds and is fed by the
    // same kernel (it would be TPG and SA simultaneously; CBILBOs exempt).
    for &e in &kernel.input_edges {
        if design.cbilbo.contains(&e) {
            continue;
        }
        let edge = circuit.edge(e);
        if kernel.vertices.contains(&edge.from) {
            report.emit(
                config,
                "B022",
                format!(
                    "BILBO register {} both feeds and is fed by {kd}: it would \
                     have to act as TPG and SA simultaneously (make it a \
                     CBILBO or cut the return path)",
                    circuit.edge_label(e)
                ),
                format!(
                    "{} : {} -> {}",
                    circuit.edge_label(e),
                    circuit.vertex_name(edge.from),
                    circuit.vertex_name(edge.to)
                ),
            );
            structural_ok = false;
        }
    }

    // The TPG and cross-layer passes need a well-formed generalized
    // structure, which only exists for balanced BISTable kernels.
    if !structural_ok || kernel.input_edges.is_empty() || kernel.output_edges.is_empty() {
        return;
    }
    let structure = match GeneralizedStructure::from_kernel(circuit, design, kernel) {
        Ok(s) => s,
        Err(e) => {
            // Balance passed but extraction failed — an URFS the pairwise
            // balance scan did not attribute to this kernel. Report as B021.
            report.emit(
                config,
                "B021",
                format!("{kd} has no generalized structure: {e}"),
                e.to_string(),
            );
            return;
        }
    };

    // B023 / B024 — design the kernel's MC_TPG and precheck it.
    let tpg = mc_tpg(&structure);
    lint_tpg(&kd, &tpg, config, report);

    // Elaborate the kernel to gates for the cross-layer checks.
    let cut: HashSet<EdgeId> = design.bilbo.union(&design.cbilbo).copied().collect();
    let kernel_vertices: HashSet<_> = kernel.vertices.iter().copied().collect();
    let elab = match elaborate_kernel(circuit, &kernel_vertices, &cut) {
        Ok(r) => r,
        Err(e) => {
            report.emit(
                config,
                "B031",
                format!(
                    "{kd} could not be elaborated to gates ({e}); cross-layer \
                     checks skipped"
                ),
                e.to_string(),
            );
            return;
        }
    };

    // The kernel netlist must itself be clean.
    report.merge(lint_netlist(&elab.netlist, config));

    cone_support_check(circuit, kernel, &structure, &elab, &kd, config, report);
    depth_check(
        circuit,
        design,
        kernel,
        &structure,
        &elab.netlist,
        &kd,
        config,
        report,
    );
}

/// B023/B024 — runs the TPG precheck on `tpg` (designed for the kernel
/// described by `what`) and reports failures: polynomial problems (missing,
/// wrong degree, non-primitive — Theorem 4's premise) as `B023`, placement
/// problems (non-consecutive cell labels, windows before the LFSR,
/// duplicate offsets) as `B024`.
pub fn lint_tpg(
    what: &str,
    tpg: &bibs_core::tpg::TpgDesign,
    config: &LintConfig,
    report: &mut Report,
) {
    if let Err(e) = precheck(tpg) {
        let code = if e.is_polynomial_problem() {
            "B023"
        } else {
            "B024"
        };
        report.emit(
            config,
            code,
            format!("TPG designed for {what} fails its precheck: {e}"),
            e.to_string(),
        );
    }
}

/// Computes, for every net of `netlist`, the set of kernel input registers
/// (as a bitmask over `register_count` positions) whose value can reach it,
/// given `input_of`: the register position owning each primary-input net.
///
/// Propagation runs to a fixpoint so flip-flop feedback (should any exist)
/// is handled.
fn net_supports(netlist: &Netlist, input_of: &[Option<usize>]) -> Vec<u64> {
    let mut support = vec![0u64; netlist.net_count()];
    for (ni, &reg) in input_of.iter().enumerate() {
        if let Some(r) = reg {
            support[ni] |= 1u64 << r;
        }
    }
    loop {
        let mut changed = false;
        for gate in netlist.gates() {
            let mut mask = support[gate.output.index()];
            for &i in &gate.inputs {
                mask |= support[i.index()];
            }
            if mask != support[gate.output.index()] {
                support[gate.output.index()] = mask;
                changed = true;
            }
        }
        for ff in netlist.dffs() {
            let mask = support[ff.q.index()] | support[ff.d.index()];
            if mask != support[ff.q.index()] {
                support[ff.q.index()] = mask;
                changed = true;
            }
        }
        if !changed {
            return support;
        }
    }
}

/// B025/B026 — netlist cone support versus the RTL cone dependency matrix.
#[allow(clippy::too_many_arguments)]
pub(crate) fn cone_support_check(
    circuit: &Circuit,
    kernel: &Kernel,
    structure: &GeneralizedStructure,
    elab: &ElabResult,
    kd: &str,
    config: &LintConfig,
    report: &mut Report,
) {
    let nregs = kernel.input_edges.len();
    if nregs > 64 {
        // Bitmask representation overflows; no paper datapath comes close.
        return;
    }
    // Map each primary-input net to its kernel register position. The elab
    // result lists input words in creation order, matching the flat
    // `inputs()` net list; word k belongs to `elab.input_edges[k].0`, which
    // we locate in `kernel.input_edges` BY EdgeId (the orders differ).
    let netlist = &elab.netlist;
    let mut input_of: Vec<Option<usize>> = vec![None; netlist.net_count()];
    let mut bit = 0usize;
    for &(edge, width) in &elab.input_edges {
        let reg = kernel.input_edges.iter().position(|&ke| ke == edge);
        for _ in 0..width {
            let Some(&net) = netlist.inputs().get(bit) else {
                return; // malformed word records; B005 already fired
            };
            input_of[net.index()] = reg;
            bit += 1;
        }
    }
    let support = net_supports(netlist, &input_of);

    let matrix = dependency_matrix(structure);
    // Output words are in elab order too; find each cone's row by EdgeId.
    let mut bit = 0usize;
    for &(edge, width) in &elab.output_edges {
        let mut observed = 0u64;
        for _ in 0..width {
            let Some(&net) = netlist.outputs().get(bit) else {
                return;
            };
            observed |= support[net.index()];
            bit += 1;
        }
        let Some(cone) = kernel.output_edges.iter().position(|&ke| ke == edge) else {
            continue;
        };
        let mut claimed = 0u64;
        for (r, &dep) in matrix[cone].iter().enumerate() {
            if dep {
                claimed |= 1u64 << r;
            }
        }
        let reg_names = |mask: u64| -> String {
            let names: Vec<String> = (0..nregs)
                .filter(|&r| mask & (1 << r) != 0)
                .map(|r| structure.registers[r].name.clone())
                .collect();
            names.join(", ")
        };
        let overclaim = observed & !claimed;
        if overclaim != 0 {
            report.emit(
                config,
                "B025",
                format!(
                    "netlist cone {} of {kd} structurally depends on register(s) \
                     {} that the cone dependency matrix omits; a TPG sized from \
                     the matrix would under-exercise the cone",
                    circuit.edge_label(edge),
                    reg_names(overclaim)
                ),
                format!(
                    "{}: netlist support {{{}}} vs matrix {{{}}}",
                    circuit.edge_label(edge),
                    reg_names(observed),
                    reg_names(claimed)
                ),
            );
        }
        let slack = claimed & !observed;
        if slack != 0 {
            report.emit(
                config,
                "B026",
                format!(
                    "cone dependency matrix over-approximates cone {} of {kd}: \
                     register(s) {} never reach it through the gates (TPG is \
                     conservative, not wrong)",
                    circuit.edge_label(edge),
                    reg_names(slack)
                ),
                format!(
                    "{}: matrix {{{}}} vs netlist support {{{}}}",
                    circuit.edge_label(edge),
                    reg_names(claimed),
                    reg_names(observed)
                ),
            );
        }
    }
}

/// B030 — the three layers must agree on the kernel's sequential depth `d`
/// (the `+ d` of the paper's `2^M − 1 + d` test-time formula).
#[allow(clippy::too_many_arguments)]
pub(crate) fn depth_check(
    circuit: &Circuit,
    design: &BilboDesign,
    kernel: &Kernel,
    structure: &GeneralizedStructure,
    netlist: &Netlist,
    kd: &str,
    config: &LintConfig,
    report: &mut Report,
) {
    let d_structure = structure.sequential_depth();
    let d_kernel = kernel.sequential_depth(circuit, design);
    let d_netlist = netlist.sequential_depth() as u32;
    if d_structure != d_kernel || d_kernel != d_netlist {
        report.emit(
            config,
            "B030",
            format!(
                "sequential depth of {kd} disagrees across layers: generalized \
                 structure says {d_structure}, kernel graph says {d_kernel}, \
                 elaborated netlist says {d_netlist}; the test-time formula \
                 2^M - 1 + d is ill-defined"
            ),
            format!("structure={d_structure} kernel={d_kernel} netlist={d_netlist}"),
        );
    }
}

/// Convenience: `true` if the netlist has a driver record anywhere that is
/// floating — used by tests to confirm elaborated kernels are fully driven.
#[cfg(test)]
pub(crate) fn has_floating(netlist: &Netlist) -> bool {
    netlist
        .net_ids()
        .any(|n| matches!(netlist.driver(n), bibs_netlist::NetDriver::Floating))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::LintConfig;
    use bibs_core::bibs::{select, BibsOptions};
    use bibs_rtl::CircuitBuilder;

    fn cfg() -> LintConfig {
        LintConfig::new()
    }

    /// PI -Rin-> F ={wire, R}=> C -Rout-> PO: the fig1-style URFS.
    fn unbalanced() -> Circuit {
        let mut b = CircuitBuilder::new("urfs");
        let pi = b.input("PI");
        let f = b.fanout("F");
        let c = b.logic("C");
        let po = b.output("PO");
        b.register("Rin", 4, pi, f);
        b.wire(f, c);
        b.register("R", 4, f, c);
        b.register("Rout", 4, c, po);
        b.finish().unwrap()
    }

    #[test]
    fn clean_design_stays_clean() {
        let c = unbalanced();
        let result = select(&c, &BibsOptions::default()).unwrap();
        let report = lint_design(&result.circuit, &result.design, &cfg());
        assert_eq!(report.deny_count(), 0, "{report}");
    }

    #[test]
    fn kernel_imbalance_is_b021_with_path_pair() {
        let c = unbalanced();
        // Only the IO registers converted: the URFS survives in the kernel.
        let design = BilboDesign::from_bilbos([
            c.register_by_name("Rin").unwrap(),
            c.register_by_name("Rout").unwrap(),
        ]);
        let report = lint_design(&c, &design, &cfg());
        assert!(report.has_code("B021"), "{report}");
        let d = report.with_code("B021").next().unwrap();
        assert!(d.witness.contains("shorter:"), "witness: {}", d.witness);
        assert!(d.witness.contains("R[4]"), "witness: {}", d.witness);
    }

    #[test]
    fn kernel_cycle_is_b020_and_port_conflict_b022() {
        let mut b = CircuitBuilder::new("cyc");
        let pi = b.input("PI");
        let f = b.logic("F");
        let h = b.logic("H");
        let po = b.output("PO");
        b.register("Rin", 4, pi, f);
        b.register("Rfh", 4, f, h);
        b.register("Rhf", 4, h, f);
        b.register("Rout", 4, h, po);
        let c = b.finish().unwrap();
        let io = BilboDesign::from_bilbos([
            c.register_by_name("Rin").unwrap(),
            c.register_by_name("Rout").unwrap(),
        ]);
        let report = lint_design(&c, &io, &cfg());
        assert!(report.has_code("B020"), "{report}");
        let d = report.with_code("B020").next().unwrap();
        assert!(d.witness.contains("Rfh"), "witness: {}", d.witness);

        // Cutting one cycle edge only: the TPG/SA conflict of Theorem 2.
        let mut one = io.clone();
        one.bilbo.insert(c.register_by_name("Rfh").unwrap());
        let report = lint_design(&c, &one, &cfg());
        assert!(report.has_code("B022"), "{report}");
        assert!(
            report
                .with_code("B022")
                .next()
                .unwrap()
                .message
                .contains("Rfh"),
            "{report}"
        );

        // CBILBO exempts the register from B022.
        let mut cb = io;
        cb.cbilbo.insert(c.register_by_name("Rfh").unwrap());
        let report = lint_design(&c, &cb, &cfg());
        assert!(!report.has_code("B022"), "{report}");
    }

    #[test]
    fn depths_agree_on_selected_paper_datapath() {
        let c = bibs_datapath::filters::c3a2m();
        let result = select(&c, &BibsOptions::default()).unwrap();
        let report = lint_design(&result.circuit, &result.design, &cfg());
        assert!(!report.has_code("B030"), "{report}");
        assert!(!report.has_code("B025"), "{report}");
    }

    #[test]
    fn non_primitive_polynomial_is_b023() {
        let s = GeneralizedStructure::single_cone("t", &[("R1", 4, 0)]);
        let tpg = mc_tpg(&s);
        assert_eq!(tpg.lfsr_degree(), 4);
        // x^4 + x^2 + 1 = (x^2 + x + 1)^2: reducible, hence not primitive.
        let bad = bibs_lfsr::poly::Polynomial::from_exponents(&[4, 2, 0]);
        let doctored = tpg.with_lfsr(4, bad);
        let mut report = Report::new();
        lint_tpg("kernel t", &doctored, &cfg(), &mut report);
        assert!(report.has_code("B023"), "{report}");
        assert!(
            report
                .with_code("B023")
                .next()
                .unwrap()
                .witness
                .contains("not primitive"),
            "{report}"
        );
        // The genuine design passes.
        let mut clean = Report::new();
        lint_tpg("kernel t", &tpg, &cfg(), &mut clean);
        assert!(clean.diagnostics.is_empty(), "{clean}");
    }

    /// Two input registers feeding one adder: both genuinely reach the
    /// output cone, so a doctored dependency matrix missing one register
    /// must trip B025, and a doctored sequential length must trip B030.
    fn adder_kernel() -> (Circuit, BilboDesign) {
        let mut b = CircuitBuilder::new("addk");
        let p1 = b.input("P1");
        let p2 = b.input("P2");
        let add = b.logic_fn("ADD", bibs_rtl::LogicFunction::Add);
        let po = b.output("PO");
        b.register("R1", 4, p1, add);
        b.register("R2", 4, p2, add);
        b.register("Rout", 4, add, po);
        let c = b.finish().unwrap();
        let design = BilboDesign::from_bilbos([
            c.register_by_name("R1").unwrap(),
            c.register_by_name("R2").unwrap(),
            c.register_by_name("Rout").unwrap(),
        ]);
        (c, design)
    }

    fn kernel_and_elab(c: &Circuit, design: &BilboDesign) -> (Kernel, ElabResult) {
        let ks = kernels(c, design);
        assert_eq!(ks.len(), 1);
        let cut: HashSet<EdgeId> = design.bilbo.union(&design.cbilbo).copied().collect();
        let kv: HashSet<_> = ks[0].vertices.iter().copied().collect();
        let elab = elaborate_kernel(c, &kv, &cut).unwrap();
        (ks.into_iter().next().unwrap(), elab)
    }

    #[test]
    fn doctored_dependency_matrix_is_b025() {
        let (c, design) = adder_kernel();
        let (kernel, elab) = kernel_and_elab(&c, &design);
        let mut s = GeneralizedStructure::from_kernel(&c, &design, &kernel).unwrap();
        // Honest structure: no finding.
        let mut report = Report::new();
        cone_support_check(&c, &kernel, &s, &elab, "kernel #0", &cfg(), &mut report);
        assert!(!report.has_code("B025"), "{report}");
        // Drop R2 from the cone's dependency list: the gates still use it.
        s.cones[0].deps.retain(|d| d.register != 1);
        let mut report = Report::new();
        cone_support_check(&c, &kernel, &s, &elab, "kernel #0", &cfg(), &mut report);
        assert!(report.has_code("B025"), "{report}");
        let d = report.with_code("B025").next().unwrap();
        assert!(d.message.contains("R2"), "{}", d.message);
    }

    #[test]
    fn doctored_seq_len_is_b030() {
        let (c, design) = adder_kernel();
        let (kernel, elab) = kernel_and_elab(&c, &design);
        let mut s = GeneralizedStructure::from_kernel(&c, &design, &kernel).unwrap();
        let mut report = Report::new();
        depth_check(
            &c,
            &design,
            &kernel,
            &s,
            &elab.netlist,
            "kernel #0",
            &cfg(),
            &mut report,
        );
        assert!(!report.has_code("B030"), "{report}");
        // Claim an extra pipeline stage that neither layer below has.
        s.cones[0].deps[0].seq_len += 1;
        let mut report = Report::new();
        depth_check(
            &c,
            &design,
            &kernel,
            &s,
            &elab.netlist,
            "kernel #0",
            &cfg(),
            &mut report,
        );
        assert!(report.has_code("B030"), "{report}");
        assert!(
            report
                .with_code("B030")
                .next()
                .unwrap()
                .witness
                .contains("structure=1"),
            "{report}"
        );
    }

    #[test]
    fn ignored_fanout_operand_is_b026() {
        // A fanout block fed by two TPG registers forwards only its first
        // input; RTL reachability claims the cone sees both. The matrix
        // over-approximates — conservative, so an allow-level B026.
        let mut b = CircuitBuilder::new("fan2");
        let p1 = b.input("P1");
        let p2 = b.input("P2");
        let f = b.fanout("F");
        let po = b.output("PO");
        b.register("R1", 4, p1, f);
        b.register("R2", 4, p2, f);
        b.register("Rout", 4, f, po);
        let c = b.finish().unwrap();
        let design = BilboDesign::from_bilbos([
            c.register_by_name("R1").unwrap(),
            c.register_by_name("R2").unwrap(),
            c.register_by_name("Rout").unwrap(),
        ]);
        let report = lint_design(&c, &design, &cfg());
        assert!(report.has_code("B026"), "{report}");
        assert!(report.is_clean(), "B026 must stay allow-level: {report}");
    }

    #[test]
    fn elaborated_kernels_are_fully_driven() {
        let c = bibs_datapath::filters::c5a2m();
        let result = select(&c, &BibsOptions::default()).unwrap();
        let cut: HashSet<EdgeId> = result
            .design
            .bilbo
            .union(&result.design.cbilbo)
            .copied()
            .collect();
        for kernel in kernels(&result.circuit, &result.design) {
            let kv: HashSet<_> = kernel.vertices.iter().copied().collect();
            let elab = elaborate_kernel(&result.circuit, &kv, &cut).unwrap();
            assert!(!has_floating(&elab.netlist));
        }
    }
}
