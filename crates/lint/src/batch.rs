//! The whole-corpus batch driver: target collection, parallel linting
//! and deterministic merging.
//!
//! `bibs-lint --batch <dir|glob>` lints every `.ckt`/`.bench`/`.v` file
//! it finds — directories recursively, globs by a single `*` in the
//! final path component. Files are linted in parallel by scoped worker
//! threads (count from `BIBS_JOBS` via
//! [`bibs_faultsim::par::default_jobs`]), each compiling its own program;
//! results land in per-file slots indexed by the sorted target order, so
//! the merged report is **byte-identical for every job count** — workers
//! only decide *when* a file is linted, never *where* its findings go.
//! [`Report::normalize`] does the rest (total order, duplicates
//! collapsed).
//!
//! Inline suppressions are honored per file (see [`crate::suppress`])
//! and every finding is stamped with its origin path before merging.

use crate::diag::{LintConfig, Report};
use crate::suppress::{apply_suppressions, scan_suppressions};
use bibs_obs::{CounterId, Recorder};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Circuit file extensions the batch driver picks up (lower-cased match).
pub const BATCH_EXTENSIONS: &[&str] = &["bench", "ckt", "v"];

/// One batch target's outcome: the lint report, or the read error that
/// kept the file from being linted (reported on stderr, exit 2 — a
/// vanished file must not pass as clean).
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// The file, as collected.
    pub path: PathBuf,
    /// The per-file report (already suppressed, origin-stamped and
    /// normalized), or the read-error text.
    pub result: Result<Report, String>,
}

fn has_batch_extension(path: &Path) -> bool {
    path.extension()
        .and_then(|e| e.to_str())
        .map(|e| BATCH_EXTENSIONS.contains(&e.to_ascii_lowercase().as_str()))
        .unwrap_or(false)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            walk(&path, out)?;
        } else if path.is_file() && has_batch_extension(&path) {
            out.push(path);
        }
    }
    Ok(())
}

/// Resolves a batch argument to a sorted target list:
///
/// * an existing **directory** — every circuit file under it, recursively;
/// * an existing **file** — that file, regardless of extension;
/// * a pattern with a single `*` in its **final component** — matching
///   circuit files in the parent directory (non-recursive).
///
/// The list is lexicographically sorted, which fixes the result indexing
/// the parallel driver relies on. An empty result is not an error here —
/// the binary treats it as a usage error.
///
/// # Errors
///
/// I/O errors reading directories, or a pattern that is neither an
/// existing path nor a final-component glob.
pub fn collect_targets(pattern: &str) -> io::Result<Vec<PathBuf>> {
    let path = Path::new(pattern);
    let mut out = Vec::new();
    if path.is_dir() {
        walk(path, &mut out)?;
    } else if path.is_file() {
        out.push(path.to_path_buf());
    } else {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        let (prefix, suffix) = name.split_once('*').ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::NotFound,
                format!("{pattern}: no such file or directory (and not a glob)"),
            )
        })?;
        if suffix.contains('*') {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("{pattern}: at most one '*' is supported"),
            ));
        }
        let dir = match path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p,
            _ => Path::new("."),
        };
        for entry in std::fs::read_dir(dir)? {
            let p = entry?.path();
            if !p.is_file() || !has_batch_extension(&p) {
                continue;
            }
            let Some(f) = p.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            if f.len() >= prefix.len() + suffix.len()
                && f.starts_with(prefix)
                && f.ends_with(suffix)
            {
                out.push(p);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Lints one file's text, dispatching on the extension of `origin`
/// (`.ckt` → RTL pipeline, `.v` → Verilog netlist, anything else →
/// `.bench`), then applies the file's inline suppressions, stamps the
/// origin and normalizes. This is the unit of work of [`lint_paths`] and
/// of the binary's single-target mode.
pub fn lint_text(origin: &str, text: &str, config: &LintConfig) -> Report {
    let ext = Path::new(origin)
        .extension()
        .and_then(|e| e.to_str())
        .map(|e| e.to_ascii_lowercase());
    let mut report = match ext.as_deref() {
        Some("ckt") => crate::lint_ckt_text(origin, text, config),
        Some("v") => crate::lint_verilog_text(origin, text, config),
        _ => crate::lint_bench_text(origin, text, config),
    };
    apply_suppressions(&mut report, &scan_suppressions(text), config);
    report.set_origin(origin);
    report.normalize();
    report
}

/// Lints every path in parallel on `jobs` scoped worker threads (clamped
/// to at least 1 and at most the target count). Outcomes are returned in
/// input order whatever the thread count.
pub fn lint_paths(paths: &[PathBuf], config: &LintConfig, jobs: usize) -> Vec<BatchOutcome> {
    let jobs = jobs.clamp(1, paths.len().max(1));
    let slots: Vec<Mutex<Option<Result<Report, String>>>> =
        paths.iter().map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= paths.len() {
                    break;
                }
                let result = match std::fs::read_to_string(&paths[i]) {
                    Ok(text) => Ok(lint_text(&paths[i].display().to_string(), &text, config)),
                    Err(e) => Err(format!("{}: {e}", paths[i].display())),
                };
                *slots[i].lock().unwrap() = Some(result);
            });
        }
    });
    paths
        .iter()
        .zip(slots)
        .map(|(p, slot)| BatchOutcome {
            path: p.clone(),
            result: slot
                .into_inner()
                .unwrap()
                .expect("every slot filled by the worker scope"),
        })
        .collect()
}

/// Records one telemetry span per file under the recorder's current span
/// (label = path, `lint_findings` = finding count). Runs after the join,
/// on the owning thread, so the span tree is deterministic for every job
/// count.
pub fn record_batch(rec: &mut Recorder, outcomes: &[BatchOutcome]) {
    for o in outcomes {
        let id = rec.enter(o.path.display().to_string());
        if let Ok(report) = &o.result {
            rec.add_to(id, CounterId::LintFindings, report.diagnostics.len() as u64);
        }
        rec.exit(id);
    }
}

/// Merges every successful outcome into one normalized report. Read
/// errors are *not* represented here — the binary reports them on stderr
/// and fails the run.
pub fn merged_report(outcomes: &[BatchOutcome]) -> Report {
    let mut all = Report::new();
    for o in outcomes {
        if let Ok(r) = &o.result {
            all.merge(r.clone());
        }
    }
    all.normalize();
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("bibs_lint_batch_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join("sub")).unwrap();
        dir
    }

    fn write_fixtures(dir: &Path) {
        std::fs::write(
            dir.join("good.bench"),
            "INPUT(a)\nINPUT(b)\ns = XOR(a, b)\nOUTPUT(s)\n",
        )
        .unwrap();
        std::fs::write(dir.join("bad.bench"), "o = FROB(a)\n").unwrap();
        std::fs::write(
            dir.join("sub/deep.bench"),
            "INPUT(x)\ny = NOT(x)\nOUTPUT(y)\n",
        )
        .unwrap();
        std::fs::write(dir.join("notes.txt"), "not a circuit").unwrap();
    }

    #[test]
    fn directory_collection_is_recursive_and_sorted() {
        let dir = scratch_dir("walk");
        write_fixtures(&dir);
        let targets = collect_targets(dir.to_str().unwrap()).unwrap();
        let names: Vec<String> = targets
            .iter()
            .map(|p| p.strip_prefix(&dir).unwrap().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, ["bad.bench", "good.bench", "sub/deep.bench"]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn glob_collection_matches_final_component() {
        let dir = scratch_dir("glob");
        write_fixtures(&dir);
        let pattern = dir.join("g*.bench");
        let targets = collect_targets(pattern.to_str().unwrap()).unwrap();
        assert_eq!(targets.len(), 1);
        assert!(targets[0].ends_with("good.bench"));
        // Not a path and not a glob -> error.
        assert!(collect_targets(dir.join("missing.bench").to_str().unwrap()).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn batch_results_are_job_count_invariant() {
        let dir = scratch_dir("jobs");
        write_fixtures(&dir);
        let cfg = LintConfig::new();
        let targets = collect_targets(dir.to_str().unwrap()).unwrap();
        let reference = merged_report(&lint_paths(&targets, &cfg, 1)).to_json();
        for jobs in [2, 4, 8] {
            let merged = merged_report(&lint_paths(&targets, &cfg, jobs)).to_json();
            assert_eq!(reference, merged, "jobs={jobs} must be byte-identical");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn read_errors_surface_per_file() {
        let cfg = LintConfig::new();
        let outcomes = lint_paths(&[PathBuf::from("/nonexistent/x.bench")], &cfg, 2);
        assert!(outcomes[0].result.is_err());
        assert!(merged_report(&outcomes).diagnostics.is_empty());
    }

    #[test]
    fn suppressions_apply_per_file() {
        let dir = scratch_dir("supp");
        let cfg = LintConfig::new();
        // A file with a stuck register, acknowledged inline.
        std::fs::write(
            dir.join("stuck.bench"),
            "# bibs-lint: allow(B052)\nINPUT(x)\nz = TIE0()\nq = DFF(z)\n\
             y = OR(q, x)\nOUTPUT(y)\n",
        )
        .unwrap();
        let targets = collect_targets(dir.join("stuck.bench").to_str().unwrap()).unwrap();
        let outcomes = lint_paths(&targets, &cfg, 1);
        let report = outcomes[0].result.as_ref().unwrap();
        for d in report.with_code("B052") {
            assert_eq!(d.severity, crate::Severity::Allow, "{report}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn batch_spans_are_recorded_per_file() {
        let dir = scratch_dir("spans");
        write_fixtures(&dir);
        let cfg = LintConfig::new();
        let targets = collect_targets(dir.to_str().unwrap()).unwrap();
        let outcomes = lint_paths(&targets, &cfg, 2);
        let mut rec = Recorder::new("lint-batch");
        record_batch(&mut rec, &outcomes);
        let json = rec.to_json(false);
        assert!(json.contains("lint_findings"), "{json}");
        assert!(json.contains("bad.bench"), "{json}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
