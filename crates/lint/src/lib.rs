//! `bibs-lint` — structural static analysis for BIBS designs.
//!
//! The paper's methodology rests on structural side conditions that are
//! easy to violate silently: kernels must be acyclic and **balanced**
//! (Definition 1), a plain BILBO must never be TPG and SA of the same
//! kernel (Theorem 2), the TPG's LFSR polynomial must be primitive of the
//! right degree (Theorem 4), and the cone dependency matrix driving FPET
//! (Section 4.3) must agree with what the gates actually compute. This
//! crate checks all of them *statically* — before any simulation — and
//! reports violations as coded, severity-tagged [`Diagnostic`]s carrying a
//! concrete named witness.
//!
//! Three entry points mirror the analysis layers:
//!
//! * [`lint_netlist`] — gate-level checks (`B00x`) on possibly-unvalidated
//!   netlists: undriven or multiply-driven nets, combinational cycles with
//!   an explicit gate-cycle witness, dead cones, arity and word-record
//!   problems;
//! * [`lint_circuit`] — RTL/structure checks (`B01x`) on bare circuit
//!   graphs: register cycles, URFS witnesses as concrete min/max path
//!   pairs, operand-width mismatches, dangling blocks;
//! * [`lint_design`] — design/TPG and cross-layer checks (`B02x`/`B03x`)
//!   on a circuit with a BILBO selection: per-kernel Definition 1 with
//!   named witnesses, TPG prechecks, netlist-vs-matrix cone support and
//!   three-way sequential-depth agreement.
//!
//! [`lint_full`] chains them end to end (running the BIBS selection
//! itself), and [`lint_ckt_text`] starts from `.ckt` source, turning parse
//! and selection failures into `B000` diagnostics instead of panics.
//! Sequential X-safety (`B05x`, [`lint_netlist_seq`] / [`lint_seq_depth`])
//! grades every flip-flop by ternary time-frame fixpoints: stuck (B052),
//! never-initialized (B051), unobservable (B053), power-up X reaching an
//! observed output with a replayable witness (B050), and RTL-vs-gate
//! sequential-depth disagreement (B054).
//!
//! The `bibs-lint` binary wraps these for the command line: `--batch
//! <dir|glob>` lints whole corpora in parallel with job-count-invariant
//! output ([`lint_paths`]), `--format json|sarif` for machine consumers
//! ([`to_sarif`] validates against a vendored minimal schema), inline
//! `# bibs-lint: allow(B0xx)` suppressions ([`apply_suppressions`]) and
//! content-fingerprinted baselines ([`write_baseline`] /
//! [`apply_baseline`]) for CI gates.

#![warn(missing_docs)]

pub mod batch;
pub mod design_pass;
pub mod diag;
pub mod fingerprint;
pub mod netlist_pass;
pub mod opt_pass;
pub mod rtl_pass;
pub mod sarif;
pub mod semantic_pass;
pub mod seq_pass;
pub mod source_pass;
pub mod suppress;

pub use batch::{collect_targets, lint_paths, lint_text, merged_report, BatchOutcome};
pub use design_pass::lint_design;
pub use diag::{code_info, CodeInfo, Diagnostic, LintConfig, Report, Severity, CODES};
pub use fingerprint::{apply_baseline, fingerprint, parse_baseline, write_baseline};
pub use netlist_pass::lint_netlist;
pub use opt_pass::lint_netlist_opt;
pub use rtl_pass::lint_circuit;
pub use sarif::{check_sarif, to_sarif};
pub use semantic_pass::{lint_netlist_semantic, lint_semantic};
pub use seq_pass::{lint_netlist_seq, lint_seq_depth};
pub use source_pass::lint_source_width;
pub use suppress::{apply_suppressions, scan_suppressions};

use bibs_core::bibs::{select, BibsOptions};
use bibs_rtl::Circuit;

/// Lints `circuit` end to end: the bare-circuit passes, then a BIBS
/// register selection with default options, then every design-level pass
/// on the selected design.
///
/// A selection failure is reported as `B000` (the circuit cannot be made
/// BIBS-testable as given, e.g. unregistered primary I/O) and the
/// design-level passes are skipped.
pub fn lint_full(circuit: &Circuit, config: &LintConfig) -> Report {
    let mut report = lint_circuit(circuit, config);
    match select(circuit, &BibsOptions::default()) {
        Ok(result) => {
            report.merge(lint_design(&result.circuit, &result.design, config));
            if config.semantic {
                report.merge(lint_semantic(&result.circuit, &result.design, config));
            }
        }
        Err(e) => report.emit(
            config,
            "B000",
            format!("BIBS register selection failed: {e}"),
            e.to_string(),
        ),
    }
    // Sequential X-safety (B05x) on the elaborated whole. Elaboration
    // failures are not re-reported — the kernel-level passes already
    // surface them as B031.
    if let Ok(elab) = bibs_datapath::elab::elaborate_whole(circuit) {
        report.merge(lint_netlist_seq(&elab.netlist, circuit.name(), config));
        report.merge(lint_seq_depth(
            circuit,
            &elab.netlist,
            circuit.name(),
            config,
        ));
        if config.optimizer {
            report.merge(lint_netlist_opt(&elab.netlist, circuit.name(), config));
        }
    }
    report
}

/// Parses `.ckt` circuit text and runs [`lint_full`] on the result.
///
/// Parse errors become a `B000` diagnostic naming `origin` (a file name or
/// other label for messages) — malformed input yields a failing report,
/// never a panic.
pub fn lint_ckt_text(origin: &str, text: &str, config: &LintConfig) -> Report {
    match bibs_rtl::fmt::from_text(text) {
        Ok(circuit) => lint_full(&circuit, config),
        Err(e) => {
            let mut report = Report::new();
            report.emit(
                config,
                "B000",
                format!("cannot parse circuit {origin}: {e}"),
                e.to_string(),
            );
            report
        }
    }
}

/// Parses `.bench` netlist text and lints the result.
///
/// A file carrying an `# rtl:` sidecar (see [`bibs_datapath::front`])
/// recovers its register-transfer view and gets the full RTL + design
/// pipeline of [`lint_full`]; a plain gate-level file gets the netlist
/// passes ([`lint_netlist`], plus [`lint_netlist_semantic`] when
/// `config.semantic` is set). Parse and sidecar errors become a `B000`
/// diagnostic naming `origin` — malformed input yields a failing report,
/// never a panic.
pub fn lint_bench_text(origin: &str, text: &str, config: &LintConfig) -> Report {
    match bibs_datapath::front::load_bench_text(text) {
        Ok(loaded) => match loaded.circuit() {
            Some(circuit) => {
                let mut report = lint_full(circuit, config);
                // Cross-check the sidecar's RTL view against the file's
                // own gate-level netlist (B054) and run the sequential
                // passes on what the file actually carries.
                report.merge(lint_netlist_seq(loaded.netlist(), origin, config));
                report.merge(lint_seq_depth(circuit, loaded.netlist(), origin, config));
                report
            }
            None => {
                let mut report = lint_netlist(loaded.netlist(), config);
                if config.semantic {
                    report.merge(lint_netlist_semantic(loaded.netlist(), origin, config));
                }
                report.merge(lint_netlist_seq(loaded.netlist(), origin, config));
                if config.optimizer {
                    report.merge(lint_netlist_opt(loaded.netlist(), origin, config));
                }
                report
            }
        },
        Err(e) => {
            let mut report = Report::new();
            report.emit(
                config,
                "B000",
                format!("cannot parse netlist {origin}: {e}"),
                e.to_string(),
            );
            report
        }
    }
}

/// Parses Verilog netlist text (the subset written by
/// [`bibs_netlist::verilog`]) and lints the result: the netlist passes,
/// the semantic passes when `config.semantic` is set, and the sequential
/// X-safety passes. Parse errors become a `B000` diagnostic naming
/// `origin`.
pub fn lint_verilog_text(origin: &str, text: &str, config: &LintConfig) -> Report {
    match bibs_datapath::front::load_verilog_text(text) {
        Ok(loaded) => {
            let mut report = lint_netlist(loaded.netlist(), config);
            if config.semantic {
                report.merge(lint_netlist_semantic(loaded.netlist(), origin, config));
            }
            report.merge(lint_netlist_seq(loaded.netlist(), origin, config));
            if config.optimizer {
                report.merge(lint_netlist_opt(loaded.netlist(), origin, config));
            }
            report
        }
        Err(e) => {
            let mut report = Report::new();
            report.emit(
                config,
                "B000",
                format!("cannot parse Verilog {origin}: {e}"),
                e.to_string(),
            );
            report
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bad_text_is_a_b000_report_not_a_panic() {
        let cfg = LintConfig::new();
        let report = lint_ckt_text("garbage.ckt", "circuit ???\nnot a line", &cfg);
        assert!(report.has_code("B000"), "{report}");
        assert!(!report.is_clean());
    }

    #[test]
    fn paper_filters_lint_clean_under_deny_warnings() {
        let mut cfg = LintConfig::new();
        cfg.deny_warnings = true;
        for circuit in [
            bibs_datapath::filters::c5a2m(),
            bibs_datapath::filters::c3a2m(),
            bibs_datapath::filters::c4a4m(),
            bibs_datapath::fig9::figure9(),
        ] {
            let report = lint_full(&circuit, &cfg);
            assert!(
                report.is_clean(),
                "{} should lint clean:\n{report}",
                circuit.name()
            );
        }
    }

    #[test]
    fn bad_bench_is_a_b000_report_not_a_panic() {
        let cfg = LintConfig::new();
        for bad in [
            "o = FROB(a)\n",                        // unknown gate
            "INPUT(a)\no = NOT(a, a)\nOUTPUT(o)\n", // bad arity
            "INPUT(a)\na = NOT(a)\n",               // double drive
        ] {
            let report = lint_bench_text("bad.bench", bad, &cfg);
            assert!(report.has_code("B000"), "{bad:?}:\n{report}");
            assert!(!report.is_clean());
        }
    }

    #[test]
    fn plain_bench_gets_the_netlist_passes() {
        let cfg = LintConfig::new();
        let nl = bibs_datapath::elab::elaborate_whole(&bibs_datapath::filters::scaled("c5a2m", 2))
            .unwrap()
            .netlist;
        let text = bibs_netlist::bench::to_text(&nl);
        let report = lint_bench_text("c5a2m.bench", &text, &cfg);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn sidecar_bench_gets_the_full_rtl_pipeline() {
        let cfg = LintConfig::new();
        let circuit = bibs_datapath::filters::scaled("c5a2m", 2);
        let text = bibs_datapath::front::bench_with_rtl(&circuit).unwrap();
        let report = lint_bench_text("c5a2m.bench", &text, &cfg);
        assert!(report.is_clean(), "{report}");
    }
}
