//! Content fingerprints for findings and the baseline machinery built on
//! them.
//!
//! A baseline lets CI gate a large corpus *incrementally*: known findings
//! are recorded once and demoted to `allow` on later runs, so only new
//! findings fail the gate. For that to survive file renames and
//! reordering, the fingerprint hashes the finding's *content* — code,
//! message and witness — and deliberately excludes the origin path and
//! the position in the report. Identical findings in different files
//! share a fingerprint by design (renaming a corpus file must not
//! invalidate its baseline entry); [`Report::normalize`] has already
//! collapsed exact duplicates within a file.

use crate::diag::{json_string, Diagnostic, Report, Severity};

/// The baseline file's schema tag.
pub const BASELINE_SCHEMA: &str = "bibs-lint-baseline/1";

/// The content fingerprint of one finding: FNV-64 over code, message and
/// witness (origin excluded — stable across file renames and report
/// reordering).
pub fn fingerprint(d: &Diagnostic) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for part in [d.code, &d.message, &d.witness] {
        for b in part.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        // Field separator so ("ab","c") and ("a","bc") differ.
        h ^= 0x1f;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Renders a baseline file covering every warn- or deny-level finding of
/// `report` (allow-level findings document intentional structure and need
/// no baselining). Fingerprints are sorted and deduplicated.
pub fn write_baseline(report: &Report) -> String {
    let mut fps: Vec<u64> = report
        .diagnostics
        .iter()
        .filter(|d| d.severity != Severity::Allow)
        .map(fingerprint)
        .collect();
    fps.sort_unstable();
    fps.dedup();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"schema\": {},\n",
        json_string(BASELINE_SCHEMA)
    ));
    out.push_str("  \"fingerprints\": [\n");
    for (i, fp) in fps.iter().enumerate() {
        let comma = if i + 1 < fps.len() { "," } else { "" };
        out.push_str(&format!("    \"{fp:016x}\"{comma}\n"));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Parses a baseline file written by [`write_baseline`].
///
/// # Errors
///
/// A description of the first structural problem: not JSON, wrong schema
/// tag, or a malformed fingerprint entry.
pub fn parse_baseline(text: &str) -> Result<Vec<u64>, String> {
    let value = bibs_obs::json::parse(text).map_err(|e| format!("baseline is not JSON: {e}"))?;
    match value.get("schema").and_then(|v| v.as_str()) {
        Some(BASELINE_SCHEMA) => {}
        Some(other) => return Err(format!("unsupported baseline schema {other:?}")),
        None => return Err("baseline missing \"schema\" field".into()),
    }
    let entries = value
        .get("fingerprints")
        .and_then(|v| v.as_array())
        .ok_or("baseline missing \"fingerprints\" array")?;
    let mut fps = Vec::with_capacity(entries.len());
    for e in entries {
        let s = e.as_str().ok_or("fingerprint entries must be strings")?;
        let fp = u64::from_str_radix(s, 16).map_err(|_| format!("bad fingerprint {s:?}"))?;
        fps.push(fp);
    }
    fps.sort_unstable();
    Ok(fps)
}

/// Demotes every finding whose fingerprint appears in `baseline` to
/// `Allow`: it is known, recorded, and must not fail the gate. Returns
/// how many findings were demoted.
pub fn apply_baseline(report: &mut Report, baseline: &[u64]) -> usize {
    let mut demoted = 0;
    for d in &mut report.diagnostics {
        if d.severity != Severity::Allow && baseline.binary_search(&fingerprint(d)).is_ok() {
            d.severity = Severity::Allow;
            demoted += 1;
        }
    }
    demoted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::LintConfig;

    fn sample_report() -> Report {
        let cfg = LintConfig::new();
        let mut r = Report::new();
        r.emit(&cfg, "B001", "net \"x\" has no driver", "net n3 (x)");
        r.emit(&cfg, "B005", "odd word record", "word o");
        r.emit(&cfg, "B004", "dead cone", "g7");
        r.set_origin("a.bench");
        r
    }

    #[test]
    fn fingerprint_ignores_origin_but_not_content() {
        let mut r = sample_report();
        let fp = fingerprint(&r.diagnostics[0]);
        r.diagnostics[0].origin = "renamed.bench".into();
        assert_eq!(fingerprint(&r.diagnostics[0]), fp);
        r.diagnostics[0].message.push('!');
        assert_ne!(fingerprint(&r.diagnostics[0]), fp);
    }

    #[test]
    fn baseline_round_trips_and_demotes() {
        let mut r = sample_report();
        let text = write_baseline(&r);
        let fps = parse_baseline(&text).unwrap();
        // Only the deny + warn findings are baselined, not the allow one.
        assert_eq!(fps.len(), 2);
        assert!(!r.is_clean());
        let demoted = apply_baseline(&mut r, &fps);
        assert_eq!(demoted, 2);
        assert!(r.is_clean());
        assert_eq!(r.count(Severity::Allow), 3);
        // A fresh finding is not masked by the old baseline.
        let cfg = LintConfig::new();
        r.emit(&cfg, "B001", "net \"y\" has no driver", "net n9 (y)");
        assert_eq!(apply_baseline(&mut r, &fps), 0);
        assert!(!r.is_clean());
    }

    #[test]
    fn bad_baselines_are_rejected() {
        assert!(parse_baseline("not json").is_err());
        assert!(parse_baseline("{\"fingerprints\": []}").is_err());
        assert!(parse_baseline("{\"schema\": \"other/9\", \"fingerprints\": []}").is_err());
        assert!(parse_baseline(
            "{\"schema\": \"bibs-lint-baseline/1\", \"fingerprints\": [\"zz\"]}"
        )
        .is_err());
    }
}
