//! Semantic lint passes: B040–B043, driven by the dataflow analyses of
//! [`bibs_netlist::analysis`] over the compiled [`EvalProgram`] IR.
//!
//! Where the structural passes (B00x) check *shape*, these check
//! *meaning*: the ternary abstract interpretation proves nets constant
//! under all-X inputs (B040), finds gate outputs independent of an input
//! pin (B041), and — through the seeded SCOAP sweeps and the
//! untestability prover bridged by
//! [`bibs_faultsim::fault::StaticFaultAnalysis`] — proves single-stuck-at
//! faults statically untestable (B042). Constants whose proof needs *case
//! analysis* on a reconvergent stem (`xor(f, f)`-style structure) mark
//! genuinely redundant logic cones (B043): the cone computes a constant
//! for a non-obvious reason and is removable.
//!
//! The pass is opt-in (`LintConfig::semantic`, the binary's `--semantic`
//! flag) because it simulates nothing but does run whole-netlist sweeps
//! per kernel.
//!
//! ## What fires on the paper datapaths
//!
//! The array multipliers pad their accumulator rows with tied-zero nets,
//! so `c5a2m`/`c3a2m`/`c4a4m` legitimately report B040/B041 findings
//! (allow/warn level) on the folded carry gates. B042 is deny-level and
//! must stay at **zero** on them: every statically untestable fault there
//! is either structurally unobservable (the truncated product's high
//! half, already reported as B004/B007) or sits in the *constant shadow*
//! — on a proven-constant net, a pin reading one, or a gate whose output
//! is proven constant — which is intentional tied-value structure, not
//! datapath redundancy. CI enforces this.

use crate::diag::{LintConfig, Report};
use bibs_core::design::{kernels, BilboDesign};
use bibs_datapath::elab::elaborate_kernel;
use bibs_faultsim::fault::{FaultSite, FaultUniverse, StaticFaultAnalysis};
use bibs_netlist::analysis::independent_pins;
use bibs_netlist::{EvalProgram, NetDriver, NetId, Netlist};
use bibs_rtl::{Circuit, EdgeId};
use std::collections::HashSet;

/// Renders a net as `n7 ("a[3]")` or `n7` when unnamed.
fn net_desc(nl: &Netlist, id: NetId) -> String {
    match nl.net_name(id) {
        Some(n) => format!("{id} (\"{n}\")"),
        None => format!("{id}"),
    }
}

/// Runs the semantic passes on every elaborable kernel of `circuit` under
/// `design`. Kernels that fail to elaborate are skipped silently here —
/// [`crate::lint_design`] already reports them as B031.
pub fn lint_semantic(circuit: &Circuit, design: &BilboDesign, config: &LintConfig) -> Report {
    let mut report = Report::new();
    let cut: HashSet<EdgeId> = design.bilbo.union(&design.cbilbo).copied().collect();
    for (ki, kernel) in kernels(circuit, design).iter().enumerate() {
        let kv: HashSet<_> = kernel.vertices.iter().copied().collect();
        let Ok(elab) = elaborate_kernel(circuit, &kv, &cut) else {
            continue;
        };
        let what = format!("kernel #{ki}");
        report.merge(lint_netlist_semantic(&elab.netlist, &what, config));
    }
    report
}

/// Runs the semantic passes on one netlist (`what` names it in messages).
///
/// The netlist's combinational equivalent is compiled to an
/// [`EvalProgram`]; netlists that do not compile (combinational cycles)
/// are skipped — the structural passes report those as B003.
pub fn lint_netlist_semantic(netlist: &Netlist, what: &str, config: &LintConfig) -> Report {
    let mut report = Report::new();
    let comb = netlist.combinational_equivalent();
    let Ok(program) = EvalProgram::compile(&comb) else {
        return report;
    };
    let sfa = StaticFaultAnalysis::new(&program);
    let abs = sfa.abs();

    // B040 / B043 — gate-driven nets proven constant under all-X inputs.
    // A tied constant propagating forward is ordinary degenerate structure
    // (B040, warn); a constant that needs case analysis on a reconvergent
    // stem marks a removable redundant cone (B043 in addition).
    for (slot, value) in abs.constants() {
        let net = NetId::from_index(slot);
        if !matches!(comb.driver(net), NetDriver::Gate(_)) {
            continue; // tied constants and constant-valued PIs are intent
        }
        let v = u8::from(value);
        report.emit(
            config,
            "B040",
            format!(
                "{what}: net {} is constant {v} for every input (the driving \
                 gate never toggles)",
                net_desc(&comb, net)
            ),
            format!(
                "{} = {v} under all-X ternary propagation",
                net_desc(&comb, net)
            ),
        );
        if let Some(stem) = abs.split_stem(slot) {
            let stem_net = NetId::from_index(stem);
            report.emit(
                config,
                "B043",
                format!(
                    "{what}: redundant logic cone — net {} is constant {v} only \
                     by case analysis on reconvergent stem {} (the cone computes \
                     a constant and is removable)",
                    net_desc(&comb, net),
                    net_desc(&comb, stem_net)
                ),
                format!(
                    "{} = {v} in both branches of {} = 0/1",
                    net_desc(&comb, net),
                    net_desc(&comb, stem_net)
                ),
            );
        }
    }

    // B041 — gate outputs independent of one of their input pins.
    for ip in independent_pins(&program, abs) {
        let gate = program.instr(ip.instr as usize).gate;
        let g = comb.gate(gate);
        let pin_net = g.inputs[ip.pin as usize];
        report.emit(
            config,
            "B041",
            format!(
                "{what}: output of {gate}:{} is independent of input pin {} \
                 ({}) — the connection carries no information",
                g.kind,
                ip.pin,
                net_desc(&comb, pin_net)
            ),
            format!(
                "{gate}.in{} driven by {}; forcing it 0 or 1 leaves the output \
                 unchanged under the ternary abstraction",
                ip.pin,
                net_desc(&comb, pin_net)
            ),
        );
    }

    // B042 — statically untestable faults at *meaningful* sites: the site
    // must be structurally observable (unobservable cones are B004/B007
    // territory) and outside the constant shadow (faults on proven-constant
    // nets, pins reading them, or gates with proven-constant outputs are a
    // consequence of intentional tied values, reported above). What remains
    // is logic whose only propagation paths are semantically dead — a
    // genuine datapath redundancy that random patterns can never exercise.
    let universe = FaultUniverse::collapsed(&comb);
    let (observable, _) = universe.split_by_observability(&program);
    let (_, untestable) = sfa.partition(&program, &observable);
    for (fault, verdict) in untestable {
        let shadowed = match fault.site {
            FaultSite::Net(n) => abs.constant(n.index()).is_some(),
            FaultSite::GatePin { gate, pin } => {
                let g = comb.gate(gate);
                abs.constant(g.inputs[pin].index()).is_some()
                    || abs.constant(g.output.index()).is_some()
            }
        };
        if shadowed {
            continue;
        }
        report.emit(
            config,
            "B042",
            format!(
                "{what}: fault {fault} is statically untestable ({}) — no \
                 pattern can ever detect it, so it silently caps the reachable \
                 fault coverage",
                verdict.reason
            ),
            verdict.witness.to_string(),
        );
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use bibs_netlist::builder::NetlistBuilder;
    use bibs_netlist::GateKind;

    fn cfg() -> LintConfig {
        LintConfig::new()
    }

    /// `and(x, 0)` — constant by plain propagation: B040 fires (warn),
    /// B043 does not (no case analysis involved), and the pin the gate
    /// ignores is B041.
    #[test]
    fn tied_constant_cone_is_b040_and_b041_not_b043() {
        let mut b = NetlistBuilder::new("tied");
        let x = b.input("x");
        let z = b.const0();
        let k = b.and2(x, z);
        let c = b.input("c");
        let y = b.or2(c, k);
        b.output("y", y);
        // Observe x directly so its stem is live: the only findings left
        // are the degenerate AND (its pin faults are constant-shadowed).
        b.output("xo", x);
        let nl = b.finish().unwrap();
        let report = lint_netlist_semantic(&nl, "t", &cfg());
        assert!(report.has_code("B040"), "{report}");
        assert!(!report.has_code("B042"), "shadowed, not B042: {report}");
        assert!(!report.has_code("B043"), "{report}");
        assert!(report.has_code("B041"), "{report}");
        assert!(
            report
                .with_code("B040")
                .next()
                .unwrap()
                .message
                .contains("constant 0"),
            "{report}"
        );
        // B040 is warn-level: clean without --deny warnings, dirty with.
        assert!(report.is_clean(), "{report}");
        let mut strict = cfg();
        strict.deny_warnings = true;
        let report = lint_netlist_semantic(&nl, "t", &strict);
        assert!(!report.is_clean(), "{report}");
    }

    /// `xor(f, f)` — constant only by case analysis on the reconvergent
    /// stem: both B040 and B043 fire.
    #[test]
    fn reconvergent_constant_is_b043() {
        let mut b = NetlistBuilder::new("recon");
        let f = b.input("f");
        let y = b.gate(GateKind::Xor, &[f, f]);
        let c = b.input("c");
        let o = b.or2(c, y);
        b.output("o", o);
        let nl = b.finish().unwrap();
        let report = lint_netlist_semantic(&nl, "t", &cfg());
        assert!(report.has_code("B040"), "{report}");
        assert!(report.has_code("B043"), "{report}");
        let d = report.with_code("B043").next().unwrap();
        assert!(d.message.contains("case analysis"), "{}", d.message);
        assert!(d.witness.contains("\"f\""), "witness: {}", d.witness);
    }

    /// Logic feeding only a constant-killed gate: structurally observable,
    /// not itself constant, yet no pattern propagates it — B042 (deny).
    #[test]
    fn semantically_dead_logic_is_b042() {
        let mut b = NetlistBuilder::new("dead");
        let a = b.input("a");
        let c = b.input("b");
        let g0 = b.xor2(a, c); // feeds ONLY the killed AND below
        let z = b.const0();
        let k = b.and2(g0, z); // constant 0: kills g0's observability
        let d = b.input("d");
        let y = b.or2(d, k);
        b.output("y", y);
        let nl = b.finish().unwrap();
        let report = lint_netlist_semantic(&nl, "t", &cfg());
        assert!(report.has_code("B042"), "{report}");
        assert!(!report.is_clean(), "B042 must deny: {report}");
        let d = report.with_code("B042").next().unwrap();
        assert!(d.message.contains("statically untestable"), "{}", d.message);
        assert!(!d.witness.is_empty(), "B042 carries an implication chain");
    }

    /// A healthy adder has no semantic findings at all.
    #[test]
    fn clean_adder_is_silent() {
        let mut b = NetlistBuilder::new("add");
        let x = b.input_word("x", 4);
        let y = b.input_word("y", 4);
        let (s, co) = b.ripple_carry_adder(&x, &y, None);
        b.output_word("s", &s);
        b.output("co", co);
        let nl = b.finish().unwrap();
        let report = lint_netlist_semantic(&nl, "t", &cfg());
        assert!(report.diagnostics.is_empty(), "{report}");
    }

    /// The paper datapaths must report zero B042: their only untestable
    /// faults are structurally unobservable or constant-shadowed.
    #[test]
    fn paper_datapaths_report_zero_b042() {
        use bibs_core::bibs::{select, BibsOptions};
        for circuit in [
            bibs_datapath::filters::scaled("c5a2m", 4),
            bibs_datapath::filters::scaled("c3a2m", 4),
            bibs_datapath::filters::scaled("c4a4m", 4),
        ] {
            let result = select(&circuit, &BibsOptions::default()).unwrap();
            let report = lint_semantic(&result.circuit, &result.design, &cfg());
            assert!(
                !report.has_code("B042"),
                "{} must have zero B042:\n{report}",
                circuit.name()
            );
            assert!(report.is_clean(), "{}:\n{report}", circuit.name());
        }
    }
}
