//! SARIF 2.1.0 output and a well-formedness checker against a vendored
//! minimal schema.
//!
//! [`to_sarif`] renders a [`Report`] as a single-run SARIF log: the tool
//! driver advertises every registered code as a rule, each finding
//! becomes a `result` with the origin file as its artifact location and
//! the content fingerprint (see [`crate::fingerprint()`]) under
//! `partialFingerprints`, which is exactly what result-matching SARIF
//! consumers key on. [`check_sarif`] validates a log against the subset
//! JSON Schema vendored at `crates/lint/sarif-schema.min.json` —
//! `type` / `required` / `properties` / `items` / `enum` are enough to
//! pin the SARIF shape without an online schema fetch.

use crate::diag::{json_string, Report, Severity, CODES};
use crate::fingerprint::fingerprint;
use bibs_obs::json::{self, Value};

/// The schema URI stamped into every log.
pub const SARIF_SCHEMA_URI: &str =
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json";

/// The vendored minimal schema used by [`check_sarif`], embedded so the
/// checker works without locating the repository root.
pub const MIN_SCHEMA: &str = include_str!("../sarif-schema.min.json");

fn level(severity: Severity) -> &'static str {
    match severity {
        Severity::Allow => "note",
        Severity::Warn => "warning",
        Severity::Deny => "error",
    }
}

/// Renders `report` as a SARIF 2.1.0 log. Findings keep report order —
/// normalize the report first for byte-stable output.
pub fn to_sarif(report: &Report) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"$schema\": {},\n",
        json_string(SARIF_SCHEMA_URI)
    ));
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"bibs-lint\",\n");
    out.push_str("          \"rules\": [\n");
    for (i, c) in CODES.iter().enumerate() {
        let comma = if i + 1 < CODES.len() { "," } else { "" };
        out.push_str(&format!(
            "            {{\"id\": {}, \"shortDescription\": {{\"text\": {}}}}}{comma}\n",
            json_string(c.code),
            json_string(c.summary)
        ));
    }
    out.push_str("          ]\n        }\n      },\n");
    out.push_str("      \"results\": [\n");
    let n = report.diagnostics.len();
    for (i, d) in report.diagnostics.iter().enumerate() {
        let comma = if i + 1 < n { "," } else { "" };
        let text = if d.witness.is_empty() {
            d.message.clone()
        } else {
            format!("{} (witness: {})", d.message, d.witness)
        };
        let uri = if d.origin.is_empty() {
            "<input>"
        } else {
            &d.origin
        };
        out.push_str("        {\n");
        out.push_str(&format!("          \"ruleId\": {},\n", json_string(d.code)));
        out.push_str(&format!(
            "          \"level\": {},\n",
            json_string(level(d.severity))
        ));
        out.push_str(&format!(
            "          \"message\": {{\"text\": {}}},\n",
            json_string(&text)
        ));
        out.push_str(&format!(
            "          \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": {}}}}}}}],\n",
            json_string(uri)
        ));
        out.push_str(&format!(
            "          \"partialFingerprints\": {{\"bibsLintContent/v1\": \"{:016x}\"}}\n",
            fingerprint(d)
        ));
        out.push_str(&format!("        }}{comma}\n"));
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

/// Validates `sarif_text` against the vendored minimal SARIF schema.
///
/// # Errors
///
/// The first problem found: unparseable JSON (either document) or a
/// schema violation with a JSON-path-style location.
pub fn check_sarif(sarif_text: &str) -> Result<(), String> {
    let schema = json::parse(MIN_SCHEMA).map_err(|e| format!("vendored schema invalid: {e}"))?;
    let doc = json::parse(sarif_text).map_err(|e| format!("SARIF is not JSON: {e}"))?;
    validate(&doc, &schema, "$")
}

/// Recursive interpreter for the schema subset: `type`, `required`,
/// `properties`, `items`, `enum`.
fn validate(doc: &Value, schema: &Value, path: &str) -> Result<(), String> {
    if let Some(ty) = schema.get("type").and_then(|v| v.as_str()) {
        let ok = match ty {
            "object" => matches!(doc, Value::Object(_)),
            "array" => matches!(doc, Value::Array(_)),
            "string" => matches!(doc, Value::String(_)),
            "number" => matches!(doc, Value::Number(_)),
            "boolean" => matches!(doc, Value::Bool(_)),
            other => return Err(format!("{path}: unsupported schema type {other:?}")),
        };
        if !ok {
            return Err(format!("{path}: expected {ty}"));
        }
    }
    if let Some(allowed) = schema.get("enum").and_then(|v| v.as_array()) {
        if !allowed.contains(doc) {
            return Err(format!("{path}: value not in enum"));
        }
    }
    if let Some(required) = schema.get("required").and_then(|v| v.as_array()) {
        for name in required {
            let name = name.as_str().unwrap_or("");
            if doc.get(name).is_none() {
                return Err(format!("{path}: missing required member {name:?}"));
            }
        }
    }
    if let Some(props) = schema.get("properties").and_then(|v| v.as_object()) {
        for (name, sub) in props {
            if let Some(member) = doc.get(name) {
                validate(member, sub, &format!("{path}.{name}"))?;
            }
        }
    }
    if let Some(items) = schema.get("items") {
        if let Some(elems) = doc.as_array() {
            for (i, e) in elems.iter().enumerate() {
                validate(e, items, &format!("{path}[{i}]"))?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::LintConfig;

    fn sample_report() -> Report {
        let cfg = LintConfig::new();
        let mut r = Report::new();
        r.emit(&cfg, "B001", "net \"x\" has no driver", "net n3 (x)");
        r.emit(&cfg, "B005", "odd word record", "word o");
        r.emit(&cfg, "B004", "dead cone", "");
        r.set_origin("sub/dir/a.bench");
        r
    }

    #[test]
    fn sarif_log_passes_the_vendored_schema() {
        let log = to_sarif(&sample_report());
        check_sarif(&log).unwrap();
        assert!(log.contains("\"2.1.0\""));
        assert!(log.contains("\"ruleId\": \"B001\""));
        assert!(log.contains("\"level\": \"error\""));
        assert!(log.contains("\"level\": \"warning\""));
        assert!(log.contains("\"level\": \"note\""));
        assert!(log.contains("sub/dir/a.bench"));
        assert!(log.contains("bibsLintContent/v1"));
    }

    #[test]
    fn empty_report_is_still_well_formed() {
        check_sarif(&to_sarif(&Report::new())).unwrap();
    }

    #[test]
    fn checker_rejects_malformed_logs() {
        assert!(check_sarif("not json").is_err());
        assert!(check_sarif("{}").unwrap_err().contains("required"));
        let wrong_version = "{\"$schema\": \"x\", \"version\": \"9.9\", \"runs\": []}";
        assert!(check_sarif(wrong_version).unwrap_err().contains("enum"));
        let bad_result = "{\"$schema\": \"x\", \"version\": \"2.1.0\", \"runs\": [{\"tool\": \
                          {\"driver\": {\"name\": \"t\", \"rules\": []}}, \"results\": [{}]}]}";
        let err = check_sarif(bad_result).unwrap_err();
        assert!(err.contains("ruleId"), "{err}");
    }
}
