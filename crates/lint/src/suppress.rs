//! Inline lint suppressions.
//!
//! A circuit file can acknowledge a finding in place:
//!
//! ```text
//! # bibs-lint: allow(B052)
//! # bibs-lint: allow(B051, B053)   <- several codes in one marker
//! ```
//!
//! Markers live in comments (`#` for `.ckt`/`.bench`, `//` for Verilog)
//! and apply file-wide: every finding with a suppressed code is demoted
//! to `Allow`, tagged `[suppressed]` in its message so reports stay
//! honest. A suppression that matches nothing is itself a finding
//! (`B059`) — stale allowances rot into blind spots.

use crate::diag::{code_info, LintConfig, Report, Severity};

/// The codes suppressed by inline markers in `text`, in first-seen order,
/// deduplicated. Unknown codes are kept — they surface as `B059` later
/// rather than being silently dropped.
pub fn scan_suppressions(text: &str) -> Vec<String> {
    let mut codes: Vec<String> = Vec::new();
    for line in text.lines() {
        let trimmed = line.trim_start();
        let comment = match trimmed
            .strip_prefix('#')
            .or_else(|| trimmed.strip_prefix("//"))
        {
            Some(c) => c,
            None => continue,
        };
        let mut rest = comment;
        while let Some(pos) = rest.find("bibs-lint:") {
            rest = &rest[pos + "bibs-lint:".len()..];
            let body = rest.trim_start();
            let Some(args) = body.strip_prefix("allow(") else {
                continue;
            };
            let Some(end) = args.find(')') else { continue };
            for code in args[..end].split(',') {
                let code = code.trim();
                if !code.is_empty() && !codes.iter().any(|c| c == code) {
                    codes.push(code.to_string());
                }
            }
            rest = &args[end..];
        }
    }
    codes
}

/// Applies file-wide suppressions to `report`: findings with a suppressed
/// code are demoted to `Allow` and tagged, and every suppression that
/// matched nothing (or names an unregistered code) becomes a `B059`
/// finding.
pub fn apply_suppressions(report: &mut Report, codes: &[String], config: &LintConfig) {
    for code in codes {
        let mut used = false;
        for d in &mut report.diagnostics {
            if d.code == *code {
                if d.severity != Severity::Allow {
                    d.severity = Severity::Allow;
                }
                if !d.message.ends_with(" [suppressed]") {
                    d.message.push_str(" [suppressed]");
                }
                used = true;
            }
        }
        if !used {
            let reason = if code_info(code).is_some() {
                "matches no finding"
            } else {
                "names an unknown code"
            };
            report.emit(
                config,
                "B059",
                format!("suppression allow({code}) {reason}"),
                format!("bibs-lint: allow({code})"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scans_hash_and_slash_comments() {
        let text = "\
# bibs-lint: allow(B052)
INPUT(a)
// bibs-lint: allow(B051, B053)
o = NOT(a)  # not a marker
# bibs-lint: allow(B052)
OUTPUT(o)
";
        assert_eq!(scan_suppressions(text), vec!["B052", "B051", "B053"]);
        assert!(scan_suppressions("o = NOT(a)\n").is_empty());
        // Markers outside comments are ignored.
        assert!(scan_suppressions("x = bibs-lint: allow(B052)\n").is_empty());
    }

    #[test]
    fn suppression_demotes_and_tags() {
        let cfg = LintConfig::new();
        let mut r = Report::new();
        r.emit(&cfg, "B052", "flop stuck at 0", "ff0");
        apply_suppressions(&mut r, &["B052".to_string()], &cfg);
        assert_eq!(r.diagnostics[0].severity, Severity::Allow);
        assert!(r.diagnostics[0].message.ends_with("[suppressed]"));
        assert!(!r.has_code("B059"));
    }

    #[test]
    fn unused_and_unknown_suppressions_warn() {
        let cfg = LintConfig::new();
        let mut r = Report::new();
        apply_suppressions(&mut r, &["B052".to_string(), "B999".to_string()], &cfg);
        let b059: Vec<_> = r.with_code("B059").collect();
        assert_eq!(b059.len(), 2);
        assert!(b059[0].message.contains("matches no finding"));
        assert!(b059[1].message.contains("unknown code"));
        assert_eq!(b059[0].severity, Severity::Warn);
    }
}
