//! A minimal JSON reader/writer for telemetry files.
//!
//! The workspace is offline and dependency-free, so the `perfdiff`
//! regression gate cannot use `serde_json`; this module implements the
//! small subset it needs: objects, arrays, strings (with `\"`, `\\`,
//! `\n`, `\t`, `\r`, `\/`, `\b`, `\f` and `\uXXXX` escapes), integer and
//! float numbers, booleans and null. Object key order is preserved so
//! diffs stay readable.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, kept as f64 (telemetry counters fit exactly up to
    /// 2^53 — far beyond any realistic run; [`Value::as_u64`] round-trips
    /// integers in that range).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in source key order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects; `None` elsewhere or when missing.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The member list, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(members) => Some(members),
            _ => None,
        }
    }
}

/// A parse failure: what went wrong and the byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document (trailing whitespace allowed,
/// anything else after the value is an error).
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content"));
    }
    Ok(v)
}

/// Appends `s` to `out` as a JSON string literal with escapes.
pub fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                use fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            members.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("non-UTF8 \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for telemetry
                            // labels; replace them defensively.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (labels may contain
                    // multi-byte characters like the em dash).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("-1.5").unwrap().as_f64(), Some(-1.5));
        assert_eq!(parse("1e3").unwrap().as_f64(), Some(1000.0));
        assert_eq!(parse("\"hi\"").unwrap().as_str(), Some("hi"));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,2,{"b":"c"}],"d":{},"e":[]}"#).unwrap();
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a[2].get("b").unwrap().as_str(), Some("c"));
        assert_eq!(v.get("d").unwrap().as_object().unwrap().len(), 0);
        assert_eq!(v.get("e").unwrap().as_array().unwrap().len(), 0);
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "a\"b\\c\nd\te\u{1F600}—f";
        let mut enc = String::new();
        write_string(&mut enc, original);
        assert_eq!(parse(&enc).unwrap().as_str(), Some(original));
        assert_eq!(parse(r#""Aé""#).unwrap().as_str(), Some("Aé"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\"1}", "tru", "\"x", "1 2", "{'a':1}"] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
        let err = parse("[1,]").unwrap_err();
        assert!(err.to_string().contains("byte"));
    }

    #[test]
    fn as_u64_guards_fractions_and_negatives() {
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("-3").unwrap().as_u64(), None);
        assert_eq!(parse("0").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn object_key_order_is_preserved() {
        let v = parse(r#"{"z":1,"a":2}"#).unwrap();
        let keys: Vec<&str> = v
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["z", "a"]);
    }
}
