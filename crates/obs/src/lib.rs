//! The BIBS telemetry spine: hierarchical **spans** with wall-clock time
//! plus monotonic **counters**, collected per pipeline stage and exported
//! as machine-readable JSON.
//!
//! Every stage of the pipeline — `compile → analyze → collapse →
//! fault-sim[shard k] → expand → atpg → schedule → session/MISR` — records
//! into a [`Recorder`]: a small arena of [`Span`]s, each carrying a label,
//! an accumulated wall-clock duration and a fixed-size [`Counters`] array.
//! The design goals, in order:
//!
//! 1. **Allocation-free hot loops.** A counter bump is a single add into a
//!    fixed `[u64; N]` array ([`Counters::add`]); worker threads own
//!    private [`ShardCounters`] that are merged lock-free when
//!    `std::thread::scope` joins ([`Recorder::attach_shard`]) — no atomics,
//!    no locks, no allocation on the simulation path.
//! 2. **Determinism.** Counters marked [`CounterId::is_deterministic`] are
//!    pure functions of the workload (seed, circuit, options) and
//!    independent of thread count, engine and wall clock; the JSON export
//!    carries *only* those, so two runs on different machines produce
//!    byte-identical files once wall-clock fields are stripped. Per-shard
//!    decomposition spans are flagged [`Span::detail`] and excluded from
//!    both aggregation and export.
//! 3. **Zero dependencies.** Std-only, like the rest of the workspace; the
//!    [`json`] module provides the minimal parser the `perfdiff`
//!    regression gate needs to read exports back.
//!
//! `SimStats` in `bibs-faultsim` is *derived from* a recorder's span tree
//! ([`Recorder::span_counters`], [`Recorder::shard_counter`]) rather than
//! hand-maintained; the bench bins expose the tree via `--telemetry
//! <out.json>` and the `BIBS_TRACE=spans|counters|off` environment knob
//! ([`TraceMode`]).
#![warn(missing_docs)]

pub mod json;

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// The counter vocabulary. One slot per variant in every [`Counters`]
/// array; the order here is the (stable) export order.
///
/// Counters are **monotonic** — stages only ever add. Most are
/// *deterministic* (see [`CounterId::is_deterministic`]): independent of
/// thread count, engine choice and wall clock, which is what lets the
/// `perfdiff` gate demand hard equality on them across runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum CounterId {
    /// Compiled instructions executed (or interpreted gate visits) across
    /// good and faulty machines — the hardware-meaningful throughput unit.
    GateEvals,
    /// Good-machine evaluations (one per pattern block).
    GoodEvals,
    /// Faulty-machine evaluations across all shards.
    FaultEvals,
    /// Fault patch-points applied (one per faulty-machine evaluation in
    /// the compiled engines).
    PatchesApplied,
    /// Faults dropped from simulation after first detection.
    FaultsDropped,
    /// Pattern blocks simulated (up to 64 patterns each).
    Blocks,
    /// Patterns consumed from the stream (lanes, not blocks).
    PatternsConsumed,
    /// Work-queue pops (chunk steals off the shared cursor). **Not**
    /// deterministic: the pop count depends on the worker count.
    QueuePops,
    /// PODEM backtracks across all targeted faults.
    PodemBacktracks,
    /// Size of the uncollapsed-or-equiv fault universe a kernel run
    /// accounts for.
    UniverseFaults,
    /// Faults actually handed to the simulation engine after static
    /// analysis and collapsing.
    SimulatedFaults,
    /// Faults proven statically untestable and skipped.
    UntestableStatic,
    /// Dominance classes built by the collapse stage.
    DominanceClasses,
    /// Detection entries recovered by expanding class representatives.
    FaultsExpanded,
    /// Instructions in a compiled `EvalProgram`.
    Instructions,
    /// Value slots in a compiled `EvalProgram`.
    Slots,
    /// Reconvergent-stem case splits performed by the ternary analysis.
    CaseSplits,
    /// MISR absorb cycles executed by a BIST session.
    MisrCycles,
    /// TPG cones exhaustively verified.
    ConesVerified,
    /// Test sessions produced by the scheduler.
    SessionsScheduled,
    /// Kernels placed into test sessions.
    KernelsScheduled,
    /// Lint findings emitted for one file (batch mode records one span
    /// per linted file carrying this counter).
    LintFindings,
    /// Patterns emitted by a pattern source (lanes across all blocks
    /// pulled, whether or not the engine applied every lane).
    PatternsEmitted,
    /// Hardware clock cycles a pattern source accounts for (warm-up
    /// shifts + one per pattern + reseed loads) — the denominator of the
    /// coverage-vs-clocks axis.
    SourceClocks,
    /// Instructions eliminated by accepted optimizer passes (cumulative
    /// over the pass pipeline — the per-evaluation saving).
    OptInstrsSaved,
    /// Individual rewrites performed by accepted optimizer passes
    /// (instructions folded, forwarded, merged, fused or deleted).
    OptRewrites,
    /// Simulation lane width (64·words per sweep) of a wide-configured
    /// engine. Recorded once at configuration, only when widened past the
    /// 64-lane default — scalar runs never emit it, keeping their
    /// telemetry byte-identical to pre-wide baselines.
    Lanes,
}

/// Number of counters — the fixed length of every [`Counters`] array.
pub const COUNTER_COUNT: usize = 27;

impl CounterId {
    /// Every counter, in export order.
    pub const ALL: [CounterId; COUNTER_COUNT] = [
        CounterId::GateEvals,
        CounterId::GoodEvals,
        CounterId::FaultEvals,
        CounterId::PatchesApplied,
        CounterId::FaultsDropped,
        CounterId::Blocks,
        CounterId::PatternsConsumed,
        CounterId::QueuePops,
        CounterId::PodemBacktracks,
        CounterId::UniverseFaults,
        CounterId::SimulatedFaults,
        CounterId::UntestableStatic,
        CounterId::DominanceClasses,
        CounterId::FaultsExpanded,
        CounterId::Instructions,
        CounterId::Slots,
        CounterId::CaseSplits,
        CounterId::MisrCycles,
        CounterId::ConesVerified,
        CounterId::SessionsScheduled,
        CounterId::KernelsScheduled,
        CounterId::LintFindings,
        CounterId::PatternsEmitted,
        CounterId::SourceClocks,
        CounterId::OptInstrsSaved,
        CounterId::OptRewrites,
        CounterId::Lanes,
    ];

    /// The stable snake_case name used in JSON exports and trace output.
    pub fn name(self) -> &'static str {
        match self {
            CounterId::GateEvals => "gate_evals",
            CounterId::GoodEvals => "good_evals",
            CounterId::FaultEvals => "fault_evals",
            CounterId::PatchesApplied => "patches_applied",
            CounterId::FaultsDropped => "faults_dropped",
            CounterId::Blocks => "blocks",
            CounterId::PatternsConsumed => "patterns_consumed",
            CounterId::QueuePops => "queue_pops",
            CounterId::PodemBacktracks => "podem_backtracks",
            CounterId::UniverseFaults => "universe_faults",
            CounterId::SimulatedFaults => "simulated_faults",
            CounterId::UntestableStatic => "untestable_static",
            CounterId::DominanceClasses => "dominance_classes",
            CounterId::FaultsExpanded => "faults_expanded",
            CounterId::Instructions => "instructions",
            CounterId::Slots => "slots",
            CounterId::CaseSplits => "case_splits",
            CounterId::MisrCycles => "misr_cycles",
            CounterId::ConesVerified => "cones_verified",
            CounterId::SessionsScheduled => "sessions_scheduled",
            CounterId::KernelsScheduled => "kernels_scheduled",
            CounterId::LintFindings => "lint_findings",
            CounterId::PatternsEmitted => "patterns_emitted",
            CounterId::SourceClocks => "source_clocks",
            CounterId::OptInstrsSaved => "opt_instrs_saved",
            CounterId::OptRewrites => "opt_rewrites",
            CounterId::Lanes => "lanes",
        }
    }

    /// Whether the counter is a pure function of the workload —
    /// independent of thread count, engine scheduling and wall clock.
    /// Only deterministic counters appear in JSON exports; the rest are
    /// trace-only diagnostics.
    pub fn is_deterministic(self) -> bool {
        !matches!(self, CounterId::QueuePops)
    }
}

/// A fixed-size counter array. Adding is a single indexed `u64` add, so
/// hot loops can bump counters without branching or allocating.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counters {
    vals: [u64; COUNTER_COUNT],
}

impl Default for Counters {
    fn default() -> Self {
        Counters::new()
    }
}

impl Counters {
    /// All-zero counters.
    pub const fn new() -> Self {
        Counters {
            vals: [0; COUNTER_COUNT],
        }
    }

    /// Adds `n` to counter `id`.
    #[inline(always)]
    pub fn add(&mut self, id: CounterId, n: u64) {
        self.vals[id as usize] += n;
    }

    /// The current value of counter `id`.
    #[inline]
    pub fn get(&self, id: CounterId) -> u64 {
        self.vals[id as usize]
    }

    /// Adds every counter of `other` into `self`.
    pub fn merge(&mut self, other: &Counters) {
        for i in 0..COUNTER_COUNT {
            self.vals[i] += other.vals[i];
        }
    }

    /// Whether every counter is zero.
    pub fn is_zero(&self) -> bool {
        self.vals.iter().all(|&v| v == 0)
    }

    /// The nonzero counters, in export order.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (CounterId, u64)> + '_ {
        CounterId::ALL
            .iter()
            .map(move |&id| (id, self.get(id)))
            .filter(|&(_, v)| v != 0)
    }
}

/// A worker-thread-private recorder: label-free counters plus the shard's
/// own wall clock. Workers fill one of these inside `thread::scope` and
/// hand it back through the join; the owner merges it with
/// [`Recorder::attach_shard`] — no synchronization on the hot path.
#[derive(Debug, Clone, Default)]
pub struct ShardCounters {
    /// The shard's counters (worker-private, merged at join).
    pub counters: Counters,
    /// Wall-clock time the shard spent working.
    pub wall: Duration,
}

impl ShardCounters {
    /// Fresh, all-zero shard counters.
    pub fn new() -> Self {
        ShardCounters::default()
    }

    /// Adds `n` to counter `id`.
    #[inline(always)]
    pub fn add(&mut self, id: CounterId, n: u64) {
        self.counters.add(id, n);
    }
}

/// Handle to a span inside a [`Recorder`]'s arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(u32);

/// One node of the span tree.
#[derive(Debug, Clone)]
pub struct Span {
    /// Human-readable stage label (`"compile"`, `"fault-sim[par]"`,
    /// `"shard 3"`, …).
    pub label: String,
    /// Accumulated wall-clock time attributed to this span.
    pub wall: Duration,
    /// Counters attributed to this span (own, not subtree).
    pub counters: Counters,
    /// Child spans, in creation order.
    children: Vec<u32>,
    /// Detail spans *decompose* their parent (per-shard breakdowns):
    /// their counters are already accounted for on the parent, so
    /// aggregation and JSON export skip them. Trace rendering shows them.
    pub detail: bool,
    /// For shard detail spans: the shard index.
    pub shard: Option<u32>,
    /// Start time while the span is open on the stack.
    started: Option<Instant>,
}

impl Span {
    fn new(label: String) -> Self {
        Span {
            label,
            wall: Duration::ZERO,
            counters: Counters::new(),
            children: Vec::new(),
            detail: false,
            shard: None,
            started: None,
        }
    }
}

/// The span-tree recorder: an arena of [`Span`]s plus a stack of open
/// spans. Counter adds go to the innermost open span; [`Recorder::enter`]
/// / [`Recorder::exit`] (or [`Recorder::scope`]) bracket stages.
///
/// A recorder built with [`Recorder::disabled`] turns every operation
/// into a no-op, so library entry points can take `&mut Recorder`
/// unconditionally and callers that do not care pay nothing.
#[derive(Debug, Clone)]
pub struct Recorder {
    enabled: bool,
    spans: Vec<Span>,
    stack: Vec<u32>,
}

impl Recorder {
    /// A live recorder whose root span carries `root_label`.
    pub fn new(root_label: impl Into<String>) -> Self {
        let mut root = Span::new(root_label.into());
        root.started = Some(Instant::now());
        Recorder {
            enabled: true,
            spans: vec![root],
            stack: vec![0],
        }
    }

    /// A recorder on which every operation is a no-op.
    pub fn disabled() -> Self {
        Recorder {
            enabled: false,
            spans: vec![Span::new(String::new())],
            stack: vec![0],
        }
    }

    /// Whether this recorder actually records.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The root span.
    pub fn root(&self) -> SpanId {
        SpanId(0)
    }

    /// The innermost open span (the root when nothing else is open).
    pub fn current(&self) -> SpanId {
        SpanId(*self.stack.last().expect("root is never popped"))
    }

    /// Opens a child span under the current one and makes it current.
    /// Returns its id; pass it to [`Recorder::exit`] to close.
    pub fn enter(&mut self, label: impl Into<String>) -> SpanId {
        if !self.enabled {
            return SpanId(0);
        }
        let id = self.spans.len() as u32;
        let mut span = Span::new(label.into());
        span.started = Some(Instant::now());
        self.spans.push(span);
        let parent = self.current().0 as usize;
        self.spans[parent].children.push(id);
        self.stack.push(id);
        SpanId(id)
    }

    /// Closes span `id`, adding its elapsed time to its wall clock.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not the innermost open span (spans close in
    /// strict LIFO order).
    pub fn exit(&mut self, id: SpanId) {
        if !self.enabled {
            return;
        }
        let top = self.stack.pop().expect("root is never popped");
        assert_eq!(top, id.0, "spans must close in LIFO order");
        assert_ne!(top, 0, "the root span cannot be exited");
        let span = &mut self.spans[top as usize];
        if let Some(started) = span.started.take() {
            span.wall += started.elapsed();
        }
    }

    /// Runs `f` inside a fresh child span — the panic-safe convenience
    /// form of [`Recorder::enter`]/[`Recorder::exit`].
    pub fn scope<T>(&mut self, label: impl Into<String>, f: impl FnOnce(&mut Recorder) -> T) -> T {
        let id = self.enter(label);
        let out = f(self);
        self.exit(id);
        out
    }

    /// Adds `n` to counter `c` on the current span.
    #[inline]
    pub fn add(&mut self, c: CounterId, n: u64) {
        if !self.enabled {
            return;
        }
        let cur = self.current().0 as usize;
        self.spans[cur].counters.add(c, n);
    }

    /// Adds `n` to counter `c` on span `id`.
    #[inline]
    pub fn add_to(&mut self, id: SpanId, c: CounterId, n: u64) {
        if !self.enabled {
            return;
        }
        self.spans[id.0 as usize].counters.add(c, n);
    }

    /// Adds externally measured wall time to span `id` (for stages that
    /// time themselves, e.g. one `apply_block` call).
    pub fn add_wall(&mut self, id: SpanId, wall: Duration) {
        if !self.enabled {
            return;
        }
        self.spans[id.0 as usize].wall += wall;
    }

    /// Merges a worker shard's counters under span `parent`:
    ///
    /// * the shard's counters are added to `parent` itself (so aggregate
    ///   totals are shard-independent), and
    /// * a **detail** child labeled `shard <idx>` accumulates the
    ///   per-shard breakdown (same shard across blocks merges into the
    ///   same child).
    ///
    /// Lock-free by construction: each worker owns its [`ShardCounters`]
    /// privately and the merge happens on the owning thread after
    /// `thread::scope` joins.
    pub fn attach_shard(&mut self, parent: SpanId, idx: u32, shard: &ShardCounters) {
        if !self.enabled {
            return;
        }
        self.spans[parent.0 as usize]
            .counters
            .merge(&shard.counters);
        let child = self.find_shard(parent, idx).unwrap_or_else(|| {
            let id = self.spans.len() as u32;
            let mut span = Span::new(format!("shard {idx}"));
            span.detail = true;
            span.shard = Some(idx);
            self.spans.push(span);
            self.spans[parent.0 as usize].children.push(id);
            SpanId(id)
        });
        let s = &mut self.spans[child.0 as usize];
        s.counters.merge(&shard.counters);
        s.wall += shard.wall;
    }

    /// Copies another recorder's whole span tree as a child of `parent`.
    /// Used to graft a self-recording engine's tree into a pipeline-level
    /// recorder. Grafting a disabled recorder is a no-op.
    pub fn graft(&mut self, parent: SpanId, sub: &Recorder) {
        if !self.enabled || !sub.enabled {
            return;
        }
        self.graft_node(parent, sub, 0);
    }

    fn graft_node(&mut self, parent: SpanId, sub: &Recorder, node: u32) {
        let src = &sub.spans[node as usize];
        let id = self.spans.len() as u32;
        let mut span = Span::new(src.label.clone());
        span.wall = src.wall;
        span.counters = src.counters.clone();
        span.detail = src.detail;
        span.shard = src.shard;
        self.spans.push(span);
        self.spans[parent.0 as usize].children.push(id);
        let children = sub.spans[node as usize].children.clone();
        for c in children {
            self.graft_node(SpanId(id), sub, c);
        }
    }

    /// The span behind an id.
    pub fn span(&self, id: SpanId) -> &Span {
        &self.spans[id.0 as usize]
    }

    /// A span's own counters (excluding children).
    pub fn span_counters(&self, id: SpanId) -> &Counters {
        &self.spans[id.0 as usize].counters
    }

    /// A span's accumulated wall time. For a still-open span this is the
    /// time recorded so far (closed children / explicit `add_wall`).
    pub fn span_wall(&self, id: SpanId) -> Duration {
        self.spans[id.0 as usize].wall
    }

    /// The non-detail children of `id`, in creation order.
    pub fn children(&self, id: SpanId) -> impl Iterator<Item = SpanId> + '_ {
        self.spans[id.0 as usize]
            .children
            .iter()
            .copied()
            .filter(|&c| !self.spans[c as usize].detail)
            .map(SpanId)
    }

    /// The first non-detail child of `id` labeled `label` (direct
    /// children only).
    pub fn find(&self, id: SpanId, label: &str) -> Option<SpanId> {
        self.children(id)
            .find(|&c| self.spans[c.0 as usize].label == label)
    }

    /// The detail child of `id` covering shard `idx`, if any.
    pub fn find_shard(&self, id: SpanId, idx: u32) -> Option<SpanId> {
        self.spans[id.0 as usize]
            .children
            .iter()
            .copied()
            .find(|&c| self.spans[c as usize].shard == Some(idx))
            .map(SpanId)
    }

    /// Counter `c` of the detail child covering shard `idx` under `id`
    /// (0 when the shard never reported).
    pub fn shard_counter(&self, id: SpanId, idx: u32, c: CounterId) -> u64 {
        self.find_shard(id, idx)
            .map(|s| self.spans[s.0 as usize].counters.get(c))
            .unwrap_or(0)
    }

    /// Sum of counter `c` over span `id` and its non-detail descendants.
    /// Detail spans are a parallel decomposition of their parent, not
    /// additional work, so they are excluded — the total is independent
    /// of the worker-thread count.
    pub fn subtree_total(&self, id: SpanId, c: CounterId) -> u64 {
        let span = &self.spans[id.0 as usize];
        let mut total = span.counters.get(c);
        for &child in &span.children {
            if !self.spans[child as usize].detail {
                total += self.subtree_total(SpanId(child), c);
            }
        }
        total
    }

    /// Aggregate counters over the whole tree (detail spans excluded).
    pub fn aggregate(&self) -> Counters {
        let mut out = Counters::new();
        for span in &self.spans {
            if !span.detail {
                out.merge(&span.counters);
            }
        }
        out
    }

    /// Closes the root's implicit timer, folding time since construction
    /// into the root span's wall clock. Call once, just before export.
    pub fn finish(&mut self) {
        if !self.enabled {
            return;
        }
        assert_eq!(self.stack.len(), 1, "all spans must be closed at finish");
        let root = &mut self.spans[0];
        if let Some(started) = root.started.take() {
            root.wall += started.elapsed();
        }
    }

    /// Serializes the span tree as deterministic JSON.
    ///
    /// The export carries **only deterministic counters** and skips
    /// detail (per-shard) spans, so the output is byte-identical across
    /// thread counts and machines; `include_wall` additionally controls
    /// whether `wall_ns` fields (the only nondeterministic content) are
    /// emitted. Schema: `bibs-telemetry/1`.
    pub fn to_json(&self, include_wall: bool) -> String {
        let mut out = String::from("{\"schema\":\"bibs-telemetry/1\",\"root\":");
        self.span_json(&mut out, 0, include_wall);
        out.push_str("}\n");
        out
    }

    fn span_json(&self, out: &mut String, node: u32, include_wall: bool) {
        let span = &self.spans[node as usize];
        out.push_str("{\"label\":");
        json::write_string(out, &span.label);
        if include_wall {
            let _ = write!(out, ",\"wall_ns\":{}", span.wall.as_nanos());
        }
        out.push_str(",\"counters\":{");
        let mut first = true;
        for (id, v) in span.counters.iter_nonzero() {
            if !id.is_deterministic() {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\"{}\":{v}", id.name());
        }
        out.push_str("},\"children\":[");
        let mut first = true;
        for &child in &span.children {
            if self.spans[child as usize].detail {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            self.span_json(out, child, include_wall);
        }
        out.push_str("]}");
    }

    /// Renders the span tree for humans (the `BIBS_TRACE=spans` output):
    /// one indented line per span — including per-shard detail spans —
    /// with wall time and nonzero counters.
    pub fn render_spans(&self) -> String {
        let mut out = String::new();
        self.render_span(&mut out, 0, 0);
        out
    }

    fn render_span(&self, out: &mut String, node: u32, depth: usize) {
        let span = &self.spans[node as usize];
        let _ = write!(
            out,
            "{:indent$}{} — {:.3} ms",
            "",
            if span.label.is_empty() {
                "(root)"
            } else {
                &span.label
            },
            span.wall.as_secs_f64() * 1e3,
            indent = depth * 2
        );
        for (id, v) in span.counters.iter_nonzero() {
            let _ = write!(out, ", {}={v}", id.name());
        }
        out.push('\n');
        for &child in &span.children {
            self.render_span(out, child, depth + 1);
        }
    }

    /// Renders the aggregate counters for humans (the
    /// `BIBS_TRACE=counters` output): one `name = value` line per nonzero
    /// counter, plus the root wall clock.
    pub fn render_counters(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "wall = {:.3} ms",
            self.spans[0].wall.as_secs_f64() * 1e3
        );
        for (id, v) in self.aggregate().iter_nonzero() {
            let _ = writeln!(out, "{} = {v}", id.name());
        }
        out
    }
}

/// The `BIBS_TRACE` environment knob: what the bench bins print to stderr
/// after a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceMode {
    /// Print nothing (the default).
    #[default]
    Off,
    /// Print the aggregate counters ([`Recorder::render_counters`]).
    Counters,
    /// Print the full span tree ([`Recorder::render_spans`]).
    Spans,
}

impl TraceMode {
    /// Parses a `BIBS_TRACE` value. Unknown values fall back to `Off` —
    /// a pure function, unit-testable without touching the environment.
    pub fn parse(value: Option<&str>) -> TraceMode {
        match value.map(str::trim) {
            Some("spans") => TraceMode::Spans,
            Some("counters") => TraceMode::Counters,
            _ => TraceMode::Off,
        }
    }

    /// Reads `BIBS_TRACE` from the environment.
    pub fn from_env() -> TraceMode {
        TraceMode::parse(std::env::var("BIBS_TRACE").ok().as_deref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_names_are_unique_and_ordered() {
        let names: Vec<&str> = CounterId::ALL.iter().map(|c| c.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), COUNTER_COUNT, "duplicate counter name");
        for (i, c) in CounterId::ALL.iter().enumerate() {
            assert_eq!(*c as usize, i, "ALL must match the discriminant order");
        }
    }

    #[test]
    fn counters_add_get_merge() {
        let mut a = Counters::new();
        a.add(CounterId::GateEvals, 10);
        a.add(CounterId::GateEvals, 5);
        let mut b = Counters::new();
        b.add(CounterId::GateEvals, 1);
        b.add(CounterId::Blocks, 2);
        a.merge(&b);
        assert_eq!(a.get(CounterId::GateEvals), 16);
        assert_eq!(a.get(CounterId::Blocks), 2);
        assert_eq!(a.iter_nonzero().count(), 2);
        assert!(!a.is_zero());
        assert!(Counters::new().is_zero());
    }

    #[test]
    fn span_tree_structure_and_totals() {
        let mut rec = Recorder::new("root");
        rec.add(CounterId::Blocks, 1);
        let a = rec.enter("compile");
        rec.add(CounterId::Instructions, 100);
        rec.exit(a);
        let b = rec.enter("fault-sim");
        rec.add(CounterId::FaultEvals, 40);
        let mut s0 = ShardCounters::new();
        s0.add(CounterId::FaultEvals, 30);
        s0.add(CounterId::QueuePops, 3);
        let mut s1 = ShardCounters::new();
        s1.add(CounterId::FaultEvals, 10);
        rec.attach_shard(b, 0, &s0);
        rec.attach_shard(b, 1, &s1);
        rec.exit(b);
        rec.finish();

        // Shard counters land on the parent and on detail children.
        assert_eq!(rec.span_counters(b).get(CounterId::FaultEvals), 80);
        assert_eq!(rec.shard_counter(b, 0, CounterId::FaultEvals), 30);
        assert_eq!(rec.shard_counter(b, 1, CounterId::FaultEvals), 10);
        assert_eq!(rec.shard_counter(b, 2, CounterId::FaultEvals), 0);
        // Detail spans are excluded from aggregation.
        assert_eq!(rec.subtree_total(rec.root(), CounterId::FaultEvals), 80);
        assert_eq!(rec.subtree_total(rec.root(), CounterId::Instructions), 100);
        assert_eq!(rec.aggregate().get(CounterId::FaultEvals), 80);
        assert_eq!(rec.find(rec.root(), "compile"), Some(a));
        assert_eq!(rec.find(rec.root(), "nope"), None);
        // Non-detail children skip the shards.
        assert_eq!(rec.children(b).count(), 0);
    }

    #[test]
    fn attach_shard_merges_same_index_across_blocks() {
        let mut rec = Recorder::new("r");
        let mut s = ShardCounters::new();
        s.add(CounterId::FaultEvals, 5);
        rec.attach_shard(rec.root(), 0, &s);
        rec.attach_shard(rec.root(), 0, &s);
        assert_eq!(rec.shard_counter(rec.root(), 0, CounterId::FaultEvals), 10);
        // Only one detail child was created.
        assert_eq!(rec.span(rec.root()).children.len(), 1);
    }

    #[test]
    fn json_export_is_deterministic_and_skips_detail() {
        let build = |shards: u32| {
            let mut rec = Recorder::new("run");
            rec.add(CounterId::Blocks, 7);
            let f = rec.enter("fault-sim");
            for i in 0..shards {
                let mut s = ShardCounters::new();
                s.add(CounterId::FaultEvals, 60 / shards as u64);
                s.add(CounterId::QueuePops, i as u64 + 1);
                rec.attach_shard(f, i, &s);
            }
            rec.exit(f);
            rec.finish();
            rec.to_json(false)
        };
        let j2 = build(2);
        let j4 = build(4);
        assert_eq!(
            j2, j4,
            "export must be identical across shard counts once walls are stripped"
        );
        assert!(
            !j2.contains("queue_pops"),
            "nondeterministic counter leaked"
        );
        assert!(!j2.contains("shard"), "detail span leaked");
        assert!(!j2.contains("wall_ns"));
        assert!(build(1).contains("\"fault_evals\":60"));
        // With walls on, the field appears.
        let mut rec = Recorder::new("run");
        rec.finish();
        assert!(rec.to_json(true).contains("\"wall_ns\":"));
    }

    #[test]
    fn graft_copies_subtree() {
        let mut engine = Recorder::new("fault-sim[par]");
        let c = engine.enter("compile");
        engine.add(CounterId::Instructions, 9);
        engine.exit(c);
        let mut s = ShardCounters::new();
        s.add(CounterId::FaultEvals, 4);
        engine.attach_shard(engine.root(), 0, &s);
        engine.finish();

        let mut rec = Recorder::new("kernel 0");
        rec.graft(rec.root(), &engine);
        rec.finish();
        let grafted = rec.find(rec.root(), "fault-sim[par]").expect("grafted");
        assert_eq!(rec.span_counters(grafted).get(CounterId::FaultEvals), 4);
        assert_eq!(rec.subtree_total(rec.root(), CounterId::Instructions), 9);
        assert_eq!(rec.shard_counter(grafted, 0, CounterId::FaultEvals), 4);
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let mut rec = Recorder::disabled();
        let s = rec.enter("x");
        rec.add(CounterId::GateEvals, 100);
        rec.attach_shard(s, 0, &ShardCounters::new());
        rec.exit(s);
        rec.finish();
        assert!(!rec.is_enabled());
        assert!(rec.aggregate().is_zero());
        assert_eq!(rec.spans.len(), 1);
    }

    #[test]
    fn scope_closes_on_return() {
        let mut rec = Recorder::new("r");
        let out = rec.scope("inner", |r| {
            r.add(CounterId::CaseSplits, 3);
            42
        });
        assert_eq!(out, 42);
        assert_eq!(rec.current(), rec.root());
        let inner = rec.find(rec.root(), "inner").unwrap();
        assert_eq!(rec.span_counters(inner).get(CounterId::CaseSplits), 3);
    }

    #[test]
    #[should_panic(expected = "LIFO")]
    fn out_of_order_exit_panics() {
        let mut rec = Recorder::new("r");
        let a = rec.enter("a");
        let _b = rec.enter("b");
        rec.exit(a);
    }

    #[test]
    fn trace_mode_parses() {
        assert_eq!(TraceMode::parse(None), TraceMode::Off);
        assert_eq!(TraceMode::parse(Some("off")), TraceMode::Off);
        assert_eq!(TraceMode::parse(Some("spans")), TraceMode::Spans);
        assert_eq!(TraceMode::parse(Some(" counters ")), TraceMode::Counters);
        assert_eq!(TraceMode::parse(Some("bogus")), TraceMode::Off);
    }

    #[test]
    fn render_shows_shards_and_counters() {
        let mut rec = Recorder::new("run");
        let f = rec.enter("fault-sim");
        let mut s = ShardCounters::new();
        s.add(CounterId::FaultEvals, 8);
        s.add(CounterId::QueuePops, 2);
        rec.attach_shard(f, 0, &s);
        rec.exit(f);
        rec.finish();
        let spans = rec.render_spans();
        assert!(spans.contains("shard 0"));
        assert!(spans.contains("queue_pops=2"));
        let counters = rec.render_counters();
        assert!(counters.contains("fault_evals = 8"));
        assert!(counters.contains("wall ="));
    }

    #[test]
    fn exported_json_round_trips_through_the_parser() {
        let mut rec = Recorder::new("run");
        rec.add(CounterId::GateEvals, 123);
        let a = rec.enter("stage \"quoted\"");
        rec.add(CounterId::Blocks, 1);
        rec.exit(a);
        rec.finish();
        let v = json::parse(&rec.to_json(true)).expect("valid JSON");
        let root = v.get("root").expect("root");
        assert_eq!(root.get("label").and_then(json::Value::as_str), Some("run"));
        assert_eq!(
            root.get("counters")
                .and_then(|c| c.get("gate_evals"))
                .and_then(json::Value::as_u64),
            Some(123)
        );
        let children = root
            .get("children")
            .and_then(json::Value::as_array)
            .unwrap();
        assert_eq!(
            children[0].get("label").and_then(json::Value::as_str),
            Some("stage \"quoted\"")
        );
    }
}
