//! Regression tests pinning the edge-case behavior of
//! [`FaultSimReport::patterns_for_detectable_coverage`] (referenced from
//! its doc comment): fraction 0.0, fractions above 1.0, the empty fault
//! list, and all-undetectable fault lists — for both engines.

use bibs_faultsim::fault::{Fault, FaultUniverse};
use bibs_faultsim::par::ParFaultSimulator;
use bibs_faultsim::sim::{BlockSim, FaultSimulator};
use bibs_netlist::builder::NetlistBuilder;
use bibs_netlist::Netlist;

fn adder4() -> Netlist {
    let mut b = NetlistBuilder::new("add4");
    let a = b.input_word("a", 4);
    let c = b.input_word("b", 4);
    let (s, co) = b.ripple_carry_adder(&a, &c, None);
    b.output_word("s", &s);
    b.output("co", co);
    b.finish().unwrap()
}

/// y = a AND (NOT a) is constant 0, so its output's sa0 is undetectable.
fn redundant_netlist() -> Netlist {
    let mut b = NetlistBuilder::new("red");
    let a = b.input("a");
    let na = b.not(a);
    let y = b.and2(a, na);
    b.output("y", y);
    b.finish().unwrap()
}

#[test]
fn fraction_zero_still_demands_one_detection() {
    let nl = adder4();
    let faults = FaultUniverse::collapsed(&nl).faults().to_vec();
    let report = FaultSimulator::new(&nl, faults).run_exhaustive();
    // fraction 0.0 clamps to "at least one detection": the answer is the
    // earliest first-detection index + 1, and never 0.
    let p0 = report.patterns_for_detectable_coverage(0.0).unwrap();
    let earliest = report.detection().iter().flatten().min().copied().unwrap();
    assert_eq!(p0, earliest + 1);
    assert!(p0 >= 1);
    // Negative fractions behave identically.
    assert_eq!(report.patterns_for_detectable_coverage(-3.5), Some(p0));
}

#[test]
fn fraction_above_one_acts_like_full_coverage() {
    let nl = adder4();
    let faults = FaultUniverse::collapsed(&nl).faults().to_vec();
    let report = FaultSimulator::new(&nl, faults).run_exhaustive();
    let p100 = report.patterns_for_detectable_coverage(1.0);
    assert_eq!(report.patterns_for_detectable_coverage(1.5), p100);
    assert_eq!(report.patterns_for_detectable_coverage(f64::INFINITY), p100);
}

#[test]
fn empty_fault_list_has_full_coverage_and_no_pattern_count() {
    let nl = adder4();
    for threads in [1usize, 4] {
        let report = ParFaultSimulator::with_threads(&nl, Vec::new(), threads).run_exhaustive();
        assert_eq!(report.faults().len(), 0);
        assert_eq!(report.detected_count(), 0);
        // Vacuous coverage is complete…
        assert!((report.coverage() - 1.0).abs() < f64::EPSILON);
        // …but there is no pattern count that "achieves" it.
        assert_eq!(report.patterns_for_detectable_coverage(0.0), None);
        assert_eq!(report.patterns_for_detectable_coverage(0.995), None);
        assert_eq!(report.patterns_for_detectable_coverage(1.0), None);
    }
    // The serial engine agrees.
    let report = FaultSimulator::new(&nl, Vec::new()).run_exhaustive();
    assert_eq!(report.patterns_for_detectable_coverage(1.0), None);
}

#[test]
fn all_undetectable_list_reports_none_for_every_fraction() {
    let nl = redundant_netlist();
    let faults = vec![Fault::net_sa0(nl.outputs()[0])];
    for threads in [1usize, 3] {
        let report = ParFaultSimulator::with_threads(&nl, faults.clone(), threads).run_exhaustive();
        assert_eq!(report.detected_count(), 0);
        assert_eq!(report.undetected().len(), 1);
        assert_eq!(report.coverage(), 0.0);
        for fraction in [0.0, 0.5, 0.995, 1.0, 2.0] {
            assert_eq!(report.patterns_for_detectable_coverage(fraction), None);
        }
    }
}

#[test]
fn fraction_interpolates_between_detections() {
    // Hand-built detection timeline via an explicit pattern run: an AND
    // gate's output sa0 falls only at (1,1); its sa1 falls at any other
    // pattern. Detections land at distinct indices, so fractions pick
    // distinct prefixes.
    let mut b = NetlistBuilder::new("and");
    let a = b.input("a");
    let c = b.input("b");
    let y = b.and2(a, c);
    b.output("y", y);
    let nl = b.finish().unwrap();
    let faults = vec![
        Fault::net_sa1(nl.outputs()[0]),
        Fault::net_sa0(nl.outputs()[0]),
    ];
    let mut sim = FaultSimulator::new(&nl, faults);
    // Pattern 0 = (0,0) detects sa1; pattern 2 = (1,1) detects sa0.
    let report = sim.run_patterns(&[vec![false, false], vec![true, false], vec![true, true]]);
    assert_eq!(report.detection(), &[Some(0), Some(2)]);
    assert_eq!(report.patterns_for_detectable_coverage(0.5), Some(1));
    assert_eq!(report.patterns_for_detectable_coverage(1.0), Some(3));
}
