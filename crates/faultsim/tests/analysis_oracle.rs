//! Correctness oracle for the semantic analyses: every static claim the
//! analysis layer makes is cross-checked against exhaustive simulation.
//!
//! Three invariants, each checked on small builtins (ripple-carry adders
//! up to 8 bits, the kernels BIBS extracts from `circuits/fig4.ckt` and
//! the Figure 9 datapath) plus a deterministic family of ~30 random gate
//! DAGs and a proptest:
//!
//! 1. **Zero false "untestable" claims** — no fault the
//!    [`StaticFaultAnalysis`] prover rules statically untestable is ever
//!    detected by exhaustive simulation of the full fault universe;
//! 2. **Exact dominance expansion** — simulating only dominance-class
//!    representatives and expanding through the representative map
//!    reproduces the full universe's detection vector *bit for bit*;
//! 3. **Sound ternary constants** — every net the ternary abstraction
//!    proves constant under a random primary-input pinning really holds
//!    that value in 64-way concrete simulation of random pinned blocks.

use bibs_faultsim::fault::{FaultUniverse, StaticFaultAnalysis};
use bibs_faultsim::sim::{BlockSim, FaultSimulator};
use bibs_netlist::analysis::{ternary_analyze, PiAssumption};
use bibs_netlist::builder::NetlistBuilder;
use bibs_netlist::{EvalProgram, Netlist};
use bibs_rtl::VertexKind;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

// ---------------------------------------------------------------- corpus

fn adder(bits: usize) -> Netlist {
    let mut b = NetlistBuilder::new(format!("add{bits}"));
    let x = b.input_word("x", bits);
    let y = b.input_word("y", bits);
    let (s, co) = b.ripple_carry_adder(&x, &y, None);
    b.output_word("s", &s);
    b.output("co", co);
    b.finish().expect("adder is well-formed")
}

/// The logic-bearing kernels BIBS extracts from a paper circuit.
fn circuit_kernels(circuit: &bibs_rtl::Circuit) -> Vec<Netlist> {
    let r = bibs_core::bibs::select(circuit, &bibs_core::bibs::BibsOptions::default())
        .expect("paper circuits are IO-registered");
    let cut: HashSet<_> = r.design.bilbo.union(&r.design.cbilbo).copied().collect();
    bibs_core::design::kernels(&r.circuit, &r.design)
        .into_iter()
        .filter(|k| {
            k.vertices
                .iter()
                .any(|&v| r.circuit.vertex(v).kind == VertexKind::Logic)
        })
        .map(|k| {
            let kset: HashSet<_> = k.vertices.iter().copied().collect();
            bibs_datapath::elab::elaborate_kernel(&r.circuit, &kset, &cut)
                .expect("paper kernel elaborates")
                .netlist
                .combinational_equivalent()
        })
        .collect()
}

fn fig4_kernels() -> Vec<Netlist> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../circuits/fig4.ckt");
    let text = std::fs::read_to_string(path).expect("circuits/fig4.ckt is part of the repo");
    let circuit = bibs_rtl::fmt::from_text(&text).expect("fig4.ckt parses");
    circuit_kernels(&circuit)
}

/// A deterministic random gate DAG from the shared generator.
fn random_netlist(seed: u64, inputs: usize, ops: usize) -> Netlist {
    bibs_netlist::testgen::random_netlist_seeded(seed, inputs, ops)
}

/// The oracle corpus: everything exhaustible (≤ 16 PI bits).
fn corpus() -> Vec<Netlist> {
    let mut all = vec![adder(2), adder(4), adder(8)];
    all.extend(fig4_kernels());
    all.extend(
        circuit_kernels(&bibs_datapath::fig9::figure9())
            .into_iter()
            .filter(|nl| nl.input_width() <= 16),
    );
    for seed in 0..30u64 {
        all.push(random_netlist(
            0x0A11_5EED ^ seed,
            2 + (seed as usize % 7),
            3 + (seed as usize % 23),
        ));
    }
    all.retain(|nl| nl.input_width() <= 16);
    assert!(all.len() >= 33, "corpus unexpectedly small: {}", all.len());
    all
}

// --------------------------------------------------------------- oracles

/// Invariant 1: the prover never calls a detectable fault untestable.
#[test]
fn static_untestable_faults_are_never_detected_exhaustively() {
    let mut verdicts = 0usize;
    for nl in corpus() {
        let program = EvalProgram::compile(&nl).expect("corpus is combinational");
        let sfa = StaticFaultAnalysis::new(&program);
        let universe = FaultUniverse::full(&nl);
        let (_, untestable) = sfa.partition(&program, universe.faults());
        verdicts += untestable.len();
        if untestable.is_empty() {
            continue;
        }
        let faults: Vec<_> = untestable.iter().map(|(f, _)| *f).collect();
        let report = FaultSimulator::new(&nl, faults.clone()).run_exhaustive();
        for (i, det) in report.detection().iter().enumerate() {
            assert!(
                det.is_none(),
                "{}: fault {} proven untestable ({}) but detected at pattern {}",
                nl.name(),
                faults[i],
                untestable[i].1.witness,
                det.unwrap()
            );
        }
    }
    // The corpus must actually exercise the prover.
    assert!(verdicts > 0, "corpus produced no untestable verdicts");
}

/// Invariant 2: dominance expansion reproduces the full universe's
/// detection vector exactly, for both the full and the equivalence-
/// collapsed starting lists.
#[test]
fn dominance_expansion_is_exact_on_exhaustive_streams() {
    let mut merged_anywhere = false;
    for nl in corpus() {
        let program = EvalProgram::compile(&nl).expect("corpus is combinational");
        for universe in [FaultUniverse::full(&nl), FaultUniverse::collapsed(&nl)] {
            let direct = FaultSimulator::new(&nl, universe.faults().to_vec()).run_exhaustive();
            let dc = universe.dominance_collapsed(&program);
            merged_anywhere |= dc.rep_count() < dc.universe_len();
            let reps = FaultSimulator::new(&nl, dc.representative_faults()).run_exhaustive();
            let expanded = dc.expand_detection(reps.detection());
            assert_eq!(
                expanded,
                direct.detection().to_vec(),
                "{}: dominance expansion diverged from direct simulation",
                nl.name()
            );
        }
    }
    assert!(merged_anywhere, "corpus never exercised a dominance merge");
}

/// Evaluates `program` on `blocks` random 64-lane input blocks honouring
/// `pins` and asserts that each slot claimed constant holds its value in
/// every lane of every block.
fn check_constants_against_simulation(
    nl: &Netlist,
    pins: &[Option<bool>],
    blocks: usize,
    seed: u64,
) {
    let program = EvalProgram::compile(nl).expect("combinational");
    let abs = ternary_analyze(&program, &PiAssumption::Pinned(pins.to_vec()));
    let claims: Vec<(usize, bool)> = abs.constants().collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut values = program.new_values();
    let mut inputs = vec![0u64; program.input_slots().len()];
    for _ in 0..blocks {
        for (w, pin) in inputs.iter_mut().zip(pins) {
            *w = match pin {
                Some(true) => !0u64,
                Some(false) => 0u64,
                None => rng.gen(),
            };
        }
        program.eval_good(&mut values, &inputs);
        for &(slot, value) in &claims {
            let want = if value { !0u64 } else { 0u64 };
            assert_eq!(
                values[slot],
                want,
                "{}: slot {slot} claimed constant {value} but simulation disagrees",
                nl.name()
            );
        }
    }
}

/// Invariant 3 (deterministic sweep): ternary constants under all-X and
/// under every-PI-pinned agree with concrete simulation on the corpus.
#[test]
fn ternary_constants_agree_with_simulation_on_corpus() {
    for nl in corpus() {
        let width = nl.input_width();
        let all_x: Vec<Option<bool>> = vec![None; width];
        check_constants_against_simulation(&nl, &all_x, 8, 0xC0FF_EE00);
        // One arbitrary full pinning: everything becomes constant, so the
        // claims cover every net and the check is maximally strict.
        let pinned: Vec<Option<bool>> = (0..width).map(|i| Some(i % 3 == 0)).collect();
        check_constants_against_simulation(&nl, &pinned, 2, 0xC0FF_EE01);
    }
}

// -------------------------------------------------------------- proptest

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Invariant 3 (random): on random DAGs under random partial pinnings,
    /// every ternary constant claim survives random 64-lane simulation.
    #[test]
    fn ternary_constants_sound_under_random_pinnings(
        seed in any::<u64>(),
        pin_seed in any::<u64>(),
    ) {
        let nl = random_netlist(seed, 2 + (seed % 6) as usize, 4 + (seed % 20) as usize);
        let mut rng = StdRng::seed_from_u64(pin_seed);
        let pins: Vec<Option<bool>> = (0..nl.input_width())
            .map(|_| match rng.gen_range(0..3u32) {
                0 => Some(false),
                1 => Some(true),
                _ => None,
            })
            .collect();
        check_constants_against_simulation(&nl, &pins, 6, pin_seed ^ 0xDEAD);
    }
}
