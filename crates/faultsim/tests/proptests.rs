//! Property-based tests for the fault machinery: PODEM soundness against
//! the fault simulator, collapsing soundness, observability filtering.

use bibs_faultsim::atpg::{Atpg, AtpgResult};
use bibs_faultsim::fault::FaultUniverse;
use bibs_faultsim::sim::{BlockSim, FaultSimulator};
use bibs_netlist::Netlist;
use proptest::prelude::*;

/// Random combinational netlists from the shared generator; small DAGs so
/// exhaustive simulation stays cheap.
fn netlist_strategy() -> impl Strategy<Value = Netlist> {
    bibs_netlist::testgen::netlist_strategy_sized(8, 25)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// PODEM agrees with exhaustive fault simulation on detectability,
    /// and every generated test actually detects its fault.
    #[test]
    fn podem_matches_exhaustive_ground_truth(nl in netlist_strategy()) {
        let universe = FaultUniverse::collapsed(&nl);
        let mut atpg = Atpg::new(&nl);
        for &fault in universe.faults().iter().take(40) {
            let verdict = atpg.generate(fault, 50_000);
            let mut sim = FaultSimulator::new(&nl, vec![fault]);
            let truth = sim.run_exhaustive().detected_count() == 1;
            match verdict {
                AtpgResult::Test(t) => {
                    prop_assert!(truth, "PODEM found a test for undetectable {fault}");
                    let pattern: Vec<bool> = t.iter().map(|v| v.unwrap_or(false)).collect();
                    let mut replay = FaultSimulator::new(&nl, vec![fault]);
                    let rep = replay.run_patterns(&[pattern]);
                    prop_assert_eq!(rep.detected_count(), 1, "test must detect {}", fault);
                }
                AtpgResult::Redundant => {
                    prop_assert!(!truth, "PODEM called detectable {fault} redundant");
                }
                AtpgResult::Aborted => {} // inconclusive is allowed
            }
        }
    }

    /// Fault collapsing never changes overall detectability counts:
    /// exhaustive coverage of the collapsed set detects everything the
    /// full set detects, per equivalence classes (checked via totals of
    /// undetected = redundant faults).
    #[test]
    fn collapsing_preserves_redundancy_structure(nl in netlist_strategy()) {
        let full = FaultUniverse::full(&nl);
        let collapsed = FaultUniverse::collapsed(&nl);
        prop_assert!(collapsed.len() <= full.len());
        // Every collapsed fault appears in the full set.
        for f in collapsed.faults() {
            prop_assert!(full.faults().contains(f));
        }
        // Exhaustive detectability fractions: a collapsed representative is
        // detectable iff its class members are; spot-check that collapsed
        // coverage is 100% whenever full coverage is.
        let mut sim_full = FaultSimulator::new(&nl, full.faults().to_vec());
        let full_cov = sim_full.run_exhaustive();
        let mut sim_col = FaultSimulator::new(&nl, collapsed.faults().to_vec());
        let col_cov = sim_col.run_exhaustive();
        if full_cov.undetected().is_empty() {
            prop_assert!(col_cov.undetected().is_empty());
        }
    }

    /// The observability split is sound: structurally unobservable faults
    /// are never detected, even exhaustively.
    #[test]
    fn unobservable_faults_are_undetectable(nl in netlist_strategy()) {
        let universe = FaultUniverse::collapsed(&nl);
        let program = bibs_netlist::EvalProgram::compile(&nl).unwrap();
        let (_, unobservable) = universe.split_by_observability(&program);
        if !unobservable.is_empty() {
            let mut sim = FaultSimulator::new(&nl, unobservable);
            let report = sim.run_exhaustive();
            prop_assert_eq!(report.detected_count(), 0);
        }
    }

    /// Detection indices reported by the simulator are faithful: replaying
    /// exactly that many exhaustive patterns detects the fault, and one
    /// fewer does not... (monotonicity of the first-detection index).
    #[test]
    fn detection_indices_are_first_detections(nl in netlist_strategy()) {
        let universe = FaultUniverse::collapsed(&nl);
        let faults: Vec<_> = universe.faults().iter().copied().take(10).collect();
        let mut sim = FaultSimulator::new(&nl, faults.clone());
        let report = sim.run_exhaustive();
        let width = nl.input_width();
        for (i, det) in report.detection().iter().enumerate() {
            if let Some(idx) = det {
                // Replay patterns 0..=idx in order; the fault must fall at
                // exactly pattern idx.
                let patterns: Vec<Vec<bool>> = (0..=*idx)
                    .map(|p| (0..width).map(|b| (p >> b) & 1 == 1).collect())
                    .collect();
                let mut replay = FaultSimulator::new(&nl, vec![faults[i]]);
                let rep = replay.run_patterns(&patterns);
                prop_assert_eq!(rep.detection()[0], Some(*idx));
            }
        }
    }
}
