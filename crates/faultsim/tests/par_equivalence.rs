//! Serial/parallel equivalence: the parallel engine must produce reports
//! **bit-identical** to the serial reference — same `detection()` vector
//! (every first-detection pattern index), same `patterns_applied()` —
//! for every circuit, seed and thread count. This is the contract that
//! makes `BIBS_JOBS` a pure wall-clock knob.
//!
//! Covered here: ripple-carry adders, array multipliers, the kernels
//! BIBS extracts from `circuits/fig4.ckt` (the paper's running example),
//! and a proptest over random gate DAGs.

use bibs_faultsim::fault::{Fault, FaultUniverse};
use bibs_faultsim::par::ParFaultSimulator;
use bibs_faultsim::sim::{BlockSim, FaultSimulator};
use bibs_netlist::builder::NetlistBuilder;
use bibs_netlist::Netlist;
use bibs_rtl::VertexKind;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;

const THREADS: [usize; 4] = [1, 2, 4, 8];
const SEEDS: [u64; 3] = [1, 0xB1B5, 0x51B5_1994];

/// Runs both engines over the same streams and asserts bit-identical
/// reports: exhaustively (when feasible) and over every `SEEDS` random
/// stream, for every `THREADS` count.
fn assert_engines_equivalent(netlist: &Netlist, faults: &[Fault], max_patterns: u64) {
    let exhaustive_ok = netlist.input_width() <= 16;
    let serial_ex =
        exhaustive_ok.then(|| FaultSimulator::new(netlist, faults.to_vec()).run_exhaustive());
    for &threads in &THREADS {
        if let Some(serial) = &serial_ex {
            let par =
                ParFaultSimulator::with_threads(netlist, faults.to_vec(), threads).run_exhaustive();
            assert_eq!(
                serial.detection(),
                par.detection(),
                "exhaustive detection mismatch at {threads} thread(s)"
            );
            assert_eq!(serial.patterns_applied(), par.patterns_applied());
        }
        for &seed in &SEEDS {
            let mut rng = StdRng::seed_from_u64(seed);
            let serial =
                FaultSimulator::new(netlist, faults.to_vec()).run_random(&mut rng, max_patterns);
            let mut rng = StdRng::seed_from_u64(seed);
            let par = ParFaultSimulator::with_threads(netlist, faults.to_vec(), threads)
                .run_random(&mut rng, max_patterns);
            assert_eq!(
                serial.detection(),
                par.detection(),
                "random-stream detection mismatch at {threads} thread(s), seed {seed:#x}"
            );
            assert_eq!(serial.patterns_applied(), par.patterns_applied());
            assert_eq!(par.stats().threads, threads);
            assert_eq!(
                par.stats().per_shard_fault_evals.iter().sum::<u64>(),
                par.stats().fault_evals,
                "shard accounting must add up"
            );
        }
    }
}

fn adder(width: usize) -> Netlist {
    let mut b = NetlistBuilder::new("add");
    let a = b.input_word("a", width);
    let c = b.input_word("b", width);
    let (s, co) = b.ripple_carry_adder(&a, &c, None);
    b.output_word("s", &s);
    b.output("co", co);
    b.finish().unwrap()
}

fn multiplier(width: usize) -> Netlist {
    let mut b = NetlistBuilder::new("mul");
    let a = b.input_word("a", width);
    let c = b.input_word("b", width);
    let p = b.array_multiplier(&a, &c, 2 * width);
    b.output_word("p", &p[..width]);
    b.finish().unwrap()
}

#[test]
fn adders_are_equivalent_across_threads_and_seeds() {
    for width in [4usize, 8] {
        let nl = adder(width);
        let faults = FaultUniverse::collapsed(&nl).faults().to_vec();
        assert_engines_equivalent(&nl, &faults, 20_000);
    }
}

#[test]
fn array_multipliers_are_equivalent_across_threads_and_seeds() {
    for width in [3usize, 4] {
        let nl = multiplier(width);
        let faults = FaultUniverse::collapsed(&nl).faults().to_vec();
        assert_engines_equivalent(&nl, &faults, 20_000);
    }
}

#[test]
fn redundant_faults_stay_equivalently_undetected() {
    // y = a AND (NOT a) is constant 0 — its output sa0 is undetectable,
    // so neither engine may ever drop it.
    let mut b = NetlistBuilder::new("red");
    let a = b.input("a");
    let na = b.not(a);
    let y = b.and2(a, na);
    b.output("y", y);
    let nl = b.finish().unwrap();
    let faults = vec![Fault::net_sa0(nl.outputs()[0])];
    assert_engines_equivalent(&nl, &faults, 5_000);
}

#[test]
fn run_random_until_is_equivalent() {
    let nl = multiplier(4);
    let faults = FaultUniverse::collapsed(&nl).faults().to_vec();
    for &threads in &THREADS {
        let mut rng = StdRng::seed_from_u64(77);
        let serial =
            FaultSimulator::new(&nl, faults.clone()).run_random_until(&mut rng, 0.9, 50_000);
        let mut rng = StdRng::seed_from_u64(77);
        let par = ParFaultSimulator::with_threads(&nl, faults.clone(), threads)
            .run_random_until(&mut rng, 0.9, 50_000);
        assert_eq!(serial.detection(), par.detection());
        assert_eq!(serial.patterns_applied(), par.patterns_applied());
    }
}

/// The kernels the BIBS TDM extracts from the paper's Fig. 4 circuit,
/// elaborated to gates and converted to their combinational equivalents —
/// the realistic workload the engine exists for.
fn fig4_kernels() -> Vec<Netlist> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../circuits/fig4.ckt");
    let text = std::fs::read_to_string(path).expect("circuits/fig4.ckt is part of the repo");
    let circuit = bibs_rtl::fmt::from_text(&text).expect("fig4.ckt parses");
    let r = bibs_core::bibs::select(&circuit, &bibs_core::bibs::BibsOptions::default())
        .expect("fig4 is IO-registered");
    let cut: HashSet<_> = r
        .design
        .bilbo
        .iter()
        .chain(&r.design.cbilbo)
        .copied()
        .collect();
    bibs_core::design::kernels(&r.circuit, &r.design)
        .into_iter()
        .filter(|k| {
            k.vertices
                .iter()
                .any(|&v| r.circuit.vertex(v).kind == VertexKind::Logic)
        })
        .map(|k| {
            let kset: HashSet<_> = k.vertices.iter().copied().collect();
            bibs_datapath::elab::elaborate_kernel(&r.circuit, &kset, &cut)
                .expect("fig4 kernel elaborates")
                .netlist
                .combinational_equivalent()
        })
        .collect()
}

#[test]
fn fig4_kernels_are_equivalent_across_threads_and_seeds() {
    let kernels = fig4_kernels();
    assert!(!kernels.is_empty(), "fig4 must yield logic-bearing kernels");
    for nl in &kernels {
        let faults = FaultUniverse::collapsed(nl).faults().to_vec();
        assert_engines_equivalent(nl, &faults, 5_000);
    }
}

// --- proptest over random netlists --------------------------------------

fn netlist_strategy() -> impl Strategy<Value = Netlist> {
    bibs_netlist::testgen::netlist_strategy_sized(8, 30)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any random netlist, any seed, any thread count: bit-identical
    /// reports from both engines, exhaustively and on random streams.
    #[test]
    fn random_netlists_have_equivalent_engines(
        nl in netlist_strategy(),
        seed: u64,
        threads in 1usize..6,
    ) {
        let faults = FaultUniverse::collapsed(&nl).faults().to_vec();

        let serial = FaultSimulator::new(&nl, faults.clone()).run_exhaustive();
        let par = ParFaultSimulator::with_threads(&nl, faults.clone(), threads)
            .run_exhaustive();
        prop_assert_eq!(serial.detection(), par.detection());
        prop_assert_eq!(serial.patterns_applied(), par.patterns_applied());

        let mut rng = StdRng::seed_from_u64(seed);
        let serial = FaultSimulator::new(&nl, faults.clone()).run_random(&mut rng, 2_000);
        let mut rng = StdRng::seed_from_u64(seed);
        let par = ParFaultSimulator::with_threads(&nl, faults.clone(), threads)
            .run_random(&mut rng, 2_000);
        prop_assert_eq!(serial.detection(), par.detection());
        prop_assert_eq!(serial.patterns_applied(), par.patterns_applied());
    }
}
