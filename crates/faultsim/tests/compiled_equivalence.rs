//! Compiled-IR/interpreter equivalence: the [`EvalProgram`]-based engines
//! (serial [`FaultSimulator`] and parallel [`ParFaultSimulator`] at
//! 1/2/4/8 threads) must produce reports **bit-identical** to the
//! original gate-walking interpreter preserved as
//! [`bibs_faultsim::reference::ReferenceSimulator`] — same `detection()`
//! vector (every first-detection pattern index), same
//! `patterns_applied()` — for every circuit and seed. This is the
//! contract that makes the compiled IR a pure throughput optimization.
//!
//! Covered here: good-machine output words on random vectors, full
//! `FaultSimReport` equality on adders/multipliers, the kernels the BIBS
//! TDM extracts from `circuits/fig4.ckt` and from the paper's Figure 9
//! datapath, scaled versions of the three Table 2 circuits
//! (c5a2m/c3a2m/c4a4m), and a proptest over random gate DAGs.

use bibs_faultsim::fault::{Fault, FaultUniverse};
use bibs_faultsim::par::ParFaultSimulator;
use bibs_faultsim::reference::ReferenceSimulator;
use bibs_faultsim::sim::{BlockSim, FaultSimulator};
use bibs_netlist::builder::NetlistBuilder;
use bibs_netlist::{EvalProgram, Netlist};
use bibs_rtl::{Circuit, VertexKind};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

const THREADS: [usize; 4] = [1, 2, 4, 8];
const SEEDS: [u64; 3] = [1, 0xB1B5, 0x51B5_1994];

/// Asserts that the reference interpreter and the compiled engines (serial
/// plus every `THREADS` parallel configuration) produce bit-identical
/// reports on every `SEEDS` random stream.
fn assert_compiled_matches_reference(netlist: &Netlist, faults: &[Fault], max_patterns: u64) {
    for &seed in &SEEDS {
        let mut rng = StdRng::seed_from_u64(seed);
        let reference =
            ReferenceSimulator::new(netlist, faults.to_vec()).run_random(&mut rng, max_patterns);

        let mut rng = StdRng::seed_from_u64(seed);
        let compiled =
            FaultSimulator::new(netlist, faults.to_vec()).run_random(&mut rng, max_patterns);
        assert_eq!(
            reference.detection(),
            compiled.detection(),
            "serial compiled engine diverges from the interpreter at seed {seed:#x}"
        );
        assert_eq!(reference.patterns_applied(), compiled.patterns_applied());

        for &threads in &THREADS {
            let mut rng = StdRng::seed_from_u64(seed);
            let par = ParFaultSimulator::with_threads(netlist, faults.to_vec(), threads)
                .run_random(&mut rng, max_patterns);
            assert_eq!(
                reference.detection(),
                par.detection(),
                "parallel compiled engine diverges at {threads} thread(s), seed {seed:#x}"
            );
            assert_eq!(reference.patterns_applied(), par.patterns_applied());
        }
    }
}

/// Good-machine check: the compiled program's output words must equal the
/// interpreter's on random 64-pattern blocks.
fn assert_good_machine_matches(netlist: &Netlist, seed: u64) {
    let program = EvalProgram::compile(netlist).expect("acyclic");
    let order = netlist.levelize().expect("acyclic");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut compiled = program.new_values();
    let mut interpreted = vec![0u64; netlist.net_count()];
    let mut scratch = Vec::new();
    for _ in 0..16 {
        let words: Vec<u64> = (0..netlist.input_width()).map(|_| rng.gen()).collect();
        program.eval_good(&mut compiled, &words);
        bibs_faultsim::reference::eval_good(
            netlist,
            &order,
            &words,
            &mut interpreted,
            &mut scratch,
        );
        for id in netlist.net_ids() {
            assert_eq!(
                compiled[id.index()],
                interpreted[id.index()],
                "net {id:?} words diverge"
            );
        }
    }
}

fn adder(width: usize) -> Netlist {
    let mut b = NetlistBuilder::new("add");
    let a = b.input_word("a", width);
    let c = b.input_word("b", width);
    let (s, co) = b.ripple_carry_adder(&a, &c, None);
    b.output_word("s", &s);
    b.output("co", co);
    b.finish().unwrap()
}

fn multiplier(width: usize) -> Netlist {
    let mut b = NetlistBuilder::new("mul");
    let a = b.input_word("a", width);
    let c = b.input_word("b", width);
    let p = b.array_multiplier(&a, &c, 2 * width);
    b.output_word("p", &p[..width]);
    b.finish().unwrap()
}

#[test]
fn adder_compiled_engines_match_reference() {
    for width in [4usize, 8] {
        let nl = adder(width);
        assert_good_machine_matches(&nl, 11);
        let faults = FaultUniverse::collapsed(&nl).faults().to_vec();
        assert_compiled_matches_reference(&nl, &faults, 10_000);
    }
}

#[test]
fn multiplier_compiled_engines_match_reference() {
    for width in [3usize, 4] {
        let nl = multiplier(width);
        assert_good_machine_matches(&nl, 13);
        let faults = FaultUniverse::collapsed(&nl).faults().to_vec();
        assert_compiled_matches_reference(&nl, &faults, 10_000);
    }
}

/// Elaborates every logic-bearing kernel the BIBS TDM extracts from a
/// circuit to its combinational equivalent.
fn bibs_kernels(circuit: &Circuit) -> Vec<Netlist> {
    let r = bibs_core::bibs::select(circuit, &bibs_core::bibs::BibsOptions::default())
        .expect("circuit is IO-registered");
    let cut: HashSet<_> = r
        .design
        .bilbo
        .iter()
        .chain(&r.design.cbilbo)
        .copied()
        .collect();
    bibs_core::design::kernels(&r.circuit, &r.design)
        .into_iter()
        .filter(|k| {
            k.vertices
                .iter()
                .any(|&v| r.circuit.vertex(v).kind == VertexKind::Logic)
        })
        .map(|k| {
            let kset: HashSet<_> = k.vertices.iter().copied().collect();
            bibs_datapath::elab::elaborate_kernel(&r.circuit, &kset, &cut)
                .expect("kernel elaborates")
                .netlist
                .combinational_equivalent()
        })
        .collect()
}

#[test]
fn fig4_kernels_match_reference() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../circuits/fig4.ckt");
    let text = std::fs::read_to_string(path).expect("circuits/fig4.ckt is part of the repo");
    let circuit = bibs_rtl::fmt::from_text(&text).expect("fig4.ckt parses");
    let kernels = bibs_kernels(&circuit);
    assert!(!kernels.is_empty(), "fig4 must yield logic-bearing kernels");
    for nl in &kernels {
        assert_good_machine_matches(nl, 17);
        let faults = FaultUniverse::collapsed(nl).faults().to_vec();
        assert_compiled_matches_reference(nl, &faults, 4_000);
    }
}

#[test]
fn fig9_kernels_match_reference() {
    let kernels = bibs_kernels(&bibs_datapath::fig9::figure9());
    assert!(!kernels.is_empty(), "fig9 must yield logic-bearing kernels");
    for nl in &kernels {
        assert_good_machine_matches(nl, 19);
        let faults = FaultUniverse::collapsed(nl).faults().to_vec();
        assert_compiled_matches_reference(nl, &faults, 2_000);
    }
}

/// Scaled-down versions of the three Table 2 datapaths (3-bit words keep
/// the interpreter's runtime reasonable in debug builds); the full-width
/// circuits are checked end-to-end by the CI equivalence smoke.
#[test]
fn table2_circuit_kernels_match_reference() {
    for name in ["c5a2m", "c3a2m", "c4a4m"] {
        let kernels = bibs_kernels(&bibs_datapath::filters::scaled(name, 3));
        assert!(!kernels.is_empty(), "{name} must yield kernels");
        for nl in &kernels {
            assert_good_machine_matches(nl, 23);
            let faults = FaultUniverse::collapsed(nl).faults().to_vec();
            assert_compiled_matches_reference(nl, &faults, 2_000);
        }
    }
}

// --- proptest over random netlists --------------------------------------

fn netlist_strategy() -> impl Strategy<Value = Netlist> {
    bibs_netlist::testgen::netlist_strategy_sized(8, 30)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any random netlist, any seed, any thread count: the compiled
    /// engines must match the interpreter on net words and full reports.
    #[test]
    fn random_netlists_compile_to_equivalent_engines(
        nl in netlist_strategy(),
        seed: u64,
        threads in 1usize..6,
    ) {
        assert_good_machine_matches(&nl, seed);
        let faults = FaultUniverse::collapsed(&nl).faults().to_vec();

        let mut rng = StdRng::seed_from_u64(seed);
        let reference = ReferenceSimulator::new(&nl, faults.clone())
            .run_random(&mut rng, 2_000);

        let mut rng = StdRng::seed_from_u64(seed);
        let compiled = FaultSimulator::new(&nl, faults.clone())
            .run_random(&mut rng, 2_000);
        prop_assert_eq!(reference.detection(), compiled.detection());
        prop_assert_eq!(reference.patterns_applied(), compiled.patterns_applied());

        let mut rng = StdRng::seed_from_u64(seed);
        let par = ParFaultSimulator::with_threads(&nl, faults.clone(), threads)
            .run_random(&mut rng, 2_000);
        prop_assert_eq!(reference.detection(), par.detection());
        prop_assert_eq!(reference.patterns_applied(), par.patterns_applied());
    }
}
