//! Cross-source equivalence: every [`PatternSource`] kind must drive the
//! serial and parallel engines to **bit-identical** reports — same
//! `detection()` vector, same `patterns_applied()` — for every thread
//! count, and the sources themselves must end each run with the same
//! stream digest (the engines pulled identical streams, not merely
//! equivalent verdicts). This extends the serial/parallel contract of
//! `par_equivalence.rs` from the legacy random stream to the whole
//! source family, and pins the satellite guarantees: [`RandomWords`]
//! reproduces the legacy `run_random*` entry points exactly (and
//! documents its xoshiro256** generator in the descriptor), and
//! [`WeightedRandomSource`]'s bias math behaves at the extremes and at
//! the unbiased midpoint.

use bibs_faultsim::fault::FaultUniverse;
use bibs_faultsim::par::ParFaultSimulator;
use bibs_faultsim::sim::{BlockSim, FaultSimulator};
use bibs_faultsim::source::{
    LfsrSource, PatternSource, RandomWords, StoredSeedReplay, WeightedRandomSource,
};
use bibs_netlist::builder::NetlistBuilder;
use bibs_netlist::Netlist;
use bibs_rtl::VertexKind;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;

const THREADS: [usize; 4] = [1, 2, 4, 8];
const MAX_PATTERNS: u64 = 4_096;

/// Builds one fresh source of every kind that fits `width` — a new
/// instance per call so each engine run starts from the same state.
fn make_sources(width: usize, seed: u64) -> Vec<(&'static str, Box<dyn PatternSource>)> {
    let mut out: Vec<(&'static str, Box<dyn PatternSource>)> = vec![
        ("random", Box::new(RandomWords::seeded(seed))),
        (
            "weighted",
            Box::new(WeightedRandomSource::new(seed, vec![0.75; width]).unwrap()),
        ),
        (
            "replay",
            Box::new(
                StoredSeedReplay::parse(
                    "inline",
                    "# two stored seeds, chained\n0x51B5 200\n42 100\n",
                )
                .unwrap(),
            ),
        ),
    ];
    if width <= 64 {
        out.push(("lfsr", Box::new(LfsrSource::new(width, seed | 1).unwrap())));
    }
    out
}

/// For every source kind: serial vs parallel at each thread count, with
/// bit-identical reports and matching end-of-run stream digests.
fn assert_sources_equivalent(netlist: &Netlist, seed: u64) {
    let faults = FaultUniverse::collapsed(netlist).faults().to_vec();
    let width = netlist.input_width();
    let kinds: Vec<&'static str> = make_sources(width, seed)
        .into_iter()
        .map(|(k, _)| k)
        .collect();
    for kind in kinds {
        let mut serial_source = make_sources(width, seed)
            .into_iter()
            .find(|(k, _)| *k == kind)
            .unwrap()
            .1;
        let serial = FaultSimulator::new(netlist, faults.clone())
            .run_source(&mut *serial_source, MAX_PATTERNS);
        for &threads in &THREADS {
            let mut par_source = make_sources(width, seed)
                .into_iter()
                .find(|(k, _)| *k == kind)
                .unwrap()
                .1;
            let par = ParFaultSimulator::with_threads(netlist, faults.clone(), threads)
                .run_source(&mut *par_source, MAX_PATTERNS);
            assert_eq!(
                serial.detection(),
                par.detection(),
                "{kind}: detection mismatch at {threads} thread(s)"
            );
            assert_eq!(
                serial.patterns_applied(),
                par.patterns_applied(),
                "{kind}: patterns_applied mismatch at {threads} thread(s)"
            );
            assert_eq!(
                serial_source.state_digest(),
                par_source.state_digest(),
                "{kind}: stream digest mismatch at {threads} thread(s)"
            );
            assert_eq!(
                serial_source.clocks_consumed(),
                par_source.clocks_consumed()
            );
            assert_eq!(
                serial_source.patterns_emitted(),
                par_source.patterns_emitted()
            );
        }
    }
}

fn adder(width: usize) -> Netlist {
    let mut b = NetlistBuilder::new("add");
    let a = b.input_word("a", width);
    let c = b.input_word("b", width);
    let (s, co) = b.ripple_carry_adder(&a, &c, None);
    b.output_word("s", &s);
    b.output("co", co);
    b.finish().unwrap()
}

#[test]
fn adders_agree_on_every_source_across_threads() {
    for width in [4usize, 8] {
        assert_sources_equivalent(&adder(width), 0xB1B5);
    }
}

/// The kernels the BIBS TDM extracts from the paper's Fig. 4 circuit —
/// the realistic workload — checked over the whole source family.
#[test]
fn fig4_kernels_agree_on_every_source_across_threads() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../circuits/fig4.ckt");
    let text = std::fs::read_to_string(path).expect("circuits/fig4.ckt is part of the repo");
    let circuit = bibs_rtl::fmt::from_text(&text).expect("fig4.ckt parses");
    let r = bibs_core::bibs::select(&circuit, &bibs_core::bibs::BibsOptions::default())
        .expect("fig4 is IO-registered");
    let cut: HashSet<_> = r
        .design
        .bilbo
        .iter()
        .chain(&r.design.cbilbo)
        .copied()
        .collect();
    let kernels: Vec<Netlist> = bibs_core::design::kernels(&r.circuit, &r.design)
        .into_iter()
        .filter(|k| {
            k.vertices
                .iter()
                .any(|&v| r.circuit.vertex(v).kind == VertexKind::Logic)
        })
        .map(|k| {
            let kset: HashSet<_> = k.vertices.iter().copied().collect();
            bibs_datapath::elab::elaborate_kernel(&r.circuit, &kset, &cut)
                .expect("fig4 kernel elaborates")
                .netlist
                .combinational_equivalent()
        })
        .collect();
    assert!(!kernels.is_empty(), "fig4 must yield logic-bearing kernels");
    for nl in &kernels {
        assert_sources_equivalent(nl, 0x51B5_1994);
    }
}

/// Satellite: the legacy `run_random*` entry points are now thin wrappers
/// over [`RandomWords`] — a seeded source must reproduce their reports
/// exactly (the words drawn per block are bit-identical).
#[test]
fn random_words_source_reproduces_legacy_run_random() {
    for seed in [1u64, 0xB1B5, 0x51B5_1994] {
        let nl = adder(6);
        let faults = FaultUniverse::collapsed(&nl).faults().to_vec();
        let mut rng = StdRng::seed_from_u64(seed);
        let legacy = FaultSimulator::new(&nl, faults.clone()).run_random(&mut rng, MAX_PATTERNS);
        let mut source = RandomWords::seeded(seed);
        let sourced =
            FaultSimulator::new(&nl, faults.clone()).run_source(&mut source, MAX_PATTERNS);
        assert_eq!(legacy.detection(), sourced.detection());
        assert_eq!(legacy.patterns_applied(), sourced.patterns_applied());
    }
}

/// Satellite: the RNG behind [`RandomWords`] is reachable (and named) via
/// the serializable descriptor — the compat `StdRng` is xoshiro256**, and
/// experiments citing the stream can point at this field.
#[test]
fn random_descriptor_names_the_xoshiro_generator() {
    let source = RandomWords::seeded(0x2A);
    let d = source.descriptor();
    assert_eq!(d.kind(), "random");
    assert_eq!(d.get("rng"), Some("xoshiro256**"));
    assert!(d.to_json().contains("\"rng\":\"xoshiro256**\""));
}

// --- proptests: weighted bias math and random netlists -------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Bias 0.0 pins an input to constant 0 and bias 1.0 to constant 1,
    /// for any seed and any width.
    #[test]
    fn weighted_extreme_biases_are_constant(seed: u64, width in 1usize..12) {
        let biases: Vec<f64> = (0..width).map(|i| if i % 2 == 0 { 0.0 } else { 1.0 }).collect();
        let mut source = WeightedRandomSource::new(seed, biases.clone()).unwrap();
        for _ in 0..4 {
            let block = source.next_block(width).unwrap();
            for (i, &word) in block.words.iter().enumerate() {
                if biases[i] == 0.0 {
                    prop_assert_eq!(word, 0, "bias-0 input {} must stay 0", i);
                } else {
                    prop_assert_eq!(word, u64::MAX, "bias-1 input {} must stay 1", i);
                }
            }
        }
    }

    /// Bias 0.5 is statistically indistinguishable from the uniform
    /// stream: over 6400 lanes per input the set-bit fraction lands well
    /// inside 0.45..0.55 (±8σ of Binomial(6400, ½)) for every seed.
    #[test]
    fn weighted_half_bias_matches_uniform_moments(seed: u64) {
        let width = 4usize;
        let mut source = WeightedRandomSource::new(seed, vec![0.5; width]).unwrap();
        let mut ones = vec![0u64; width];
        let blocks = 100u32;
        for _ in 0..blocks {
            let block = source.next_block(width).unwrap();
            for (i, &word) in block.words.iter().enumerate() {
                ones[i] += u64::from(word.count_ones());
            }
        }
        let lanes = f64::from(blocks) * 64.0;
        for (i, &n) in ones.iter().enumerate() {
            let frac = n as f64 / lanes;
            prop_assert!(
                (0.45..=0.55).contains(&frac),
                "input {} set-bit fraction {} outside 0.45..0.55", i, frac
            );
        }
    }

    /// Any random netlist, any seed: the whole source family is serial/
    /// parallel bit-identical with matching stream digests.
    #[test]
    fn random_netlists_agree_on_every_source(
        nl in bibs_netlist::testgen::netlist_strategy_sized(8, 30),
        seed: u64,
    ) {
        let faults = FaultUniverse::collapsed(&nl).faults().to_vec();
        let width = nl.input_width();
        for (kind, mut serial_source) in make_sources(width, seed) {
            let serial = FaultSimulator::new(&nl, faults.clone())
                .run_source(&mut *serial_source, 1_024);
            for threads in [2usize, 4] {
                let mut par_source = make_sources(width, seed)
                    .into_iter()
                    .find(|(k, _)| *k == kind)
                    .unwrap()
                    .1;
                let par = ParFaultSimulator::with_threads(&nl, faults.clone(), threads)
                    .run_source(&mut *par_source, 1_024);
                prop_assert_eq!(serial.detection(), par.detection());
                prop_assert_eq!(serial.patterns_applied(), par.patterns_applied());
                prop_assert_eq!(serial_source.state_digest(), par_source.state_digest());
            }
        }
    }
}
