//! Shared bit-parallel evaluation kernels for the serial and parallel
//! fault simulators.
//!
//! Both engines *must* compute per-fault detection identically — the
//! parallel engine's determinism guarantee (bit-identical
//! [`crate::sim::FaultSimReport`]s) rests on there being exactly one
//! implementation of the good-machine and faulty-machine evaluations.
//! Everything here is a pure function of the netlist, the levelized order
//! and the input words; no engine state is involved.

use crate::fault::{Fault, FaultSite};
use bibs_netlist::{GateId, NetDriver, Netlist};

/// Evaluates the fault-free machine into `values` (one word per net, one
/// pattern per lane).
pub(crate) fn eval_good(
    netlist: &Netlist,
    order: &[GateId],
    input_words: &[u64],
    values: &mut [u64],
    scratch: &mut Vec<u64>,
) {
    for net in netlist.net_ids() {
        match netlist.driver(net) {
            NetDriver::Input(i) => values[net.index()] = input_words[i],
            NetDriver::Const(v) => values[net.index()] = if v { !0 } else { 0 },
            _ => {}
        }
    }
    for &gid in order {
        let gate = netlist.gate(gid);
        scratch.clear();
        scratch.extend(gate.inputs.iter().map(|i| values[i.index()]));
        values[gate.output.index()] = gate.kind.eval_words(scratch);
    }
}

/// Evaluates the machine with `fault` injected into `values`.
pub(crate) fn eval_faulty(
    netlist: &Netlist,
    order: &[GateId],
    input_words: &[u64],
    fault: Fault,
    values: &mut [u64],
    scratch: &mut Vec<u64>,
) {
    let stuck_word = if fault.stuck_at { !0u64 } else { 0u64 };
    let fault_net = match fault.site {
        FaultSite::Net(n) => Some(n),
        FaultSite::GatePin { .. } => None,
    };
    for net in netlist.net_ids() {
        let v = match netlist.driver(net) {
            NetDriver::Input(i) => input_words[i],
            NetDriver::Const(v) => {
                if v {
                    !0
                } else {
                    0
                }
            }
            _ => continue,
        };
        values[net.index()] = if fault_net == Some(net) {
            stuck_word
        } else {
            v
        };
    }
    for &gid in order {
        let gate = netlist.gate(gid);
        scratch.clear();
        scratch.extend(gate.inputs.iter().map(|i| values[i.index()]));
        if let FaultSite::GatePin { gate: fg, pin } = fault.site {
            if fg == gid {
                scratch[pin] = stuck_word;
            }
        }
        let mut out = gate.kind.eval_words(scratch);
        if fault_net == Some(gate.output) {
            out = stuck_word;
        }
        values[gate.output.index()] = out;
    }
}

/// The lanes (bit positions) on which the faulty machine's outputs differ
/// from the good machine's, restricted to `lane_mask`.
#[inline]
pub(crate) fn output_diff(outputs: &[usize], good: &[u64], faulty: &[u64], lane_mask: u64) -> u64 {
    let mut diff = 0u64;
    for &o in outputs {
        diff |= good[o] ^ faulty[o];
    }
    diff & lane_mask
}
