//! Shared compiled-evaluation helpers for the serial and parallel fault
//! simulators.
//!
//! Both engines *must* compute per-fault detection identically — the
//! parallel engine's determinism guarantee (bit-identical
//! [`crate::sim::FaultSimReport`]s) rests on there being exactly one
//! mapping from faults to [`Patch`]es and one output-difference rule.
//! Since the compiled-IR refactor the evaluation itself lives in
//! [`bibs_netlist::EvalProgram`]; this module supplies the fault-model
//! glue. The seed AST-walking interpreter survives in
//! [`crate::reference`] as the equivalence oracle.

use crate::fault::{Fault, FaultSite};
use bibs_netlist::{EvalProgram, Patch};

/// Maps a stuck-at fault to its compiled patch-point.
///
/// * [`FaultSite::Net`] on a gate-driven net → force that instruction's
///   output ([`Patch::InstrOutput`]);
/// * [`FaultSite::Net`] on a source net (input/const/flip-flop Q) → force
///   the slot ([`Patch::Slot`]);
/// * [`FaultSite::GatePin`] → override one operand of one instruction
///   ([`Patch::InstrPin`]).
#[inline]
pub(crate) fn compile_patch(program: &EvalProgram, fault: Fault) -> Patch {
    match fault.site {
        FaultSite::Net(n) => program.patch_net(n, fault.stuck_at),
        FaultSite::GatePin { gate, pin } => program.patch_pin(gate, pin, fault.stuck_at),
    }
}

/// The lanes (bit positions) on which the faulty machine's outputs differ
/// from the good machine's, restricted to `lane_mask`. Slot-indexed
/// variant for the compiled engines ([`EvalProgram::output_slots`]).
#[inline]
pub(crate) fn output_diff(
    output_slots: &[u32],
    good: &[u64],
    faulty: &[u64],
    lane_mask: u64,
) -> u64 {
    let mut diff = 0u64;
    for &o in output_slots {
        diff |= good[o as usize] ^ faulty[o as usize];
    }
    diff & lane_mask
}

/// Net-index variant of [`output_diff`], used by the reference
/// interpreter.
#[inline]
pub(crate) fn output_diff_nets(
    outputs: &[usize],
    good: &[u64],
    faulty: &[u64],
    lane_mask: u64,
) -> u64 {
    let mut diff = 0u64;
    for &o in outputs {
        diff |= good[o] ^ faulty[o];
    }
    diff & lane_mask
}
