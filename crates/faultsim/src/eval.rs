//! Shared compiled-evaluation helpers for the serial and parallel fault
//! simulators.
//!
//! Both engines *must* compute per-fault detection identically — the
//! parallel engine's determinism guarantee (bit-identical
//! [`crate::sim::FaultSimReport`]s) rests on there being exactly one
//! mapping from faults to [`Patch`]es and one output-difference rule.
//! Since the compiled-IR refactor the evaluation itself lives in
//! [`bibs_netlist::EvalProgram`]; this module supplies the fault-model
//! glue. The seed AST-walking interpreter survives in
//! [`crate::reference`] as the equivalence oracle.

use crate::fault::{Fault, FaultSite};
use bibs_netlist::opt::OptimizedProgram;
use bibs_netlist::{EvalProgram, Patch};

/// Maps a stuck-at fault to its compiled patch-point.
///
/// * [`FaultSite::Net`] on a gate-driven net → force that instruction's
///   output ([`Patch::InstrOutput`]);
/// * [`FaultSite::Net`] on a source net (input/const/flip-flop Q) → force
///   the slot ([`Patch::Slot`]);
/// * [`FaultSite::GatePin`] → override one operand of one instruction
///   ([`Patch::InstrPin`]).
#[inline]
pub(crate) fn compile_patch(program: &EvalProgram, fault: Fault) -> Patch {
    match fault.site {
        FaultSite::Net(n) => program.patch_net(n, fault.stuck_at),
        FaultSite::GatePin { gate, pin } => program.patch_pin(gate, pin, fault.stuck_at),
    }
}

/// How one fault is evaluated when the engine runs an optimizer-rewritten
/// program.
///
/// Faults are always *compiled against the original program* (the fault
/// universe lives on the netlist), then translated through the rewrite:
///
/// * [`FaultPatch::Direct`] — the default engines' case: one patch on the
///   program being run;
/// * [`FaultPatch::Multi`] — the rewrite maps the fault to a set of
///   patches on the optimized program (e.g. a stem fault on a deleted
///   buffer becomes pin forces on every surviving reader), sorted for
///   [`EvalProgram::run_multi_patched`];
/// * [`FaultPatch::Fallback`] — no faithful image exists on the optimized
///   program; the faulty machine runs the *original* program instead.
///   Sound because the two programs are equivalence-proven: the good
///   values the faulty outputs are compared against are identical either
///   way.
#[derive(Debug, Clone)]
pub(crate) enum FaultPatch {
    Direct(Patch),
    Multi(Box<[Patch]>),
    Fallback(Patch),
}

impl FaultPatch {
    /// Patch-points applied per faulty evaluation (the
    /// `PatchesApplied` accounting unit).
    #[inline]
    pub(crate) fn patch_count(&self) -> u64 {
        match self {
            FaultPatch::Direct(_) | FaultPatch::Fallback(_) => 1,
            FaultPatch::Multi(ps) => ps.len() as u64,
        }
    }
}

/// Compiles every fault against `program` and, when `opt` is given,
/// remaps it through the rewrite into a [`FaultPatch`].
pub(crate) fn compile_fault_patches(
    program: &EvalProgram,
    opt: Option<&OptimizedProgram>,
    faults: &[Fault],
) -> Vec<FaultPatch> {
    faults
        .iter()
        .map(|&f| {
            let patch = compile_patch(program, f);
            match opt {
                None => FaultPatch::Direct(patch),
                Some(o) => match o.remap_patch(patch) {
                    Some(ps) => FaultPatch::Multi(ps.into_boxed_slice()),
                    None => FaultPatch::Fallback(patch),
                },
            }
        })
        .collect()
}

/// One faulty-machine evaluation: runs `program` (the good-machine
/// program) for `Direct`/`Multi`, or `fallback` (the pre-rewrite
/// program; same slot space) for `Fallback`. Returns the instruction
/// count executed.
#[inline]
pub(crate) fn eval_fault(
    program: &EvalProgram,
    fallback: Option<&EvalProgram>,
    values: &mut [u64],
    input_words: &[u64],
    fp: &FaultPatch,
) -> u64 {
    match fp {
        FaultPatch::Direct(p) => program.eval_patched(values, input_words, *p),
        FaultPatch::Multi(ps) => program.eval_multi_patched(values, input_words, ps),
        FaultPatch::Fallback(p) => fallback
            .expect("fallback requires the original program")
            .eval_patched(values, input_words, *p),
    }
}

/// The lanes (bit positions) on which the faulty machine's outputs differ
/// from the good machine's, restricted to `lane_mask`. Slot-indexed
/// variant for the compiled engines ([`EvalProgram::output_slots`]).
#[inline]
pub(crate) fn output_diff(
    output_slots: &[u32],
    good: &[u64],
    faulty: &[u64],
    lane_mask: u64,
) -> u64 {
    let mut diff = 0u64;
    for &o in output_slots {
        diff |= good[o as usize] ^ faulty[o as usize];
    }
    diff & lane_mask
}

/// Net-index variant of [`output_diff`], used by the reference
/// interpreter.
#[inline]
pub(crate) fn output_diff_nets(
    outputs: &[usize],
    good: &[u64],
    faulty: &[u64],
    lane_mask: u64,
) -> u64 {
    let mut diff = 0u64;
    for &o in outputs {
        diff |= good[o] ^ faulty[o];
    }
    diff & lane_mask
}
