//! Shared compiled-evaluation helpers for the serial and parallel fault
//! simulators.
//!
//! Both engines *must* compute per-fault detection identically — the
//! parallel engine's determinism guarantee (bit-identical
//! [`crate::sim::FaultSimReport`]s) rests on there being exactly one
//! mapping from faults to [`Patch`]es and one output-difference rule.
//! Since the compiled-IR refactor the evaluation itself lives in
//! [`bibs_netlist::EvalProgram`]; this module supplies the fault-model
//! glue. The seed AST-walking interpreter survives in
//! [`crate::reference`] as the equivalence oracle.

use crate::fault::{Fault, FaultSite};
use bibs_netlist::opt::OptimizedProgram;
use bibs_netlist::{EvalProgram, Patch};

/// Maps a stuck-at fault to its compiled patch-point.
///
/// * [`FaultSite::Net`] on a gate-driven net → force that instruction's
///   output ([`Patch::InstrOutput`]);
/// * [`FaultSite::Net`] on a source net (input/const/flip-flop Q) → force
///   the slot ([`Patch::Slot`]);
/// * [`FaultSite::GatePin`] → override one operand of one instruction
///   ([`Patch::InstrPin`]).
#[inline]
pub(crate) fn compile_patch(program: &EvalProgram, fault: Fault) -> Patch {
    match fault.site {
        FaultSite::Net(n) => program.patch_net(n, fault.stuck_at),
        FaultSite::GatePin { gate, pin } => program.patch_pin(gate, pin, fault.stuck_at),
    }
}

/// How one fault is evaluated when the engine runs an optimizer-rewritten
/// program.
///
/// Faults are always *compiled against the original program* (the fault
/// universe lives on the netlist), then translated through the rewrite:
///
/// * [`FaultPatch::Direct`] — the default engines' case: one patch on the
///   program being run;
/// * [`FaultPatch::Multi`] — the rewrite maps the fault to a set of
///   patches on the optimized program (e.g. a stem fault on a deleted
///   buffer becomes pin forces on every surviving reader), sorted for
///   [`EvalProgram::run_multi_patched`];
/// * [`FaultPatch::Fallback`] — no faithful image exists on the optimized
///   program; the faulty machine runs the *original* program instead.
///   Sound because the two programs are equivalence-proven: the good
///   values the faulty outputs are compared against are identical either
///   way.
#[derive(Debug, Clone)]
pub(crate) enum FaultPatch {
    Direct(Patch),
    Multi(Box<[Patch]>),
    Fallback(Patch),
}

impl FaultPatch {
    /// Patch-points applied per faulty evaluation (the
    /// `PatchesApplied` accounting unit).
    #[inline]
    pub(crate) fn patch_count(&self) -> u64 {
        match self {
            FaultPatch::Direct(_) | FaultPatch::Fallback(_) => 1,
            FaultPatch::Multi(ps) => ps.len() as u64,
        }
    }
}

/// Compiles every fault against `program` and, when `opt` is given,
/// remaps it through the rewrite into a [`FaultPatch`].
pub(crate) fn compile_fault_patches(
    program: &EvalProgram,
    opt: Option<&OptimizedProgram>,
    faults: &[Fault],
) -> Vec<FaultPatch> {
    faults
        .iter()
        .map(|&f| {
            let patch = compile_patch(program, f);
            match opt {
                None => FaultPatch::Direct(patch),
                Some(o) => match o.remap_patch(patch) {
                    Some(ps) => FaultPatch::Multi(ps.into_boxed_slice()),
                    None => FaultPatch::Fallback(patch),
                },
            }
        })
        .collect()
}

/// Checks the engine-construction invariant that [`eval_fault`] relies
/// on: every [`FaultPatch::Fallback`] needs the original program at hand.
/// The engines call this once at construction and surface the failure as
/// a typed [`crate::sim::SimError`] instead of aborting mid-run.
pub(crate) fn validate_fault_patches(
    patches: &[FaultPatch],
    has_fallback: bool,
) -> Result<(), crate::sim::SimError> {
    if has_fallback {
        return Ok(());
    }
    match patches
        .iter()
        .position(|fp| matches!(fp, FaultPatch::Fallback(_)))
    {
        None => Ok(()),
        Some(fault_index) => Err(crate::sim::SimError::MissingFallback { fault_index }),
    }
}

/// One faulty-machine evaluation: runs `program` (the good-machine
/// program) for `Direct`/`Multi`, or `fallback` (the pre-rewrite
/// program; same slot space) for `Fallback`. Returns the instruction
/// count executed.
///
/// `Fallback` without a fallback program is rejected at engine
/// construction by [`validate_fault_patches`], so it is unreachable here.
#[inline]
pub(crate) fn eval_fault(
    program: &EvalProgram,
    fallback: Option<&EvalProgram>,
    values: &mut [u64],
    input_words: &[u64],
    fp: &FaultPatch,
) -> u64 {
    match fp {
        FaultPatch::Direct(p) => program.eval_patched(values, input_words, *p),
        FaultPatch::Multi(ps) => program.eval_multi_patched(values, input_words, ps),
        FaultPatch::Fallback(p) => match fallback {
            Some(orig) => orig.eval_patched(values, input_words, *p),
            None => unreachable!("validate_fault_patches admits Fallback only with a fallback"),
        },
    }
}

/// Wide [`eval_fault`]: `input_chunks` is the chunk-contiguous wide input
/// layout of [`EvalProgram::set_inputs_wide`]. Returns the
/// lane-normalized executed instruction count.
#[inline]
pub(crate) fn eval_fault_wide<const N: usize>(
    program: &EvalProgram,
    fallback: Option<&EvalProgram>,
    values: &mut [u64],
    input_chunks: &[u64],
    fp: &FaultPatch,
) -> u64 {
    match fp {
        FaultPatch::Direct(p) => program.eval_patched_wide::<N>(values, input_chunks, *p),
        FaultPatch::Multi(ps) => program.eval_multi_patched_wide::<N>(values, input_chunks, ps),
        FaultPatch::Fallback(p) => match fallback {
            Some(orig) => orig.eval_patched_wide::<N>(values, input_chunks, *p),
            None => unreachable!("validate_fault_patches admits Fallback only with a fallback"),
        },
    }
}

/// The lanes (bit positions) on which the faulty machine's outputs differ
/// from the good machine's, restricted to `lane_mask`. Slot-indexed
/// variant for the compiled engines ([`EvalProgram::output_slots`]).
#[inline]
pub(crate) fn output_diff(
    output_slots: &[u32],
    good: &[u64],
    faulty: &[u64],
    lane_mask: u64,
) -> u64 {
    let mut diff = 0u64;
    for &o in output_slots {
        diff |= good[o as usize] ^ faulty[o as usize];
    }
    diff & lane_mask
}

/// Wide [`output_diff`]: scans the `N` sub-words in lane order and
/// returns the first `(sub_word, diff_word)` with a surviving masked
/// difference, or `None` if the fault is undetected in the whole chunk.
/// `masks[k]` is the valid-lane mask of sub-word `k` (0 for sub-words
/// past the pattern budget). Taking the *first* differing sub-word is
/// what makes wide first-detection indices bit-identical to the scalar
/// engine's.
#[inline]
pub(crate) fn output_diff_wide<const N: usize>(
    output_slots: &[u32],
    good: &[u64],
    faulty: &[u64],
    masks: &[u64; N],
) -> Option<(usize, u64)> {
    for (k, &mask) in masks.iter().enumerate() {
        if mask == 0 {
            continue;
        }
        let mut diff = 0u64;
        for &o in output_slots {
            let i = o as usize * N + k;
            diff |= good[i] ^ faulty[i];
        }
        diff &= mask;
        if diff != 0 {
            return Some((k, diff));
        }
    }
    None
}

/// Net-index variant of [`output_diff`], used by the reference
/// interpreter.
#[inline]
pub(crate) fn output_diff_nets(
    outputs: &[usize],
    good: &[u64],
    faulty: &[u64],
    lane_mask: u64,
) -> u64 {
    let mut diff = 0u64;
    for &o in outputs {
        diff |= good[o] ^ faulty[o];
    }
    diff & lane_mask
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_rejects_fallback_patches_without_a_fallback_program() {
        let p = Patch::Slot { slot: 0, word: 0 };
        let patches = vec![
            FaultPatch::Direct(p),
            FaultPatch::Fallback(p),
            FaultPatch::Fallback(p),
        ];
        // With the original program retained, fallback dispatch is legal.
        assert!(validate_fault_patches(&patches, true).is_ok());
        // Without it, construction must fail with a typed error naming
        // the *first* unmapped fault (this used to be a mid-run abort).
        let err = validate_fault_patches(&patches, false).unwrap_err();
        let crate::sim::SimError::MissingFallback { fault_index } = err;
        assert_eq!(fault_index, 1);
        // No Fallback patches at all: nothing to validate.
        assert!(validate_fault_patches(&[FaultPatch::Direct(p)], false).is_ok());
        assert!(validate_fault_patches(&[], false).is_ok());
    }
}
