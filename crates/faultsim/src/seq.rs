//! Sequential (time-frame) fault simulation.
//!
//! Section 2 of the paper motivates everything else: in a **balanced**
//! circuit every detectable stuck-at fault is *single-pattern* detectable
//! (apply one vector, clock it through, observe), while an **unbalanced**
//! circuit like Figure 1 has faults that need a *sequence* of vectors —
//! which conventional LFSRs cannot supply in order, and which drove the
//! BIBS requirement that kernels be balanced. This module simulates fault
//! detection under explicit vector sequences so that claim can be tested
//! on gate-level circuits rather than taken structurally.

use crate::eval::compile_patch;
use crate::fault::Fault;
use bibs_netlist::{EvalProgram, Netlist, Patch};

/// A lockstep good/faulty sequential simulator for one netlist.
///
/// BIST semantics: the flip-flop state at the start of a test is
/// arbitrary (whatever the previous test left behind), so a sequence only
/// *detects* a fault if the outputs differ **for every initial state**.
/// The simulator approximates the ∀-state check with 64 pseudo-random
/// initial states carried in the bit-parallel lanes (lane 0 is the
/// all-zero state); each applied vector is evaluated and clocked, and
/// detection requires an output difference in every lane at some cycle
/// (flush cycles hold the last vector while data drains).
///
/// Evaluation runs on one compiled [`EvalProgram`] for both machines; the
/// faulty machine applies the fault's pre-compiled patch-point per time
/// frame. The simulator is `Sync` (all methods take `&self`), so one
/// instance can serve many worker threads.
#[derive(Debug)]
pub struct SequentialFaultSim<'a> {
    netlist: &'a Netlist,
    program: EvalProgram,
}

impl<'a> SequentialFaultSim<'a> {
    /// Creates a simulator for `netlist` (which may contain flip-flops),
    /// compiling it once.
    ///
    /// # Panics
    ///
    /// Panics if the combinational part is cyclic.
    pub fn new(netlist: &'a Netlist) -> Self {
        let program = EvalProgram::compile(netlist).expect("acyclic combinational part");
        SequentialFaultSim { netlist, program }
    }

    /// Whether `fault` is detected by applying `sequence` (one `bool` per
    /// input per vector) followed by `flush` extra cycles holding the last
    /// vector.
    ///
    /// # Panics
    ///
    /// Panics if the sequence is empty or vector widths mismatch.
    pub fn detects(&self, fault: Fault, sequence: &[Vec<bool>], flush: usize) -> bool {
        assert!(!sequence.is_empty(), "need at least one vector");
        let width = self.netlist.input_width();
        let n = self.netlist.net_count();
        let mut good = vec![0u64; n];
        let mut faulty = vec![0u64; n];
        // 64 initial states: lane 0 all-zero, the rest pseudo-random
        // (SplitMix64 from a fixed seed — deterministic).
        let mut seedgen = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = || {
            seedgen = seedgen.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = seedgen;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            (z ^ (z >> 31)) & !1u64 // keep lane 0 zero
        };
        let mut good_state: Vec<u64> = (0..self.netlist.dff_count()).map(|_| next()).collect();
        let mut faulty_state = good_state.clone();

        let patch = compile_patch(&self.program, fault);
        let mut detected_lanes = 0u64;
        let total = sequence.len() + flush;
        for cycle in 0..total {
            let vector = &sequence[cycle.min(sequence.len() - 1)];
            assert_eq!(vector.len(), width, "vector width mismatch");
            self.eval(vector, &good_state, &mut good, None);
            self.eval(vector, &faulty_state, &mut faulty, Some(patch));
            for &o in self.netlist.outputs() {
                detected_lanes |= good[o.index()] ^ faulty[o.index()];
            }
            if detected_lanes == !0u64 {
                return true;
            }
            for (i, ff) in self.netlist.dffs().iter().enumerate() {
                good_state[i] = good[ff.d.index()];
                faulty_state[i] = faulty[ff.d.index()];
            }
        }
        detected_lanes == !0u64
    }

    /// One time-frame: sources (inputs broadcast from `vector`, constant
    /// prologue, flip-flop Q slots from `state`), then the compiled
    /// instruction stream — patched when simulating the faulty machine.
    fn eval(&self, vector: &[bool], state: &[u64], values: &mut [u64], patch: Option<Patch>) {
        for (i, &slot) in self.program.input_slots().iter().enumerate() {
            values[slot as usize] = if vector[i] { !0u64 } else { 0 };
        }
        self.program.apply_consts(values);
        for (i, &(q, _)) in self.program.dff_slots().iter().enumerate() {
            values[q as usize] = state[i];
        }
        match patch {
            None => {
                self.program.run(values);
            }
            Some(p) => {
                self.program.run_patched(values, p);
            }
        }
    }

    /// Evaluates a single vector combinationally (flip-flops held at zero)
    /// under `fault` and returns the primary output values. Useful for
    /// replaying TPG streams through a faulty combinational equivalent.
    pub fn faulty_output_vector(&self, vector: &[bool], fault: Fault) -> Vec<bool> {
        let mut values = vec![0u64; self.netlist.net_count()];
        let state = vec![0u64; self.netlist.dff_count()];
        let patch = compile_patch(&self.program, fault);
        self.eval(vector, &state, &mut values, Some(patch));
        self.netlist
            .outputs()
            .iter()
            .map(|&o| values[o.index()] & 1 == 1)
            .collect()
    }

    /// The smallest `k ≤ max_k` such that some length-`k` vector sequence
    /// detects `fault` (searching all `2^(w·k)` sequences), or `None`.
    ///
    /// This is the fault's **k-pattern detectability** from Section 2 of
    /// the paper, measured by brute force.
    ///
    /// # Panics
    ///
    /// Panics if `w·max_k > 20` (the search would be unreasonable).
    pub fn k_pattern_detectability(
        &self,
        fault: Fault,
        max_k: usize,
        flush: usize,
    ) -> Option<usize> {
        let w = self.netlist.input_width();
        assert!(w * max_k <= 20, "brute-force sequence search capped");
        for k in 1..=max_k {
            let total_bits = w * k;
            for enc in 0..(1u64 << total_bits) {
                let sequence: Vec<Vec<bool>> = (0..k)
                    .map(|v| (0..w).map(|b| (enc >> (v * w + b)) & 1 == 1).collect())
                    .collect();
                if self.detects(fault, &sequence, flush) {
                    return Some(k);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultUniverse;
    use bibs_netlist::builder::NetlistBuilder;

    /// Figure 1 at gate level: input x fans out to block C directly and
    /// through register R; C compares the two (XOR). Unbalanced.
    fn figure1_netlist(width: usize) -> Netlist {
        let mut b = NetlistBuilder::new("fig1");
        let x = b.input_word("x", width);
        let delayed = b.register(&x);
        let cmp = b.xor_word(&x, &delayed);
        b.output_word("y", &cmp);
        b.finish().unwrap()
    }

    /// A balanced twin: both operands reach C at sequential length 1.
    fn balanced_netlist(width: usize) -> Netlist {
        let mut b = NetlistBuilder::new("bal");
        let x = b.input_word("x", width);
        let d1 = b.register(&x);
        let d2 = b.register(&x);
        let cmp = b.xor_word(&d1, &d2);
        b.output_word("y", &cmp);
        b.finish().unwrap()
    }

    /// Section 2's motivating claim, measured: the unbalanced Figure 1
    /// circuit contains faults that are 2-pattern but NOT 1-pattern
    /// detectable.
    #[test]
    fn figure1_has_strictly_2_pattern_faults() {
        let nl = figure1_netlist(2);
        let sim = SequentialFaultSim::new(&nl);
        let universe = FaultUniverse::collapsed(&nl);
        let mut strictly_two = 0usize;
        for &fault in universe.faults() {
            match sim.k_pattern_detectability(fault, 2, 2) {
                Some(1) => {}
                Some(2) => strictly_two += 1,
                Some(_) | None => {}
            }
        }
        assert!(
            strictly_two > 0,
            "the unbalanced circuit must contain sequence-only faults"
        );
    }

    /// Balanced circuits: every detectable fault is 1-pattern detectable
    /// (the BALLAST result the BIBS TDM rests on), measured on gates.
    #[test]
    fn balanced_circuit_is_single_pattern_testable() {
        let nl = balanced_netlist(2);
        let sim = SequentialFaultSim::new(&nl);
        let universe = FaultUniverse::collapsed(&nl);
        for &fault in universe.faults() {
            // Undetectable faults (e.g. XOR of equal values) are fine.
            if let Some(k) = sim.k_pattern_detectability(fault, 2, 3) {
                assert_eq!(
                    k, 1,
                    "balanced: fault {fault} must be single-pattern detectable"
                );
            }
        }
    }

    #[test]
    fn detects_agrees_with_direct_reasoning() {
        // y = x XOR delayed(x): holding a constant makes y = 0 forever, so
        // y-output stuck-at-0 cannot be caught by one vector but is caught
        // by the sequence (0, 1).
        let nl = figure1_netlist(1);
        let sim = SequentialFaultSim::new(&nl);
        let fault = Fault::net_sa0(nl.outputs()[0]);
        for v in [false, true] {
            assert!(!sim.detects(fault, &[vec![v]], 3), "held vector {v}");
        }
        assert!(sim.detects(fault, &[vec![false], vec![true]], 2));
    }

    #[test]
    fn flush_cycles_matter_for_deep_pipelines() {
        // Two back-to-back registers: a fault behind them needs the flush
        // to surface.
        let mut b = NetlistBuilder::new("deep");
        let x = b.input("x");
        let inv = b.not(x);
        let r1 = b.register(&[inv]);
        let r2 = b.register(&r1);
        b.output("y", r2[0]);
        let nl = b.finish().unwrap();
        let sim = SequentialFaultSim::new(&nl);
        let fault = Fault::net_sa0(nl.gate(nl.gate_ids().next().unwrap()).output);
        assert!(
            !sim.detects(fault, &[vec![false]], 0),
            "no flush, no detection"
        );
        assert!(
            sim.detects(fault, &[vec![false]], 2),
            "flush drains the pipeline"
        );
    }
}
