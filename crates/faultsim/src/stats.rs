//! Fault-simulation observability: per-run counters exposed through
//! [`crate::sim::FaultSimReport::stats`] and printed by the bench bins.
//!
//! Since the telemetry-spine refactor these counters are **derived from**
//! an engine's [`bibs_obs::Recorder`] span tree
//! ([`SimStats::from_recorder`]) rather than hand-maintained: the engines
//! record into span counters ([`bibs_obs::CounterId`]) and per-shard
//! detail spans, and `SimStats` is the flattened read-model the bins
//! print. The two views can never drift because only one is written.

use bibs_obs::{CounterId, Recorder};
use std::fmt;
use std::time::Duration;

/// Counters collected by a fault-simulation engine over one run.
///
/// The serial engine reports itself as a single shard; the parallel
/// engine reports one entry per worker in
/// [`SimStats::per_shard_fault_evals`], which makes load imbalance (e.g.
/// from fault dropping) directly visible.
///
/// Since the compiled-IR refactor the stats also expose the
/// compile-vs-run split: [`SimStats::compile_wall`] is the one-time cost
/// of building the [`EvalProgram`](bibs_netlist::EvalProgram),
/// [`SimStats::gate_evals`] counts executed instructions (the
/// hardware-meaningful throughput unit) and [`SimStats::patches_applied`]
/// counts faulty-machine patch applications.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Worker threads the engine was configured with (1 for the serial
    /// engine).
    pub threads: usize,
    /// Pattern blocks simulated (each block carries up to 64 patterns).
    pub blocks: u64,
    /// Good-machine evaluations (one per block — the evaluation is shared
    /// across all faults of the block).
    pub good_evals: u64,
    /// Total faulty-machine evaluations across all shards.
    pub fault_evals: u64,
    /// Faulty-machine evaluations per worker shard.
    pub per_shard_fault_evals: Vec<u64>,
    /// Faults dropped from simulation after their first detection.
    pub faults_dropped: u64,
    /// Wall-clock time spent inside `apply_block`.
    pub wall: Duration,
    /// One-time wall-clock cost of compiling the netlist to an
    /// [`EvalProgram`](bibs_netlist::EvalProgram) (zero for engines that
    /// reuse a caller-supplied program, and for the reference
    /// interpreter).
    pub compile_wall: Duration,
    /// Total gate evaluations (compiled instructions executed, or
    /// interpreted gate visits) across good and faulty machines.
    pub gate_evals: u64,
    /// Fault patch-points applied (one per faulty-machine evaluation in
    /// the compiled engines; zero in the reference interpreter).
    pub patches_applied: u64,
    /// Size of the fault universe the run accounts for (before any
    /// dominance collapsing or static-untestability skipping). Zero when
    /// the caller did not run the pre-analysis pipeline.
    pub universe_faults: u64,
    /// Faults actually handed to the simulation engine (dominance-class
    /// representatives minus statically untestable faults). Equals
    /// `universe_faults` when no pre-analysis ran.
    pub simulated_faults: u64,
    /// Faults proven statically untestable by the semantic analysis and
    /// skipped without simulating a single pattern.
    pub untestable_static: u64,
    /// Wall-clock time spent in the semantic pre-analysis (ternary
    /// propagation, SCOAP sweeps, dominance collapsing, untestability
    /// proofs). Zero when no pre-analysis ran.
    pub analysis_wall: Duration,
    /// Simulation lane width: 64 for the scalar engines, 256/512 for
    /// engines widened via `with_lanes`. [`SimStats::gate_evals`] is
    /// lane-normalized (a wide sweep counts `instructions × lane words`),
    /// so throughput figures stay comparable across widths.
    pub lanes: u64,
}

impl SimStats {
    /// Fresh counters for an engine with `threads` workers.
    pub fn new(threads: usize) -> Self {
        SimStats {
            threads,
            per_shard_fault_evals: vec![0; threads],
            lanes: 64,
            ..SimStats::default()
        }
    }

    /// Derives the flat counter view from an engine's span tree.
    ///
    /// Mapping (all read from the recorder's **root** span):
    ///
    /// * totals — root counters ([`CounterId::Blocks`],
    ///   [`CounterId::GoodEvals`], [`CounterId::FaultEvals`],
    ///   [`CounterId::GateEvals`], [`CounterId::PatchesApplied`],
    ///   [`CounterId::FaultsDropped`], [`CounterId::UniverseFaults`],
    ///   [`CounterId::SimulatedFaults`], [`CounterId::UntestableStatic`]);
    /// * [`SimStats::per_shard_fault_evals`] — the per-shard *detail*
    ///   children under the root ([`Recorder::shard_counter`]), one entry
    ///   per configured worker (0 for shards that never reported);
    /// * [`SimStats::wall`] — the root span's accumulated wall clock (the
    ///   engines add each `apply_block`'s elapsed time explicitly);
    /// * [`SimStats::compile_wall`] / [`SimStats::analysis_wall`] — the
    ///   wall clocks of the `"compile"` / `"analyze"` child spans, zero
    ///   when absent.
    ///
    /// A [`Recorder::disabled`] recorder yields all-zero stats.
    pub fn from_recorder(rec: &Recorder, threads: usize) -> SimStats {
        let root = rec.root();
        let c = rec.span_counters(root);
        SimStats {
            threads,
            blocks: c.get(CounterId::Blocks),
            good_evals: c.get(CounterId::GoodEvals),
            fault_evals: c.get(CounterId::FaultEvals),
            per_shard_fault_evals: (0..threads)
                .map(|i| rec.shard_counter(root, i as u32, CounterId::FaultEvals))
                .collect(),
            faults_dropped: c.get(CounterId::FaultsDropped),
            wall: rec.span_wall(root),
            compile_wall: rec
                .find(root, "compile")
                .map(|s| rec.span_wall(s))
                .unwrap_or(Duration::ZERO),
            gate_evals: c.get(CounterId::GateEvals),
            patches_applied: c.get(CounterId::PatchesApplied),
            universe_faults: c.get(CounterId::UniverseFaults),
            simulated_faults: c.get(CounterId::SimulatedFaults),
            untestable_static: c.get(CounterId::UntestableStatic),
            analysis_wall: rec
                .find(root, "analyze")
                .map(|s| rec.span_wall(s))
                .unwrap_or(Duration::ZERO),
            // Scalar engines never record the counter; absent means the
            // 64-lane default.
            lanes: match c.get(CounterId::Lanes) {
                0 => 64,
                l => l,
            },
        }
    }

    /// Faulty-machine evaluations per good-machine sweep — the PPSFP
    /// batching figure (how many faults each wide good evaluation was
    /// amortized over); 0.0 before any sweep ran.
    pub fn faults_per_sweep(&self) -> f64 {
        if self.good_evals == 0 {
            return 0.0;
        }
        self.fault_evals as f64 / self.good_evals as f64
    }

    /// Faulty-machine evaluations per wall-clock second (the engine's
    /// primary throughput figure); 0.0 before any time has elapsed.
    pub fn fault_evals_per_second(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.fault_evals as f64 / secs
    }

    /// Gate evaluations per wall-clock second — the hot-path throughput
    /// figure the compiled IR optimizes; 0.0 before any time has elapsed.
    ///
    /// Each of the 64 lanes carries an independent pattern, so the
    /// per-pattern gate throughput is 64× this number.
    pub fn gate_evals_per_second(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.gate_evals as f64 / secs
    }

    /// Fraction of the fault universe that was actually simulated
    /// (`simulated_faults / universe_faults`) — the end-to-end shrink from
    /// dominance collapsing plus static-untestability skipping.
    ///
    /// Always a finite value in `0.0..=1.0`: a zero-fault universe (no
    /// pre-analysis, or a kernel with literally nothing to test) reports
    /// 1.0 rather than `NaN`/`∞`, and an inconsistent
    /// `simulated > universe` pair is clamped to 1.0. Pinned by the
    /// degenerate-case tests below.
    pub fn collapse_ratio(&self) -> f64 {
        if self.universe_faults == 0 {
            return 1.0;
        }
        let r = self.simulated_faults as f64 / self.universe_faults as f64;
        if r.is_finite() {
            r.min(1.0)
        } else {
            1.0
        }
    }

    /// Ratio of the busiest shard's evaluation count to the mean — 1.0 is
    /// perfect balance.
    ///
    /// Always finite and `>= 1.0`: an empty shard list (zero-thread
    /// stats), a run where nothing was evaluated, or any division that
    /// would produce `NaN`/`∞` all report the neutral 1.0. Pinned by the
    /// degenerate-case tests below.
    pub fn shard_imbalance(&self) -> f64 {
        let n = self.per_shard_fault_evals.len();
        if n == 0 || self.fault_evals == 0 {
            return 1.0;
        }
        let max = *self
            .per_shard_fault_evals
            .iter()
            .max()
            .expect("non-empty shard list") as f64;
        let mean = self.fault_evals as f64 / n as f64;
        if mean <= 0.0 {
            return 1.0;
        }
        let r = max / mean;
        if r.is_finite() {
            r.max(1.0)
        } else {
            1.0
        }
    }
}

impl fmt::Display for SimStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} thread(s), {} block(s), {} fault evals ({:.0}/s, imbalance {:.2}), \
             {:.2e} gate evals ({:.2e}/s), {} patches, {} dropped, {:.1} ms \
             (+{:.2} ms compile)",
            self.threads,
            self.blocks,
            self.fault_evals,
            self.fault_evals_per_second(),
            self.shard_imbalance(),
            self.gate_evals as f64,
            self.gate_evals_per_second(),
            self.patches_applied,
            self.faults_dropped,
            self.wall.as_secs_f64() * 1e3,
            self.compile_wall.as_secs_f64() * 1e3
        )?;
        // Only widened runs mention lanes, keeping the scalar engines'
        // output byte-identical to pre-wide baselines.
        if self.lanes > 64 {
            write!(
                f,
                "; {} lanes ({:.1} faults/sweep)",
                self.lanes,
                self.faults_per_sweep()
            )?;
        }
        if self.universe_faults > 0 {
            write!(
                f,
                "; {}/{} faults simulated (collapse {:.3}, {} untestable, \
                 analysis {:.2} ms)",
                self.simulated_faults,
                self.universe_faults,
                self.collapse_ratio(),
                self.untestable_static,
                self.analysis_wall.as_secs_f64() * 1e3
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imbalance_of_even_shards_is_one() {
        let mut s = SimStats::new(4);
        s.per_shard_fault_evals = vec![10, 10, 10, 10];
        s.fault_evals = 40;
        assert!((s.shard_imbalance() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn imbalance_detects_skew() {
        let mut s = SimStats::new(2);
        s.per_shard_fault_evals = vec![30, 10];
        s.fault_evals = 40;
        assert!((s.shard_imbalance() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn zero_wall_time_gives_zero_throughput() {
        let s = SimStats::new(1);
        assert_eq!(s.fault_evals_per_second(), 0.0);
        assert_eq!(s.gate_evals_per_second(), 0.0);
    }

    #[test]
    fn gate_throughput_counts_instructions() {
        let mut s = SimStats::new(1);
        s.gate_evals = 1_000;
        s.wall = Duration::from_millis(500);
        assert!((s.gate_evals_per_second() - 2_000.0).abs() < 1e-6);
    }

    #[test]
    fn display_renders() {
        let s = SimStats::new(2);
        let line = s.to_string();
        assert!(line.contains("2 thread(s)"));
        assert!(line.contains("gate evals"));
        assert!(line.contains("compile"));
        assert!(
            !line.contains("collapse"),
            "analysis block hidden without a universe"
        );
    }

    #[test]
    fn degenerate_shard_lists_clamp_to_one() {
        // Zero threads: empty shard list must not divide by zero.
        let mut s = SimStats::new(0);
        assert_eq!(s.shard_imbalance(), 1.0);
        assert!(s.shard_imbalance().is_finite());
        // Evaluations recorded but no shard entries (a hand-built stats
        // value a careless caller could produce): still defined.
        s.fault_evals = 10;
        assert_eq!(s.shard_imbalance(), 1.0);
        // Shards present but nothing evaluated.
        let s = SimStats::new(4);
        assert_eq!(s.shard_imbalance(), 1.0);
        // Inconsistent totals (fault_evals == 0 but shards nonzero).
        let mut s = SimStats::new(2);
        s.per_shard_fault_evals = vec![5, 0];
        assert_eq!(s.shard_imbalance(), 1.0, "fault_evals=0 short-circuits");
        // The result is never below 1.0 even with an inconsistent max.
        let mut s = SimStats::new(2);
        s.per_shard_fault_evals = vec![1, 1];
        s.fault_evals = 100;
        assert!(s.shard_imbalance() >= 1.0);
    }

    #[test]
    fn degenerate_universes_clamp_collapse_ratio() {
        // Zero-fault universe: defined, not NaN.
        let mut s = SimStats::new(1);
        s.universe_faults = 0;
        s.simulated_faults = 0;
        assert_eq!(s.collapse_ratio(), 1.0);
        assert!(s.collapse_ratio().is_finite());
        // Simulated > universe (inconsistent caller): clamped to 1.0.
        s.universe_faults = 10;
        s.simulated_faults = 20;
        assert_eq!(s.collapse_ratio(), 1.0);
        // Normal case untouched.
        s.simulated_faults = 5;
        assert!((s.collapse_ratio() - 0.5).abs() < 1e-12);
        // Display of a fully degenerate stats value never panics.
        let line = SimStats::new(0).to_string();
        assert!(line.contains("0 thread(s)"));
    }

    #[test]
    fn from_recorder_derives_the_flat_view() {
        use bibs_obs::{CounterId as C, Recorder, ShardCounters};
        let mut rec = Recorder::new("fault-sim[par]");
        let c = rec.enter("compile");
        rec.add(C::Instructions, 10);
        rec.exit(c);
        let root = rec.root();
        rec.add_to(root, C::Blocks, 3);
        rec.add_to(root, C::GoodEvals, 3);
        rec.add_to(root, C::GateEvals, 30);
        rec.add_to(root, C::FaultsDropped, 2);
        let mut s0 = ShardCounters::new();
        s0.add(C::FaultEvals, 8);
        s0.add(C::GateEvals, 80);
        s0.add(C::PatchesApplied, 8);
        let mut s1 = ShardCounters::new();
        s1.add(C::FaultEvals, 4);
        s1.add(C::GateEvals, 40);
        s1.add(C::PatchesApplied, 4);
        rec.attach_shard(root, 0, &s0);
        rec.attach_shard(root, 1, &s1);
        rec.add_wall(root, Duration::from_millis(5));

        let stats = SimStats::from_recorder(&rec, 2);
        assert_eq!(stats.threads, 2);
        assert_eq!(stats.blocks, 3);
        assert_eq!(stats.good_evals, 3);
        assert_eq!(stats.fault_evals, 12);
        assert_eq!(stats.per_shard_fault_evals, vec![8, 4]);
        assert_eq!(stats.gate_evals, 150);
        assert_eq!(stats.patches_applied, 12);
        assert_eq!(stats.faults_dropped, 2);
        assert_eq!(stats.wall, Duration::from_millis(5));
        assert!(stats.compile_wall <= stats.wall.max(Duration::from_secs(1)));
        assert_eq!(stats.analysis_wall, Duration::ZERO);
        // Shards that never reported read as zero.
        let wide = SimStats::from_recorder(&rec, 4);
        assert_eq!(wide.per_shard_fault_evals, vec![8, 4, 0, 0]);
        // A disabled recorder derives all-zero stats.
        let empty = SimStats::from_recorder(&Recorder::disabled(), 1);
        assert_eq!(empty.fault_evals, 0);
        assert_eq!(empty.per_shard_fault_evals, vec![0]);
    }

    #[test]
    fn lanes_default_and_wide_display() {
        // new() and a recorder without the lanes counter both report the
        // scalar 64-lane default, and the Display line stays free of any
        // lanes mention (byte-compat with pre-wide output).
        let s = SimStats::new(1);
        assert_eq!(s.lanes, 64);
        assert!(!s.to_string().contains("lanes"));
        let rec = bibs_obs::Recorder::new("fault-sim[serial]");
        assert_eq!(SimStats::from_recorder(&rec, 1).lanes, 64);
        // A widened engine surfaces the width and the PPSFP ratio.
        let mut rec = bibs_obs::Recorder::new("fault-sim[serial]");
        let root = rec.root();
        rec.add_to(root, CounterId::Lanes, 512);
        rec.add_to(root, CounterId::GoodEvals, 2);
        let mut sh = bibs_obs::ShardCounters::new();
        sh.add(CounterId::FaultEvals, 10);
        rec.attach_shard(root, 0, &sh);
        let s = SimStats::from_recorder(&rec, 1);
        assert_eq!(s.lanes, 512);
        assert!((s.faults_per_sweep() - 5.0).abs() < 1e-9);
        assert!(s.to_string().contains("512 lanes (5.0 faults/sweep)"));
    }

    #[test]
    fn faults_per_sweep_guards_zero_sweeps() {
        let s = SimStats::new(1);
        assert_eq!(s.faults_per_sweep(), 0.0);
    }

    #[test]
    fn collapse_ratio_and_display_with_universe() {
        let mut s = SimStats::new(1);
        assert_eq!(s.collapse_ratio(), 1.0, "no pre-analysis");
        s.universe_faults = 200;
        s.simulated_faults = 120;
        s.untestable_static = 5;
        s.analysis_wall = Duration::from_millis(2);
        assert!((s.collapse_ratio() - 0.6).abs() < 1e-9);
        let line = s.to_string();
        assert!(line.contains("120/200 faults simulated"));
        assert!(line.contains("collapse 0.600"));
        assert!(line.contains("5 untestable"));
    }
}
