//! The seed AST-walking interpreter, retained as the equivalence oracle.
//!
//! Before the compiled-IR refactor, [`eval_good`] / [`eval_faulty`] *were*
//! the production hot path: they re-scan every net's
//! [`NetDriver`] on each call, refill a per-gate
//! scratch buffer and dispatch through
//! [`GateKind::eval_words`](bibs_netlist::GateKind::eval_words). The
//! production engines now execute a compiled
//! [`EvalProgram`](bibs_netlist::EvalProgram) instead, but this module
//! keeps the original interpreter alive — bit-for-bit — for three jobs:
//!
//! * **oracle**: `tests/compiled_equivalence.rs` asserts the compiled
//!   engine's [`FaultSimReport`]s are bit-identical to
//!   [`ReferenceSimulator`]'s across paper kernels, random DAGs, seeds and
//!   thread counts;
//! * **benchmark baseline**: the criterion benches measure the compiled
//!   speedup against this implementation;
//! * **independent re-check**: the `table2` bin's `--engine reference`
//!   mode lets CI diff full Table 2 JSON between the two paths.
//!
//! Nothing here should be "improved" — its value is being the unchanged
//! seed semantics.

use crate::eval::output_diff_nets;
use crate::fault::{Fault, FaultSite};
use crate::sim::{BlockSim, FaultSimReport};
use crate::stats::SimStats;
use bibs_netlist::{GateId, NetDriver, Netlist};
use bibs_obs::{CounterId, Recorder, ShardCounters};
use std::time::Instant;

/// Evaluates the fault-free machine into `values` (one word per net, one
/// pattern per lane) by walking the netlist object graph.
///
/// `order` must be a topological order of the gates (from
/// [`Netlist::levelize`]); `scratch` is a reusable per-gate operand
/// buffer.
pub fn eval_good(
    netlist: &Netlist,
    order: &[GateId],
    input_words: &[u64],
    values: &mut [u64],
    scratch: &mut Vec<u64>,
) {
    for net in netlist.net_ids() {
        match netlist.driver(net) {
            NetDriver::Input(i) => values[net.index()] = input_words[i],
            NetDriver::Const(v) => values[net.index()] = if v { !0 } else { 0 },
            _ => {}
        }
    }
    for &gid in order {
        let gate = netlist.gate(gid);
        scratch.clear();
        scratch.extend(gate.inputs.iter().map(|i| values[i.index()]));
        values[gate.output.index()] = gate.kind.eval_words(scratch);
    }
}

/// Evaluates the machine with `fault` injected into `values` by walking
/// the netlist object graph (see [`eval_good`] for the conventions).
pub fn eval_faulty(
    netlist: &Netlist,
    order: &[GateId],
    input_words: &[u64],
    fault: Fault,
    values: &mut [u64],
    scratch: &mut Vec<u64>,
) {
    let stuck_word = if fault.stuck_at { !0u64 } else { 0u64 };
    let fault_net = match fault.site {
        FaultSite::Net(n) => Some(n),
        FaultSite::GatePin { .. } => None,
    };
    for net in netlist.net_ids() {
        let v = match netlist.driver(net) {
            NetDriver::Input(i) => input_words[i],
            NetDriver::Const(v) => {
                if v {
                    !0
                } else {
                    0
                }
            }
            _ => continue,
        };
        values[net.index()] = if fault_net == Some(net) {
            stuck_word
        } else {
            v
        };
    }
    for &gid in order {
        let gate = netlist.gate(gid);
        scratch.clear();
        scratch.extend(gate.inputs.iter().map(|i| values[i.index()]));
        if let FaultSite::GatePin { gate: fg, pin } = fault.site {
            if fg == gid {
                scratch[pin] = stuck_word;
            }
        }
        let mut out = gate.kind.eval_words(scratch);
        if fault_net == Some(gate.output) {
            out = stuck_word;
        }
        values[gate.output.index()] = out;
    }
}

/// The serial fault simulator running on the seed interpreter.
///
/// Drop-in [`BlockSim`] peer of the compiled
/// [`FaultSimulator`](crate::sim::FaultSimulator): same pattern-stream
/// drivers, same detection rule (`patterns_applied + trailing_zeros(diff)`),
/// different evaluation machinery. Reports from the two must be
/// bit-identical on any netlist.
#[derive(Debug)]
pub struct ReferenceSimulator<'a> {
    netlist: &'a Netlist,
    order: Vec<GateId>,
    faults: Vec<Fault>,
    detection: Vec<Option<u64>>,
    good: Vec<u64>,
    faulty: Vec<u64>,
    patterns_applied: u64,
    rec: Recorder,
}

impl<'a> ReferenceSimulator<'a> {
    /// Creates an interpreter-backed simulator over `netlist` for the
    /// given fault list.
    ///
    /// # Panics
    ///
    /// Panics if the netlist is sequential (run on the combinational
    /// equivalent) or combinationally cyclic.
    pub fn new(netlist: &'a Netlist, faults: Vec<Fault>) -> Self {
        assert_eq!(
            netlist.dff_count(),
            0,
            "fault-simulate the combinational equivalent"
        );
        let order = netlist.levelize().expect("acyclic combinational netlist");
        let n = faults.len();
        ReferenceSimulator {
            netlist,
            order,
            faults,
            detection: vec![None; n],
            good: vec![0u64; netlist.net_count()],
            faulty: vec![0u64; netlist.net_count()],
            patterns_applied: 0,
            rec: Recorder::new("fault-sim[reference]"),
        }
    }

    /// The engine's telemetry span tree (root `"fault-sim[reference]"`).
    /// The interpreter has no compile phase, so the tree is just the root
    /// plus the single shard-0 detail child.
    pub fn recorder(&self) -> &Recorder {
        &self.rec
    }
}

impl BlockSim for ReferenceSimulator<'_> {
    fn netlist(&self) -> &Netlist {
        self.netlist
    }

    fn apply_block(&mut self, input_words: &[u64], lanes: usize) -> usize {
        assert!((1..=64).contains(&lanes), "1..=64 lanes per block");
        assert_eq!(input_words.len(), self.netlist.input_width());
        let lane_mask: u64 = if lanes == 64 { !0 } else { (1u64 << lanes) - 1 };
        let started = Instant::now();
        let mut scratch: Vec<u64> = Vec::with_capacity(8);

        eval_good(
            self.netlist,
            &self.order,
            input_words,
            &mut self.good,
            &mut scratch,
        );
        let good_gate_evals = self.netlist.gate_count() as u64;

        let outputs: Vec<usize> = self.netlist.outputs().iter().map(|o| o.index()).collect();
        let mut newly = 0usize;
        let mut shard = ShardCounters::new();
        let shard_started = Instant::now();
        for fi in 0..self.faults.len() {
            if self.detection[fi].is_some() {
                continue;
            }
            eval_faulty(
                self.netlist,
                &self.order,
                input_words,
                self.faults[fi],
                &mut self.faulty,
                &mut scratch,
            );
            shard.add(CounterId::GateEvals, self.netlist.gate_count() as u64);
            shard.add(CounterId::FaultEvals, 1);
            let diff = output_diff_nets(&outputs, &self.good, &self.faulty, lane_mask);
            if diff != 0 {
                let lane = diff.trailing_zeros() as u64;
                self.detection[fi] = Some(self.patterns_applied + lane);
                newly += 1;
            }
        }
        shard.wall = shard_started.elapsed();
        self.patterns_applied += lanes as u64;
        let root = self.rec.root();
        self.rec.attach_shard(root, 0, &shard);
        self.rec.add_to(root, CounterId::GateEvals, good_gate_evals);
        self.rec.add_to(root, CounterId::GoodEvals, 1);
        self.rec.add_to(root, CounterId::Blocks, 1);
        self.rec
            .add_to(root, CounterId::PatternsConsumed, lanes as u64);
        self.rec
            .add_to(root, CounterId::FaultsDropped, newly as u64);
        self.rec.add_wall(root, started.elapsed());
        newly
    }

    fn detection(&self) -> &[Option<u64>] {
        &self.detection
    }

    fn patterns_applied(&self) -> u64 {
        self.patterns_applied
    }

    fn report(&self) -> FaultSimReport {
        FaultSimReport::from_parts(
            self.faults.clone(),
            self.detection.clone(),
            self.patterns_applied,
            SimStats::from_recorder(&self.rec, 1),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultUniverse;
    use crate::sim::FaultSimulator;
    use bibs_netlist::builder::NetlistBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn adder4() -> Netlist {
        let mut b = NetlistBuilder::new("add4");
        let a = b.input_word("a", 4);
        let c = b.input_word("b", 4);
        let (s, co) = b.ripple_carry_adder(&a, &c, None);
        b.output_word("s", &s);
        b.output("co", co);
        b.finish().unwrap()
    }

    #[test]
    fn reference_reaches_full_coverage_exhaustively() {
        let nl = adder4();
        let faults = FaultUniverse::collapsed(&nl);
        let mut sim = ReferenceSimulator::new(&nl, faults.faults().to_vec());
        let report = sim.run_exhaustive();
        assert_eq!(report.undetected().len(), 0);
    }

    #[test]
    fn reference_matches_compiled_on_random_stream() {
        let nl = adder4();
        let faults = FaultUniverse::collapsed(&nl).faults().to_vec();
        let mut rng = StdRng::seed_from_u64(17);
        let reference = ReferenceSimulator::new(&nl, faults.clone()).run_random(&mut rng, 10_000);
        let mut rng = StdRng::seed_from_u64(17);
        let compiled = FaultSimulator::new(&nl, faults).run_random(&mut rng, 10_000);
        assert_eq!(reference.detection(), compiled.detection());
        assert_eq!(reference.patterns_applied(), compiled.patterns_applied());
    }
}
