//! Single-stuck-at fault machinery for the BIBS reproduction.
//!
//! The paper's Table 2 reports the number of random patterns needed to reach
//! 99.5 % and 100 % coverage of **detectable** faults for each circuit under
//! both TDMs. Reproducing that needs three pieces, all built here:
//!
//! * a single-stuck-at **fault model** with structural equivalence
//!   collapsing ([`fault`]);
//! * a 64-way parallel-pattern **fault simulator** with fault dropping
//!   ([`sim`]), plus a multi-threaded engine ([`par`]) that produces
//!   bit-identical reports (thread count via `BIBS_JOBS` or
//!   [`par::default_jobs`]); both run on the compiled
//!   [`bibs_netlist::EvalProgram`] IR, with the original gate-walking
//!   interpreter preserved as a reference oracle ([`mod@reference`]);
//! * pluggable **pattern sources** ([`source`]): the stream an engine
//!   consumes — pseudorandom words, hardware-faithful LFSRs, weighted
//!   random, exhaustive counters, stored-seed replays — behind one
//!   [`source::PatternSource`] trait with clock accounting, driven by the
//!   shared [`sim::BlockSim::run_source`] driver;
//! * **PODEM** combinational ATPG ([`atpg`]) to prove faults undetectable —
//!   which defines the "detectable" universe that the 100 % rows measure.
//!   (The paper: "only an ATPG system for combinational logic is required",
//!   thanks to balanced kernels being 1-step functionally testable.)
//! * a sequential (time-frame) fault simulator ([`seq`]) that measures
//!   **k-pattern detectability** directly, confirming Section 2's
//!   motivation on gate-level circuits.
//!
//! All three operate on the *combinational equivalent* of a balanced
//! circuit ([`bibs_netlist::Netlist::combinational_equivalent`]); the
//! BALLAST result (ref \[8\] of the paper) guarantees this preserves fault
//! detectability.
//!
//! # Example
//!
//! ```
//! use bibs_netlist::builder::NetlistBuilder;
//! use bibs_faultsim::fault::FaultUniverse;
//! use bibs_faultsim::sim::{BlockSim, FaultSimulator};
//!
//! # fn main() -> Result<(), bibs_netlist::NetlistError> {
//! let mut b = NetlistBuilder::new("add2");
//! let a = b.input_word("a", 2);
//! let c = b.input_word("b", 2);
//! let (s, co) = b.ripple_carry_adder(&a, &c, None);
//! b.output_word("s", &s);
//! b.output("co", co);
//! let nl = b.finish()?;
//!
//! let faults = FaultUniverse::collapsed(&nl);
//! let mut sim = FaultSimulator::new(&nl, faults.faults().to_vec());
//! let report = sim.run_exhaustive();
//! assert_eq!(report.undetected().len(), 0, "an adder has no redundancy");
//! # Ok(())
//! # }
//! ```
#![warn(missing_docs)]

pub mod atpg;
mod eval;
pub mod fault;
pub mod par;
pub mod reference;
pub mod seq;
pub mod sim;
pub mod source;
pub mod stats;

pub use fault::{DominanceCollapse, Fault, FaultSite, FaultUniverse, StaticFaultAnalysis};
pub use par::{default_jobs, ParFaultSimulator};
pub use reference::ReferenceSimulator;
pub use sim::{BlockSim, FaultSimReport, FaultSimulator, SimError};
pub use source::{
    ExhaustiveSource, LfsrSource, PatternBlock, PatternSource, RandomWords, SourceDescriptor,
    StoredSeedReplay, WeightedRandomSource,
};
pub use stats::SimStats;
